"""A7 — ablation: multicast (Section 4.1).

"Fifty client nodes, each using two log servers, will generate around
seven million total bits per second of network traffic.  With the use
of multicast, this amount would be approximately halved."

The same N=2 force stream is transmitted with per-server unicast and
with one multicast per force; total bits and medium busy time halve.
"""

import pytest

from repro.harness import run_multicast_ablation

from ._emit import emit_table


def _run():
    return run_multicast_ablation(clients=20, copies=2, forces_per_client=50)


def test_multicast_halves_traffic(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit_table(
        ["delivery", "traffic (Mbit)", "medium busy (s)"],
        [
            ("unicast x N", f"{result.unicast_mbits:.2f}",
             f"{result.unicast_medium_busy_s:.3f}"),
            ("multicast", f"{result.multicast_mbits:.2f}",
             f"{result.multicast_medium_busy_s:.3f}"),
        ],
        title="Ablation A7 — multicast vs unicast delivery of N=2 forces",
    )
    assert result.traffic_ratio == pytest.approx(0.5, abs=0.02)
    assert (result.multicast_medium_busy_s
            < 0.6 * result.unicast_medium_busy_s)

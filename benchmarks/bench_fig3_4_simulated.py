"""E2 — Figure 3-4 validated by Monte-Carlo failure injection.

Runs the *actual* replication algorithm (not the algebra) under
independent Bernoulli outages and compares measured availability with
the closed forms — the cross-check that the implementation realizes
the paper's failure semantics.
"""

import pytest

from repro.core.availability import (
    init_availability,
    read_availability,
    write_availability,
)
from repro.harness import run_availability_monte_carlo

from ._emit import emit_table

CONFIGS = [(3, 2), (5, 2), (7, 2), (5, 3)]
P = 0.05
TRIALS = 1200


def _measure():
    rows = []
    for m, n in CONFIGS:
        mc = run_availability_monte_carlo(m, n, P, trials=TRIALS, seed=m * 10 + n)
        rows.append((
            m, n,
            f"{mc.write_available:.4f}", f"{write_availability(m, n, P):.4f}",
            f"{mc.init_available:.4f}", f"{init_availability(m, n, P):.4f}",
            f"{mc.read_available:.4f}", f"{read_availability(n, P):.4f}",
        ))
        assert mc.write_available == pytest.approx(
            write_availability(m, n, P), abs=0.025)
        assert mc.init_available == pytest.approx(
            init_availability(m, n, P), abs=0.025)
        assert mc.read_available == pytest.approx(
            read_availability(n, P), abs=0.025)
    return rows


def test_monte_carlo_matches_closed_forms(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    emit_table(
        ["M", "N", "write MC", "write CF", "init MC", "init CF",
         "read MC", "read CF"],
        rows,
        title=(f"Figure 3-4 (simulated) — measured vs closed-form "
               f"availability, p = {P}, {TRIALS} trials"),
    )

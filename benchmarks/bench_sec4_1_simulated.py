"""E4 — the Section 4.1 target load, measured in the full simulator.

Fifty client nodes at ten ET1 transactions/second each, six log
servers, dual-copy records, dual 10 Mbit/s networks: the complete
stack (protocol, NVRAM, track-at-a-time disk stream) executes the
load, and the measured per-server RPC rate, utilization figures, and
network traffic are printed against the analytic claims.
"""

from repro.harness import TargetLoadConfig, run_target_load

from ._emit import emit, emit_table


def _run():
    return run_target_load(TargetLoadConfig(duration_s=4.0))


def test_target_load_simulation(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit_table(
        ["quantity", "measured", "expected (scaled to achieved TPS)"],
        result.rows(),
        title="Section 4.1 (simulated) — 50 clients x 10 TPS, 6 servers, N=2",
    )
    emit(f"completed transactions : {result.completed_txns}")
    emit(f"force latency p95      : {result.force_p95_ms:.2f} ms")
    emit(f"per-network bandwidth  : "
         f"{', '.join(f'{u*100:.1f}%' for u in result.per_network_utilization)}")
    assert result.failed_drivers == 0
    assert result.messages_shed == 0
    assert result.achieved_tps > 350          # near the 500-TPS target
    scale = result.achieved_tps / 500.0
    assert abs(result.rpcs_per_server_s - 167 * scale) < 167 * scale * 0.2
    assert 0.30 < result.server_disk_utilization < 0.65
    assert result.server_cpu_utilization < 0.30
    assert result.force_mean_ms < 15.0

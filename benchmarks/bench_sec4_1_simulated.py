"""E4 — the Section 4.1 target load, measured in the full simulator.

Fifty client nodes at ten ET1 transactions/second each, six log
servers, dual-copy records, dual 10 Mbit/s networks: the complete
stack (protocol, NVRAM, track-at-a-time disk stream) executes the
load, and the measured per-server RPC rate, utilization figures, and
network traffic are printed against the analytic claims.

Besides the capacity table, this benchmark is the end-to-end half of
the performance trajectory (the kernel microbenchmark being the other
half): it reports the wall-clock cost of the default four-second run,
the kernel events/sec it sustains, and the simulated-seconds per
wall-second ratio, and writes them to ``BENCH_sec4_1_simulated.json``.
"""

from repro.harness import TargetLoadConfig, run_target_load

from ._emit import emit, emit_json, emit_table

#: Median wall-clock seconds for this exact run (duration_s=4.0,
#: default seed) before the hot-path optimization pass, measured
#: interleaved with the optimized build on the same idle machine.
PRE_CHANGE_BASELINE_WALL_S = 1.07
#: The optimized build's interleaved median was 0.52 s (2.06x); the
#: assertion floor leaves headroom for slower or noisier machines.
MIN_SPEEDUP = 1.4


def _run():
    return run_target_load(TargetLoadConfig(duration_s=4.0))


def test_target_load_simulation(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit_table(
        ["quantity", "measured", "expected (scaled to achieved TPS)"],
        result.rows(),
        title="Section 4.1 (simulated) — 50 clients x 10 TPS, 6 servers, N=2",
    )
    emit(f"completed transactions : {result.completed_txns}")
    emit(f"force latency p95      : {result.force_p95_ms:.2f} ms")
    emit(f"per-network bandwidth  : "
         f"{', '.join(f'{u*100:.1f}%' for u in result.per_network_utilization)}")
    speedup = PRE_CHANGE_BASELINE_WALL_S / result.wall_seconds
    emit(f"wall-clock             : {result.wall_seconds:.3f} s "
         f"({speedup:.2f}x vs pre-change {PRE_CHANGE_BASELINE_WALL_S:.2f} s)")
    emit(f"kernel events/sec      : {result.events_per_sec:,.0f}")
    emit(f"sim-s per wall-s       : {result.sim_time_ratio:.1f}")
    emit_json("sec4_1_simulated", {
        "params": {
            "clients": result.config.clients,
            "servers": result.config.servers,
            "copies": result.config.copies,
            "duration_s": result.config.duration_s,
            "seed": result.config.seed,
        },
        "metrics": {
            "completed_txns": result.completed_txns,
            "achieved_tps": result.achieved_tps,
            "force_mean_ms": result.force_mean_ms,
            "force_p95_ms": result.force_p95_ms,
            "kernel_events": result.kernel_events,
            "events_per_sec": result.events_per_sec,
            "sim_time_ratio": result.sim_time_ratio,
            "speedup_vs_pre_change": speedup,
            "pre_change_baseline_wall_s": PRE_CHANGE_BASELINE_WALL_S,
        },
        "wall_seconds": result.wall_seconds,
    })
    assert result.failed_drivers == 0
    assert result.messages_shed == 0
    assert result.achieved_tps > 350          # near the 500-TPS target
    scale = result.achieved_tps / 500.0
    assert abs(result.rpcs_per_server_s - 167 * scale) < 167 * scale * 0.2
    assert 0.30 < result.server_disk_utilization < 0.65
    assert result.server_cpu_utilization < 0.30
    assert result.force_mean_ms < 15.0
    assert speedup >= MIN_SPEEDUP, (
        f"E4 wall-clock regressed: {result.wall_seconds:.3f}s is only "
        f"{speedup:.2f}x over the {PRE_CHANGE_BASELINE_WALL_S:.2f}s baseline"
    )

"""Placement at scale: K ring-placed streams over an M-server fleet.

The sharded multi-tenant question EXPERIMENTS.md E17 asks: as the
number of placed client streams K grows over a fixed fleet of M real
server processes, where does aggregate throughput stop scaling and
ForceLog latency start climbing?  One shared loopback cluster serves
every K in the sweep (fresh tenant-qualified client ids per K keep the
streams distinct); clients are placed through the consistent-hash
directory exactly as ``repro loadgen --cluster-spec`` places them, so
the benchmark measures the placement path end to end — ring walk,
per-stream write sets, deterministic per-client seeds.

Loopback caveats are E12's: all processes share one machine's cores
and one disk, so the knee is the box's, not a 10 Mbit/s LAN's.  The
*shape* — aggregate records/s roughly flat past the knee while p99
force latency grows with K — is the result; absolute numbers are
machine-specific.

Knobs (environment):

- ``REPRO_RT_SMOKE=1`` — tiny fleet and sweep for CI;
- ``REPRO_RT_DURATION`` — seconds per K point;
- ``REPRO_PLACEMENT_SERVERS`` — fleet size M (default 8);
- ``REPRO_PLACEMENT_SWEEP`` — comma-separated K values.
"""

from __future__ import annotations

import os
import time

from repro.rt.cluster import LoopbackCluster
from repro.rt.loadgen import run_multi_loadgen_sync
from repro.rt.placement import PlacementDirectory

from ._emit import emit, emit_json, emit_table

SMOKE = bool(os.environ.get("REPRO_RT_SMOKE"))
DURATION_S = float(os.environ.get("REPRO_RT_DURATION",
                                  "2" if SMOKE else "6"))
SERVERS = int(os.environ.get("REPRO_PLACEMENT_SERVERS",
                             "3" if SMOKE else "8"))
SWEEP = [int(k) for k in os.environ.get(
    "REPRO_PLACEMENT_SWEEP",
    "2,4" if SMOKE else "4,8,16,32,64").split(",")]
COPIES = 2
DELTA = 8
BASE_SEED = 1987


def test_bench_placement(tmp_path):
    start = time.perf_counter()
    rows = []
    points = []
    with LoopbackCluster(tmp_path, num_servers=SERVERS) as cluster:
        directory = PlacementDirectory(
            cluster.cluster_spec(copies=COPIES, delta=DELTA))
        for k in SWEEP:
            # Distinct tenants per K so earlier points' streams do not
            # shadow this point's (every id is fresh to the fleet).
            report = run_multi_loadgen_sync(
                directory, clients=k, client_id=f"k{k}",
                tenants=max(2, k // 4), base_seed=BASE_SEED,
                duration_s=DURATION_S,
            )
            assert report.transactions > 0
            assert report.records_written == report.transactions * 7
            points.append({
                "clients": k,
                "records_per_sec": round(report.records_per_sec, 1),
                "txns_per_sec": round(report.txns_per_sec, 1),
                "force_p50_ms": round(report.force_p50_ms, 3),
                "force_p99_ms": round(report.force_p99_ms, 3),
            })
            rows.append((k, f"{report.records_per_sec:.0f}",
                         f"{report.txns_per_sec:.0f}",
                         f"{report.force_p50_ms:.2f}",
                         f"{report.force_p99_ms:.2f}"))
            emit(f"[placement] K={k}: "
                 f"{report.records_per_sec:.0f} rec/s, "
                 f"p99 force {report.force_p99_ms:.2f} ms")

    emit_table(
        ["K streams", "rec/s", "txn/s", "force p50 (ms)",
         "force p99 (ms)"],
        rows,
        title=(f"placement sweep — M={SERVERS} servers, N={COPIES}, "
               f"{DURATION_S:.0f}s per point"),
    )

    # The knee: the first K whose throughput gain over the previous
    # point falls under 10% — saturation of the shared fleet.
    knee = None
    for prev, cur in zip(points, points[1:]):
        if cur["records_per_sec"] < 1.10 * prev["records_per_sec"]:
            knee = cur["clients"]
            break
    peak = max(p["records_per_sec"] for p in points)
    emit(f"[placement] peak {peak:.0f} rec/s; saturation knee at "
         f"K={knee if knee is not None else '>' + str(SWEEP[-1])}")

    emit_json("placement", {
        "params": {
            "servers": SERVERS,
            "copies": COPIES,
            "delta": DELTA,
            "duration_s_per_point": DURATION_S,
            "sweep": SWEEP,
            "base_seed": BASE_SEED,
            "smoke": SMOKE,
        },
        "metrics": {
            "points": points,
            "peak_records_per_sec": peak,
            "knee_clients": knee,
        },
        "wall_seconds": time.perf_counter() - start,
    })

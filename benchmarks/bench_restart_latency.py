"""E10 — client restart latency vs M.

Section 3.2 analyzes restart *availability* and explicitly leaves
timing open ("predicting the expected time for client process
initialization to complete requires a more complicated model that
includes the expected rates of log server failures and the expected
times for repair").  The simulator measures the deterministic part:
gathering M interval lists, reading the last δ records (disk reads for
sealed tracks; free for records still in NVRAM), and installing the
copies on N servers.
"""

from repro.harness import run_restart_latency

from ._emit import emit, emit_table


def _run():
    return run_restart_latency(m_values=(2, 4, 6, 8), records=150,
                               restarts=5)


def test_restart_latency(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit_table(
        ["M", "intervals merged", "mean restart (ms)", "max restart (ms)"],
        [
            (r.m, r.intervals_merged, f"{r.mean_restart_ms:.1f}",
             f"{r.max_restart_ms:.1f}")
            for r in rows
        ],
        title="E10 — client initialization time vs number of log servers "
              "(N=2, δ=8)",
    )
    emit("")
    emit("restart cost = M sequential IntervalList RPCs (+~2 ms per "
         "server) + reading the last δ records (disk-bound on the first "
         "restart, NVRAM-fast afterwards) + CopyLog/InstallCopies on N "
         "servers.")
    # the M-dependence is mild: a few ms per extra server
    assert rows[-1].mean_restart_ms - rows[0].mean_restart_ms < 50
    # and restart stays comfortably sub-second even at M=8
    assert rows[-1].max_restart_ms < 1000

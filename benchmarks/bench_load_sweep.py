"""A9 — offered-load saturation sweep.

Scales the per-client transaction rate from 1× to 8× the nominal load
on a small cluster and watches the Section 4.1 bottleneck order emerge:
forces stay NVRAM-fast until the disk saturates (~50 % at nominal per
the paper's sizing, here driven to ~100 %), after which latency climbs
and NVRAM back-pressure starts shedding messages — the server's
sanctioned overload response ("they are free to ignore ForceLog and
WriteLog messages if they become too heavily loaded").
"""

from repro.harness import run_load_sweep

from ._emit import emit_table


def _run():
    return run_load_sweep(multipliers=(1.0, 2.0, 4.0, 8.0), duration_s=2.0)


def test_load_sweep(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit_table(
        ["offered TPS/client", "achieved TPS", "mean force (ms)",
         "p95 force (ms)", "disk util", "CPU util", "msgs shed"],
        [
            (f"{r.tps_per_client:.0f}", f"{r.achieved_tps:.0f}",
             f"{r.mean_force_ms:.2f}", f"{r.p95_force_ms:.2f}",
             f"{r.disk_utilization * 100:.0f}%",
             f"{r.cpu_utilization * 100:.0f}%", r.messages_shed)
            for r in rows
        ],
        title="Ablation A9 — saturation sweep (10 clients, 2 servers)",
    )
    # disk utilization grows with load until it saturates
    utils = [r.disk_utilization for r in rows]
    assert utils[0] < 0.5
    assert utils[-1] > 0.9
    # latency at 8x is visibly above the NVRAM floor
    assert rows[-1].mean_force_ms > 1.3 * rows[0].mean_force_ms
    # and the throughput curve flattens (achieved < offered at the top)
    offered_top = rows[-1].tps_per_client * 10
    assert rows[-1].achieved_tps < 0.8 * offered_top

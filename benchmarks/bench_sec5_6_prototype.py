"""E5 — the Section 5.6 prototype measurement.

"As of April 1986, remote logging to virtual memory on two remote
servers used less than twice the elapsed time required for local
logging to a single disk."

The remote side runs the full protocol stack with an Accent-like IPC
cost (the paper notes Accent communication "is not as low level or
efficient as Section 4.1 suggests is necessary"); the local side is
group-commit logging to one disk.  A second row shows the same
comparison with the specialized 1000-instruction protocols the paper
designs — where remote logging wins outright.
"""

from repro.harness import run_prototype_comparison

from ._emit import emit_table


def _run_both():
    accent = run_prototype_comparison(transactions=200)
    efficient = run_prototype_comparison(
        transactions=200, accent_instructions_per_packet=1000, mips=4.0)
    return accent, efficient


def test_prototype_comparison(benchmark):
    accent, efficient = benchmark.pedantic(_run_both, rounds=1, iterations=1)
    emit_table(
        ["configuration", "remote (s)", "local (s)", "remote/local"],
        [
            ("Accent-era IPC (1986 prototype)",
             f"{accent.remote_elapsed_s:.2f}",
             f"{accent.local_elapsed_s:.2f}",
             f"{accent.ratio:.2f}"),
            ("specialized low-level protocols (Sec 4.1)",
             f"{efficient.remote_elapsed_s:.2f}",
             f"{efficient.local_elapsed_s:.2f}",
             f"{efficient.ratio:.2f}"),
        ],
        title="Section 5.6 — remote logging (2 servers, N=2) vs local "
              "single-disk logging, 200 ET1 transactions",
    )
    # the paper's claim: less than twice the local elapsed time
    assert 1.0 < accent.ratio < 2.0
    # and the design's promise: efficient protocols make remote faster
    assert efficient.ratio < 1.0

"""A5 — ablation: trading write availability against restart availability.

Section 3.2: "WriteLog operations can be made more available by adding
log servers, though this does decrease the availability for client
node restart."  The sweep holds p fixed and varies M and N, printing
both closed-form and Monte-Carlo values for the trade-off frontier.
"""

from repro.core.availability import init_availability, write_availability
from repro.harness import run_availability_monte_carlo

from ._emit import emit_table

P = 0.05


def _sweep():
    rows = []
    for n in (2, 3):
        for m in range(n, 9):
            rows.append((
                m, n,
                f"{write_availability(m, n, P):.6f}",
                f"{init_availability(m, n, P):.6f}",
            ))
    return rows


def test_replication_tradeoff(benchmark):
    rows = benchmark(_sweep)
    emit_table(
        ["M", "N", "WriteLog availability", "client-init availability"],
        rows,
        title="Ablation A5 — write vs restart availability (closed form)",
    )
    # Spot-check the frontier with the real algorithm.  (M=3 rather
    # than M=2 as the small configuration: the implementation's restart
    # also installs copies on N servers, which for M=N dominates the
    # pure interval-list quorum the closed form counts.)
    mc_low = run_availability_monte_carlo(8, 2, P, trials=800, seed=11)
    mc_high = run_availability_monte_carlo(3, 2, P, trials=800, seed=12)
    # more servers: better writes, worse init
    assert mc_low.write_available >= mc_high.write_available
    assert mc_low.init_available <= mc_high.init_available

"""Table and JSON emission for benchmarks.

Benchmarks print the rows/series the paper reports.  Output goes to
the real stdout (bypassing pytest's capture) so that
``pytest benchmarks/ --benchmark-only`` leaves the tables in the log.

Benchmarks that contribute to the performance trajectory additionally
call :func:`emit_json`, which writes a machine-readable
``BENCH_<name>.json`` file at the repository root so successive PRs
can be compared without parsing log text.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time
from typing import Any, Mapping, Sequence

from repro.harness.tables import format_table

#: Repository root — two levels up from this file (benchmarks/_emit.py).
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def emit(text: str) -> None:
    print(text, file=sys.__stdout__, flush=True)


def emit_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> None:
    emit("")
    emit(format_table(headers, rows, title))


def emit_json(
    name: str,
    payload: Mapping[str, Any],
    root: pathlib.Path | None = None,
) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` at the repo root and return its path.

    ``payload`` must carry ``params`` and ``metrics`` mappings plus a
    ``wall_seconds`` float; ``bench`` and a ``unix_time`` stamp are
    filled in here so every trajectory file shares one schema::

        {"bench": ..., "params": {...}, "metrics": {...},
         "wall_seconds": ..., "unix_time": ...}
    """
    document = {
        "bench": name,
        "params": dict(payload.get("params", {})),
        "metrics": dict(payload.get("metrics", {})),
        "wall_seconds": payload.get("wall_seconds"),
        "unix_time": time.time(),
    }
    path = (root if root is not None else REPO_ROOT) / f"BENCH_{name}.json"
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    emit(f"[bench] wrote {path}")
    return path

"""Table emission for benchmarks.

Benchmarks print the rows/series the paper reports.  Output goes to
the real stdout (bypassing pytest's capture) so that
``pytest benchmarks/ --benchmark-only`` leaves the tables in the log.
"""

from __future__ import annotations

import sys
from typing import Sequence

from repro.harness.tables import format_table


def emit(text: str) -> None:
    print(text, file=sys.__stdout__, flush=True)


def emit_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> None:
    emit("")
    emit(format_table(headers, rows, title))

"""E7 — Figures 4-2/4-3: append-forest structure and complexity.

Verifies the 11-node example's shape, then measures the two
complexity claims of Section 4.3: constant-time appends and
O(log n) searches, as a sweep over forest sizes.
"""

import math

from repro.storage import AppendForest

from ._emit import emit, emit_table


def _build(n):
    forest = AppendForest()
    for key in range(1, n + 1):
        forest.append_key(key, key)
    return forest


def _hop_sweep():
    rows = []
    for n in (15, 63, 255, 1023, 4095, 16383):
        forest = _build(n)
        worst = mean = 0
        samples = range(1, n + 1, max(1, n // 257))
        total = 0
        for key in samples:
            forest.search(key)
            worst = max(worst, forest.last_search_hops)
            total += forest.last_search_hops
        mean = total / len(list(samples))
        bound = 2 * math.ceil(math.log2(n + 1)) + 1
        rows.append((n, f"{mean:.1f}", worst, bound,
                     len(forest.tree_heights())))
        assert worst <= bound
    return rows


def test_append_forest_structure(benchmark):
    forest = benchmark(_build, 11)
    assert forest.tree_heights() == [2, 1, 0]
    emit("")
    emit("Figure 4-3 — eleven-node append forest: trees of 7, 3 and 1 "
         f"nodes (heights {forest.tree_heights()})")


def test_append_forest_search_cost(benchmark):
    rows = benchmark.pedantic(_hop_sweep, rounds=1, iterations=1)
    emit_table(
        ["nodes", "mean hops", "worst hops", "2·log2(n)+1 bound", "trees"],
        rows,
        title="Section 4.3 — append-forest search cost is O(log n)",
    )


def test_append_throughput(benchmark):
    """Appends are constant-time: one page write each."""
    def append_10k():
        forest = _build(10_000)
        return forest.store.appends

    appends = benchmark(append_10k)
    assert appends == 10_000

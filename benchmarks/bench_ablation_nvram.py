"""A2 — ablation: the low-latency non-volatile buffer (Sections 4.1, 5.1).

With NVRAM, a force completes when the records reach battery-backed
memory; without it, every force waits out a disk write's rotational
latency.  The paper's footnote rules the volatile alternative out
entirely; the measured latency gap is the reason.
"""

from repro.harness import run_nvram_ablation

from ._emit import emit_table


def _run():
    return run_nvram_ablation(transactions=250)


def test_nvram_ablation(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit_table(
        ["configuration", "force latency (ms)", "disk utilization"],
        [
            ("with NVRAM buffer (paper design)",
             f"{result.with_nvram_force_ms:.2f}",
             f"{result.with_nvram_disk_util * 100:.1f}%"),
            ("without NVRAM (force = disk write)",
             f"{result.without_nvram_force_ms:.2f}",
             f"{result.without_nvram_disk_util * 100:.1f}%"),
        ],
        title="Ablation A2 — NVRAM buffering on/off (1 client, 2 servers)",
    )
    assert result.latency_ratio > 3.0
    assert result.with_nvram_force_ms < 10.0

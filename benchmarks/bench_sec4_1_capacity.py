"""E3 — the Section 4.1 capacity analysis table.

Every quantity the paper derives in prose, computed by the executable
model with the paper's parameters (50 clients × 10 TPS ET1, six
servers, N = 2, 1000/2000/2000-instruction costs, slow small-track
disks), printed next to the paper's claimed value.
"""

from repro.analysis import analyze

from ._emit import emit_table


def test_capacity_analysis_table(benchmark):
    report = benchmark(analyze)
    emit_table(
        ["quantity", "model", "paper"],
        report.rows(),
        title="Section 4.1 — log-server capacity analysis "
              "(50 clients x 10 TPS ET1, 6 servers, N=2)",
    )
    assert abs(report.unbatched_msgs_per_server_s - 2400) < 150
    assert abs(report.rpcs_per_server_s - 170) < 10
    assert report.comm_cpu_fraction < 0.10
    assert 0.40 < report.disk_utilization < 0.60
    assert 0.9e10 < report.bytes_per_server_day < 1.1e10

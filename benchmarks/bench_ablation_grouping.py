"""A1 — ablation: grouping factor (records per message).

Section 4.1's pivotal optimization is grouping log records into one
message per force.  The sweep shows message rate and CPU cost falling
with the grouping factor — the 2400 → 170 collapse the paper derives
for ET1's natural factor of seven.
"""

from repro.analysis import CapacityConfig, analyze, grouping_sweep

from ._emit import emit_table

FACTORS = (1, 2, 3, 5, 7, 14)


def test_grouping_sweep(benchmark):
    reports = benchmark(grouping_sweep, FACTORS)
    rows = [
        (r.config.effective_grouping,
         f"{r.packets_per_server_s:,.0f}",
         f"{r.rpcs_per_server_s:,.0f}",
         f"{r.comm_cpu_fraction * 100:.1f}%",
         f"{r.network_bits_per_s / 1e6:.1f}")
        for r in reports
    ]
    emit_table(
        ["records/message", "packets/server/s", "RPCs/server/s",
         "comm CPU", "net Mbit/s"],
        rows,
        title="Ablation A1 — grouping factor sweep (Section 4.1)",
    )
    by_factor = {r.config.effective_grouping: r for r in reports}
    # factor 1 reproduces the 2400-messages strawman
    assert abs(by_factor[1].packets_per_server_s - 2333) < 50
    # factor 7 (ET1's one force per txn) reproduces ~170 RPCs
    assert abs(by_factor[7].rpcs_per_server_s - 167) < 5
    # CPU falls monotonically with grouping
    fractions = [r.comm_cpu_fraction for r in reports]
    assert fractions == sorted(fractions, reverse=True)

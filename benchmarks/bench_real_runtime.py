"""Real-runtime throughput: ET1 load over a loopback process cluster.

Where ``bench_sec4_1_simulated.py`` measures the *model*, this measures
the *runtime*: M=3 real log-server processes (asyncio daemons over
fsync'd file stores), one asyncio client writing the Section 4.1 ET1
logging profile (seven 100-byte records per transaction, one forced
commit), N=2 copies per record.  Reports records/sec and ForceLog
latency percentiles, and emits ``BENCH_real_runtime.json`` for the
performance trajectory.

Loopback TCP on one machine is *not* the paper's 10 Mbit/s token-ring
LAN: there is no transmission delay to speak of, but every force pays
two real ``fsync`` calls on the same disk.  The figures are a floor
for the runtime's software overhead, not a reproduction of the paper's
capacity numbers — see EXPERIMENTS.md E12.

``REPRO_RT_SMOKE=1`` shortens the run for CI.  ``REPRO_RT_CHAOS=1``
adds a chaos phase: a second run in which one write-set server is
SIGSTOP'd a quarter of the way in — the gray failure of
EXPERIMENTS.md E13 — measuring how throughput and worst-case force
latency degrade while the client's keep-alive probes detect the hang
and switch to the spare.
"""

from __future__ import annotations

import asyncio
import os
import time

from repro.core.config import ReplicationConfig
from repro.rt.client import AsyncReplicatedLog
from repro.rt.cluster import LoopbackCluster
from repro.rt.loadgen import run_loadgen, run_loadgen_sync

from ._emit import emit, emit_json, emit_table

SMOKE = bool(os.environ.get("REPRO_RT_SMOKE"))
CHAOS = bool(os.environ.get("REPRO_RT_CHAOS"))
DURATION_S = 2.0 if SMOKE else 10.0
SERVERS = 3
COPIES = 2
DELTA = 8
KEEPALIVE_S = 0.3
KEEPALIVE_MISSES = 2
CLIENT_TIMEOUT_S = 4.0


def test_bench_real_runtime(tmp_path):
    start = time.perf_counter()
    with LoopbackCluster(tmp_path, num_servers=SERVERS) as cluster:
        config = ReplicationConfig(total_servers=SERVERS, copies=COPIES,
                                   delta=DELTA)
        report = run_loadgen_sync(
            cluster.addresses(), config,
            client_id="bench", duration_s=DURATION_S,
        )
    assert report.transactions > 0
    assert report.records_written == report.transactions * 7
    assert report.server_switches == 0  # nobody was killed

    emit_table(
        ["quantity", "value"],
        [
            ("transactions", report.transactions),
            ("records/sec", f"{report.records_per_sec:.0f}"),
            ("txns/sec", f"{report.txns_per_sec:.0f}"),
            ("force p50 (ms)", f"{report.force_p50_ms:.3f}"),
            ("force p99 (ms)", f"{report.force_p99_ms:.3f}"),
        ],
        title=(f"Real runtime — ET1 over {SERVERS} server processes "
               f"(N={COPIES}, loopback TCP, {DURATION_S:.0f}s)"),
    )
    emit("\nloopback != 10 Mbit/s LAN: software-overhead floor, "
         "not the paper's capacity figure")

    metrics = {
        "transactions": report.transactions,
        "records_per_sec": round(report.records_per_sec, 3),
        "txns_per_sec": round(report.txns_per_sec, 3),
        "force_p50_ms": round(report.force_p50_ms, 3),
        "force_p99_ms": round(report.force_p99_ms, 3),
    }
    if CHAOS:
        metrics["chaos"] = _run_chaos_phase(tmp_path)

    emit_json("real_runtime", {
        "params": {
            "servers": SERVERS,
            "copies": COPIES,
            "delta": DELTA,
            "duration_s": DURATION_S,
            "smoke": SMOKE,
            "chaos": CHAOS,
        },
        "metrics": metrics,
        "wall_seconds": time.perf_counter() - start,
    })


def _run_chaos_phase(tmp_path) -> dict:
    """ET1 load with one write-set server SIGSTOP'd mid-run.

    The victim hangs (sockets alive, replies gone) at 25% of the run;
    the keep-alive probes must demote it and the run must finish on
    the spare.  Truncation rounds every 50 transactions keep Section
    5.3 in the loop as well.
    """
    config = ReplicationConfig(total_servers=SERVERS, copies=COPIES,
                               delta=DELTA)
    chaos_root = os.path.join(tmp_path, "chaos")

    async def run(cluster: LoopbackCluster):
        log = AsyncReplicatedLog(
            "chaos", cluster.addresses(), config,
            timeout=CLIENT_TIMEOUT_S,
            keepalive_interval=KEEPALIVE_S,
            keepalive_misses=KEEPALIVE_MISSES,
        )
        await log.initialize()
        victim: dict[str, str] = {}

        async def saboteur():
            await asyncio.sleep(DURATION_S * 0.25)
            sid = log.write_set[0]
            victim["sid"] = sid
            cluster.suspend(sid)

        task = asyncio.create_task(saboteur())
        report = await run_loadgen(
            cluster.addresses(), config, duration_s=DURATION_S,
            log=log, truncate_every=50,
        )
        await task
        await log.close()
        return report, victim["sid"]

    with LoopbackCluster(chaos_root, num_servers=SERVERS) as cluster:
        report, victim = asyncio.run(run(cluster))
        cluster.resume(victim)

    assert report.transactions > 0
    assert report.server_switches >= 1
    worst_force_ms = 1e3 * max(report.force_latencies_s)

    emit_table(
        ["quantity", "value"],
        [
            ("transactions", report.transactions),
            ("txns/sec", f"{report.txns_per_sec:.0f}"),
            ("force p99 (ms)", f"{report.force_p99_ms:.3f}"),
            ("worst force (ms)", f"{worst_force_ms:.1f}"),
            ("server switches", report.server_switches),
            ("truncation rounds", report.truncations),
        ],
        title=(f"Chaos phase — {victim} SIGSTOP'd at 25% of a "
               f"{DURATION_S:.0f}s run"),
    )
    return {
        "victim": victim,
        "transactions": report.transactions,
        "txns_per_sec": round(report.txns_per_sec, 3),
        "force_p99_ms": round(report.force_p99_ms, 3),
        "worst_force_ms": round(worst_force_ms, 3),
        "server_switches": report.server_switches,
        "truncations": report.truncations,
    }

"""Real-runtime throughput: ET1 load over a loopback process cluster.

Where ``bench_sec4_1_simulated.py`` measures the *model*, this measures
the *runtime*: M=3 real log-server processes (asyncio daemons over
fsync'd file stores), one asyncio client writing the Section 4.1 ET1
logging profile (seven 100-byte records per transaction, one forced
commit), N=2 copies per record.  Reports records/sec and ForceLog
latency percentiles, and emits ``BENCH_real_runtime.json`` for the
performance trajectory.

Loopback TCP on one machine is *not* the paper's 10 Mbit/s token-ring
LAN: there is no transmission delay to speak of, but every force pays
two real ``fsync`` calls on the same disk.  The figures are a floor
for the runtime's software overhead, not a reproduction of the paper's
capacity numbers — see EXPERIMENTS.md E12.

``REPRO_RT_SMOKE=1`` shortens the run for CI.
"""

from __future__ import annotations

import os
import time

from repro.core.config import ReplicationConfig
from repro.rt.cluster import LoopbackCluster
from repro.rt.loadgen import run_loadgen_sync

from ._emit import emit, emit_json, emit_table

SMOKE = bool(os.environ.get("REPRO_RT_SMOKE"))
DURATION_S = 2.0 if SMOKE else 10.0
SERVERS = 3
COPIES = 2
DELTA = 8


def test_bench_real_runtime(tmp_path):
    start = time.perf_counter()
    with LoopbackCluster(tmp_path, num_servers=SERVERS) as cluster:
        config = ReplicationConfig(total_servers=SERVERS, copies=COPIES,
                                   delta=DELTA)
        report = run_loadgen_sync(
            cluster.addresses(), config,
            client_id="bench", duration_s=DURATION_S,
        )
    wall = time.perf_counter() - start

    assert report.transactions > 0
    assert report.records_written == report.transactions * 7
    assert report.server_switches == 0  # nobody was killed

    emit_table(
        ["quantity", "value"],
        [
            ("transactions", report.transactions),
            ("records/sec", f"{report.records_per_sec:.0f}"),
            ("txns/sec", f"{report.txns_per_sec:.0f}"),
            ("force p50 (ms)", f"{report.force_p50_ms:.3f}"),
            ("force p99 (ms)", f"{report.force_p99_ms:.3f}"),
        ],
        title=(f"Real runtime — ET1 over {SERVERS} server processes "
               f"(N={COPIES}, loopback TCP, {DURATION_S:.0f}s)"),
    )
    emit("\nloopback != 10 Mbit/s LAN: software-overhead floor, "
         "not the paper's capacity figure")

    emit_json("real_runtime", {
        "params": {
            "servers": SERVERS,
            "copies": COPIES,
            "delta": DELTA,
            "duration_s": DURATION_S,
            "smoke": SMOKE,
        },
        "metrics": {
            "transactions": report.transactions,
            "records_per_sec": round(report.records_per_sec, 3),
            "txns_per_sec": round(report.txns_per_sec, 3),
            "force_p50_ms": round(report.force_p50_ms, 3),
            "force_p99_ms": round(report.force_p99_ms, 3),
        },
        "wall_seconds": wall,
    })

"""Real-runtime throughput: ET1 load over a loopback process cluster.

Where ``bench_sec4_1_simulated.py`` measures the *model*, this measures
the *runtime*: M=3 real log-server processes (asyncio daemons over
fsync'd file stores) serving the Section 4.1 ET1 logging profile
(seven 100-byte records per transaction, one forced commit), N=2
copies per record.  Three phases:

1. **Light load** — one closed-loop client against the group-commit
   servers: ForceLog p50/p99 with no queueing, the latency the
   adaptive δ path must not regress.
2. **Throughput A/B** — ``REPRO_RT_CLIENTS`` concurrent clients,
   interleaved ``REPRO_RT_REPEATS`` times against (a) servers started
   with ``--no-group-commit`` (every ForceLog appends and fsyncs
   inline — the pre-group-commit hot path) and (b) the default shared
   one-fsync-per-group servers.  Interleaving absorbs machine drift;
   the medians and their ratio are the headline numbers.
3. **Chaos** (``REPRO_RT_CHAOS=1``) — one write-set server SIGSTOP'd
   mid-run; keep-alive probes must demote it (EXPERIMENTS.md E13).

Loopback TCP on one machine is *not* the paper's 10 Mbit/s token-ring
LAN: there is no transmission delay to speak of, but every force pays
real ``fsync`` calls on the same disk and every process shares the
same cores.  The figures are a floor for the runtime's software
overhead, not a reproduction of the paper's capacity numbers — see
EXPERIMENTS.md E12/E15.

Knobs (environment):

- ``REPRO_RT_SMOKE=1`` — short single-repeat run for CI;
- ``REPRO_RT_DURATION`` — seconds per measured phase run;
- ``REPRO_RT_CLIENTS`` — concurrent clients in the throughput phase;
- ``REPRO_RT_REPEATS`` — interleaved A/B repeats (median of each arm);
- ``REPRO_RT_MIN_SPEEDUP`` — fail if grouped/ungrouped median ratio
  falls below this (the CI perf gate; ratios survive machine changes);
- ``REPRO_RT_MIN_RECORDS_PER_SEC`` — optional absolute floor on the
  grouped median (reference-hardware guard, off by default because
  wall-clock throughput varies wildly across machines).
"""

from __future__ import annotations

import asyncio
import os
import statistics
import time

from repro.core.config import ReplicationConfig
from repro.rt.client import AsyncReplicatedLog
from repro.rt.cluster import LoopbackCluster
from repro.rt.loadgen import (
    MultiLoadReport,
    run_loadgen,
    run_loadgen_sync,
    run_multi_loadgen_sync,
)

from ._emit import emit, emit_json, emit_table

SMOKE = bool(os.environ.get("REPRO_RT_SMOKE"))
CHAOS = bool(os.environ.get("REPRO_RT_CHAOS"))
DURATION_S = float(os.environ.get("REPRO_RT_DURATION",
                                  "2" if SMOKE else "8"))
CLIENTS = int(os.environ.get("REPRO_RT_CLIENTS", "2" if SMOKE else "8"))
REPEATS = int(os.environ.get("REPRO_RT_REPEATS", "1" if SMOKE else "3"))
MIN_SPEEDUP = float(os.environ.get("REPRO_RT_MIN_SPEEDUP", "0"))
MIN_RECORDS_PER_SEC = float(
    os.environ.get("REPRO_RT_MIN_RECORDS_PER_SEC", "0"))
SERVERS = 3
COPIES = 2
DELTA = 8
KEEPALIVE_S = 0.3
KEEPALIVE_MISSES = 2
CLIENT_TIMEOUT_S = 4.0


def _config() -> ReplicationConfig:
    return ReplicationConfig(total_servers=SERVERS, copies=COPIES,
                             delta=DELTA)


def _throughput_run(root: str, *, group_commit: bool) -> MultiLoadReport:
    """One fresh cluster + ``CLIENTS`` closed-loop clients."""
    args = [] if group_commit else ["--no-group-commit"]
    with LoopbackCluster(root, num_servers=SERVERS,
                         server_args=args) as cluster:
        report = run_multi_loadgen_sync(
            cluster.addresses(), _config(),
            clients=CLIENTS, duration_s=DURATION_S,
        )
    assert report.transactions > 0
    assert report.records_written == report.transactions * 7
    return report


def test_bench_real_runtime(tmp_path):
    start = time.perf_counter()

    # Phase 1: light load — one client, group-commit servers.
    with LoopbackCluster(os.path.join(tmp_path, "light"),
                         num_servers=SERVERS) as cluster:
        light = run_loadgen_sync(
            cluster.addresses(), _config(),
            client_id="bench", duration_s=DURATION_S,
        )
    assert light.transactions > 0
    assert light.records_written == light.transactions * 7
    assert light.server_switches == 0  # nobody was killed

    # Phase 2: interleaved A/B — inline fsync vs shared group commit.
    before_rps: list[float] = []
    after_rps: list[float] = []
    for i in range(REPEATS):
        before = _throughput_run(
            os.path.join(tmp_path, f"before-{i}"), group_commit=False)
        after = _throughput_run(
            os.path.join(tmp_path, f"after-{i}"), group_commit=True)
        before_rps.append(before.records_per_sec)
        after_rps.append(after.records_per_sec)
        emit(f"repeat {i + 1}/{REPEATS}: inline "
             f"{before.records_per_sec:.0f} rec/s vs grouped "
             f"{after.records_per_sec:.0f} rec/s")
    before_median = statistics.median(before_rps)
    after_median = statistics.median(after_rps)
    speedup = after_median / before_median if before_median else 0.0

    emit_table(
        ["quantity", "value"],
        [
            ("light-load txns", light.transactions),
            ("light-load records/sec", f"{light.records_per_sec:.0f}"),
            ("light-load force p50 (ms)", f"{light.force_p50_ms:.3f}"),
            ("light-load force p99 (ms)", f"{light.force_p99_ms:.3f}"),
            (f"{CLIENTS}-client inline fsync rec/s (median)",
             f"{before_median:.0f}"),
            (f"{CLIENTS}-client group commit rec/s (median)",
             f"{after_median:.0f}"),
            ("group-commit speedup", f"{speedup:.2f}x"),
        ],
        title=(f"Real runtime — ET1 over {SERVERS} server processes "
               f"(N={COPIES}, loopback TCP, {DURATION_S:.0f}s/run, "
               f"{REPEATS} interleaved repeats)"),
    )
    emit("\nloopback != 10 Mbit/s LAN: software-overhead floor, "
         "not the paper's capacity figure")

    metrics = {
        "light_load": {
            "transactions": light.transactions,
            "records_per_sec": round(light.records_per_sec, 3),
            "txns_per_sec": round(light.txns_per_sec, 3),
            "force_p50_ms": round(light.force_p50_ms, 3),
            "force_p99_ms": round(light.force_p99_ms, 3),
        },
        "throughput": {
            "clients": CLIENTS,
            "inline_fsync_rps": [round(v, 3) for v in before_rps],
            "group_commit_rps": [round(v, 3) for v in after_rps],
            "inline_fsync_median_rps": round(before_median, 3),
            "group_commit_median_rps": round(after_median, 3),
            "speedup": round(speedup, 3),
        },
        # Back-compat headline for the performance trajectory.
        "records_per_sec": round(after_median, 3),
        "force_p50_ms": round(light.force_p50_ms, 3),
        "force_p99_ms": round(light.force_p99_ms, 3),
    }
    if CHAOS:
        metrics["chaos"] = _run_chaos_phase(tmp_path)

    emit_json("real_runtime", {
        "params": {
            "servers": SERVERS,
            "copies": COPIES,
            "delta": DELTA,
            "duration_s": DURATION_S,
            "clients": CLIENTS,
            "repeats": REPEATS,
            "smoke": SMOKE,
            "chaos": CHAOS,
        },
        "metrics": metrics,
        "wall_seconds": time.perf_counter() - start,
    })

    if MIN_SPEEDUP:
        assert speedup >= MIN_SPEEDUP, (
            f"group commit speedup {speedup:.2f}x below the "
            f"{MIN_SPEEDUP:.2f}x gate (inline {before_median:.0f} vs "
            f"grouped {after_median:.0f} rec/s)"
        )
    if MIN_RECORDS_PER_SEC:
        assert after_median >= MIN_RECORDS_PER_SEC, (
            f"grouped median {after_median:.0f} rec/s below the "
            f"{MIN_RECORDS_PER_SEC:.0f} rec/s floor"
        )


def _run_chaos_phase(tmp_path) -> dict:
    """ET1 load with one write-set server SIGSTOP'd mid-run.

    The victim hangs (sockets alive, replies gone) at 25% of the run;
    the keep-alive probes must demote it and the run must finish on
    the spare.  Truncation rounds every 50 transactions keep Section
    5.3 in the loop as well.
    """
    config = _config()
    chaos_root = os.path.join(tmp_path, "chaos")

    async def run(cluster: LoopbackCluster):
        log = AsyncReplicatedLog(
            "chaos", cluster.addresses(), config,
            timeout=CLIENT_TIMEOUT_S,
            keepalive_interval=KEEPALIVE_S,
            keepalive_misses=KEEPALIVE_MISSES,
        )
        await log.initialize()
        victim: dict[str, str] = {}

        async def saboteur():
            await asyncio.sleep(DURATION_S * 0.25)
            sid = log.write_set[0]
            victim["sid"] = sid
            cluster.suspend(sid)

        task = asyncio.create_task(saboteur())
        report = await run_loadgen(
            cluster.addresses(), config, duration_s=DURATION_S,
            log=log, truncate_every=50,
        )
        await task
        await log.close()
        return report, victim["sid"]

    with LoopbackCluster(chaos_root, num_servers=SERVERS) as cluster:
        report, victim = asyncio.run(run(cluster))
        cluster.resume(victim)

    assert report.transactions > 0
    assert report.server_switches >= 1
    worst_force_ms = 1e3 * max(report.force_latencies_s)

    emit_table(
        ["quantity", "value"],
        [
            ("transactions", report.transactions),
            ("txns/sec", f"{report.txns_per_sec:.0f}"),
            ("force p99 (ms)", f"{report.force_p99_ms:.3f}"),
            ("worst force (ms)", f"{worst_force_ms:.1f}"),
            ("server switches", report.server_switches),
            ("truncation rounds", report.truncations),
        ],
        title=(f"Chaos phase — {victim} SIGSTOP'd at 25% of a "
               f"{DURATION_S:.0f}s run"),
    )
    return {
        "victim": victim,
        "transactions": report.transactions,
        "txns_per_sec": round(report.txns_per_sec, 3),
        "force_p99_ms": round(report.force_p99_ms, 3),
        "worst_force_ms": round(worst_force_ms, 3),
        "server_switches": report.server_switches,
        "truncations": report.truncations,
    }

"""A4 — ablation: load assignment strategies (Section 5.4).

"If the only technique for detecting overloaded servers is … a short
timeout, then clients might change servers too frequently resulting in
very long interval lists."  The sticky client keeps one interval per
epoch; a client that rotates its write set every transaction fragments
its intervals across servers.
"""

from repro.harness import run_assignment_ablation

from ._emit import emit_table


def _run():
    return run_assignment_ablation(clients=10, servers=4, duration_s=2.5)


def test_assignment_ablation(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit_table(
        ["strategy", "mean force (ms)", "p95 force (ms)",
         "max interval-list length", "server switches"],
        [
            (r.strategy, f"{r.mean_force_ms:.2f}", f"{r.p95_force_ms:.2f}",
             r.max_interval_list_len, r.server_switches)
            for r in rows
        ],
        title="Ablation A4 — load assignment (10 clients, 4 servers)",
    )
    by_name = {r.strategy: r for r in rows}
    assert by_name["sticky"].max_interval_list_len == 1
    assert (by_name["rotate-often"].max_interval_list_len
            > by_name["sticky"].max_interval_list_len)

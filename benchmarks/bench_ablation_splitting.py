"""A3 — ablation: log-record splitting and undo caching (Section 5.2).

The same long-transaction mix runs with combined undo/redo records and
with split records + a client undo cache.  Splitting saves log volume
whenever transactions commit before their pages are cleaned, and makes
aborts local (zero log-server reads).
"""

from repro.harness import run_splitting_ablation

from ._emit import emit_table


def _run():
    return run_splitting_ablation(transactions=80)


def test_splitting_ablation(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit_table(
        ["mode", "bytes logged", "records", "undo records logged",
         "abort log reads", "local aborts"],
        [
            (r.mode, f"{r.bytes_logged:,}", r.records_logged,
             r.undo_records_logged, r.remote_abort_reads, r.local_aborts)
            for r in rows
        ],
        title="Ablation A3 — record splitting & undo caching "
              "(80 long transactions, 15% aborts)",
    )
    by_mode = {r.mode: r for r in rows}
    assert by_mode["split"].bytes_logged < by_mode["combined"].bytes_logged
    assert by_mode["split"].remote_abort_reads == 0
    assert by_mode["combined"].remote_abort_reads > 0

"""A6 — ablation: log space management strategies (Section 5.3).

"Database dumps could be taken daily, and the online log could simply
accumulate between dumps" is the paper's simple strategy; spooling to
offline storage and discarding below the media-recovery point are the
more sophisticated ones Section 5.3 sketches.  The rows compare online
storage footprint against the log-read cost of each recovery class —
exactly the cost/performance axes the paper says strategies "should be
compared in terms of".
"""

from repro.harness import run_space_management

from ._emit import emit_table


def _run():
    # 100 transactions, dumps every 30: a 10-transaction tail stays hot
    return run_space_management(transactions=100, dump_every=30)


def test_space_management(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit_table(
        ["strategy", "bytes logged", "online bytes", "offline bytes",
         "node-recovery reads", "media-recovery reads"],
        [
            (r.strategy, f"{r.total_bytes_logged:,}", f"{r.online_bytes:,}",
             f"{r.offline_bytes:,}", r.node_recovery_entries,
             r.media_recovery_entries)
            for r in rows
        ],
        title="Ablation A6 — space management strategies "
              "(100 txns, dump every 30)",
    )
    by_name = {r.strategy: r for r in rows}
    # accumulate keeps everything online
    assert by_name["accumulate"].online_bytes == \
        by_name["accumulate"].total_bytes_logged
    # spooling shrinks online storage without losing media recoverability
    assert by_name["spool"].online_bytes < by_name["accumulate"].online_bytes
    assert by_name["spool"].offline_bytes > 0
    # discarding shrinks online storage and keeps nothing offline
    assert by_name["dump+discard"].online_bytes < \
        by_name["accumulate"].online_bytes
    assert by_name["dump+discard"].offline_bytes == 0

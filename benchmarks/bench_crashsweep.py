"""Crash-point sweep as a trajectory benchmark (EXPERIMENTS.md E14).

Runs the deterministic storage-fault sweep of
:mod:`repro.harness.crashsweep` and reports its coverage — how many
distinct I/O crash points the scripted workload exposes, how many
(point, action) cases were executed, and how long the sweep takes.
The numbers matter as a trajectory: a storage-layer change that
silently *removes* crash points (an fsync dropped, a rename fused)
shows up here as a falling ``points_enumerated`` long before it shows
up as a durability bug.

``REPRO_RT_SMOKE=1`` runs the quick subset (first/last point per
site, three daemon points) for CI; the full sweep runs every
enumerated point.  Zero failures is an assertion, not a metric — a
failing case is a durability bug and must fail the build.
"""

from __future__ import annotations

import os
import time

from repro.harness.crashsweep import SweepConfig, run_crashsweep

from ._emit import emit, emit_json, emit_table

SMOKE = bool(os.environ.get("REPRO_RT_SMOKE"))


def test_bench_crashsweep(tmp_path):
    start = time.perf_counter()
    report = run_crashsweep(SweepConfig(
        root_dir=str(tmp_path), quick=SMOKE, daemon=True, client=True,
    ))
    wall = time.perf_counter() - start

    assert report.points_enumerated >= 30
    assert report.client_points_enumerated >= 15
    assert report.failures == [], [c.as_dict() for c in report.failures]

    emit_table(
        ["site", "points"],
        sorted(report.sites.items()),
        title=f"crash sweep coverage ({'quick' if SMOKE else 'full'})",
    )
    emit_table(
        ["client site", "points"],
        sorted(report.client_sites.items()),
        title="client protocol crash-point coverage",
    )
    emit(f"[bench] {len(report.cases)} in-process cases, "
         f"{len(report.daemon_cases)} daemon cases, "
         f"{len(report.client_cases)} client cases "
         f"({report.combined_cases_run} combined), {wall:.1f}s")
    emit_json("crashsweep", {
        "params": {"quick": SMOKE, "seed": report.seed},
        "metrics": {
            "points_enumerated": report.points_enumerated,
            "daemon_points_enumerated": report.daemon_points_enumerated,
            "client_points_enumerated": report.client_points_enumerated,
            "client_sites": len(report.client_sites),
            "sites": len(report.sites),
            "cases_run": report.cases_run,
            "daemon_cases_run": len(report.daemon_cases),
            "client_cases_run": len(report.client_cases),
            "combined_cases_run": report.combined_cases_run,
            "failures": len(report.failures),
            "sweep_seconds": round(report.duration_s, 3),
        },
        "wall_seconds": wall,
    })


def test_bench_netsweep(tmp_path):
    """Network-phase coverage (EXPERIMENTS.md E18).

    Frame points enumerated, (point, action) cases run against real
    daemons, §5.4 partition-switch cases, and a 20-case fixed-seed
    multi-fault fuzz pass.  The trajectory signal mirrors E14: a codec
    or client change that silently removes frame points (a message
    fused, an ack elided) shows up as falling ``net_points`` before it
    becomes a lost-ack bug.
    """
    start = time.perf_counter()
    report = run_crashsweep(SweepConfig(
        root_dir=str(tmp_path), quick=SMOKE, net=True, net_only=True,
        fuzz=20, seed=0,
    ))
    wall = time.perf_counter() - start

    assert report.net_points_enumerated >= 15
    assert len(report.net_cases) >= (10 if SMOKE else 40)
    assert report.net_partition_cases >= (1 if SMOKE else 3)
    assert len(report.fuzz_cases) == 20
    assert report.failures == [], [c.as_dict() for c in report.failures]

    emit_table(
        ["network site", "frames"],
        sorted(report.net_sites.items()),
        title=f"frame-point coverage ({'quick' if SMOKE else 'full'})",
    )
    emit(f"[bench] {report.net_points_enumerated} frame points, "
         f"{len(report.net_cases)} net cases "
         f"({report.net_partition_cases} partition-switch), "
         f"{len(report.fuzz_cases)} fuzz cases, {wall:.1f}s")
    emit_json("netsweep", {
        "params": {"quick": SMOKE, "seed": report.seed, "fuzz": 20},
        "metrics": {
            "net_points_enumerated": report.net_points_enumerated,
            "net_sites": len(report.net_sites),
            "net_cases_run": len(report.net_cases),
            "partition_cases_run": report.net_partition_cases,
            "fuzz_cases_run": len(report.fuzz_cases),
            "failures": len(report.failures),
            "sweep_seconds": round(report.duration_s, 3),
        },
        "wall_seconds": wall,
    })

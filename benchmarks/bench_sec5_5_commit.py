"""A8 — Section 5.5: common commit coordination vs 2PC.

"The number of messages and the number of forces of data to non
volatile storage required for commit could be reduced, compared with
frequently used distributed commit protocols … Optimizations are
applicable only when transactions modify data on more than one node.
… Still, if multi node transactions are frequent then common commit
coordination is an argument against replicated logging."

The table shows the crossover: local transactions favour replicated
logs outright; as participants grow, the shared coordinating server
needs fewer protocol messages and fewer durable forces — the paper's
honest caveat about its own design, made quantitative.
"""

from repro.analysis import crossover_table, two_phase_commit_cost, common_commit_cost

from ._emit import emit, emit_table


def test_commit_coordination_crossover(benchmark):
    rows_raw = benchmark(crossover_table, 6)
    rows = []
    for k, tpc, cc in rows_raw:
        rows.append((
            k,
            tpc.protocol_messages, tpc.log_forces,
            f"{tpc.latency_s * 1000:.2f}",
            cc.protocol_messages, cc.log_forces,
            f"{cc.latency_s * 1000:.2f}",
        ))
    emit_table(
        ["participants",
         "2PC msgs", "2PC forces", "2PC latency (ms)",
         "common msgs", "common forces", "common latency (ms)"],
        rows,
        title="Section 5.5 — commit cost: 2PC over replicated logs vs "
              "a common coordinating server",
    )
    emit("")
    emit("availability of the common server: 0.95 at p=0.05 for every "
         "operation — the Figure 3-4 curves are the other side of this "
         "trade-off.")
    # local transactions: replicated logging strictly cheaper
    local_tpc = two_phase_commit_cost(1)
    local_cc = common_commit_cost(1)
    assert local_tpc.log_forces < local_cc.log_forces
    assert local_tpc.protocol_messages == 0
    # multi-node transactions: the common server wins on forces
    multi_tpc = two_phase_commit_cost(4)
    multi_cc = common_commit_cost(4)
    assert multi_cc.log_forces < multi_tpc.log_forces
    assert multi_cc.latency_s < multi_tpc.latency_s

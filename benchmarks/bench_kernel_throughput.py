"""Kernel event throughput — the perf floor under every timing claim.

Every simulated experiment funnels through the discrete-event kernel,
so simulated-seconds-per-wall-second is bounded by how many process
resumptions the kernel can execute per second.  This benchmark drives
the three primitives the system models actually use — timeout yields,
channel ping-pong, and FIFO-resource contention — and reports a single
events/sec figure (an "event" is one process resumption, counted
analytically from the workload shape so the figure is comparable
across kernel rewrites), plus mailbox drain — the dominant server-side
pattern in the target-load experiment, where grouped packets land
several messages in a connection inbox and the handler loop drains
them back-to-back.

The module records the pre-optimization baseline measured on the seed
kernel (PR 1) so the speedup each later PR ships is visible in the
emitted ``BENCH_kernel_throughput.json`` without archaeology.
"""

from __future__ import annotations

import time

from repro.sim.kernel import Simulator
from repro.sim.resources import Channel, Resource

from ._emit import emit, emit_json

#: events/sec measured for this exact four-section workload on the
#: seed (PR 0) kernel, on the container this trajectory runs in —
#: median of warm repetitions interleaved with the optimized kernel on
#: the same machine to control for load drift.  Recorded before the
#: PR 1 kernel optimizations; later PRs compare against their own
#: predecessor via the BENCH json trajectory instead.
PRE_CHANGE_BASELINE_EVENTS_PER_SEC = 480_000.0

#: workload shape (kept stable so events/sec stays comparable)
TIMEOUT_PROCS = 200
TIMEOUT_ROUNDS = 400
PINGPONG_PAIRS = 50
PINGPONG_ROUNDS = 400
RESOURCE_PROCS = 100
RESOURCE_ROUNDS = 200
MAILBOX_CHANNELS = 50
MAILBOX_BURSTS = 50
MAILBOX_BURST = 64


def _timeout_storm() -> tuple[int, float]:
    """P processes each sleeping R times: P*R resumptions."""
    sim = Simulator()

    def worker(i: int):
        delay = 0.001 + i * 1e-6
        for _ in range(TIMEOUT_ROUNDS):
            yield sim.timeout(delay)

    for i in range(TIMEOUT_PROCS):
        sim.spawn(worker(i))
    start = time.perf_counter()
    sim.run()
    return TIMEOUT_PROCS * TIMEOUT_ROUNDS, time.perf_counter() - start


def _channel_pingpong() -> tuple[int, float]:
    """Pairs exchanging R messages each way: 2*R resumptions per pair."""
    sim = Simulator()

    def ping(tx: Channel, rx: Channel):
        for seq in range(PINGPONG_ROUNDS):
            tx.put(seq)
            yield rx.get()

    def pong(tx: Channel, rx: Channel):
        for _ in range(PINGPONG_ROUNDS):
            msg = yield rx.get()
            tx.put(msg)

    for _ in range(PINGPONG_PAIRS):
        a = Channel(sim, name="a")
        b = Channel(sim, name="b")
        sim.spawn(ping(a, b))
        sim.spawn(pong(b, a))
    start = time.perf_counter()
    sim.run()
    return PINGPONG_PAIRS * PINGPONG_ROUNDS * 2, time.perf_counter() - start


def _resource_contention() -> tuple[int, float]:
    """P processes contending for one FIFO server: 2 resumptions/use."""
    sim = Simulator()
    resource = Resource(sim, capacity=1, name="cpu")

    def worker():
        for _ in range(RESOURCE_ROUNDS):
            yield from resource.use(1e-5)

    for _ in range(RESOURCE_PROCS):
        sim.spawn(worker())
    start = time.perf_counter()
    sim.run()
    return RESOURCE_PROCS * RESOURCE_ROUNDS * 2, time.perf_counter() - start


def _mailbox_drain() -> tuple[int, float]:
    """Producers land bursts in mailboxes; consumers drain them.

    Models the log-server inbox: grouped packets deliver several
    messages at once, and the handler loop consumes them back-to-back,
    so most ``get`` calls find the channel non-empty.  Resumptions:
    one per consumed message plus one per producer burst timeout.
    """
    sim = Simulator()

    def producer(ch: Channel, i: int):
        for _ in range(MAILBOX_BURSTS):
            for seq in range(MAILBOX_BURST):
                ch.put(seq)
            yield sim.timeout(0.001 + i * 1e-6)

    def consumer(ch: Channel):
        for _ in range(MAILBOX_BURSTS * MAILBOX_BURST):
            yield ch.get()

    for i in range(MAILBOX_CHANNELS):
        ch = Channel(sim, name="mbox")
        sim.spawn(producer(ch, i))
        sim.spawn(consumer(ch))
    start = time.perf_counter()
    sim.run()
    events = MAILBOX_CHANNELS * MAILBOX_BURSTS * (MAILBOX_BURST + 1)
    return events, time.perf_counter() - start


def run_kernel_throughput() -> dict:
    """Run the four workloads and return the combined metrics dict."""
    sections = {}
    total_events = 0
    total_wall = 0.0
    for fn in (_timeout_storm, _channel_pingpong, _resource_contention,
               _mailbox_drain):
        events, wall = fn()
        sections[fn.__name__.lstrip("_")] = {
            "events": events,
            "wall_seconds": wall,
            "events_per_sec": events / wall,
        }
        total_events += events
        total_wall += wall
    events_per_sec = total_events / total_wall
    return {
        "sections": sections,
        "events": total_events,
        "wall_seconds": total_wall,
        "events_per_sec": events_per_sec,
        "baseline_events_per_sec": PRE_CHANGE_BASELINE_EVENTS_PER_SEC,
        "speedup_vs_seed": events_per_sec / PRE_CHANGE_BASELINE_EVENTS_PER_SEC,
    }


def test_kernel_throughput(benchmark=None):
    # warm-up pass so allocator and code caches settle, then the
    # measured pass (pytest-benchmark pedantic has per-round overhead
    # that swamps sub-second workloads, so timing is done inline).
    run_kernel_throughput()
    metrics = run_kernel_throughput()
    for name, section in metrics["sections"].items():
        emit(f"kernel {name}: {section['events_per_sec']:,.0f} events/sec "
             f"({section['events']} events in {section['wall_seconds']:.3f}s)")
    emit(f"kernel combined: {metrics['events_per_sec']:,.0f} events/sec "
         f"({metrics['speedup_vs_seed']:.2f}x the recorded seed baseline)")
    emit_json("kernel_throughput", {
        "params": {
            "timeout_procs": TIMEOUT_PROCS,
            "timeout_rounds": TIMEOUT_ROUNDS,
            "pingpong_pairs": PINGPONG_PAIRS,
            "pingpong_rounds": PINGPONG_ROUNDS,
            "resource_procs": RESOURCE_PROCS,
            "resource_rounds": RESOURCE_ROUNDS,
        },
        "metrics": {
            "events_per_sec": metrics["events_per_sec"],
            "baseline_events_per_sec": metrics["baseline_events_per_sec"],
            "speedup_vs_seed": metrics["speedup_vs_seed"],
            "sections": metrics["sections"],
        },
        "wall_seconds": metrics["wall_seconds"],
    })
    assert metrics["events"] > 0
    # Regression guard: the PR 1 kernel measures ~3.5x the recorded
    # seed baseline on an idle machine; 2x leaves headroom for noisy
    # shared CI runners while still catching a real regression.
    assert metrics["speedup_vs_seed"] >= 2.0, (
        f"kernel throughput regressed: {metrics['events_per_sec']:,.0f} "
        f"events/sec is under 2x the recorded seed baseline"
    )


if __name__ == "__main__":
    test_kernel_throughput()

"""E11 — §3.2 availability measured under crash/repair churn.

The full networked stack runs ET1 while every log server cycles
through exponential crash/repair schedules tuned to the paper's
``p = 0.05``; the exact time integrals of the availability predicates
are printed against the Figure 3-4 closed forms, together with what
the workload experienced (commits, failures, re-initializations,
write-set migrations).

Set ``REPRO_CHURN_SMOKE=1`` to run the short CI horizon; the default
horizon is long enough for the measured fractions to sit near the
closed forms (each server completes ~20 up/down cycles).
"""

import os

from repro.harness import ChurnConfig, run_availability_churn

from ._emit import emit, emit_json, emit_table

SMOKE = os.environ.get("REPRO_CHURN_SMOKE", "") == "1"
DURATION_S = 60.0 if SMOKE else 600.0


def _run():
    return run_availability_churn(ChurnConfig(
        duration_s=DURATION_S, mtbf_s=30.0, clients=3,
        tps_per_client=10.0, seed=0,
    ))


def test_availability_churn(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    cfg = result.config
    emit_table(
        ["quantity", "measured", "closed form"], result.rows(),
        title=(f"Section 3.2 under churn — M={cfg.servers}, N={cfg.copies}, "
               f"p={cfg.p}, {cfg.duration_s:.0f}s"
               + (" (smoke)" if SMOKE else "")),
    )
    emit(f"server crashes         : {result.server_crashes} "
         f"(mtbf {cfg.mtbf_s:.0f}s, mttr {result.mttr_s:.2f}s)")
    emit(f"transactions           : {result.committed_txns} committed, "
         f"{result.failed_txns} failed")
    emit(f"client initializations : {result.client_reinits}")
    emit(f"write-set migrations   : {result.server_switches}")
    emit(f"wall-clock             : {result.wall_seconds:.3f} s")
    emit_json("availability_churn", {
        "params": {
            "servers": cfg.servers,
            "copies": cfg.copies,
            "clients": cfg.clients,
            "p": cfg.p,
            "mtbf_s": cfg.mtbf_s,
            "duration_s": cfg.duration_s,
            "seed": cfg.seed,
            "smoke": SMOKE,
        },
        "metrics": {
            "write_available_measured": result.write_available_measured,
            "write_available_closed": result.write_available_closed,
            "init_available_measured": result.init_available_measured,
            "init_available_closed": result.init_available_closed,
            "read_available_measured": result.read_available_measured,
            "read_available_closed": result.read_available_closed,
            "server_crashes": result.server_crashes,
            "committed_txns": result.committed_txns,
            "failed_txns": result.failed_txns,
            "client_reinits": result.client_reinits,
            "server_switches": result.server_switches,
            "kernel_events": result.kernel_events,
            "sim_seconds": result.sim_seconds,
        },
        "wall_seconds": result.wall_seconds,
    })
    # the acceptance bound: measured WriteLog availability within one
    # percentage point of the closed form, at any horizon
    assert abs(result.write_available_measured
               - result.write_available_closed) <= 0.01

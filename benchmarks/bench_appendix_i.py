"""E8 — Appendix I: replicated increasing unique-identifier generators.

Measured NewID availability vs the appendix's closed form across
representative counts, plus NewID throughput and the monotonicity
guarantee under failure churn.
"""

import pytest

from repro.core.availability import generator_availability
from repro.core.epoch import make_generator
from repro.harness import run_generator_monte_carlo

from ._emit import emit, emit_table

P = 0.05
TRIALS = 1500


def _measure():
    rows = []
    for n_reps in (1, 3, 5, 7):
        mc = run_generator_monte_carlo(n_reps, P, trials=TRIALS, seed=n_reps)
        cf = generator_availability(n_reps, P)
        rows.append((n_reps, f"{mc.available:.4f}", f"{cf:.4f}",
                     "yes" if mc.monotone else "NO"))
        assert mc.available == pytest.approx(cf, abs=0.02)
        assert mc.monotone
    return rows


def test_generator_availability(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    emit_table(
        ["representatives", "measured", "closed form", "ids monotone"],
        rows,
        title=f"Appendix I — NewID availability, p = {P}, {TRIALS} trials",
    )


def test_new_id_throughput(benchmark):
    generator = make_generator(3)

    def burst():
        for _ in range(100):
            generator.new_id()

    benchmark(burst)
    emit("")
    emit("Appendix I — NewID issues strictly increasing integers via "
         "majority read + majority write (benchmarked above).")

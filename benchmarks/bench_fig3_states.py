"""E6 — Figures 3-1, 3-2 and 3-3: the worked three-server example.

Prints the three server tables after the partial write of record 10
(Figure 3-2) and after the crash-recovery procedure using Servers 1
and 2 (Figure 3-3), in the paper's LSN/Epoch/Present format, and
asserts cell-for-cell equality with the figures.
"""

from repro.harness import run_paper_figure_states

from ._emit import emit, emit_table

FIGURE_3_3 = {
    "Server 1": [
        (1, 1, "yes"), (2, 1, "yes"), (3, 1, "yes"),
        (3, 3, "yes"), (4, 3, "no"), (5, 3, "yes"),
        (6, 3, "yes"), (7, 3, "yes"), (8, 3, "yes"), (9, 3, "yes"),
        (9, 4, "yes"), (10, 4, "no"),
    ],
    "Server 2": [
        (1, 1, "yes"), (2, 1, "yes"), (3, 1, "yes"),
        (6, 3, "yes"), (7, 3, "yes"), (9, 4, "yes"), (10, 4, "no"),
    ],
    "Server 3": [
        (3, 3, "yes"), (4, 3, "no"), (5, 3, "yes"),
        (8, 3, "yes"), (9, 3, "yes"), (10, 3, "yes"),
    ],
}


def test_paper_figure_states(benchmark):
    states = benchmark(run_paper_figure_states)
    for figure, tables in (("Figure 3-2 (record 10 partially written)",
                            states.figure_3_2),
                           ("Figure 3-3 (after crash recovery via "
                            "Servers 1 and 2)", states.figure_3_3)):
        for server_id in ("Server 1", "Server 2", "Server 3"):
            emit_table(
                ["LSN", "Epoch", "Present"],
                tables[server_id],
                title=f"{figure} — {server_id}",
            )
    emit("")
    emit(f"replicated log contents: {states.replicated_log_contents} "
         "(paper: records 1,2 epoch 1; 3 epoch 3; 5-9 epoch 3)")
    assert states.figure_3_3 == FIGURE_3_3
    assert states.replicated_log_contents == [1, 2, 3, 5, 6, 7, 8, 9]

"""E1 — Figure 3-4: availability of replicated logs (closed form).

Regenerates the figure's two families of curves (WriteLog and client
initialization availability vs M, for N = 2 and N = 3 at p = 0.05)
plus the call-out numbers the text quotes: the 0.98 init availability
at M=5/N=2, ~0.999 for both operations at M=5/N=3, the 0.95
single-server reference, and the "up to M = 7" dual-copy bound.
"""

from repro.core.availability import (
    figure_3_4_series,
    init_availability,
    max_m_for_init_availability,
    read_availability,
    single_server_availability,
    write_availability,
)

from ._emit import emit, emit_table


def _figure_rows(p=0.05, max_m=8):
    rows = []
    series = figure_3_4_series(p=p, max_m=max_m)
    for n, points in sorted(series.items()):
        for pt in points:
            rows.append((
                pt.m, pt.n,
                f"{pt.write:.6f}", f"{pt.init:.6f}", f"{pt.read:.6f}",
            ))
    return rows


def test_figure_3_4_table(benchmark):
    rows = benchmark(_figure_rows)
    emit_table(
        ["M", "N", "WriteLog avail", "Client-init avail", "ReadLog avail"],
        rows,
        title="Figure 3-4 — availability of replicated logs (p = 0.05)",
    )
    # the paper's call-outs
    emit("")
    emit(f"single mirrored server reference : "
         f"{single_server_availability(0.05):.4f}   (paper: 0.95)")
    emit(f"M=5 N=2 client init              : "
         f"{init_availability(5, 2, 0.05):.4f}   (paper: about 0.98)")
    emit(f"M=5 N=3 write / init             : "
         f"{write_availability(5, 3, 0.05):.4f} / "
         f"{init_availability(5, 3, 0.05):.4f}   (paper: about 0.999)")
    emit(f"max M with dual-copy init >= 0.95: "
         f"{max_m_for_init_availability(2, 0.05, 0.95)}   (paper: M = 7)")
    # sanity gates on the shape
    assert write_availability(8, 2, 0.05) > 0.999999
    assert init_availability(5, 2, 0.05) > 0.97
    assert read_availability(2, 0.05) > 0.997

"""E9 — degraded-mode WriteLog service (Section 3.2's claim).

"Response to WriteLog operations may degrade, as fewer servers remain
to carry the load, but such failures will hardly ever render WriteLog
operations unavailable."

The same 12-client ET1 load runs with 0, 1, and 2 of 4 servers down
(clients initialized before the outage): throughput holds, force
latency barely moves, and the survivors' CPU load concentrates —
exactly the graceful degradation the paper promises.
"""

from repro.harness import run_degraded_mode

from ._emit import emit_table


def _run():
    return run_degraded_mode(duration_s=2.0)


def test_degraded_mode(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit_table(
        ["servers down", "servers up", "txns completed",
         "mean force (ms)", "p95 force (ms)", "survivor CPU"],
        [
            (r.servers_down, r.servers_up, r.completed_txns,
             f"{r.mean_force_ms:.2f}", f"{r.p95_force_ms:.2f}",
             f"{r.survivor_cpu_utilization * 100:.1f}%")
            for r in rows
        ],
        title="Section 3.2 — WriteLog service with 0/1/2 of 4 servers down",
    )
    baseline = rows[0]
    worst = rows[-1]
    # no outage renders WriteLog unavailable
    assert all(r.failed_drivers == 0 for r in rows)
    # throughput holds within a few percent
    assert worst.completed_txns > 0.9 * baseline.completed_txns
    # latency degrades gently, not catastrophically
    assert worst.mean_force_ms < 2 * baseline.mean_force_ms
    # the survivors really are carrying the concentrated load
    assert (worst.survivor_cpu_utilization
            > 1.5 * baseline.survivor_cpu_utilization)

#!/usr/bin/env python3
"""Operating a log service: dumps, space management, and repair.

The operator's day (Section 5.3): a client node runs transactions
against two log servers; dumps are taken periodically; the servers
spool cold log data to offline storage; then two disasters strike —
the client's data disk dies (media recovery from dump + log suffix),
and one log server's disk dies (repair by re-replication onto a
replacement).  Every step prints the books.

Run:  python examples/space_management.py
"""

import random

from repro.client import ClientNode, SimLogClient
from repro.client.dumps import DumpManager
from repro.core import (
    DirectServerPort,
    LogServerStore,
    MergedIntervalMap,
    ReplicationConfig,
    ServerIntervals,
    make_generator,
    repair_log_copy,
    under_replicated_lsns,
)
from repro.harness.tables import format_table
from repro.net import Lan
from repro.server import SimLogServer, SpaceManager
from repro.sim import MetricSet, Simulator


def main() -> None:
    sim = Simulator()
    lan = Lan(sim)
    metrics = MetricSet()
    servers = {sid: SimLogServer(sim, lan, sid, metrics=metrics)
               for sid in ("log-a", "log-b")}
    client = SimLogClient(
        sim, lan, "erp-node", ["log-a", "log-b"],
        ReplicationConfig(2, 2, delta=16), make_generator(3),
        metrics=metrics,
    )
    node = ClientNode.simulated(client)
    dumps = DumpManager(node.rm)
    managers = {sid: SpaceManager(s.stream) for sid, s in servers.items()}
    rng = random.Random(4)

    def workday():
        yield from client.initialize()
        # --- morning: 60 transactions, a noon dump, 60 more ----------
        for seq in range(60):
            key = f"order:{rng.randrange(30)}"
            yield from node.run_transaction([(key, f"rev{seq}")])
        dump = yield from dumps.take_dump()
        print(f"noon dump taken at LSN {dump.dump_lsn} "
              f"({dump.byte_size} bytes of database)")
        for seq in range(60, 120):
            key = f"order:{rng.randrange(30)}"
            yield from node.run_transaction([(key, f"rev{seq}")])

        # --- afternoon: space management pass -------------------------
        point = dumps.truncation_point()
        print(f"\ntruncation point: node recovery needs LSN >= "
              f"{point.node_recovery_lsn}, media recovery needs LSN >= "
              f"{point.media_recovery_lsn}")
        rows = []
        for sid, manager in managers.items():
            servers[sid].stream.seal_track()
            manager.declare("erp-node", point)
            report = manager.spool_to_offline()
            rows.append((sid, f"{report.online_bytes:,}",
                         f"{report.spooled_bytes:,}",
                         manager.online_entries_for_node_recovery("erp-node")))
        print(format_table(
            ["server", "online bytes", "spooled bytes",
             "node-recovery reads"], rows))

        # --- disaster one: the client's data disk dies -----------------
        print("\n*** the client node's data disk is destroyed ***")
        node.db.stable.clear()
        node.db.cache.clear()
        summary = yield from dumps.media_recovery()
        print(f"media recovery: reloaded the dump, replayed "
              f"{summary['records_scanned']} log records from LSN "
              f"{summary['replayed_from_lsn']}")
        sample = sorted(node.db.stable)[:3]
        print(f"recovered rows (sample): "
              f"{ {k: node.db.stable[k] for k in sample} }")

        # --- disaster two: log-a's disk dies ----------------------------
        print("\n*** log server 'log-a' loses its disk ***")
        replacement = LogServerStore("log-a-replacement")
        survivor_ports = {
            "log-b": DirectServerPort(servers["log-b"].store),
        }
        result = repair_log_copy(
            "erp-node", survivor_ports,
            DirectServerPort(replacement), copies=2)
        print(f"repair: {result.records_copied} records "
              f"({result.bytes_copied:,} bytes) re-replicated onto "
              f"{result.target_server}")
        merged = MergedIntervalMap.merge([
            ServerIntervals("log-b",
                            servers["log-b"].store
                            .client_state("erp-node").intervals()),
            ServerIntervals(replacement.server_id,
                            replacement.client_state("erp-node").intervals()),
        ])
        assert under_replicated_lsns(merged, 2) == []
        print("every record is back on two servers. done.")

    sim.spawn(workday())
    sim.run(until=600)


if __name__ == "__main__":
    main()

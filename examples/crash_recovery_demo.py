#!/usr/bin/env python3
"""Crash recovery walkthrough: the Figures 3-1 → 3-3 story, live.

Recreates the paper's worked example step by step — three log servers,
a client writing in two epochs, a partially written record 10, and the
restart procedure that masks it — printing each server's
LSN/Epoch/Present table after every step so the output can be read
against the paper's figures.  Then it runs a full transaction-level
recovery: a banking database crashes mid-transaction and restart
recovery rebuilds exactly the committed state.

Run:  python examples/crash_recovery_demo.py
"""

from repro.client import ClientNode, UndoCache
from repro.harness import run_paper_figure_states
from repro.harness.tables import format_table


def drain(gen):
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value


def show(title: str, tables: dict) -> None:
    print(f"\n=== {title} ===")
    for server_id in sorted(tables):
        print()
        print(format_table(["LSN", "Epoch", "Present"],
                           tables[server_id], title=server_id))


def part_one() -> None:
    print("PART 1 — the paper's three-server example")
    states = run_paper_figure_states()
    show("Figure 3-2: record 10 partially written (Server 3 only)",
         states.figure_3_2)
    show("Figure 3-3: after crash recovery using Servers 1 and 2",
         states.figure_3_3)
    print(f"\nreplicated log now contains records "
          f"{states.replicated_log_contents}")
    print("record 4: guard from the first restart (footnote 2);")
    print("record 10: masked by the epoch-4 guard — the partial write on "
          "Server 3 can never win a merge again.")


def part_two() -> None:
    print("\n\nPART 2 — transaction-level recovery over the replicated log")
    node, _stores = ClientNode.direct(m=3, n=2, undo_cache=UndoCache())

    drain(node.run_transaction([("alice", "100"), ("bob", "100")]))
    print("committed: alice=100, bob=100")

    # a transfer commits…
    drain(node.run_transaction([("alice", "70"), ("bob", "130")]))
    print("committed: alice=70, bob=130 (transfer of 30)")

    # …and another is in flight when the machine dies
    txn = drain(node.rm.begin())
    drain(node.rm.update(txn, "alice", "0"))
    drain(node.rm.update(txn, "bob", "200"))
    print("in flight (uncommitted): alice=0, bob=200")
    print("\n*** node crashes: page cache, undo cache, log buffers gone ***")
    node.crash()

    summary = drain(node.restart())
    print(f"\nrestart recovery: {summary['winners']} winners, "
          f"{summary['losers']} losers, "
          f"{summary['records_scanned']} log records scanned")
    print(f"alice = {node.db.stable['alice']}  (expected 70)")
    print(f"bob   = {node.db.stable['bob']}  (expected 130)")
    assert node.db.stable["alice"] == "70"
    assert node.db.stable["bob"] == "130"
    print("\nthe in-flight transfer vanished atomically; the committed "
          "one survived. done.")


if __name__ == "__main__":
    part_one()
    part_two()

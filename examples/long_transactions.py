#!/usr/bin/env python3
"""Long design transactions with record splitting (Sections 2 and 5.2).

"Workstation nodes might execute longer transactions on design or
office automation databases" — the other workload the paper targets.
This example runs the same stream of long transactions (dozens of
updates each, occasional aborts, periodic page cleaning) through two
otherwise-identical nodes:

* one logging combined undo/redo records, and
* one splitting records: redo to the log servers immediately, undo
  cached in client memory (Section 5.2),

then prints the log volume, undo traffic, and abort behaviour side by
side — the paper's predicted effects, measured.

Run:  python examples/long_transactions.py
"""

import random

from repro.client import ClientNode, UndoCache
from repro.harness.tables import format_table
from repro.workload import LongTxnParams


def drain(gen):
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value


def run_mix(node: ClientNode, seed: int, transactions: int,
            params: LongTxnParams) -> dict:
    rng = random.Random(seed)
    aborted = 0
    for seq in range(transactions):
        n_updates = rng.randint(params.updates_min, params.updates_max)
        will_abort = rng.random() < params.abort_probability
        abort_at = rng.randint(1, n_updates) if will_abort else -1
        txn = drain(node.rm.begin())
        rolled_back = False
        for i in range(n_updates):
            if i == abort_at:
                drain(node.rm.abort(txn))
                aborted += 1
                rolled_back = True
                break
            key = f"part:{rng.randrange(params.keys)}"
            drain(node.rm.update(txn, key, f"rev{txn.txid}.{i}"))
            # the buffer manager occasionally cleans a dirty page while
            # the transaction is still running (WAL path)
            if rng.random() < 0.03 and node.db.dirty_keys():
                drain(node.rm.clean_page(rng.choice(node.db.dirty_keys())))
        if not rolled_back:
            drain(node.rm.commit(txn))
        if (seq + 1) % 10 == 0:
            drain(node.rm.clean_all())
    return {
        "bytes": node.rm.bytes_logged,
        "records": node.rm.records_logged,
        "undo_logged": node.rm.undo_records_logged,
        "abort_reads": node.rm.remote_abort_reads,
        "local_aborts": node.rm.local_aborts,
        "aborted": aborted,
    }


def main() -> None:
    params = LongTxnParams(updates_min=15, updates_max=60,
                           abort_probability=0.12, keys=400)
    transactions = 50

    combined_node, _ = ClientNode.direct(m=3, n=2)
    split_node, _ = ClientNode.direct(m=3, n=2, undo_cache=UndoCache())
    combined = run_mix(combined_node, seed=7, transactions=transactions,
                       params=params)
    split = run_mix(split_node, seed=7, transactions=transactions,
                    params=params)

    print(f"{transactions} long transactions "
          f"({params.updates_min}-{params.updates_max} updates each, "
          f"{combined['aborted']} aborted)\n")
    print(format_table(
        ["", "combined records", "split + undo cache"],
        [
            ("bytes sent to log servers",
             f"{combined['bytes']:,}", f"{split['bytes']:,}"),
            ("log records written",
             combined["records"], split["records"]),
            ("undo components that reached the log",
             combined["undo_logged"], split["undo_logged"]),
            ("log-server reads during aborts",
             combined["abort_reads"], split["abort_reads"]),
            ("aborts served from client memory",
             combined["local_aborts"], split["local_aborts"]),
        ],
    ))
    saved = 100 * (1 - split["bytes"] / combined["bytes"])
    print(f"\nsplitting saved {saved:.1f}% of logged bytes on this mix and")
    print("made every abort local — with long-enough transactions and")
    print("cleaning pressure, undo components do reach the log (WAL), which")
    print("is exactly the dependence on transaction length Section 5.2 notes.")

    # both nodes end with identical committed state
    combined_node.crash()
    split_node.crash()
    drain(combined_node.restart())
    drain(split_node.restart())
    assert combined_node.db.stable == split_node.db.stable
    print("\nafter crash recovery, both nodes hold identical committed "
          "state. done.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: a replicated log in five minutes.

Builds a three-server replicated log (dual-copy, the paper's practical
choice), writes and reads records, crashes the client, and shows the
restart procedure masking a partially written record — the core
guarantee of Section 3.1.2.

Run:  python examples/quickstart.py
"""

from repro import quickstart_log
from repro.core import LSNNotWritten, RecordNotPresent


def main() -> None:
    # Three in-memory log servers, each record stored on two of them.
    log, stores = quickstart_log(m=3, n=2)
    print(f"replicated log ready: M=3 servers, N=2 copies, "
          f"epoch {log.current_epoch}, write set {log.write_set}")

    # -- WriteLog / ReadLog / EndOfLog ------------------------------------
    first = log.write(b"begin transaction 1")
    second = log.write(b"update account 42: 100 -> 85")
    third = log.write(b"commit transaction 1")
    print(f"\nwrote LSNs {first}..{third}; EndOfLog = {log.end_of_log()}")
    print(f"ReadLog({second}) -> {log.read(second).data.decode()!r}")

    # -- a server fails; the client switches and keeps going -------------
    victim = log.write_set[0]
    stores[victim].crash()
    fourth = log.write(b"written during the outage")
    print(f"\nserver {victim} down; WriteLog still works: LSN {fourth} "
          f"(write set is now {log.write_set})")
    stores[victim].restart()

    # -- client crash with a partially written record ---------------------
    partial_lsn = log.end_of_log() + 1
    stores[log.write_set[0]].server_write_log(
        log.client_id, partial_lsn, log.current_epoch, True,
        b"reached only ONE server before the crash")
    log.crash()
    log.initialize()  # gather interval lists, new epoch, copy + guards
    print(f"\nclient restarted: epoch is now {log.current_epoch}")
    try:
        record = log.read(partial_lsn)
        print(f"partial record survived (it was in the merged quorum): "
              f"{record.data!r}")
    except (RecordNotPresent, LSNNotWritten):
        print(f"partial record at LSN {partial_lsn} was masked by a "
              "not-present guard — it never happened, consistently")

    # -- everything acknowledged is still there ---------------------------
    for lsn in (first, second, third, fourth):
        assert log.read(lsn).data  # raises if anything was lost
    print("\nall acknowledged records intact after the crash. done.")

    # what one server's table looks like (the paper's figure format)
    sid = log.write_set[0]
    print(f"\n{sid} stores (LSN, Epoch, Present):")
    for row in stores[sid].dump_table(log.client_id):
        print(f"  {row}")


if __name__ == "__main__":
    main()

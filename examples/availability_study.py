#!/usr/bin/env python3
"""Availability study: choosing M and N for a deployment (Section 3.2).

Answers the operator's question the paper's Figure 3-4 exists for:
given per-server unavailability p, how many log servers (M) and copies
(N) do I need?  Prints the closed-form trade-off table, validates a
chosen configuration against the real algorithm by Monte-Carlo failure
injection, and shows the single-mirrored-server baseline both designs
beat.

Run:  python examples/availability_study.py [p]
"""

import sys

from repro.core.availability import (
    availability_point,
    generator_availability,
    init_availability,
    max_m_for_init_availability,
    single_server_availability,
)
from repro.harness import run_availability_monte_carlo
from repro.harness.tables import format_table


def main(p: float = 0.05) -> None:
    print(f"per-server unavailability p = {p}\n")

    rows = []
    for n in (2, 3):
        for m in range(n, 9):
            pt = availability_point(m, n, p)
            rows.append((m, n, f"{pt.write:.6f}", f"{pt.init:.6f}",
                         f"{pt.read:.6f}"))
    print(format_table(
        ["M", "N", "WriteLog", "client init", "ReadLog"],
        rows, title="Figure 3-4 — the M/N trade-off"))

    print(f"\nsingle mirrored-disk server: everything at "
          f"{single_server_availability(p):.4f}")
    best_m = max_m_for_init_availability(2, p, single_server_availability(p))
    print(f"dual-copy logs beat that for client init up to M = {best_m}")
    print(f"epoch generator with 3 representatives: "
          f"{generator_availability(3, p):.6f} "
          "(never the bottleneck, per the paper's footnote)")

    # validate one sensible configuration against the implementation
    m, n = 5, 2
    print(f"\nvalidating M={m}, N={n} against the real algorithm "
          "(1500 random outage trials)...")
    mc = run_availability_monte_carlo(m, n, p, trials=1500, seed=42)
    print(format_table(
        ["operation", "measured", "closed form"],
        [
            ("WriteLog", f"{mc.write_available:.4f}",
             f"{availability_point(m, n, p).write:.4f}"),
            ("client init", f"{mc.init_available:.4f}",
             f"{init_availability(m, n, p):.4f}"),
            ("ReadLog", f"{mc.read_available:.4f}",
             f"{availability_point(m, n, p).read:.4f}"),
        ]))
    print("\nrecommendation: N=2 with M=5-6 gives near-perfect write")
    print("availability while keeping restart availability above the")
    print("single-server baseline — the paper's own operating point.")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.05)

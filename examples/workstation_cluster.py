#!/usr/bin/env python3
"""A workstation cluster sharing log servers (Sections 2 and 4.1).

Eight workstation nodes run ET1 transactions against three shared log
servers over a simulated 10 Mbit/s LAN — the paper's motivating
deployment ("in a workstation environment, it would be wasteful to
dedicate duplexed disks and tapes to each workstation").  Mid-run, one
log server is powered off; the clients fail over without losing a
transaction, and the run ends with per-server load and latency
statistics.

Run:  python examples/workstation_cluster.py
"""

import random

from repro.client import ClientNode, SimLogClient
from repro.core import ReplicationConfig, make_generator
from repro.net import Lan
from repro.server import SimLogServer, StickyAssignment
from repro.sim import MetricSet, Simulator
from repro.workload import Et1Params, et1_transaction

CLIENTS = 8
SERVERS = 3
TXNS_PER_CLIENT = 12


def main() -> None:
    sim = Simulator()
    lan = Lan(sim)
    metrics = MetricSet()
    server_ids = [f"logsrv-{i}" for i in range(SERVERS)]
    servers = {sid: SimLogServer(sim, lan, sid, metrics=metrics)
               for sid in server_ids}
    generator = make_generator(3)  # replicated epoch generator

    params = Et1Params(branches=4, tellers_per_branch=5,
                       accounts_per_branch=100)
    nodes = []
    for i in range(CLIENTS):
        client = SimLogClient(
            sim, lan, f"ws-{i}", server_ids,
            ReplicationConfig(SERVERS, 2, delta=16), generator,
            metrics=metrics,
            assignment=StickyAssignment([
                server_ids[i % SERVERS], server_ids[(i + 1) % SERVERS],
            ]),
        )
        nodes.append(ClientNode.simulated(client))

    def run_workstation(index: int, node: ClientNode):
        rng = random.Random(1000 + index)
        yield from node.backend.client.initialize()
        for _ in range(TXNS_PER_CLIENT):
            yield sim.timeout(rng.expovariate(10.0))  # ~10 TPS think
            yield from et1_transaction(node, params, rng)

    def saboteur():
        yield sim.timeout(0.4)
        victim = server_ids[0]
        print(f"t={sim.now:.2f}s  power failure on {victim}")
        servers[victim].crash()
        yield sim.timeout(0.6)
        servers[victim].restart()
        print(f"t={sim.now:.2f}s  {victim} back up (NVRAM intact)")

    def main_proc():
        procs = [sim.spawn(run_workstation(i, node))
                 for i, node in enumerate(nodes)]
        sim.spawn(saboteur())
        yield sim.all_of(procs)

    sim.spawn(main_proc())
    sim.run(until=600)

    print(f"\nsimulated time: {sim.now:.2f}s")
    total_switches = sum(n.backend.client.server_switches for n in nodes)
    print(f"transactions completed: {CLIENTS * TXNS_PER_CLIENT} "
          f"(server switches during the outage: {total_switches})")

    print("\nper-server load:")
    for sid, server in servers.items():
        forces = metrics.counter(f"{sid}.force_msgs").count
        print(f"  {sid}: {forces} force messages, "
              f"{server.store.write_ops} records stored, "
              f"{server.disk.tracks_written} tracks written, "
              f"clients: {server.store.known_clients()}")

    print("\nper-workstation commit-force latency:")
    for i in range(CLIENTS):
        lat = metrics.latency(f"ws-{i}.force")
        print(f"  ws-{i}: mean {lat.mean() * 1000:.2f} ms, "
              f"p95 {lat.p95() * 1000:.2f} ms over {lat.count} forces")

    # audit: every node's database is consistent with its history
    for node in nodes:
        balances = [int(v) for k, v in node.db.cache.items()
                    if k.startswith("branch:")]
        assert node.rm.records_logged > 0
    print("\nall workstations consistent. done.")


if __name__ == "__main__":
    main()

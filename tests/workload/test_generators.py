"""Tests for the long-transaction and arrival generators."""

import random

import pytest

from repro.client import ClientNode, DirectLogBackend, UndoCache
from repro.sim import MetricSet, Simulator
from repro.workload import (
    LongTransactionDriver,
    LongTxnParams,
    PoissonArrivals,
    transactional_mix,
)

from ..conftest import build_direct_log, drain


class TestLongTransactionDriver:
    def run_driver(self, params, n=10, seed=0):
        sim = Simulator()
        log, _ = build_direct_log(delta=64)
        metrics = MetricSet()
        driver = LongTransactionDriver(
            sim, DirectLogBackend(log), random.Random(seed), metrics,
            params=params,
        )
        sim.spawn(driver.run(n))
        sim.run(until=600)
        return driver, log, metrics

    def test_completes_requested_transactions(self):
        params = LongTxnParams(updates_min=5, updates_max=10,
                               abort_probability=0.0)
        driver, log, _ = self.run_driver(params)
        assert driver.completed == 10
        assert driver.aborted == 0

    def test_aborts_happen_with_probability(self):
        params = LongTxnParams(updates_min=5, updates_max=10,
                               abort_probability=0.8)
        driver, _, _ = self.run_driver(params, n=20, seed=3)
        assert driver.aborted > 5

    def test_savepoints_force_periodically(self):
        params = LongTxnParams(updates_min=50, updates_max=50,
                               savepoint_every=10, abort_probability=0.0)
        _, log, _ = self.run_driver(params, n=2)
        # 50 updates + 5 savepoints + 1 commit per txn
        assert log.writes_performed == 2 * 56

    def test_latencies_split_by_outcome(self):
        params = LongTxnParams(updates_min=5, updates_max=5,
                               abort_probability=0.5)
        driver, _, metrics = self.run_driver(params, n=20, seed=1)
        assert metrics.latency("long.txn").count == driver.completed
        assert metrics.latency("long.abort").count == driver.aborted


class TestTransactionalMix:
    def test_runs_over_recovery_manager(self):
        node, _ = ClientNode.direct(delta=64, undo_cache=UndoCache())
        params = LongTxnParams(updates_min=3, updates_max=6,
                               abort_probability=0.0, keys=50)
        rng = random.Random(0)
        for _ in range(5):
            aborted = drain(transactional_mix(node, rng, params))
            assert not aborted
        assert node.rm.records_logged > 5 * 5

    def test_aborted_mix_rolls_back(self):
        node, _ = ClientNode.direct(delta=64, undo_cache=UndoCache())
        params = LongTxnParams(updates_min=3, updates_max=3,
                               abort_probability=1.0, keys=5)
        rng = random.Random(1)
        aborted = drain(transactional_mix(node, rng, params))
        assert aborted
        assert node.rm.local_aborts == 1


class TestPoissonArrivals:
    def test_spawns_jobs_at_rate(self):
        sim = Simulator()
        arrivals = PoissonArrivals(sim, rate_per_s=50,
                                   rng=random.Random(0))
        ran = []

        def job():
            ran.append(sim.now)
            yield sim.timeout(0)

        proc = sim.spawn(arrivals.run(lambda: job(), duration_s=2.0))
        sim.run(until=10)
        assert proc.value == arrivals.spawned == len(ran)
        assert 60 <= len(ran) <= 140  # ≈ 100 ± noise

    def test_invalid_rate(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            PoissonArrivals(sim, rate_per_s=0, rng=random.Random(0))

"""Tests for the ET1 workload generator."""

import random

import pytest

from repro.analysis import ET1_BYTES_PER_TXN, ET1_RECORDS_PER_TXN
from repro.client import ClientNode, DirectLogBackend
from repro.sim import MetricSet, Simulator
from repro.workload import Et1Driver, Et1Params, et1_log_pattern, et1_transaction

from ..conftest import build_direct_log, drain


class TestEt1LogPattern:
    def test_paper_shape(self):
        """7 records, 700 bytes, one force (the TABS profile)."""
        pattern = et1_log_pattern()
        assert len(pattern) == ET1_RECORDS_PER_TXN == 7
        assert sum(len(data) for data, _k, _f in pattern) == ET1_BYTES_PER_TXN
        forces = [forced for _d, _k, forced in pattern]
        assert forces == [False] * 6 + [True]

    def test_only_commit_forced(self):
        pattern = et1_log_pattern()
        assert pattern[-1][1] == "commit"
        assert all(kind == "update" for _d, kind, _f in pattern[:-1])

    def test_custom_shape(self):
        params = Et1Params(records_per_txn=3, bytes_per_record=50)
        pattern = et1_log_pattern(params)
        assert len(pattern) == 3
        assert all(len(data) == 50 for data, _k, _f in pattern)

    def test_sequence_distinguishes_txns(self):
        a = et1_log_pattern(txn_seq=1)
        b = et1_log_pattern(txn_seq=2)
        assert a[0][0] != b[0][0]


class TestEt1Driver:
    def test_driver_over_direct_backend(self):
        """ET1 against the core algorithm (timing-free)."""
        sim = Simulator()
        log, _ = build_direct_log(m=3, n=2, delta=16)
        backend = DirectLogBackend(log)
        metrics = MetricSet()
        driver = Et1Driver(sim, backend, tps=100,
                           rng=random.Random(0), metrics=metrics)

        def main():
            completed = yield from driver.run(duration_s=1.0)
            return completed

        proc = sim.spawn(main())
        sim.run(until=30)
        assert proc.value == driver.completed
        assert driver.completed > 50
        # each transaction wrote 7 records
        assert log.writes_performed == driver.completed * 7

    def test_latency_recorded(self):
        sim = Simulator()
        log, _ = build_direct_log(delta=16)
        metrics = MetricSet()
        driver = Et1Driver(sim, DirectLogBackend(log), tps=50,
                           rng=random.Random(1), metrics=metrics,
                           name="etx")
        sim.spawn(driver.run(2.0))
        sim.run(until=30)
        assert metrics.latency("etx.txn").count == driver.completed

    def test_invalid_tps(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Et1Driver(sim, None, tps=0, rng=random.Random(0),
                      metrics=MetricSet())


class TestEt1Transaction:
    def test_debit_credit_updates_all_rows(self):
        node, _ = ClientNode.direct(delta=16)
        params = Et1Params(branches=2, tellers_per_branch=2,
                           accounts_per_branch=10)
        rng = random.Random(0)
        txn = drain(et1_transaction(node, params, rng))
        # account, teller, branch, history
        assert txn.records_written == 6  # begin + 4 updates + commit
        keys = set(node.db.cache)
        assert any(k.startswith("account:") for k in keys)
        assert any(k.startswith("teller:") for k in keys)
        assert any(k.startswith("branch:") for k in keys)
        assert any(k.startswith("history:") for k in keys)

    def test_amounts_accumulate(self):
        node, _ = ClientNode.direct(delta=16)
        params = Et1Params(branches=1, tellers_per_branch=1,
                           accounts_per_branch=1)
        rng = random.Random(2)
        total = 0
        for _ in range(5):
            drain(et1_transaction(node, params, rng))
        branch_total = int(node.read("branch:0"))
        account_total = int(node.read("account:0:0"))
        assert branch_total == account_total  # same stream of amounts

    def test_survives_crash_recovery(self):
        node, _ = ClientNode.direct(delta=16)
        params = Et1Params(branches=1, tellers_per_branch=1,
                           accounts_per_branch=1)
        rng = random.Random(3)
        for _ in range(3):
            drain(et1_transaction(node, params, rng))
        value = node.read("account:0:0")
        node.crash()
        drain(node.restart())
        assert node.db.stable["account:0:0"] == value

"""Tests for the §3.2 availability-under-churn experiment."""

import pytest

from repro.harness import ChurnConfig, run_availability_churn


def _stats(result):
    """The deterministic fields a repeated run must reproduce exactly."""
    return {
        "write": result.write_available_measured,
        "init": result.init_available_measured,
        "read": result.read_available_measured,
        "crashes": result.server_crashes,
        "histogram": result.server_down_histogram,
        "committed": result.committed_txns,
        "failed": result.failed_txns,
        "reinits": result.client_reinits,
        "switches": result.server_switches,
        "kernel_events": result.kernel_events,
    }


SHORT = ChurnConfig(duration_s=30.0, clients=2, tps_per_client=5.0, seed=0)


class TestChurnExperiment:
    def test_short_run_is_sane(self):
        result = run_availability_churn(SHORT)
        assert result.server_crashes > 0
        assert result.committed_txns > 0
        for measured in (result.write_available_measured,
                         result.init_available_measured,
                         result.read_available_measured):
            assert 0.0 <= measured <= 1.0
        # the closed forms come straight from core.availability
        assert result.write_available_closed == pytest.approx(0.999998,
                                                              abs=1e-5)
        # the acceptance bound holds even at a 30 s horizon
        assert abs(result.write_available_measured
                   - result.write_available_closed) <= 0.01

    def test_histogram_integrates_the_horizon(self):
        result = run_availability_churn(SHORT)
        total = sum(result.server_down_histogram.values())
        assert total == pytest.approx(SHORT.duration_s, rel=1e-6)

    def test_deterministic_from_seed(self):
        a = run_availability_churn(SHORT)
        b = run_availability_churn(SHORT)
        assert _stats(a) == _stats(b)

    def test_seed_changes_the_run(self):
        a = run_availability_churn(SHORT)
        c = run_availability_churn(
            ChurnConfig(duration_s=30.0, clients=2, tps_per_client=5.0,
                        seed=1))
        assert _stats(a) != _stats(c)

    def test_link_and_generator_churn_compose(self):
        result = run_availability_churn(ChurnConfig(
            duration_s=30.0, clients=2, tps_per_client=5.0, seed=0,
            link_p=0.05, link_mtbf_s=5.0, link_loss=0.3,
            generator_p=0.1,
        ))
        assert result.link_crashes > 0
        assert result.generator_crashes > 0
        assert result.committed_txns > 0

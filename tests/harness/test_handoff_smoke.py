"""Two-OS-process ownership handoff against real ``repro serve`` daemons.

The CI smoke for the linearizable handoff: process A (clientworker
``--mode run``) streams transactions against a live fleet; mid-run,
process B (``--mode takeover``) seizes the stream — generator epoch
bump, durable fence on ≥ M−N+1 servers, Section 5.4 recovery.  The
check is the whole point of fencing:

* A observes the *terminal* refusal (journals ``FENCED``, exits with
  status 3) instead of retrying forever or, worse, committing;
* B's recovered log contains, byte-identical, every record A had
  acknowledged before the fence landed;
* the stream stays live for B (post-takeover writes are acked).
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

from repro.harness.clientworker import EXIT_FENCED
from repro.rt.cluster import LoopbackCluster

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _spawn(addresses, journal: Path, mode: str, txns: int):
    servers = ",".join(f"{sid}={host}:{port}"
                       for sid, (host, port) in sorted(addresses.items()))
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    return subprocess.Popen(
        [sys.executable, "-m", "repro.harness.clientworker",
         "--servers", servers, "--journal", str(journal),
         "--mode", mode, "--m", "3", "--n", "2", "--delta", "4",
         "--txns", str(txns), "--records-per-txn", "5"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def _wait_for_ack(journal: Path, timeout: float = 30.0) -> None:
    """Block until the writer has at least one acknowledged txn."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if journal.exists() and any(
                line.startswith("ACK ")
                for line in journal.read_text().splitlines()):
            return
        time.sleep(0.05)
    raise AssertionError("writer never acknowledged a transaction")


def test_second_process_takes_over_live_writer(tmp_path):
    a_journal = tmp_path / "writer.journal"
    b_journal = tmp_path / "taker.journal"
    with LoopbackCluster(tmp_path / "data", num_servers=3) as cluster:
        # Enough transactions that A is still mid-run when B lands;
        # the fence ends A long before it gets through them.
        writer = _spawn(cluster.addresses(), a_journal, "run", txns=400)
        taker = None
        try:
            _wait_for_ack(a_journal)
            taker = _spawn(cluster.addresses(), b_journal, "takeover",
                           txns=1)
            assert taker.wait(timeout=60.0) == 0
            assert writer.wait(timeout=60.0) == EXIT_FENCED
        finally:
            for proc in (writer, taker):
                if proc is not None and proc.poll() is None:
                    proc.kill()
                    proc.wait()

    a_lines = a_journal.read_text().splitlines()
    b_lines = b_journal.read_text().splitlines()

    # A stopped at the fence: refused terminally, nothing after.
    assert a_lines[-1] == "FENCED"
    assert "DONE" not in a_lines

    # B's takeover drew a strictly higher epoch than A ever held.
    a_epoch = max(int(l.split()[1]) for l in a_lines
                  if l.startswith("EPOCH "))
    takeover = [l for l in b_lines if l.startswith("TAKEOVER ")]
    assert takeover and int(takeover[0].split()[1]) > a_epoch
    assert "DONE" in b_lines

    # Everything A acknowledged survives the handoff byte-identical.
    acked_high = max((int(l.split()[1]) for l in a_lines
                      if l.startswith("ACK ")), default=0)
    assert acked_high > 0
    attempts = {int(l.split()[1]): l.split()[2]
                for l in a_lines if l.startswith("ATTEMPT ")}
    lsn_of = {int(l.split()[1]): int(l.split()[2])
              for l in a_lines if l.startswith("LSN ")}
    finals = {int(l.split()[1]): l.split()[2:]
              for l in b_lines if l.startswith("FINAL ")}
    checked = 0
    for seq, lsn in lsn_of.items():
        if lsn <= acked_high:
            assert finals.get(lsn) == ["1", attempts[seq]], (seq, lsn)
            checked += 1
    assert checked >= 5

    # And the stream is live for the new owner.
    assert any(l.startswith("POSTACK ") for l in b_lines)

"""Integration tests for the experiment runners (fast configurations)."""

import pytest

from repro.core.availability import (
    generator_availability,
    init_availability,
    read_availability,
    write_availability,
)
from repro.harness import (
    TargetLoadConfig,
    run_assignment_ablation,
    run_availability_monte_carlo,
    run_generator_monte_carlo,
    run_nvram_ablation,
    run_prototype_comparison,
    run_splitting_ablation,
    run_target_load,
)


class TestAvailabilityMonteCarlo:
    def test_matches_closed_forms(self):
        mc = run_availability_monte_carlo(5, 2, 0.05, trials=1500, seed=1)
        assert mc.write_available == pytest.approx(
            write_availability(5, 2, 0.05), abs=0.02)
        assert mc.init_available == pytest.approx(
            init_availability(5, 2, 0.05), abs=0.02)
        assert mc.read_available == pytest.approx(
            read_availability(2, 0.05), abs=0.02)

    def test_triple_copy(self):
        mc = run_availability_monte_carlo(5, 3, 0.05, trials=1000, seed=2)
        assert mc.init_available == pytest.approx(
            init_availability(5, 3, 0.05), abs=0.03)

    def test_deterministic_given_seed(self):
        a = run_availability_monte_carlo(4, 2, 0.1, trials=300, seed=7)
        b = run_availability_monte_carlo(4, 2, 0.1, trials=300, seed=7)
        assert a == b


class TestGeneratorMonteCarlo:
    def test_matches_appendix_formula(self):
        mc = run_generator_monte_carlo(3, 0.05, trials=1500, seed=0)
        assert mc.available == pytest.approx(
            generator_availability(3, 0.05), abs=0.02)

    def test_monotonicity_always_holds(self):
        for n in (1, 3, 5):
            mc = run_generator_monte_carlo(n, 0.2, trials=400, seed=n)
            assert mc.monotone


class TestTargetLoad:
    def test_small_configuration_matches_scaled_model(self):
        config = TargetLoadConfig(clients=10, servers=3, duration_s=2.0,
                                  tps_per_client=10)
        result = run_target_load(config)
        assert result.failed_drivers == 0
        assert result.completed_txns > 0
        # achieved TPS near the closed-loop bound
        assert result.achieved_tps > 60
        # grouped interface: roughly 1 force message per txn per copy
        expected_rpcs = result.achieved_tps * 2 / 3
        assert result.rpcs_per_server_s == pytest.approx(
            expected_rpcs, rel=0.25)
        # forces are NVRAM-fast (no rotational wait)
        assert result.force_mean_ms < 15
        assert result.messages_shed == 0

    def test_result_rows_render(self):
        config = TargetLoadConfig(clients=4, servers=2, duration_s=1.0)
        result = run_target_load(config)
        rows = result.rows()
        assert len(rows) == 7


class TestPrototypeComparison:
    def test_less_than_twice_local(self):
        """The Section 5.6 claim, with Accent-like IPC costs."""
        pc = run_prototype_comparison(transactions=100)
        assert 1.0 < pc.ratio < 2.0

    def test_efficient_protocols_beat_local(self):
        """With the paper's 1000-instr packets, remote wins outright —
        the whole point of Section 4's specialized protocols."""
        pc = run_prototype_comparison(transactions=50,
                                      accent_instructions_per_packet=1000,
                                      mips=4.0)
        assert pc.ratio < 1.0


class TestAblations:
    def test_nvram_ablation_shows_rotational_wall(self):
        result = run_nvram_ablation(transactions=100)
        assert result.latency_ratio > 3
        assert result.without_nvram_force_ms > 20

    def test_assignment_ablation_interval_fragmentation(self):
        rows = run_assignment_ablation(clients=6, servers=3,
                                       duration_s=1.5)
        by_name = {row.strategy: row for row in rows}
        assert by_name["sticky"].max_interval_list_len == 1
        assert by_name["rotate-often"].max_interval_list_len > 1
        assert by_name["rotate-often"].server_switches > 0

    def test_splitting_ablation_saves_bytes_and_reads(self):
        rows = run_splitting_ablation(transactions=30)
        by_mode = {row.mode: row for row in rows}
        assert by_mode["split"].bytes_logged < by_mode["combined"].bytes_logged
        assert by_mode["split"].remote_abort_reads == 0
        assert by_mode["combined"].remote_abort_reads > 0

"""Tests for the degraded-mode, load-sweep and multicast runners."""

import pytest

from repro.harness import (
    run_degraded_mode,
    run_load_sweep,
    run_multicast_ablation,
    run_space_management,
)


class TestDegradedMode:
    def test_writes_survive_half_the_fleet_down(self):
        rows = run_degraded_mode(clients=6, servers=4,
                                 down_counts=(0, 2), duration_s=1.0)
        baseline, degraded = rows
        assert degraded.failed_drivers == 0
        assert degraded.completed_txns > 0.8 * baseline.completed_txns
        assert (degraded.survivor_cpu_utilization
                > baseline.survivor_cpu_utilization)

    def test_rejects_configs_below_n(self):
        with pytest.raises(ValueError):
            run_degraded_mode(servers=3, down_counts=(2,))


class TestLoadSweep:
    def test_saturation_shape(self):
        rows = run_load_sweep(multipliers=(1.0, 6.0), clients=8,
                              duration_s=1.5)
        light, heavy = rows
        assert heavy.disk_utilization > light.disk_utilization
        assert heavy.achieved_tps > light.achieved_tps
        # heavy load cannot achieve its full offered rate
        assert heavy.achieved_tps < 8 * heavy.tps_per_client


class TestMulticast:
    def test_traffic_halves_for_two_copies(self):
        result = run_multicast_ablation(clients=6, forces_per_client=20)
        assert result.traffic_ratio == pytest.approx(0.5, abs=0.03)

    def test_three_copies_thirds(self):
        result = run_multicast_ablation(clients=6, copies=3,
                                        forces_per_client=20)
        assert result.traffic_ratio == pytest.approx(1 / 3, abs=0.03)


class TestSpaceManagementRunner:
    def test_strategies_ordered_by_online_bytes(self):
        rows = run_space_management(transactions=40, dump_every=20)
        by_name = {r.strategy: r for r in rows}
        assert (by_name["spool"].online_bytes
                <= by_name["accumulate"].online_bytes)
        assert (by_name["dump+discard"].online_bytes
                <= by_name["accumulate"].online_bytes)
        assert by_name["spool"].offline_bytes > 0


class TestRestartLatency:
    def test_restart_latency_grows_mildly_with_m(self):
        from repro.harness import run_restart_latency
        rows = run_restart_latency(m_values=(2, 6), records=60, restarts=2)
        small, large = rows
        assert large.mean_restart_ms > small.mean_restart_ms
        # per-server cost is a couple of milliseconds, not a multiple
        assert large.mean_restart_ms < 2 * small.mean_restart_ms
        assert small.intervals_merged >= 2

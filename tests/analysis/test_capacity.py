"""Tests for the Section 4.1 capacity model: the paper's numbers."""

import pytest

from repro.analysis import (
    CapacityConfig,
    CpuModel,
    analyze,
    grouping_sweep,
)
from repro.analysis.constants import (
    ET1_BYTES_PER_TXN,
    ET1_RECORDS_PER_TXN,
    TARGET_TPS,
)
from repro.storage import FAST_1987_DISK


class TestTargetConfiguration:
    def setup_method(self):
        self.report = analyze()

    def test_unbatched_msgs_about_2400(self):
        assert self.report.unbatched_msgs_per_server_s == pytest.approx(
            2400, rel=0.05)

    def test_grouped_rpcs_about_170(self):
        assert self.report.rpcs_per_server_s == pytest.approx(170, rel=0.05)

    def test_network_about_7_mbit(self):
        assert self.report.network_bits_per_s == pytest.approx(7e6, rel=0.2)

    def test_multicast_roughly_halves(self):
        ratio = (self.report.network_bits_per_s_multicast
                 / self.report.network_bits_per_s)
        assert 0.4 < ratio < 0.65

    def test_comm_cpu_below_ten_percent(self):
        assert self.report.comm_cpu_fraction < 0.10

    def test_logging_cpu_in_band(self):
        # paper: "ten to twenty percent"; with the 4-MIPS CPU the model
        # lands just under — accept 5–20 %.
        assert 0.05 < self.report.logging_cpu_fraction < 0.20

    def test_disk_utilization_close_to_half(self):
        assert self.report.disk_utilization == pytest.approx(0.50, abs=0.08)

    def test_ten_gb_per_day(self):
        assert self.report.bytes_per_server_day == pytest.approx(1e10, rel=0.05)

    def test_bytes_per_server_second(self):
        expected = TARGET_TPS * ET1_BYTES_PER_TXN * 2 / 6
        assert self.report.bytes_per_server_s == pytest.approx(expected)

    def test_rows_render(self):
        rows = self.report.rows()
        assert len(rows) == 8
        assert all(len(row) == 3 for row in rows)


class TestModelBehaviour:
    def test_fast_disk_lowers_utilization(self):
        slow = analyze()
        fast = analyze(CapacityConfig(disk=FAST_1987_DISK))
        assert fast.disk_utilization < slow.disk_utilization / 2

    def test_more_servers_spread_load(self):
        six = analyze()
        twelve = analyze(CapacityConfig(servers=12))
        assert twelve.rpcs_per_server_s == pytest.approx(
            six.rpcs_per_server_s / 2)

    def test_triple_copy_increases_everything(self):
        double = analyze()
        triple = analyze(CapacityConfig(copies=3))
        assert triple.rpcs_per_server_s > double.rpcs_per_server_s
        assert triple.network_bits_per_s > double.network_bits_per_s
        assert triple.bytes_per_server_day > double.bytes_per_server_day

    def test_grouping_sweep_monotone(self):
        reports = grouping_sweep(factors=(1, 2, 7))
        rpcs = [r.rpcs_per_server_s for r in reports]
        assert rpcs == sorted(rpcs, reverse=True)
        # grouping by 7 cuts messages by 7×
        assert rpcs[0] == pytest.approx(7 * rpcs[2], rel=0.01)

    def test_grouping_one_equals_unbatched(self):
        report = analyze(CapacityConfig(grouping_factor=1))
        assert report.packets_per_server_s == pytest.approx(
            report.unbatched_msgs_per_server_s)

    def test_force_latency_without_nvram_high(self):
        """Per-force disk writes can't sustain 170 forces/second."""
        report = analyze()
        assert report.force_latency_no_nvram_s > 1 / 170

    def test_effective_grouping_default(self):
        assert CapacityConfig().effective_grouping == ET1_RECORDS_PER_TXN


class TestCpuModel:
    def test_seconds(self):
        cpu = CpuModel(mips=2.0)
        assert cpu.seconds(2_000_000) == pytest.approx(1.0)

    def test_operation_times(self):
        cpu = CpuModel(mips=1.0)
        assert cpu.packet_time() == pytest.approx(0.001)
        assert cpu.message_time() == pytest.approx(0.002)
        assert cpu.track_write_time() == pytest.approx(0.002)

    def test_overrides(self):
        cpu = CpuModel(mips=1.0, instructions_per_packet=5000)
        assert cpu.packet_time() == pytest.approx(0.005)

    def test_invalid_mips(self):
        with pytest.raises(ValueError):
            CpuModel(mips=0)

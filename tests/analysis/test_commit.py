"""Tests for the Section 5.5 commit-coordination cost model."""

import pytest

from repro.analysis import (
    common_commit_cost,
    crossover_table,
    two_phase_commit_cost,
)


class TestTwoPhaseCommit:
    def test_local_transaction_is_one_force(self):
        cost = two_phase_commit_cost(1)
        assert cost.log_forces == 1
        assert cost.protocol_messages == 0

    def test_message_count_grows_4_per_subordinate(self):
        assert two_phase_commit_cost(2).protocol_messages == 4
        assert two_phase_commit_cost(5).protocol_messages == 16

    def test_forces_2k_minus_1(self):
        for k in range(1, 6):
            assert two_phase_commit_cost(k).log_forces == 2 * k - 1

    def test_logging_packets_scale_with_copies(self):
        n2 = two_phase_commit_cost(3, copies=2)
        n3 = two_phase_commit_cost(3, copies=3)
        assert n3.logging_packets == n2.logging_packets * 3 // 2

    def test_invalid_participants(self):
        with pytest.raises(ValueError):
            two_phase_commit_cost(0)


class TestCommonCommit:
    def test_forces_k_plus_1(self):
        for k in range(1, 6):
            assert common_commit_cost(k).log_forces == k + 1

    def test_latency_independent_of_participants(self):
        # prepares are parallel; the decision is one local force
        assert (common_commit_cost(2).latency_s
                == common_commit_cost(6).latency_s)

    def test_invalid_participants(self):
        with pytest.raises(ValueError):
            common_commit_cost(0)


class TestCrossover:
    def test_paper_tradeoff_shape(self):
        """Local: replicated wins.  Multi-node: common server wins.

        At k = 2 the force counts tie (3 each); the common server's
        advantage appears from k = 3 and grows with k.
        """
        rows = crossover_table(6)
        k1 = rows[0]
        assert k1[1].log_forces < k1[2].log_forces
        for k, tpc, cc in rows[1:]:
            assert cc.log_forces <= tpc.log_forces, k
            assert cc.latency_s < tpc.latency_s, k
        for k, tpc, cc in rows[2:]:
            assert cc.log_forces < tpc.log_forces, k

    def test_message_crossover(self):
        """Common commit's messages grow slower than 2PC's."""
        rows = crossover_table(8)
        tpc_slope = (rows[-1][1].protocol_messages
                     - rows[-2][1].protocol_messages)
        cc_slope = (rows[-1][2].protocol_messages
                    - rows[-2][2].protocol_messages)
        assert cc_slope < tpc_slope

    def test_table_length(self):
        assert len(crossover_table(4)) == 4

"""Tests for intervals and the highest-epoch merge rule."""

import pytest

from repro.core.intervals import (
    Interval,
    MergedIntervalMap,
    ServerIntervals,
    intervals_from_lsns,
)


class TestInterval:
    def test_contains(self):
        interval = Interval(epoch=1, lo=3, hi=7)
        assert 3 in interval and 7 in interval and 5 in interval
        assert 2 not in interval and 8 not in interval

    def test_length(self):
        assert len(Interval(1, 4, 4)) == 1
        assert len(Interval(1, 4, 9)) == 6

    def test_lo_must_not_exceed_hi(self):
        with pytest.raises(ValueError):
            Interval(1, 5, 4)

    def test_positive_bounds(self):
        with pytest.raises(ValueError):
            Interval(1, 0, 3)
        with pytest.raises(ValueError):
            Interval(0, 1, 3)

    def test_extend(self):
        assert Interval(2, 3, 5).extend() == Interval(2, 3, 6)

    def test_lsns_range(self):
        assert list(Interval(1, 2, 4).lsns()) == [2, 3, 4]

    def test_ordering_by_epoch_then_lo(self):
        assert Interval(1, 5, 9) < Interval(2, 1, 2)
        assert Interval(1, 1, 2) < Interval(1, 5, 9)


class TestIntervalsFromLsns:
    def test_empty(self):
        assert intervals_from_lsns([]) == ()

    def test_single_run(self):
        result = intervals_from_lsns([(1, 1), (2, 1), (3, 1)])
        assert result == (Interval(1, 1, 3),)

    def test_gap_splits(self):
        result = intervals_from_lsns([(1, 1), (3, 1)])
        assert result == (Interval(1, 1, 1), Interval(1, 3, 3))

    def test_epoch_change_splits(self):
        result = intervals_from_lsns([(1, 1), (2, 1), (3, 3), (4, 3)])
        assert result == (Interval(1, 1, 2), Interval(3, 3, 4))

    def test_same_lsn_two_epochs(self):
        # Server 1 of Figure 3-1 stores ⟨3,1⟩ and ⟨3,3⟩.
        result = intervals_from_lsns([(1, 1), (2, 1), (3, 1), (3, 3), (4, 3)])
        assert result == (Interval(1, 1, 3), Interval(3, 3, 4))

    def test_unordered_input(self):
        result = intervals_from_lsns([(3, 1), (1, 1), (2, 1)])
        assert result == (Interval(1, 1, 3),)

    def test_duplicates_collapse(self):
        result = intervals_from_lsns([(1, 1), (1, 1), (2, 1)])
        assert result == (Interval(1, 1, 2),)


class TestMergedIntervalMap:
    def test_merge_keeps_highest_epoch(self):
        # "only the entries with the highest epoch number for a
        # particular LSN are kept"
        reports = [
            ServerIntervals("s1", (Interval(1, 1, 3),)),
            ServerIntervals("s2", (Interval(3, 2, 4),)),
        ]
        merged = MergedIntervalMap.merge(reports)
        assert merged.epoch_of(1) == 1
        assert merged.epoch_of(2) == 3
        assert merged.epoch_of(3) == 3
        assert merged.servers_for(2) == ("s2",)
        assert merged.servers_for(1) == ("s1",)

    def test_equal_epoch_adds_read_site(self):
        reports = [
            ServerIntervals("s1", (Interval(1, 1, 2),)),
            ServerIntervals("s2", (Interval(1, 2, 2),)),
        ]
        merged = MergedIntervalMap.merge(reports)
        assert set(merged.servers_for(2)) == {"s1", "s2"}
        assert merged.servers_for(1) == ("s1",)

    def test_lower_epoch_ignored(self):
        merged = MergedIntervalMap()
        merged.note(1, 5, "s1")
        merged.note(1, 3, "s2")
        assert merged.epoch_of(1) == 5
        assert merged.servers_for(1) == ("s1",)

    def test_note_same_server_twice_no_duplicate(self):
        merged = MergedIntervalMap()
        merged.note(1, 1, "s1")
        merged.note(1, 1, "s1")
        assert merged.servers_for(1) == ("s1",)

    def test_high_lsn(self):
        merged = MergedIntervalMap()
        assert merged.high_lsn() is None
        merged.note(4, 1, "s1")
        merged.note(2, 1, "s1")
        assert merged.high_lsn() == 4

    def test_highest_epoch(self):
        merged = MergedIntervalMap()
        assert merged.highest_epoch() == 0
        merged.note(1, 2, "s1")
        merged.note(2, 7, "s1")
        assert merged.highest_epoch() == 7

    def test_gaps(self):
        merged = MergedIntervalMap()
        merged.note(1, 1, "s1")
        merged.note(4, 1, "s1")
        assert merged.gaps() == [2, 3]

    def test_no_gaps_when_contiguous(self):
        merged = MergedIntervalMap()
        for lsn in range(1, 5):
            merged.note(lsn, 1, "s1")
        assert merged.gaps() == []

    def test_forget_server(self):
        merged = MergedIntervalMap()
        merged.note(1, 1, "s1")
        merged.note(1, 1, "s2")
        merged.forget_server("s1")
        assert merged.servers_for(1) == ("s2",)
        merged.forget_server("s2")
        assert merged.servers_for(1) == ()
        assert 1 in merged  # entry survives, only read sites are gone

    def test_lsns_sorted(self):
        merged = MergedIntervalMap()
        for lsn in (5, 1, 3):
            merged.note(lsn, 1, "s1")
        assert merged.lsns() == [1, 3, 5]

    def test_figure_3_1_merge(self):
        """The replicated log of Figure 3-1: records {1,2,3,5..9}."""
        s1 = ServerIntervals("s1", (Interval(1, 1, 3), Interval(3, 3, 9)))
        s2 = ServerIntervals("s2", (Interval(1, 1, 3), Interval(3, 6, 7)))
        s3 = ServerIntervals("s3", (Interval(3, 3, 5), Interval(3, 8, 9)))
        merged = MergedIntervalMap.merge([s1, s2, s3])
        assert merged.high_lsn() == 9
        # record 4 is stored (not-present flag lives on the records,
        # not in the interval map), records 1..9 all have entries
        assert merged.lsns() == list(range(1, 10))
        # epoch 3 wins for LSN 3
        assert merged.epoch_of(3) == 3
        assert set(merged.servers_for(3)) == {"s1", "s3"}

"""Tests for intervals and the highest-epoch merge rule."""

import pytest

from repro.core.intervals import (
    Interval,
    MergedIntervalMap,
    ServerIntervals,
    intervals_from_lsns,
)


class TestInterval:
    def test_contains(self):
        interval = Interval(epoch=1, lo=3, hi=7)
        assert 3 in interval and 7 in interval and 5 in interval
        assert 2 not in interval and 8 not in interval

    def test_length(self):
        assert len(Interval(1, 4, 4)) == 1
        assert len(Interval(1, 4, 9)) == 6

    def test_lo_must_not_exceed_hi(self):
        with pytest.raises(ValueError):
            Interval(1, 5, 4)

    def test_positive_bounds(self):
        with pytest.raises(ValueError):
            Interval(1, 0, 3)
        with pytest.raises(ValueError):
            Interval(0, 1, 3)

    def test_extend(self):
        assert Interval(2, 3, 5).extend() == Interval(2, 3, 6)

    def test_lsns_range(self):
        assert list(Interval(1, 2, 4).lsns()) == [2, 3, 4]

    def test_ordering_by_epoch_then_lo(self):
        assert Interval(1, 5, 9) < Interval(2, 1, 2)
        assert Interval(1, 1, 2) < Interval(1, 5, 9)


class TestIntervalsFromLsns:
    def test_empty(self):
        assert intervals_from_lsns([]) == ()

    def test_single_run(self):
        result = intervals_from_lsns([(1, 1), (2, 1), (3, 1)])
        assert result == (Interval(1, 1, 3),)

    def test_gap_splits(self):
        result = intervals_from_lsns([(1, 1), (3, 1)])
        assert result == (Interval(1, 1, 1), Interval(1, 3, 3))

    def test_epoch_change_splits(self):
        result = intervals_from_lsns([(1, 1), (2, 1), (3, 3), (4, 3)])
        assert result == (Interval(1, 1, 2), Interval(3, 3, 4))

    def test_same_lsn_two_epochs(self):
        # Server 1 of Figure 3-1 stores ⟨3,1⟩ and ⟨3,3⟩.
        result = intervals_from_lsns([(1, 1), (2, 1), (3, 1), (3, 3), (4, 3)])
        assert result == (Interval(1, 1, 3), Interval(3, 3, 4))

    def test_unordered_input(self):
        result = intervals_from_lsns([(3, 1), (1, 1), (2, 1)])
        assert result == (Interval(1, 1, 3),)

    def test_duplicates_collapse(self):
        result = intervals_from_lsns([(1, 1), (1, 1), (2, 1)])
        assert result == (Interval(1, 1, 2),)


class TestMergedIntervalMap:
    def test_merge_keeps_highest_epoch(self):
        # "only the entries with the highest epoch number for a
        # particular LSN are kept"
        reports = [
            ServerIntervals("s1", (Interval(1, 1, 3),)),
            ServerIntervals("s2", (Interval(3, 2, 4),)),
        ]
        merged = MergedIntervalMap.merge(reports)
        assert merged.epoch_of(1) == 1
        assert merged.epoch_of(2) == 3
        assert merged.epoch_of(3) == 3
        assert merged.servers_for(2) == ("s2",)
        assert merged.servers_for(1) == ("s1",)

    def test_equal_epoch_adds_read_site(self):
        reports = [
            ServerIntervals("s1", (Interval(1, 1, 2),)),
            ServerIntervals("s2", (Interval(1, 2, 2),)),
        ]
        merged = MergedIntervalMap.merge(reports)
        assert set(merged.servers_for(2)) == {"s1", "s2"}
        assert merged.servers_for(1) == ("s1",)

    def test_lower_epoch_ignored(self):
        merged = MergedIntervalMap()
        merged.note(1, 5, "s1")
        merged.note(1, 3, "s2")
        assert merged.epoch_of(1) == 5
        assert merged.servers_for(1) == ("s1",)

    def test_note_same_server_twice_no_duplicate(self):
        merged = MergedIntervalMap()
        merged.note(1, 1, "s1")
        merged.note(1, 1, "s1")
        assert merged.servers_for(1) == ("s1",)

    def test_high_lsn(self):
        merged = MergedIntervalMap()
        assert merged.high_lsn() is None
        merged.note(4, 1, "s1")
        merged.note(2, 1, "s1")
        assert merged.high_lsn() == 4

    def test_highest_epoch(self):
        merged = MergedIntervalMap()
        assert merged.highest_epoch() == 0
        merged.note(1, 2, "s1")
        merged.note(2, 7, "s1")
        assert merged.highest_epoch() == 7

    def test_gaps(self):
        merged = MergedIntervalMap()
        merged.note(1, 1, "s1")
        merged.note(4, 1, "s1")
        assert merged.gaps() == [2, 3]

    def test_no_gaps_when_contiguous(self):
        merged = MergedIntervalMap()
        for lsn in range(1, 5):
            merged.note(lsn, 1, "s1")
        assert merged.gaps() == []

    def test_forget_server(self):
        merged = MergedIntervalMap()
        merged.note(1, 1, "s1")
        merged.note(1, 1, "s2")
        merged.forget_server("s1")
        assert merged.servers_for(1) == ("s2",)
        merged.forget_server("s2")
        assert merged.servers_for(1) == ()
        assert 1 in merged  # entry survives, only read sites are gone

    def test_lsns_sorted(self):
        merged = MergedIntervalMap()
        for lsn in (5, 1, 3):
            merged.note(lsn, 1, "s1")
        assert merged.lsns() == [1, 3, 5]

    def test_figure_3_1_merge(self):
        """The replicated log of Figure 3-1: records {1,2,3,5..9}."""
        s1 = ServerIntervals("s1", (Interval(1, 1, 3), Interval(3, 3, 9)))
        s2 = ServerIntervals("s2", (Interval(1, 1, 3), Interval(3, 6, 7)))
        s3 = ServerIntervals("s3", (Interval(3, 3, 5), Interval(3, 8, 9)))
        merged = MergedIntervalMap.merge([s1, s2, s3])
        assert merged.high_lsn() == 9
        # record 4 is stored (not-present flag lives on the records,
        # not in the interval map), records 1..9 all have entries
        assert merged.lsns() == list(range(1, 10))
        # epoch 3 wins for LSN 3
        assert merged.epoch_of(3) == 3
        assert set(merged.servers_for(3)) == {"s1", "s3"}


class _NaiveMergedMap:
    """Per-LSN reference model of the merge rule.

    Applies the Section 3.1.2 rule one LSN at a time — higher epoch
    replaces, equal epoch adds a read site, lower epoch is ignored —
    with none of the segment arithmetic the real map uses.
    """

    def __init__(self):
        self.entries = {}  # lsn -> [epoch, [servers in arrival order]]

    def note(self, lsn, epoch, server_id):
        cur = self.entries.get(lsn)
        if cur is None or epoch > cur[0]:
            self.entries[lsn] = [epoch, [server_id]]
        elif epoch == cur[0] and server_id not in cur[1]:
            cur[1].append(server_id)

    def note_range(self, lo, hi, epoch, server_id):
        for lsn in range(lo, hi + 1):
            self.note(lsn, epoch, server_id)

    def forget_server(self, server_id):
        for entry in self.entries.values():
            if server_id in entry[1]:
                entry[1].remove(server_id)

    def epoch_of(self, lsn):
        cur = self.entries.get(lsn)
        return cur[0] if cur is not None else None

    def servers_for(self, lsn):
        cur = self.entries.get(lsn)
        return tuple(cur[1]) if cur is not None else ()

    def lsns(self):
        return sorted(self.entries)

    def high_lsn(self):
        return max(self.entries) if self.entries else None

    def highest_epoch(self):
        if not self.entries:
            return 0
        return max(e[0] for e in self.entries.values())

    def gaps(self):
        if not self.entries:
            return []
        return [l for l in range(1, max(self.entries))
                if l not in self.entries]


class TestMergePropertyBased:
    """The segment map ≡ the naive per-LSN model on random histories.

    One case = a random initialization merge (random interval lists
    from a few servers) followed by a random mix of ``note`` and
    ``forget_server`` operations, applied to both implementations and
    compared on every query the client algorithm uses.  A thousand
    cases keep the boundary arithmetic of ``_note_range`` (splits,
    overlaps, gap fills, coalescing across the splice window) honest.
    """

    CASES = 1000
    MAX_LSN = 36

    def _check_equal(self, merged, naive):
        assert merged.high_lsn() == naive.high_lsn()
        assert merged.highest_epoch() == naive.highest_epoch()
        assert merged.lsns() == naive.lsns()
        assert merged.gaps() == naive.gaps()
        assert len(merged) == len(naive.entries)
        for lsn in range(0, self.MAX_LSN + 4):
            assert (lsn in merged) == (lsn in naive.entries)
            assert merged.epoch_of(lsn) == naive.epoch_of(lsn)
            assert merged.servers_for(lsn) == naive.servers_for(lsn)
            entry = merged.entry(lsn)
            if lsn in naive.entries:
                assert entry is not None and entry.lsn == lsn
                assert entry.epoch == naive.epoch_of(lsn)
                assert entry.servers == naive.servers_for(lsn)
            else:
                assert entry is None
        # structural invariants: disjoint, sorted segments
        segs = merged.segments()
        for (lo, hi, epoch, servers) in segs:
            assert lo <= hi
            assert epoch >= 1
        for a, b in zip(segs, segs[1:]):
            assert a[1] < b[0]

    def test_random_histories_match_naive_reference(self):
        import random as _random

        rng = _random.Random(0x5EC41)
        servers = ["s1", "s2", "s3", "s4"]
        for _case in range(self.CASES):
            # -- random initialization merge --------------------------
            reports = []
            for server_id in servers[: rng.randint(1, 4)]:
                intervals = []
                for _ in range(rng.randint(0, 4)):
                    lo = rng.randint(1, self.MAX_LSN)
                    hi = min(self.MAX_LSN, lo + rng.randint(0, 9))
                    intervals.append(Interval(rng.randint(1, 4), lo, hi))
                reports.append(ServerIntervals(server_id, tuple(intervals)))
            merged = MergedIntervalMap.merge(reports)
            naive = _NaiveMergedMap()
            for report in reports:
                for interval in report:
                    naive.note_range(interval.lo, interval.hi,
                                     interval.epoch, report.server_id)
            # -- random incremental history ---------------------------
            for _op in range(rng.randint(0, 25)):
                roll = rng.random()
                if roll < 0.08:
                    victim = rng.choice(servers)
                    merged.forget_server(victim)
                    naive.forget_server(victim)
                else:
                    lsn = rng.randint(1, self.MAX_LSN)
                    epoch = rng.randint(1, 4)
                    server_id = rng.choice(servers)
                    merged.note(lsn, epoch, server_id)
                    naive.note(lsn, epoch, server_id)
            self._check_equal(merged, naive)

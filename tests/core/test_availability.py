"""Tests for the Section 3.2 / Appendix I closed forms."""

import math

import pytest

from repro.core.availability import (
    availability_point,
    figure_3_4_series,
    generator_availability,
    init_availability,
    max_m_for_init_availability,
    read_availability,
    single_server_availability,
    write_availability,
)


class TestWriteAvailability:
    def test_m_equals_n_is_all_up(self):
        # every server must be up: (1-p)^M
        assert write_availability(2, 2, 0.05) == pytest.approx(0.95**2)
        assert write_availability(3, 3, 0.1) == pytest.approx(0.9**3)

    def test_monotone_in_m(self):
        # "As log servers are added, WriteLog availability approaches
        # unity very quickly."
        values = [write_availability(m, 2, 0.05) for m in range(2, 9)]
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert values[-1] > 0.9999999

    def test_paper_example_m5_n2(self):
        # "at least four of the five servers must be down"
        p = 0.05
        by_formula = write_availability(5, 2, p)
        direct = 1 - (math.comb(5, 4) * p**4 * (1 - p) + p**5)
        assert by_formula == pytest.approx(direct)

    def test_p_zero_and_one(self):
        assert write_availability(5, 2, 0.0) == 1.0
        assert write_availability(5, 2, 1.0) == 0.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            write_availability(2, 3, 0.05)
        with pytest.raises(ValueError):
            write_availability(3, 2, 1.5)


class TestInitAvailability:
    def test_decreases_as_servers_added(self):
        # "Client initialization availability decreases as log servers
        # are added"
        values = [init_availability(m, 2, 0.05) for m in range(2, 9)]
        assert all(b <= a for a, b in zip(values, values[1:]))

    def test_paper_example_m5_n2_about_098(self):
        # "four of the five log servers must be available ... about 0.98"
        assert init_availability(5, 2, 0.05) == pytest.approx(0.977, abs=0.005)

    def test_paper_example_m5_n3_about_0999(self):
        # "with five log servers and triple copy replicated logs,
        # availability for both ... is about 0.999"
        assert init_availability(5, 3, 0.05) == pytest.approx(0.9988, abs=0.002)
        assert write_availability(5, 3, 0.05) == pytest.approx(0.9988, abs=0.002)

    def test_m_equals_n_single_list_suffices(self):
        # with M = N, one interval list is enough: 1 - p^M
        assert init_availability(2, 2, 0.05) == pytest.approx(1 - 0.05**2)


class TestReadAvailability:
    def test_formula(self):
        assert read_availability(2, 0.05) == pytest.approx(1 - 0.05**2)
        assert read_availability(3, 0.1) == pytest.approx(1 - 0.001)

    def test_single_copy(self):
        assert read_availability(1, 0.05) == pytest.approx(0.95)


class TestGeneratorAvailability:
    def test_majority_formula(self):
        # N=3: available iff ≤1 rep down
        p = 0.05
        expected = (1 - p) ** 3 + 3 * p * (1 - p) ** 2
        assert generator_availability(3, p) == pytest.approx(expected)

    def test_footnote_claim(self):
        """Generator with 3 reps beats client-init needs for M=5, N=2."""
        assert generator_availability(3, 0.05) > init_availability(5, 2, 0.05)

    def test_single_rep(self):
        assert generator_availability(1, 0.05) == pytest.approx(0.95)

    def test_even_counts(self):
        # N=4 needs 3 up (⌈5/2⌉): available iff ≤1 down
        p = 0.1
        expected = (1 - p) ** 4 + 4 * p * (1 - p) ** 3
        assert generator_availability(4, p) == pytest.approx(expected)


class TestPaperComparisons:
    def test_single_server_reference(self):
        # "ReadLog, WriteLog and client initialization would be
        # available with probability 0.95"
        assert single_server_availability(0.05) == pytest.approx(0.95)

    def test_dual_copy_up_to_m7_beats_single_server(self):
        # "0.95 or better availability for client initialization would
        # be achieved using up to M = 7 log servers"
        assert max_m_for_init_availability(2, 0.05, 0.95) == 7
        assert init_availability(7, 2, 0.05) >= 0.95
        assert init_availability(8, 2, 0.05) < 0.95

    def test_figure_3_4_series_shape(self):
        series = figure_3_4_series(p=0.05, n_values=(2, 3), max_m=8)
        assert set(series) == {2, 3}
        for n, points in series.items():
            assert points[0].m == n
            assert points[-1].m == 8
            # write availability rises, init availability falls
            writes = [pt.write for pt in points]
            inits = [pt.init for pt in points]
            assert writes == sorted(writes)
            assert inits == sorted(inits, reverse=True)

    def test_triple_copy_trades_write_for_init(self):
        # at fixed M, larger N: lower write availability, higher init
        p = 0.05
        assert write_availability(5, 3, p) < write_availability(5, 2, p)
        assert init_availability(5, 3, p) > init_availability(5, 2, p)

    def test_availability_point_bundle(self):
        pt = availability_point(5, 2, 0.05)
        assert pt.write == write_availability(5, 2, 0.05)
        assert pt.init == init_availability(5, 2, 0.05)
        assert pt.read == read_availability(2, 0.05)
        assert pt.label == "M=5 N=2"

"""Tests for the client-side replicated-log algorithm (Section 3.1.2)."""

import pytest

from repro.core import (
    DirectServerPort,
    LogServerStore,
    LSNNotWritten,
    NotEnoughServers,
    NotInitialized,
    RecordNotPresent,
    ReplicatedLog,
    ReplicationConfig,
    make_generator,
)

from ..conftest import build_direct_log


class TestBasicOperations:
    def test_write_returns_increasing_lsns(self, direct_log):
        log, _ = direct_log
        lsns = [log.write(b"r%d" % i) for i in range(5)]
        assert lsns == sorted(lsns)
        assert len(set(lsns)) == 5

    def test_read_returns_written_data(self, direct_log):
        log, _ = direct_log
        lsn = log.write(b"hello", kind="redo")
        record = log.read(lsn)
        assert record.data == b"hello"
        assert record.kind == "redo"
        assert record.lsn == lsn

    def test_end_of_log_tracks_writes(self, direct_log):
        log, _ = direct_log
        before = log.end_of_log()
        lsn = log.write(b"x")
        assert log.end_of_log() == lsn == before + 1

    def test_read_beyond_end_signals_exception(self, direct_log):
        log, _ = direct_log
        with pytest.raises(LSNNotWritten):
            log.read(log.end_of_log() + 1)

    def test_read_guard_record_signals_not_present(self, direct_log):
        log, _ = direct_log
        # initialization wrote a guard at LSN 1 (δ=1, empty log)
        with pytest.raises(RecordNotPresent):
            log.read(1)

    def test_operations_require_initialization(self):
        stores = {f"s{i}": LogServerStore(f"s{i}") for i in range(3)}
        ports = {sid: DirectServerPort(st) for sid, st in stores.items()}
        log = ReplicatedLog("c1", ports, ReplicationConfig(3, 2),
                            make_generator(3))
        with pytest.raises(NotInitialized):
            log.write(b"x")
        with pytest.raises(NotInitialized):
            log.read(1)
        with pytest.raises(NotInitialized):
            log.end_of_log()

    def test_port_count_must_match_config(self):
        stores = {"s0": LogServerStore("s0")}
        ports = {sid: DirectServerPort(st) for sid, st in stores.items()}
        with pytest.raises(NotEnoughServers):
            ReplicatedLog("c1", ports, ReplicationConfig(3, 2),
                          make_generator(3))


class TestReplication:
    def test_each_record_on_n_servers(self, direct_log):
        log, stores = direct_log
        lsn = log.write(b"x")
        holders = [
            sid for sid, st in stores.items()
            if any(r.lsn == lsn for r in st.client_state("c1").records)
        ]
        assert len(holders) == 2

    def test_read_uses_single_server(self, direct_log):
        log, stores = direct_log
        lsn = log.write(b"x")
        reads_before = sum(st.read_ops for st in stores.values())
        log.read(lsn)
        reads_after = sum(st.read_ops for st in stores.values())
        assert reads_after - reads_before == 1

    def test_write_switches_server_on_failure(self, direct_log):
        log, stores = direct_log
        log.write(b"before")
        victim = log.write_set[0]
        stores[victim].crash()
        lsn = log.write(b"after")
        assert victim not in log.write_set
        assert log.read(lsn).data == b"after"

    def test_write_fails_below_n_servers(self, direct_log):
        log, stores = direct_log
        survivors = list(log.write_set)
        for sid in stores:
            if sid != survivors[0]:
                stores[sid].crash()
        with pytest.raises(NotEnoughServers):
            log.write(b"x")

    def test_failed_write_requires_reinitialization(self, direct_log):
        log, stores = direct_log
        for sid in list(stores)[1:]:
            stores[sid].crash()
        with pytest.raises(NotEnoughServers):
            log.write(b"x")
        with pytest.raises(NotInitialized):
            log.write(b"y")
        for st in stores.values():
            st.restart()
        log.initialize()
        assert log.read(log.write(b"z")).data == b"z"

    def test_read_falls_over_to_other_replica(self, direct_log):
        log, stores = direct_log
        lsn = log.write(b"x")
        # crash one of the two holders; read must still succeed
        holder = log.write_set[0]
        stores[holder].crash()
        assert log.read(lsn).data == b"x"

    def test_read_fails_when_all_replicas_down(self, direct_log):
        log, stores = direct_log
        lsn = log.write(b"x")
        for sid in log.write_set:
            stores[sid].crash()
        with pytest.raises(NotEnoughServers):
            log.read(lsn)


class TestCrashRestart:
    def test_restart_preserves_written_records(self, direct_log):
        log, _ = direct_log
        lsns = [log.write(b"r%d" % i) for i in range(5)]
        log.crash()
        log.initialize()
        for i, lsn in enumerate(lsns):
            assert log.read(lsn).data == b"r%d" % i

    def test_epoch_increases_across_restarts(self, direct_log):
        log, _ = direct_log
        first = log.current_epoch
        log.crash()
        log.initialize()
        assert log.current_epoch > first

    def test_lsns_continue_after_restart(self, direct_log):
        log, _ = direct_log
        last = log.write(b"x")
        log.crash()
        log.initialize()
        nxt = log.write(b"y")
        assert nxt > last

    def test_restart_masks_partial_write(self):
        """A record on fewer than N servers is masked or completed."""
        log, stores = build_direct_log(m=3, n=2)
        log.write(b"complete")
        # simulate a partial write: next LSN reaches only one server
        partial_lsn = log.end_of_log() + 1
        victim = log.write_set[0]
        stores[victim].server_write_log("c1", partial_lsn, log.current_epoch,
                                        True, b"partial")
        log.crash()
        log.initialize()
        # consistency: either readable (copied to N) or masked forever
        try:
            data = log.read(partial_lsn)
            outcome_one = data.data == b"partial"
        except (RecordNotPresent, LSNNotWritten):
            outcome_one = True
        assert outcome_one
        # and the answer must be stable across further restarts
        try:
            first = log.read(partial_lsn).data
        except (RecordNotPresent, LSNNotWritten):
            first = None
        log.crash()
        log.initialize()
        try:
            second = log.read(partial_lsn).data
        except (RecordNotPresent, LSNNotWritten):
            second = None
        assert first == second

    def test_partial_write_visible_when_holder_in_quorum(self):
        """If the holder's interval list is merged, the record survives."""
        log, stores = build_direct_log(m=2, n=2)
        log.write(b"full")
        partial_lsn = log.end_of_log() + 1
        holder = log.write_set[0]
        stores[holder].server_write_log("c1", partial_lsn, log.current_epoch,
                                        True, b"partial")
        log.crash()
        log.initialize()  # with M=N=2 both servers are in every quorum
        assert log.read(partial_lsn).data == b"partial"
        # and it is now on N servers
        holders = [
            sid for sid, st in stores.items()
            if any(r.lsn == partial_lsn and r.present
                   for r in st.client_state("c1").records)
        ]
        assert len(holders) == 2

    def test_init_needs_quorum(self, direct_log):
        log, stores = direct_log
        log.crash()
        # down N-1+1 = 2 servers: only 1 interval list left < M-N+1 = 2
        downed = list(stores)[:2]
        for sid in downed:
            stores[sid].crash()
        with pytest.raises(NotEnoughServers):
            log.initialize()

    def test_delta_records_copied_on_restart(self):
        log, stores = build_direct_log(m=3, n=2, delta=3)
        for i in range(6):
            log.write(b"r%d" % i)
        before_epoch = log.current_epoch
        log.crash()
        log.initialize()
        # the last δ=3 records were rewritten under the new epoch
        new_epoch = log.current_epoch
        assert new_epoch > before_epoch
        copied = 0
        for st in stores.values():
            copied += sum(
                1 for r in st.client_state("c1").records
                if r.epoch == new_epoch and r.present
            )
        assert copied == 3 * 2  # δ copies on N servers

    def test_iter_backward_skips_guards(self, direct_log):
        log, _ = direct_log
        log.write(b"a")
        log.write(b"b")
        log.crash()
        log.initialize()
        datas = [record.data for record in log.iter_backward()]
        assert datas == [b"b", b"a"]

    def test_iter_forward_range(self, direct_log):
        log, _ = direct_log
        lsns = [log.write(b"%d" % i) for i in range(4)]
        records = list(log.iter_forward(lsns[1], lsns[2]))
        assert [r.data for r in records] == [b"1", b"2"]

    def test_last_present_lsn(self, direct_log):
        log, _ = direct_log
        lsn = log.write(b"x")
        log.crash()
        log.initialize()
        # end_of_log includes the new guard; last present is the copy
        assert log.end_of_log() > lsn
        assert log.last_present_lsn() == lsn


class TestEndOfLogSemantics:
    def test_empty_log_after_init_has_guard(self, direct_log):
        log, _ = direct_log
        # fresh init on an empty log writes δ guards: EndOfLog = 1
        assert log.end_of_log() == 1
        assert log.last_present_lsn() is None

    def test_multiple_restarts_accumulate_guards(self, direct_log):
        log, _ = direct_log
        end0 = log.end_of_log()
        log.crash()
        log.initialize()
        assert log.end_of_log() == end0 + 1

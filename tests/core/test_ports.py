"""Tests for the transport-independent server port abstraction."""

from repro.core import DirectServerPort, LogServerStore
from repro.core.ports import ServerPort


class TestDirectServerPort:
    def test_satisfies_protocol(self):
        port = DirectServerPort(LogServerStore("s"))
        assert isinstance(port, ServerPort)

    def test_server_id_delegates(self):
        port = DirectServerPort(LogServerStore("srv-9"))
        assert port.server_id == "srv-9"

    def test_store_exposed_for_failure_injection(self):
        store = LogServerStore("s")
        port = DirectServerPort(store)
        assert port.store is store

    def test_full_operation_roundtrip(self):
        port = DirectServerPort(LogServerStore("s"))
        port.server_write_log("c", 1, 1, True, b"v")
        assert port.server_read_log("c", 1).data == b"v"
        report = port.interval_list("c")
        assert report.server_id == "s"
        assert len(report.intervals) == 1
        port.copy_log("c", 1, 2, True, b"v2")
        assert port.install_copies("c", 2) == 1
        assert port.server_read_log("c", 1).epoch == 2

"""Property-based tests of Section 5.3 truncation against the merge.

The log-space-management argument needs truncation to commute with the
interval merge: a client that prunes its read-routing table at the
low-water mark must end up with exactly the picture it would have
built by re-initializing against servers that already truncated.  If
the two orders disagreed, a crash between the TruncateLog round and
the next initialization would change what the client believes the log
contains.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MergedIntervalMap, ServerIntervals
from repro.core.records import StoredRecord
from repro.core.store import ClientLogState

# (lsn, epoch) pairs small enough to collide: multi-epoch rewrites of
# the same LSN are the interesting case for the highest-epoch-wins rule.
pairs_strategy = st.sets(
    st.tuples(st.integers(min_value=1, max_value=30),
              st.integers(min_value=1, max_value=5)),
    max_size=40,
)
reports_strategy = st.lists(pairs_strategy, min_size=1, max_size=4)
low_water_strategy = st.integers(min_value=1, max_value=35)


def state_from_pairs(pairs, client_id="c1"):
    """Append the pairs to a ClientLogState in legal write order."""
    state = ClientLogState(client_id)
    for lsn, epoch in sorted(pairs, key=lambda p: (p[1], p[0])):
        state.append(StoredRecord(lsn, epoch, data=b"x"))
    return state


def merged_from_states(states):
    return MergedIntervalMap.merge(
        ServerIntervals(f"s{i}", state.intervals())
        for i, state in enumerate(states)
    )


@settings(max_examples=120, deadline=None)
@given(reports=reports_strategy, low_water=low_water_strategy)
def test_prune_then_merge_equals_merge_then_prune(reports, low_water):
    """Server-side truncate_below then merge ≡ merge then prune_below."""
    truncate_first = [state_from_pairs(p) for p in reports]
    for state in truncate_first:
        state.truncate_below(low_water)
    pruned_at_servers = merged_from_states(truncate_first)

    prune_last = merged_from_states(state_from_pairs(p) for p in reports)
    prune_last.prune_below(low_water)

    assert pruned_at_servers.segments() == prune_last.segments()
    assert pruned_at_servers.high_lsn() == prune_last.high_lsn()


@settings(max_examples=120, deadline=None)
@given(reports=reports_strategy, low_water=low_water_strategy)
def test_prune_below_drops_exactly_the_prefix(reports, low_water):
    """prune_below removes every LSN below the mark and nothing else."""
    merged = merged_from_states(state_from_pairs(p) for p in reports)
    before = {lsn: merged.entry(lsn) for lsn in merged.lsns()}
    pruned = merged.prune_below(low_water)

    assert pruned == sum(1 for lsn in before if lsn < low_water)
    assert merged.lsns() == [lsn for lsn in before if lsn >= low_water]
    for lsn in merged.lsns():
        assert merged.entry(lsn) == before[lsn]


@settings(max_examples=120, deadline=None)
@given(reports=reports_strategy,
       first=low_water_strategy, second=low_water_strategy)
def test_prune_composition_is_max(reports, first, second):
    """Pruning twice ≡ pruning once at the higher mark (monotone)."""
    twice = merged_from_states(state_from_pairs(p) for p in reports)
    twice.prune_below(first)
    twice.prune_below(second)

    once = merged_from_states(state_from_pairs(p) for p in reports)
    once.prune_below(max(first, second))

    assert twice.segments() == once.segments()


@settings(max_examples=120, deadline=None)
@given(pairs=pairs_strategy, low_water=low_water_strategy)
def test_truncate_below_clips_the_server_state(pairs, low_water):
    """ClientLogState.truncate_below drops the prefix consistently."""
    state = state_from_pairs(pairs)
    lsns_before = {lsn for lsn, _ in pairs}
    dropped = state.truncate_below(low_water)

    assert dropped == sum(1 for r in [p for p in pairs]
                          if r[0] < low_water)
    assert all(r.lsn >= low_water for r in state.records)
    for lsn in lsns_before:
        if lsn < low_water:
            assert state.lookup(lsn) is None
        else:
            assert state.lookup(lsn) is not None
    for interval in state.intervals():
        assert interval.lo >= low_water
    # Re-truncating at or below the mark is a no-op.
    assert state.truncate_below(low_water) == 0

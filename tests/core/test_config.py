"""Tests for the (M, N, δ) configuration."""

import pytest

from repro.core import ConfigurationError, ReplicationConfig


class TestReplicationConfig:
    def test_paper_notation_aliases(self):
        config = ReplicationConfig(total_servers=6, copies=2)
        assert config.m == 6
        assert config.n == 2

    def test_init_quorum_is_m_minus_n_plus_1(self):
        assert ReplicationConfig(6, 2).init_quorum == 5
        assert ReplicationConfig(5, 3).init_quorum == 3
        assert ReplicationConfig(3, 3).init_quorum == 1

    def test_write_quorum_is_n(self):
        assert ReplicationConfig(6, 2).write_quorum == 2

    def test_tolerated_failures(self):
        config = ReplicationConfig(5, 2)
        assert config.max_tolerated_failures_for_write() == 3
        assert config.max_tolerated_failures_for_init() == 1

    def test_n_greater_than_m_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplicationConfig(total_servers=2, copies=3)

    def test_zero_copies_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplicationConfig(total_servers=3, copies=0)

    def test_zero_delta_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplicationConfig(3, 2, delta=0)

    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigurationError):
            ReplicationConfig(3, 2, write_retries=-1)

    def test_m_equals_n_allowed(self):
        config = ReplicationConfig(2, 2)
        assert config.init_quorum == 1

    def test_single_server_config(self):
        config = ReplicationConfig(1, 1)
        assert config.init_quorum == 1
        assert config.write_quorum == 1

"""Tests for the record value types."""

import pytest

from repro.core.records import LogRecord, RecordBatch, StoredRecord


class TestLogRecord:
    def test_basic_fields(self):
        record = LogRecord(lsn=5, data=b"payload", kind="redo")
        assert record.lsn == 5
        assert record.data == b"payload"
        assert record.kind == "redo"

    def test_size_is_payload_length(self):
        assert LogRecord(lsn=1, data=b"abc").size == 3
        assert LogRecord(lsn=1, data=b"").size == 0

    def test_lsn_must_be_positive(self):
        with pytest.raises(ValueError):
            LogRecord(lsn=0, data=b"x")
        with pytest.raises(ValueError):
            LogRecord(lsn=-3, data=b"x")

    def test_default_kind(self):
        assert LogRecord(lsn=1, data=b"x").kind == "data"

    def test_frozen(self):
        record = LogRecord(lsn=1, data=b"x")
        with pytest.raises(AttributeError):
            record.lsn = 2


class TestStoredRecord:
    def test_key_is_lsn_epoch(self):
        record = StoredRecord(lsn=3, epoch=7)
        assert record.key == (3, 7)

    def test_epoch_must_be_positive(self):
        with pytest.raises(ValueError):
            StoredRecord(lsn=1, epoch=0)

    def test_not_present_forbids_data(self):
        with pytest.raises(ValueError):
            StoredRecord(lsn=1, epoch=1, present=False, data=b"x")

    def test_not_present_without_data_ok(self):
        record = StoredRecord(lsn=1, epoch=1, present=False)
        assert not record.present
        assert record.data == b""

    def test_to_log_record_projects(self):
        stored = StoredRecord(lsn=4, epoch=2, data=b"d", kind="undo")
        log_record = stored.to_log_record()
        assert log_record == LogRecord(lsn=4, data=b"d", kind="undo")

    def test_equality_by_value(self):
        a = StoredRecord(lsn=1, epoch=1, data=b"x")
        b = StoredRecord(lsn=1, epoch=1, data=b"x")
        assert a == b


class TestRecordBatch:
    def _records(self, lsns, epoch=1):
        return [StoredRecord(lsn=l, epoch=epoch, data=b"d") for l in lsns]

    def test_consecutive_lsns_accepted(self):
        batch = RecordBatch(epoch=1, records=self._records([4, 5, 6]))
        assert batch.low_lsn == 4
        assert batch.high_lsn == 6
        assert len(batch) == 3

    def test_gap_rejected(self):
        with pytest.raises(ValueError):
            RecordBatch(epoch=1, records=self._records([1, 3]))

    def test_wrong_epoch_rejected(self):
        records = self._records([1, 2], epoch=2)
        with pytest.raises(ValueError):
            RecordBatch(epoch=1, records=records)

    def test_empty_batch_has_no_bounds(self):
        batch = RecordBatch(epoch=1)
        with pytest.raises(ValueError):
            _ = batch.low_lsn
        with pytest.raises(ValueError):
            _ = batch.high_lsn

    def test_byte_size_sums_payloads(self):
        batch = RecordBatch(epoch=1, records=self._records([1, 2]))
        assert batch.byte_size == 2

    def test_iteration(self):
        records = self._records([1, 2, 3])
        batch = RecordBatch(epoch=1, records=records)
        assert list(batch) == records

"""Tests for the client-initialization (recovery) procedure."""

import pytest

from repro.core import (
    DirectServerPort,
    LogServerStore,
    NotEnoughServers,
    gather_interval_lists,
    perform_recovery,
)


def build_stores(m=3):
    stores = {f"s{i}": LogServerStore(f"s{i}") for i in range(m)}
    ports = {sid: DirectServerPort(st) for sid, st in stores.items()}
    return stores, ports


class TestGatherIntervalLists:
    def test_collects_from_all_up_servers(self):
        stores, ports = build_stores(3)
        lists = gather_interval_lists(ports, "c1", quorum=2)
        assert len(lists) == 3

    def test_quorum_enforced(self):
        stores, ports = build_stores(3)
        stores["s0"].crash()
        stores["s1"].crash()
        with pytest.raises(NotEnoughServers):
            gather_interval_lists(ports, "c1", quorum=2)

    def test_exact_quorum_accepted(self):
        stores, ports = build_stores(3)
        stores["s0"].crash()
        lists = gather_interval_lists(ports, "c1", quorum=2)
        assert {l.server_id for l in lists} == {"s1", "s2"}


class TestPerformRecovery:
    def test_empty_log_writes_guards_only(self):
        stores, ports = build_stores(3)
        lists = gather_interval_lists(ports, "c1", quorum=2)
        result = perform_recovery("c1", ports, lists, new_epoch=1,
                                  copies=2, delta=1)
        assert result.next_lsn == 2  # guard at 1
        assert result.records_copied == 1
        assert len(result.write_set) == 2
        for sid in result.write_set:
            table = stores[sid].dump_table("c1")
            assert table == [(1, 1, "no")]

    def test_last_delta_records_copied(self):
        stores, ports = build_stores(3)
        for lsn in range(1, 6):
            for sid in ("s0", "s1"):
                stores[sid].server_write_log("c1", lsn, 1, True, b"r%d" % lsn)
        lists = gather_interval_lists(ports, "c1", quorum=2)
        result = perform_recovery("c1", ports, lists, new_epoch=2,
                                  copies=2, delta=2)
        # records 4,5 copied + guards 6,7
        assert result.records_copied == 4
        assert result.next_lsn == 8
        for sid in result.write_set:
            records = stores[sid].client_state("c1").records
            epoch2 = [(r.lsn, r.present) for r in records if r.epoch == 2]
            assert epoch2 == [(4, True), (5, True), (6, False), (7, False)]

    def test_present_flags_preserved_in_copies(self):
        stores, ports = build_stores(3)
        # a not-present record at the tail (from an earlier recovery)
        for sid in ("s0", "s1"):
            stores[sid].server_write_log("c1", 1, 1, True, b"data")
            stores[sid].server_write_log("c1", 2, 1, False)
        lists = gather_interval_lists(ports, "c1", quorum=2)
        result = perform_recovery("c1", ports, lists, new_epoch=2,
                                  copies=2, delta=1)
        for sid in result.write_set:
            copy = stores[sid].client_state("c1").lookup(2)
            assert copy.epoch == 2
            assert not copy.present

    def test_preferred_servers_honoured(self):
        stores, ports = build_stores(4)
        lists = gather_interval_lists(ports, "c1", quorum=3)
        result = perform_recovery("c1", ports, lists, new_epoch=1,
                                  copies=2, delta=1,
                                  preferred_servers=("s3", "s2"))
        assert result.write_set == ("s3", "s2")

    def test_unavailable_preferred_server_skipped(self):
        stores, ports = build_stores(4)
        stores["s3"].crash()
        lists = gather_interval_lists(ports, "c1", quorum=3)
        result = perform_recovery("c1", ports, lists, new_epoch=1,
                                  copies=2, delta=1,
                                  preferred_servers=("s3", "s2"))
        assert "s3" not in result.write_set
        assert len(result.write_set) == 2

    def test_insufficient_install_targets(self):
        stores, ports = build_stores(3)
        lists = gather_interval_lists(ports, "c1", quorum=2)
        stores["s0"].crash()
        stores["s1"].crash()
        with pytest.raises(NotEnoughServers):
            perform_recovery("c1", ports, lists, new_epoch=1,
                             copies=2, delta=1)

    def test_recovery_is_restartable(self):
        """A crash mid-recovery leaves state a later recovery fixes."""
        stores, ports = build_stores(3)
        for sid in ("s0", "s1"):
            stores[sid].server_write_log("c1", 1, 1, True, b"v")
        # first recovery: stage on s0 only (simulate crash after one
        # server staged but before install by doing it manually)
        ports["s0"].copy_log("c1", 1, 2, True, b"v")
        # staged, never installed; epoch 2 burned.  Full recovery at 3:
        lists = gather_interval_lists(ports, "c1", quorum=2)
        result = perform_recovery("c1", ports, lists, new_epoch=3,
                                  copies=2, delta=1)
        assert result.epoch == 3
        # the stale staged epoch-2 copy must never become visible
        assert stores["s0"].client_state("c1").lookup(1).epoch == 3

    def test_merged_map_routes_to_installed_servers(self):
        stores, ports = build_stores(3)
        for sid in ("s0", "s1"):
            stores[sid].server_write_log("c1", 1, 1, True, b"v")
        lists = gather_interval_lists(ports, "c1", quorum=2)
        result = perform_recovery("c1", ports, lists, new_epoch=2,
                                  copies=2, delta=1)
        # LSN 1 entry now carries the new epoch and the install targets
        assert result.merged.epoch_of(1) == 2
        assert set(result.merged.servers_for(1)) == set(result.write_set)


class CrashOnInstallPort:
    """A port whose server power-fails between CopyLog and InstallCopies.

    The staged copies reach the store's durable state, but the install
    never runs — the exact window the restartability argument of
    Section 4.2 is about.
    """

    def __init__(self, inner):
        self._inner = inner
        self._tripped = False

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def install_copies(self, client_id, epoch):
        if not self._tripped:
            self._tripped = True
            self._inner.store.crash()
        return self._inner.install_copies(client_id, epoch)


class TestRecoveryRestartability:
    def _seed_log(self, stores, lsns=range(1, 4)):
        for lsn in lsns:
            for sid in ("s0", "s1"):
                stores[sid].server_write_log("c1", lsn, 1, True,
                                             b"r%d" % lsn)

    def test_crash_between_copy_and_install_leaves_staged_inert(self):
        stores, ports = build_stores(4)
        self._seed_log(stores)
        ports["s0"] = CrashOnInstallPort(ports["s0"])

        lists = gather_interval_lists(ports, "c1", quorum=3)
        result = perform_recovery("c1", ports, lists, new_epoch=2,
                                  copies=2, delta=2,
                                  preferred_servers=("s0", "s1"))
        # the crashed server was skipped; recovery still installed N copies
        assert "s0" not in result.write_set
        assert len(result.write_set) == 2

        # its staged epoch-2 records were never installed and stay inert
        state = stores["s0"].client_state("c1")
        assert 2 in state.staged
        assert all(r.epoch != 2 for r in state.records)
        stores["s0"].restart()
        intervals = stores["s0"].interval_list("c1").intervals
        assert all(iv.epoch != 2 for iv in intervals)

    def test_repeated_higher_epoch_recovery_converges(self):
        stores, ports = build_stores(4)
        self._seed_log(stores)
        ports["s0"] = CrashOnInstallPort(ports["s0"])

        lists = gather_interval_lists(ports, "c1", quorum=3)
        perform_recovery("c1", ports, lists, new_epoch=2, copies=2,
                         delta=2, preferred_servers=("s0", "s1"))
        stores["s0"].restart()

        # the next restart runs the procedure again at a higher epoch;
        # the recovered server participates normally this time
        lists2 = gather_interval_lists(ports, "c1", quorum=3)
        result2 = perform_recovery("c1", ports, lists2, new_epoch=3,
                                   copies=2, delta=2,
                                   preferred_servers=("s0", "s1"))
        assert result2.write_set == ("s0", "s1")
        # epoch 2 is never reused: the stale staged copies on s0 remain
        # uninstalled while epoch 3 is fully installed
        s0_state = stores["s0"].client_state("c1")
        assert 2 in s0_state.staged
        assert any(r.epoch == 3 for r in s0_state.records)
        assert all(r.epoch != 2 for r in s0_state.records)
        # both installs hold the same records: the merged map agrees
        for lsn in (2, 3):
            datas = {stores[sid].server_read_log("c1", lsn).data
                     for sid in result2.write_set}
            assert datas == {b"r%d" % lsn}


class TestGatherWithRetry:
    def test_rides_out_a_transient_outage(self):
        from repro.core import RetryPolicy, gather_interval_lists_with_retry

        stores, ports = build_stores(3)
        stores["s0"].crash()
        stores["s1"].crash()

        def repair(attempt):
            if attempt == 1:
                stores["s1"].restart()

        lists = gather_interval_lists_with_retry(
            ports, "c1", quorum=2,
            policy=RetryPolicy(max_attempts=4, jitter=0.0),
            sleep=lambda _s: None, on_retry=repair,
        )
        assert {l.server_id for l in lists} == {"s1", "s2"}

    def test_exhaustion_still_raises(self):
        from repro.core import RetryPolicy, gather_interval_lists_with_retry

        stores, ports = build_stores(3)
        stores["s0"].crash()
        stores["s1"].crash()
        with pytest.raises(NotEnoughServers):
            gather_interval_lists_with_retry(
                ports, "c1", quorum=2,
                policy=RetryPolicy(max_attempts=3, jitter=0.0),
                sleep=lambda _s: None,
            )

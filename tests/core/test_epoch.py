"""Tests for the replicated increasing unique-identifier generator."""

import pytest

from repro.core import NotEnoughServers
from repro.core.epoch import (
    GeneratorStateRepresentative,
    LocalIdGenerator,
    ReplicatedIdGenerator,
    make_generator,
    read_quorum_size,
    write_quorum_size,
)


class TestQuorumSizes:
    @pytest.mark.parametrize("n,read_q,write_q", [
        (1, 1, 1),
        (2, 2, 1),
        (3, 2, 2),
        (4, 3, 2),
        (5, 3, 3),
        (7, 4, 4),
    ])
    def test_appendix_formulas(self, n, read_q, write_q):
        assert read_quorum_size(n) == read_q
        assert write_quorum_size(n) == write_q

    @pytest.mark.parametrize("n", range(1, 10))
    def test_quorums_intersect(self, n):
        # correctness requires read + write > n
        assert read_quorum_size(n) + write_quorum_size(n) > n


class TestNewId:
    def test_ids_strictly_increase(self):
        generator = make_generator(3)
        ids = [generator.new_id() for _ in range(20)]
        assert all(b > a for a, b in zip(ids, ids[1:]))

    def test_ids_survive_minority_failures(self):
        generator = make_generator(5)
        first = generator.new_id()
        generator.representatives[0].crash()
        generator.representatives[1].crash()
        second = generator.new_id()
        assert second > first

    def test_majority_failure_blocks(self):
        generator = make_generator(3)
        generator.representatives[0].crash()
        generator.representatives[1].crash()
        with pytest.raises(NotEnoughServers):
            generator.new_id()

    def test_increasing_across_failover_sets(self):
        """Ids stay monotone as different minorities fail."""
        generator = make_generator(3)
        reps = generator.representatives
        last = 0
        for downed in (0, 1, 2, 0, 1, 2):
            reps[downed].crash()
            value = generator.new_id()
            assert value > last
            last = value
            reps[downed].restart()

    def test_crash_between_read_and_write_skips_values(self):
        """A partially performed NewID may skip but never repeat."""
        generator = make_generator(3)
        a = generator.new_id()
        # simulate: a NewID read max=a, wrote a+1 to one rep, crashed
        generator.representatives[0].write(a + 1)
        b = generator.new_id()
        assert b > a  # monotone even though a+1 was partially issued

    def test_representative_ignores_stale_writes(self):
        rep = GeneratorStateRepresentative("r0", value=10)
        rep.write(5)  # a delayed duplicate
        assert rep.read() == 10

    def test_history_is_appended(self):
        rep = GeneratorStateRepresentative("r0")
        rep.write(1)
        rep.write(3)
        assert rep.history == [1, 3]

    def test_empty_generator_rejected(self):
        with pytest.raises(NotEnoughServers):
            ReplicatedIdGenerator([])

    def test_single_representative_works(self):
        generator = make_generator(1)
        assert generator.new_id() == 1
        assert generator.new_id() == 2


class TestLocalIdGenerator:
    def test_sequence(self):
        generator = LocalIdGenerator()
        assert [generator.new_id() for _ in range(3)] == [1, 2, 3]

    def test_start_offset(self):
        generator = LocalIdGenerator(start=10)
        assert generator.new_id() == 11


class TestNewIdWithRetry:
    def test_rides_out_a_repair_window(self):
        from repro.core import RetryPolicy

        generator = make_generator(3)
        generator.representatives[0].crash()
        generator.representatives[1].crash()

        def repair(attempt):
            if attempt == 0:
                generator.representatives[0].restart()

        first = generator.new_id_with_retry(
            policy=RetryPolicy(max_attempts=3, jitter=0.0),
            sleep=lambda _s: None, on_retry=repair,
        )
        assert generator.new_id() > first

    def test_exhaustion_raises(self):
        from repro.core import RetryPolicy

        generator = make_generator(3)
        generator.representatives[0].crash()
        generator.representatives[1].crash()
        with pytest.raises(NotEnoughServers):
            generator.new_id_with_retry(
                policy=RetryPolicy(max_attempts=2, jitter=0.0),
                sleep=lambda _s: None,
            )

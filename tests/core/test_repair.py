"""Tests for log-copy repair (Section 5.3)."""

import pytest

from repro.core import (
    DirectServerPort,
    LogServerStore,
    MergedIntervalMap,
    NotEnoughServers,
    ServerIntervals,
    repair_log_copy,
    under_replicated_lsns,
)

from ..conftest import build_direct_log


class TestUnderReplicatedLsns:
    def test_detects_single_copy_records(self):
        merged = MergedIntervalMap()
        merged.note(1, 1, "s0")
        merged.note(1, 1, "s1")
        merged.note(2, 1, "s0")
        assert under_replicated_lsns(merged, 2) == [2]

    def test_fully_replicated_is_empty(self):
        merged = MergedIntervalMap()
        merged.note(1, 1, "a")
        merged.note(1, 1, "b")
        assert under_replicated_lsns(merged, 2) == []


class TestRepairLogCopy:
    def build_damaged_system(self, n_records=10):
        """Write records, then destroy one write-set server's disk."""
        log, stores = build_direct_log(m=3, n=2)
        lsns = [log.write(b"r%d" % i) for i in range(n_records)]
        dead = log.write_set[0]
        survivor = log.write_set[1]
        # the dead server's disk is gone: replace with an empty store
        replacement = LogServerStore(f"{dead}-replacement")
        survivors = {
            sid: DirectServerPort(store)
            for sid, store in stores.items() if sid != dead
        }
        return log, stores, lsns, dead, survivor, survivors, replacement

    def test_repair_restores_n_copies(self):
        (log, stores, lsns, dead, survivor,
         survivors, replacement) = self.build_damaged_system()
        result = repair_log_copy(
            "c1", survivors, DirectServerPort(replacement), copies=2)
        assert result.records_copied > 0
        merged = MergedIntervalMap.merge([
            ServerIntervals(sid, stores[sid].client_state("c1").intervals())
            for sid in survivors
        ] + [ServerIntervals(replacement.server_id,
                             replacement.client_state("c1").intervals())])
        assert under_replicated_lsns(merged, 2) == []

    def test_repaired_records_readable_with_exact_data(self):
        (log, stores, lsns, dead, survivor,
         survivors, replacement) = self.build_damaged_system()
        repair_log_copy("c1", survivors, DirectServerPort(replacement), 2)
        for i, lsn in enumerate(lsns):
            record = replacement.client_state("c1").lookup(lsn)
            if record is not None:
                assert record.data == b"r%d" % i

    def test_guards_and_epochs_preserved(self):
        log, stores = build_direct_log(m=3, n=2)
        log.write(b"one")
        log.crash()
        log.initialize()  # creates copies + guards at a higher epoch
        log.write(b"two")
        dead = log.write_set[0]
        survivors = {
            sid: DirectServerPort(store)
            for sid, store in stores.items() if sid != dead
        }
        replacement = LogServerStore("fresh")
        repair_log_copy("c1", survivors, DirectServerPort(replacement), 2)
        # whatever landed on the replacement preserved epoch + flags
        dead_records = stores[dead].client_state("c1").records
        for record in dead_records:
            copy = replacement.client_state("c1").lookup(record.lsn)
            if copy is not None and copy.epoch == record.epoch:
                assert copy.present == record.present
                assert copy.data == record.data

    def test_replay_order_satisfies_store_discipline(self):
        """Records spanning epochs replay without ProtocolError."""
        log, stores = build_direct_log(m=2, n=2)
        log.write(b"a")
        log.crash()
        log.initialize()
        log.write(b"b")
        log.crash()
        log.initialize()
        log.write(b"c")
        survivors = {
            sid: DirectServerPort(store) for sid, store in stores.items()
        }
        replacement = LogServerStore("fresh")
        result = repair_log_copy(
            "c1", survivors, DirectServerPort(replacement), copies=3)
        replacement_state = replacement.client_state("c1")
        assert replacement_state.high_lsn is not None
        assert result.records_copied == len(replacement_state.records)

    def test_total_loss_raises(self):
        merged_stores = {"s0": LogServerStore("s0")}
        # s0 has nothing; pretend LSN 1 existed only on the dead server
        # by merging a fabricated interval list
        ports = {sid: DirectServerPort(st) for sid, st in merged_stores.items()}
        # write a record only to a store we then exclude
        ghost = LogServerStore("ghost")
        ghost.server_write_log("c1", 1, 1, True, b"lost")
        # survivors know nothing about LSN 1 -> nothing under-replicated
        result = repair_log_copy(
            "c1", ports, DirectServerPort(LogServerStore("new")), copies=1)
        assert result.records_copied == 0

    def test_crashed_holder_invisible_to_repair(self):
        """A fully crashed holder's records are unknown to survivors."""
        log, stores = build_direct_log(m=3, n=2)
        log.write(b"x")
        dead = log.write_set[0]
        holder = log.write_set[1]
        survivors = {
            sid: DirectServerPort(store)
            for sid, store in stores.items() if sid != dead
        }
        stores[holder].crash()
        result = repair_log_copy(
            "c1", survivors, DirectServerPort(LogServerStore("new")), 2)
        # the crashed holder contributed no interval list, so nothing
        # could be repaired — and nothing blew up
        assert result.records_copied == 0

    def test_holder_dying_mid_repair_raises(self):
        """The holder answers IntervalList, then dies before the read."""
        log, stores = build_direct_log(m=3, n=2)
        log.write(b"x")
        dead = log.write_set[0]
        holder = log.write_set[1]

        class FlakyPort(DirectServerPort):
            def server_read_log(self, client_id, lsn):
                from repro.core.errors import ServerUnavailable
                raise ServerUnavailable(self.server_id, "died mid-repair")

        survivors = {
            sid: (FlakyPort(store) if sid == holder
                  else DirectServerPort(store))
            for sid, store in stores.items() if sid != dead
        }
        with pytest.raises(NotEnoughServers):
            repair_log_copy(
                "c1", survivors, DirectServerPort(LogServerStore("new")), 2)

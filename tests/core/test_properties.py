"""Property-based tests of the replication algorithm's invariants.

The properties the paper's correctness argument rests on:

1. every WriteLog-acknowledged record is readable with its exact data,
   across any sequence of client crashes and restarts;
2. LSNs strictly increase across WriteLog calls, including across
   restarts;
3. interval merge keeps the highest epoch per LSN regardless of report
   order;
4. the merged picture of any ``M − N + 1``-subset of servers covers
   every acknowledged record.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DirectServerPort,
    LogServerStore,
    MergedIntervalMap,
    ReplicatedLog,
    ReplicationConfig,
    ServerIntervals,
    intervals_from_lsns,
    make_generator,
)


def build(m, n, delta=1):
    stores = {f"s{i}": LogServerStore(f"s{i}") for i in range(m)}
    ports = {sid: DirectServerPort(st) for sid, st in stores.items()}
    log = ReplicatedLog(
        "c1", ports,
        ReplicationConfig(m, n, delta=delta),
        make_generator(3),
    )
    log.initialize()
    return log, stores


# operations: write payload, crash+restart, or crash/restart a server
op_strategy = st.one_of(
    st.binary(min_size=0, max_size=40).map(lambda b: ("write", b)),
    st.just(("restart", None)),
    st.integers(min_value=0, max_value=2).map(lambda i: ("toggle", i)),
)


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(op_strategy, max_size=25))
def test_acknowledged_records_always_readable(ops):
    """Durability across arbitrary crash/restart interleavings (M=3, N=2)."""
    log, stores = build(3, 2)
    store_list = list(stores.values())
    acknowledged: dict[int, bytes] = {}
    for op, arg in ops:
        if op == "write":
            try:
                lsn = log.write(arg)
            except Exception:
                # not enough servers up; re-init when possible
                for st_ in store_list:
                    st_.restart()
                log.initialize()
                continue
            acknowledged[lsn] = arg
        elif op == "restart":
            log.crash()
            for st_ in store_list:
                st_.restart()
            log.initialize()
        else:
            target = store_list[arg]
            if target.available:
                target.crash()
            else:
                target.restart()
    # bring everything up and re-initialize, then audit
    for st_ in store_list:
        st_.restart()
    log.crash()
    log.initialize()
    for lsn, data in acknowledged.items():
        assert log.read(lsn).data == data


@settings(max_examples=40, deadline=None)
@given(
    writes=st.lists(st.integers(0, 255), min_size=0, max_size=30),
    restart_at=st.integers(min_value=0, max_value=30),
)
def test_lsns_strictly_increase_across_restarts(writes, restart_at):
    log, _ = build(3, 2)
    last = 0
    for i, byte in enumerate(writes):
        if i == restart_at:
            log.crash()
            log.initialize()
        lsn = log.write(bytes([byte]))
        assert lsn > last
        last = lsn


@settings(max_examples=80, deadline=None)
@given(
    entries=st.lists(
        st.tuples(
            st.integers(1, 30),           # lsn
            st.integers(1, 6),            # epoch
            st.sampled_from(["a", "b", "c"]),  # server
        ),
        max_size=60,
    )
)
def test_merge_keeps_highest_epoch_regardless_of_order(entries):
    merged_fwd = MergedIntervalMap()
    for lsn, epoch, server in entries:
        merged_fwd.note(lsn, epoch, server)
    merged_rev = MergedIntervalMap()
    for lsn, epoch, server in reversed(entries):
        merged_rev.note(lsn, epoch, server)
    for lsn in set(e[0] for e in entries):
        expected = max(e[1] for e in entries if e[0] == lsn)
        assert merged_fwd.epoch_of(lsn) == expected
        assert merged_rev.epoch_of(lsn) == expected
        assert set(merged_fwd.servers_for(lsn)) == set(merged_rev.servers_for(lsn))


@settings(max_examples=60, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(1, 40), st.integers(1, 5)),
        max_size=50,
    )
)
def test_interval_compression_roundtrip(pairs):
    """intervals_from_lsns covers exactly the input (lsn, epoch) pairs."""
    intervals = intervals_from_lsns(pairs)
    covered = set()
    for interval in intervals:
        for lsn in interval.lsns():
            covered.add((lsn, interval.epoch))
    assert covered == set(pairs)
    # intervals are maximal: no two adjacent same-epoch intervals
    for a, b in zip(intervals, intervals[1:]):
        if a.epoch == b.epoch:
            assert b.lo > a.hi + 1


@settings(max_examples=30, deadline=None)
@given(
    n_writes=st.integers(0, 12),
    seed=st.integers(0, 10_000),
)
def test_any_init_quorum_covers_all_acknowledged_records(n_writes, seed):
    """Merging any M−N+1 interval lists names a holder for every record."""
    m, n = 5, 2
    log, stores = build(m, n)
    lsns = [log.write(b"x%d" % i) for i in range(n_writes)]
    rng = random.Random(seed)
    subset = rng.sample(sorted(stores), m - n + 1)
    reports = [
        ServerIntervals(sid, stores[sid].client_state("c1").intervals())
        for sid in subset
    ]
    merged = MergedIntervalMap.merge(reports)
    for lsn in lsns:
        assert lsn in merged
        assert len(merged.servers_for(lsn)) >= 1

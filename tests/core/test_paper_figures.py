"""E6: the worked example of Figures 3-1, 3-2 and 3-3, exactly."""

from repro.harness import run_paper_figure_states


class TestPaperFigures:
    def setup_method(self):
        self.states = run_paper_figure_states()

    def test_figure_3_2_server_1(self):
        assert self.states.figure_3_2["Server 1"] == [
            (1, 1, "yes"), (2, 1, "yes"), (3, 1, "yes"),
            (3, 3, "yes"), (4, 3, "no"), (5, 3, "yes"),
            (6, 3, "yes"), (7, 3, "yes"), (8, 3, "yes"), (9, 3, "yes"),
        ]

    def test_figure_3_2_server_2(self):
        assert self.states.figure_3_2["Server 2"] == [
            (1, 1, "yes"), (2, 1, "yes"), (3, 1, "yes"),
            (6, 3, "yes"), (7, 3, "yes"),
        ]

    def test_figure_3_2_server_3_has_partial_record_10(self):
        assert self.states.figure_3_2["Server 3"] == [
            (3, 3, "yes"), (4, 3, "no"), (5, 3, "yes"),
            (8, 3, "yes"), (9, 3, "yes"), (10, 3, "yes"),
        ]

    def test_figure_3_3_server_1(self):
        assert self.states.figure_3_3["Server 1"] == [
            (1, 1, "yes"), (2, 1, "yes"), (3, 1, "yes"),
            (3, 3, "yes"), (4, 3, "no"), (5, 3, "yes"),
            (6, 3, "yes"), (7, 3, "yes"), (8, 3, "yes"), (9, 3, "yes"),
            (9, 4, "yes"), (10, 4, "no"),
        ]

    def test_figure_3_3_server_2(self):
        assert self.states.figure_3_3["Server 2"] == [
            (1, 1, "yes"), (2, 1, "yes"), (3, 1, "yes"),
            (6, 3, "yes"), (7, 3, "yes"),
            (9, 4, "yes"), (10, 4, "no"),
        ]

    def test_figure_3_3_server_3_untouched(self):
        # Server 3 was unavailable during the second recovery, so it
        # still holds the partially written record 10 at epoch 3.
        assert self.states.figure_3_3["Server 3"] == [
            (3, 3, "yes"), (4, 3, "no"), (5, 3, "yes"),
            (8, 3, "yes"), (9, 3, "yes"), (10, 3, "yes"),
        ]

    def test_replicated_log_contents_match_section_3_1_2(self):
        # "The replicated log shown in Figure 3-1 consists of records
        # in the intervals (<1,1> <2,1>), (<3,3>), and (<5,3> <9,3>)"
        # — records {1, 2, 3, 5, 6, 7, 8, 9}; 4 is not-present and the
        # partially written 10 is masked by the epoch-4 guard.
        assert self.states.replicated_log_contents == [1, 2, 3, 5, 6, 7, 8, 9]

"""Tests for the log-server store (Section 3.1.1 semantics)."""

import pytest

from repro.core import (
    Interval,
    LogServerStore,
    ProtocolError,
    RecordNotStored,
    ServerUnavailable,
)


@pytest.fixture
def store():
    return LogServerStore("s1")


class TestServerWriteLog:
    def test_write_and_read_back(self, store):
        store.server_write_log("c1", 1, 1, True, b"data")
        record = store.server_read_log("c1", 1)
        assert record.lsn == 1
        assert record.epoch == 1
        assert record.present
        assert record.data == b"data"

    def test_lsns_non_decreasing_within_epoch(self, store):
        store.server_write_log("c1", 1, 1, True)
        store.server_write_log("c1", 2, 1, True)
        with pytest.raises(ProtocolError):
            store.server_write_log("c1", 2, 1, True, b"different")

    def test_lsn_regression_rejected(self, store):
        store.server_write_log("c1", 5, 1, True)
        with pytest.raises(ProtocolError):
            store.server_write_log("c1", 4, 1, True)

    def test_epoch_regression_rejected(self, store):
        store.server_write_log("c1", 1, 3, True)
        with pytest.raises(ProtocolError):
            store.server_write_log("c1", 2, 1, True)

    def test_same_lsn_higher_epoch_accepted(self, store):
        # Figure 3-1, Server 1: ⟨3,1⟩ then ⟨3,3⟩
        store.server_write_log("c1", 3, 1, True, b"old")
        store.server_write_log("c1", 3, 3, True, b"new")
        assert store.server_read_log("c1", 3).epoch == 3

    def test_gap_creates_new_sequence(self, store):
        store.server_write_log("c1", 1, 1, True)
        store.server_write_log("c1", 5, 1, True)
        report = store.interval_list("c1")
        assert report.intervals == (Interval(1, 1, 1), Interval(1, 5, 5))

    def test_duplicate_retransmission_silently_accepted(self, store):
        store.server_write_log("c1", 1, 1, True, b"x")
        store.server_write_log("c1", 1, 1, True, b"x")  # no raise
        assert store.write_ops == 1

    def test_conflicting_rewrite_rejected(self, store):
        store.server_write_log("c1", 1, 1, True, b"x")
        with pytest.raises(ProtocolError):
            store.server_write_log("c1", 1, 1, True, b"different")

    def test_clients_are_independent(self, store):
        store.server_write_log("c1", 1, 1, True, b"a")
        store.server_write_log("c2", 10, 5, True, b"b")
        assert store.server_read_log("c1", 1).data == b"a"
        assert store.server_read_log("c2", 10).data == b"b"
        assert store.known_clients() == ["c1", "c2"]


class TestServerReadLog:
    def test_unstored_lsn_is_no_response(self, store):
        store.server_write_log("c1", 1, 1, True)
        with pytest.raises(RecordNotStored):
            store.server_read_log("c1", 2)

    def test_not_present_records_are_returned(self, store):
        # "it must respond to requests for records that are stored,
        # regardless of whether they are marked present or not"
        store.server_write_log("c1", 1, 1, False)
        record = store.server_read_log("c1", 1)
        assert not record.present

    def test_returns_highest_epoch_copy(self, store):
        store.server_write_log("c1", 1, 1, True, b"old")
        store.server_write_log("c1", 1, 2, True, b"new")
        assert store.server_read_log("c1", 1).data == b"new"


class TestIntervalList:
    def test_empty_client(self, store):
        assert store.interval_list("nobody").intervals == ()

    def test_figure_3_1_server_1(self, store):
        for lsn in (1, 2, 3):
            store.server_write_log("C", lsn, 1, True)
        store.server_write_log("C", 3, 3, True)
        store.server_write_log("C", 4, 3, False)
        for lsn in range(5, 10):
            store.server_write_log("C", lsn, 3, True)
        report = store.interval_list("C")
        assert report.intervals == (Interval(1, 1, 3), Interval(3, 3, 9))
        assert report.server_id == "s1"


class TestCopyInstall:
    def test_copies_invisible_until_install(self, store):
        store.server_write_log("c1", 1, 1, True, b"v1")
        store.copy_log("c1", 1, 2, True, b"v1")
        assert store.server_read_log("c1", 1).epoch == 1
        store.install_copies("c1", 2)
        assert store.server_read_log("c1", 1).epoch == 2

    def test_copy_below_high_water_mark_allowed(self, store):
        for lsn in (1, 2, 3):
            store.server_write_log("c1", lsn, 1, True)
        store.copy_log("c1", 2, 2, True, b"copy")
        store.install_copies("c1", 2)
        assert store.server_read_log("c1", 2).epoch == 2

    def test_copy_epoch_must_exceed_high_epoch(self, store):
        store.server_write_log("c1", 1, 3, True)
        with pytest.raises(ProtocolError):
            store.copy_log("c1", 1, 3, True)
        with pytest.raises(ProtocolError):
            store.copy_log("c1", 1, 2, True)

    def test_install_without_staged_is_noop(self, store):
        assert store.install_copies("c1", 9) == 0

    def test_install_is_atomic_batch(self, store):
        store.server_write_log("c1", 1, 1, True)
        store.copy_log("c1", 1, 2, True, b"a")
        store.copy_log("c1", 2, 2, False)
        installed = store.install_copies("c1", 2)
        assert installed == 2
        assert store.server_read_log("c1", 1).epoch == 2
        assert not store.server_read_log("c1", 2).present

    def test_install_orders_by_lsn(self, store):
        store.copy_log("c1", 2, 2, True, b"b")
        store.copy_log("c1", 1, 2, True, b"a")
        store.install_copies("c1", 2)
        table = store.dump_table("c1")
        assert table == [(1, 2, "yes"), (2, 2, "yes")]


class TestAvailability:
    def test_crashed_store_refuses_everything(self, store):
        store.server_write_log("c1", 1, 1, True)
        store.crash()
        with pytest.raises(ServerUnavailable):
            store.server_write_log("c1", 2, 1, True)
        with pytest.raises(ServerUnavailable):
            store.server_read_log("c1", 1)
        with pytest.raises(ServerUnavailable):
            store.interval_list("c1")
        with pytest.raises(ServerUnavailable):
            store.copy_log("c1", 1, 2, True)
        with pytest.raises(ServerUnavailable):
            store.install_copies("c1", 2)

    def test_durable_state_survives_crash(self, store):
        store.server_write_log("c1", 1, 1, True, b"kept")
        store.crash()
        store.restart()
        assert store.server_read_log("c1", 1).data == b"kept"


class TestDumpTable:
    def test_matches_figure_format(self, store):
        store.server_write_log("c1", 1, 1, True)
        store.server_write_log("c1", 2, 1, False)
        assert store.dump_table("c1") == [(1, 1, "yes"), (2, 1, "no")]

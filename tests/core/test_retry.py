"""Tests for the capped-exponential-backoff retry policy."""

import random

import pytest

from repro.core import (
    NotEnoughServers,
    RetryPolicy,
    ServerUnavailable,
    retry_call,
)


class TestRetryPolicy:
    def test_delays_grow_and_cap(self):
        policy = RetryPolicy(base_delay_s=0.1, cap_delay_s=0.4,
                             multiplier=2.0, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.delay(a, rng) for a in range(5)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.4, 0.4])

    def test_jitter_bounded_and_seeded(self):
        policy = RetryPolicy(base_delay_s=0.1, cap_delay_s=1.0, jitter=0.5)
        a = [policy.delay(i, random.Random(42)) for i in range(8)]
        b = [policy.delay(i, random.Random(42)) for i in range(8)]
        assert a == b  # deterministic given the seed
        for attempt, delay in enumerate(a):
            nominal = min(1.0, 0.1 * 2.0 ** attempt)
            assert 0.5 * nominal <= delay <= 1.5 * nominal

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=0.2, cap_delay_s=0.1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestRetryCall:
    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise NotEnoughServers("not yet")
            return "ok"

        slept = []
        result = retry_call(flaky, RetryPolicy(jitter=0.0),
                            random.Random(0), sleep=slept.append)
        assert result == "ok"
        assert calls["n"] == 3
        assert len(slept) == 2  # one sleep per failed attempt

    def test_exhaustion_raises_last_error(self):
        def always_down():
            raise NotEnoughServers("still down")

        with pytest.raises(NotEnoughServers):
            retry_call(always_down, RetryPolicy(max_attempts=3, jitter=0.0),
                       random.Random(0), sleep=lambda _s: None)

    def test_non_retryable_error_propagates_immediately(self):
        calls = {"n": 0}

        def wrong_kind():
            calls["n"] += 1
            raise ServerUnavailable("s0", "down")

        with pytest.raises(ServerUnavailable):
            retry_call(wrong_kind, RetryPolicy(), random.Random(0),
                       retry_on=(NotEnoughServers,),
                       sleep=lambda _s: None)
        assert calls["n"] == 1

    def test_on_retry_sees_attempt_numbers(self):
        calls = {"n": 0}
        seen = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 4:
                raise NotEnoughServers("not yet")
            return calls["n"]

        retry_call(flaky, RetryPolicy(jitter=0.0), random.Random(0),
                   sleep=lambda _s: None, on_retry=seen.append)
        assert seen == [0, 1, 2]

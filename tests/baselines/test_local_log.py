"""Tests for the local-disk logging baseline."""

import pytest

from repro.baselines import LocalDiskLog
from repro.core import LSNNotWritten
from repro.sim import Simulator
from repro.storage import SLOW_1987_DISK, MirroredDisks, SimDisk


def build(mirrored=False):
    sim = Simulator()
    disk = (MirroredDisks(sim, SLOW_1987_DISK) if mirrored
            else SimDisk(sim, SLOW_1987_DISK))
    return sim, disk, LocalDiskLog(sim, disk)


class TestLocalDiskLog:
    def test_log_force_read(self):
        sim, disk, log = build()
        result = {}

        def main():
            lsn = yield from log.log(b"data")
            yield from log.force()
            record = yield from log.read(lsn)
            result["data"] = record.data

        sim.spawn(main())
        sim.run()
        assert result["data"] == b"data"

    def test_force_pays_disk_time(self):
        sim, disk, log = build()

        def main():
            yield from log.log(b"x" * 700)
            yield from log.force()

        sim.spawn(main())
        sim.run()
        assert sim.now == pytest.approx(
            SLOW_1987_DISK.forced_record_write_s(700))
        assert disk.forces == 1

    def test_group_commit_single_disk_operation(self):
        """Many buffered records, one force, one disk write."""
        sim, disk, log = build()

        def main():
            for i in range(7):
                yield from log.log(b"u" * 100)
            yield from log.force()

        sim.spawn(main())
        sim.run()
        assert disk.forces == 1
        assert disk.bytes_written == 700

    def test_empty_force_is_fast(self):
        sim, disk, log = build()

        def main():
            yield from log.force()

        sim.spawn(main())
        sim.run()
        assert disk.forces == 0

    def test_crash_loses_unforced_tail(self):
        sim, disk, log = build()
        result = {}

        def main():
            kept = yield from log.log(b"kept")
            yield from log.force()
            lost = yield from log.log(b"lost")
            log.crash()
            result["kept"] = kept
            result["lost"] = lost
            record = yield from log.read(kept)
            result["kept_data"] = record.data
            try:
                yield from log.read(lost)
            except LSNNotWritten:
                result["lost_gone"] = True

        sim.spawn(main())
        sim.run(until=10)
        assert result["kept_data"] == b"kept"
        assert result.get("lost_gone")

    def test_lsns_reassigned_after_crash(self):
        sim, disk, log = build()
        result = {}

        def main():
            yield from log.log(b"a")
            yield from log.force()
            yield from log.log(b"b")  # lost
            log.crash()
            lsn = yield from log.log(b"c")
            result["lsn"] = lsn

        sim.spawn(main())
        sim.run(until=10)
        assert result["lsn"] == 2  # reuses the lost record's slot

    def test_mirrored_disks_both_written(self):
        sim, disks, log = build(mirrored=True)

        def main():
            yield from log.log(b"x" * 100)
            yield from log.force()

        sim.spawn(main())
        sim.run()
        assert disks.primary.forces == 1
        assert disks.secondary.forces == 1

    def test_iter_backward(self):
        sim, disk, log = build()
        result = {}

        def main():
            yield from log.log(b"1")
            yield from log.log(b"2")
            yield from log.force()
            result["datas"] = [r.data for r in log.iter_backward()]

        sim.spawn(main())
        sim.run()
        assert result["datas"] == [b"2", b"1"]

    def test_force_latency_recorded(self):
        sim, disk, log = build()

        def main():
            yield from log.log(b"x")
            yield from log.force()

        sim.spawn(main())
        sim.run()
        assert log.metrics.latency("local.force").count == 1

"""Tests for the single mirrored-disk server baseline."""

from repro.baselines import build_mirrored_server_system
from repro.core import NotEnoughServers
from repro.net import Lan
from repro.sim import MetricSet, Simulator


class TestMirroredServerSystem:
    def test_single_server_logging_works(self):
        sim = Simulator()
        lan = Lan(sim)
        metrics = MetricSet()
        client, server = build_mirrored_server_system(sim, lan,
                                                      metrics=metrics)
        result = {}

        def main():
            yield from client.initialize()
            lsn = yield from client.log(b"solo")
            yield from client.force()
            record = yield from client.read(lsn)
            result["data"] = record.data

        sim.spawn(main())
        sim.run(until=60)
        assert result["data"] == b"solo"
        assert client.write_set == (server.server_id,)

    def test_stream_reaches_both_disks(self):
        sim = Simulator()
        lan = Lan(sim)
        client, server = build_mirrored_server_system(sim, lan)

        def main():
            yield from client.initialize()
            # enough data to trigger track flushes
            for i in range(100):
                yield from client.log(b"x" * 200)
                if i % 10 == 9:
                    yield from client.force()
            yield sim.timeout(2.0)

        sim.spawn(main())
        sim.run(until=60)
        assert server.disk.primary.tracks_written > 0
        assert (server.disk.primary.tracks_written
                == server.disk.secondary.tracks_written)

    def test_single_point_of_failure(self):
        """The paper's availability argument: one server = one fate."""
        sim = Simulator()
        lan = Lan(sim)
        client, server = build_mirrored_server_system(sim, lan)
        result = {}

        def main():
            yield from client.initialize()
            yield from client.log(b"x")
            yield from client.force()
            server.crash()
            try:
                yield from client.log(b"y")
                yield from client.force()
            except NotEnoughServers:
                result["write_blocked"] = True
            client.crash()
            try:
                yield from client.restart()
            except NotEnoughServers:
                result["init_blocked"] = True

        sim.spawn(main())
        sim.run(until=120)
        assert result.get("write_blocked")
        assert result.get("init_blocked")

"""Tests for the per-record-RPC baseline (the Section 4.1 strawman)."""

import random

from repro.baselines import UnbatchedBackend
from repro.client import SimLogBackend, SimLogClient
from repro.core import ReplicationConfig, make_generator
from repro.net import Lan
from repro.server import SimLogServer
from repro.sim import MetricSet, Simulator


def build(metrics):
    sim = Simulator()
    lan = Lan(sim)
    for i in range(2):
        SimLogServer(sim, lan, f"s{i}", metrics=metrics)
    client = SimLogClient(
        sim, lan, "c1", ["s0", "s1"],
        ReplicationConfig(2, 2, delta=32), make_generator(3),
        metrics=metrics,
    )
    return sim, client


class TestUnbatchedBackend:
    def test_forces_every_record(self):
        metrics = MetricSet()
        sim, client = build(metrics)
        backend = UnbatchedBackend(client)

        def main():
            yield from client.initialize()
            for i in range(5):
                yield from backend.log(b"r%d" % i)

        sim.spawn(main())
        sim.run(until=60)
        assert client.forces == 5

    def test_message_count_versus_grouped(self):
        """Per-record RPCs send ~records× more write messages."""
        def run(unbatched):
            metrics = MetricSet()
            sim, client = build(metrics)
            backend = (UnbatchedBackend(client) if unbatched
                       else SimLogBackend(client))

            def main():
                yield from client.initialize()
                for i in range(14):
                    yield from backend.log(b"u" * 100)
                yield from backend.force()

            sim.spawn(main())
            sim.run(until=60)
            return (metrics.counter("s0.force_msgs").count
                    + metrics.counter("s0.write_msgs").count)

        grouped = run(False)
        unbatched = run(True)
        assert unbatched >= 7 * grouped

    def test_reads_still_work(self):
        metrics = MetricSet()
        sim, client = build(metrics)
        backend = UnbatchedBackend(client)
        result = {}

        def main():
            yield from client.initialize()
            lsn = yield from backend.log(b"one")
            record = yield from backend.read(lsn)
            result["data"] = record.data

        sim.spawn(main())
        sim.run(until=60)
        assert result["data"] == b"one"

"""Tests for database dumps and media recovery (Section 5.3)."""

import pytest

from repro.client import ClientNode, UndoCache
from repro.client.dumps import DumpManager

from ..conftest import drain


@pytest.fixture
def node():
    node, _stores = ClientNode.direct(m=3, n=2)
    return node


class TestTakeDump:
    def test_dump_snapshots_committed_state(self, node):
        drain(node.run_transaction([("a", "1"), ("b", "2")]))
        dumps = DumpManager(node.rm)
        dump = drain(dumps.take_dump())
        assert dump.contents["a"] == "1"
        assert dump.contents["b"] == "2"
        assert dump.dump_lsn > 0
        assert dumps.latest is dump

    def test_dump_is_a_copy(self, node):
        drain(node.run_transaction([("a", "1")]))
        dumps = DumpManager(node.rm)
        dump = drain(dumps.take_dump())
        drain(node.run_transaction([("a", "2")]))
        drain(node.rm.clean_all())
        assert dump.contents["a"] == "1"

    def test_replay_from_accounts_for_active_txns(self, node):
        drain(node.run_transaction([("a", "1")]))
        txn = drain(node.rm.begin())
        drain(node.rm.update(txn, "b", "wip"))
        dumps = DumpManager(node.rm)
        dump = drain(dumps.take_dump())
        assert dump.replay_from <= txn.begin_lsn
        drain(node.rm.commit(txn))

    def test_idle_dump_replays_from_tail(self, node):
        drain(node.run_transaction([("a", "1")]))
        dumps = DumpManager(node.rm)
        dump = drain(dumps.take_dump())
        assert dump.replay_from == dump.dump_lsn + 1


class TestMediaRecovery:
    def test_recovers_post_dump_transactions(self, node):
        drain(node.run_transaction([("a", "old")]))
        dumps = DumpManager(node.rm)
        drain(dumps.take_dump())
        drain(node.run_transaction([("a", "new"), ("b", "late")]))
        # media failure: the data disk is destroyed
        node.db.stable.clear()
        node.db.cache.clear()
        summary = drain(dumps.media_recovery())
        assert node.db.stable["a"] == "new"
        assert node.db.stable["b"] == "late"
        assert summary["replayed_from_lsn"] == dumps.latest.replay_from

    def test_bounded_replay(self, node):
        """Media recovery reads only the post-dump log suffix."""
        for i in range(10):
            drain(node.run_transaction([(f"k{i}", str(i))]))
        dumps = DumpManager(node.rm)
        drain(dumps.take_dump())
        drain(node.run_transaction([("after", "x")]))
        node.db.stable.clear()
        summary = drain(dumps.media_recovery())
        # pre-dump records (10 txns × 3 records) were not re-scanned
        assert summary["records_scanned"] <= 5
        assert node.db.stable["k3"] == "3"  # from the dump
        assert node.db.stable["after"] == "x"  # from the replay

    def test_in_flight_txn_at_dump_rolls_back(self, node):
        drain(node.run_transaction([("a", "good")]))
        txn = drain(node.rm.begin())
        drain(node.rm.update(txn, "a", "wip"))
        dumps = DumpManager(node.rm)
        drain(dumps.take_dump())
        # crash before commit; the dirty page was cleaned into the dump
        node.rm.active.clear()
        node.db.stable.clear()
        drain(dumps.media_recovery())
        assert node.db.stable["a"] == "good"

    def test_requires_a_dump(self, node):
        dumps = DumpManager(node.rm)
        with pytest.raises(RuntimeError):
            drain(dumps.media_recovery())

    def test_works_with_splitting(self):
        node, _ = ClientNode.direct(m=3, n=2, undo_cache=UndoCache())
        drain(node.run_transaction([("x", "1")]))
        dumps = DumpManager(node.rm)
        drain(dumps.take_dump())
        drain(node.run_transaction([("x", "2")]))
        node.db.stable.clear()
        drain(dumps.media_recovery())
        assert node.db.stable["x"] == "2"


class TestTruncationPoints:
    def test_no_dump_needs_everything(self, node):
        dumps = DumpManager(node.rm)
        point = dumps.truncation_point()
        assert point.media_recovery_lsn == 1

    def test_dump_advances_media_point(self, node):
        drain(node.run_transaction([("a", "1")]))
        dumps = DumpManager(node.rm)
        dump = drain(dumps.take_dump())
        point = dumps.truncation_point()
        assert point.media_recovery_lsn == dump.replay_from
        assert point.node_recovery_lsn >= point.media_recovery_lsn

    def test_active_txn_holds_node_point_back(self, node):
        drain(node.run_transaction([("a", "1")]))
        dumps = DumpManager(node.rm)
        drain(dumps.take_dump())
        txn = drain(node.rm.begin())
        drain(node.rm.update(txn, "b", "wip"))
        drain(node.run_transaction([("c", "2")]))
        point = dumps.truncation_point()
        assert point.node_recovery_lsn <= txn.begin_lsn
        drain(node.rm.commit(txn))

"""Tests for the simulated client logging process."""

import random

import pytest

from repro.client import SimLogClient
from repro.core import (
    LSNNotWritten,
    NotEnoughServers,
    NotInitialized,
    RecordNotPresent,
    ReplicationConfig,
    make_generator,
)
from repro.net import Lan
from repro.server import SimLogServer
from repro.sim import MetricSet, Simulator


class Cluster:
    def __init__(self, m=3, n=2, delta=8, loss_prob=0.0, seed=0,
                 force_timeout_s=0.25, write_retries=3, **client_kwargs):
        self.sim = Simulator()
        self.lan = Lan(self.sim, loss_prob=loss_prob, rng=random.Random(seed))
        self.metrics = MetricSet()
        self.servers = {
            f"s{i}": SimLogServer(self.sim, self.lan, f"s{i}",
                                  metrics=self.metrics)
            for i in range(m)
        }
        self.client = SimLogClient(
            self.sim, self.lan, "c1", list(self.servers),
            ReplicationConfig(m, n, delta=delta,
                              write_retries=write_retries),
            make_generator(3),
            metrics=self.metrics, force_timeout_s=force_timeout_s,
            **client_kwargs,
        )

    def run_main(self, main, until=60):
        proc = self.sim.spawn(main)
        self.sim.run(until=until)
        if proc.triggered and not proc.ok:
            _ = proc.value  # re-raise
        assert proc.triggered, "main process did not finish"
        return proc.value


class TestBasicLogging:
    def test_log_force_read_roundtrip(self):
        cluster = Cluster()
        result = {}

        def main():
            yield from cluster.client.initialize()
            lsn = yield from cluster.client.log(b"hello")
            yield from cluster.client.force()
            record = yield from cluster.client.read(lsn)
            result["data"] = record.data

        cluster.run_main(main())
        assert result["data"] == b"hello"

    def test_operations_require_init(self):
        cluster = Cluster()

        def main():
            with pytest.raises(NotInitialized):
                yield from cluster.client.log(b"x")
            with pytest.raises(NotInitialized):
                yield from cluster.client.force()
            with pytest.raises(NotInitialized):
                yield from cluster.client.read(1)

        cluster.run_main(main())

    def test_records_grouped_into_one_packet_per_force(self):
        cluster = Cluster()

        def main():
            yield from cluster.client.initialize()
            before = cluster.metrics.counter("c1.msgs_out").count
            for i in range(7):
                yield from cluster.client.log(b"u" * 100)
            yield from cluster.client.force()
            result = cluster.metrics.counter("c1.msgs_out").count - before
            return result

        # 7 × 100-byte records fit one packet; N=2 servers → 2 messages
        assert cluster.run_main(main()) == 2

    def test_records_on_n_servers_after_force(self):
        cluster = Cluster()

        def main():
            yield from cluster.client.initialize()
            lsn = yield from cluster.client.log(b"x")
            yield from cluster.client.force()
            return lsn

        lsn = cluster.run_main(main())
        holders = [
            sid for sid, server in cluster.servers.items()
            if server.store.client_state("c1").lookup(lsn) is not None
        ]
        assert len(holders) == 2

    def test_large_buffer_streams_as_writelog(self):
        cluster = Cluster(delta=64)

        def main():
            yield from cluster.client.initialize()
            # ~40 × 100B > a packet: streaming kicks in before force
            for i in range(40):
                yield from cluster.client.log(b"z" * 100)
            yield from cluster.client.force()

        cluster.run_main(main())
        write_msgs = cluster.metrics.counter("s0.write_msgs").count + \
            cluster.metrics.counter("s1.write_msgs").count + \
            cluster.metrics.counter("s2.write_msgs").count
        assert write_msgs > 0  # some batches went as plain WriteLog

    def test_read_beyond_end_raises(self):
        cluster = Cluster()

        def main():
            yield from cluster.client.initialize()
            with pytest.raises(LSNNotWritten):
                yield from cluster.client.read(999)

        cluster.run_main(main())

    def test_guard_record_not_present(self):
        cluster = Cluster()

        def main():
            yield from cluster.client.initialize()
            # LSN 1..δ are the initialization guards
            with pytest.raises(RecordNotPresent):
                yield from cluster.client.read(1)

        cluster.run_main(main())

    def test_delta_bound_forces_automatically(self):
        cluster = Cluster(delta=4)

        def main():
            yield from cluster.client.initialize()
            for i in range(20):
                yield from cluster.client.log(b"r")
            return cluster.client.forces

        forces = cluster.run_main(main())
        assert forces >= 4  # the δ bound kept forcing


class TestFailover:
    def test_server_crash_switches_write_set(self):
        cluster = Cluster()
        result = {}

        def main():
            yield from cluster.client.initialize()
            yield from cluster.client.log(b"a")
            yield from cluster.client.force()
            victim = cluster.client.write_set[0]
            cluster.servers[victim].crash()
            for i in range(10):
                yield from cluster.client.log(b"b%d" % i)
            yield from cluster.client.force()
            result["victim"] = victim
            result["ws"] = cluster.client.write_set

        cluster.run_main(main(), until=120)
        assert result["victim"] not in result["ws"]
        assert cluster.client.server_switches >= 1

    def test_records_remain_n_durable_after_switch(self):
        cluster = Cluster()
        result = {}

        def main():
            yield from cluster.client.initialize()
            lsns = []
            for i in range(3):
                lsns.append((yield from cluster.client.log(b"v%d" % i)))
            yield from cluster.client.force()
            victim = cluster.client.write_set[0]
            cluster.servers[victim].crash()
            lsns.append((yield from cluster.client.log(b"after")))
            yield from cluster.client.force()
            result["lsns"] = lsns

        cluster.run_main(main(), until=120)
        # every record readable even with the victim still down
        sim = cluster.sim

        def audit():
            datas = []
            for lsn in result["lsns"]:
                record = yield from cluster.client.read(lsn)
                datas.append(record.data)
            return datas

        proc = sim.spawn(audit())
        sim.run(until=sim.now + 60)
        assert proc.value == [b"v0", b"v1", b"v2", b"after"]

    def test_force_fails_when_too_few_servers(self):
        cluster = Cluster(m=2, n=2)
        result = {}

        def main():
            yield from cluster.client.initialize()
            yield from cluster.client.log(b"x")
            cluster.servers["s0"].crash()
            try:
                yield from cluster.client.force()
            except NotEnoughServers:
                result["failed"] = True

        cluster.run_main(main(), until=120)
        assert result.get("failed")

    def test_lossy_network_still_completes(self):
        cluster = Cluster(loss_prob=0.1, seed=4)

        def main():
            yield from cluster.client.initialize()
            lsns = []
            for i in range(20):
                lsns.append((yield from cluster.client.log(b"p%d" % i)))
                if i % 5 == 4:
                    yield from cluster.client.force()
            yield from cluster.client.force()
            datas = []
            for lsn in lsns:
                record = yield from cluster.client.read(lsn)
                datas.append(record.data)
            return datas

        datas = cluster.run_main(main(), until=300)
        assert datas == [b"p%d" % i for i in range(20)]


class TestClientRestart:
    def test_crash_restart_preserves_forced_records(self):
        cluster = Cluster()
        result = {}

        def main():
            yield from cluster.client.initialize()
            lsn = yield from cluster.client.log(b"durable")
            yield from cluster.client.force()
            epoch1 = cluster.client.current_epoch
            cluster.client.crash()
            yield from cluster.client.restart()
            record = yield from cluster.client.read(lsn)
            result["data"] = record.data
            result["epochs"] = (epoch1, cluster.client.current_epoch)

        cluster.run_main(main(), until=120)
        assert result["data"] == b"durable"
        assert result["epochs"][1] > result["epochs"][0]

    def test_unforced_records_may_vanish_but_consistently(self):
        cluster = Cluster()
        result = {}

        def main():
            yield from cluster.client.initialize()
            yield from cluster.client.log(b"forced")
            yield from cluster.client.force()
            # buffered, never forced:
            lost_lsn = yield from cluster.client.log(b"buffered-only")
            cluster.client.crash()
            yield from cluster.client.restart()
            try:
                record = yield from cluster.client.read(lost_lsn)
                result["outcome"] = record.data
            except (RecordNotPresent, LSNNotWritten):
                result["outcome"] = None

        cluster.run_main(main(), until=120)
        # buffered-only records were never acknowledged: the paper
        # allows either fate, as long as it is consistent — here the
        # record never left the client, so it must be gone.
        assert result["outcome"] is None

    def test_restart_without_quorum_fails(self):
        cluster = Cluster(m=3, n=2)
        result = {}

        def main():
            yield from cluster.client.initialize()
            cluster.client.crash()
            cluster.servers["s0"].crash()
            cluster.servers["s1"].crash()
            try:
                yield from cluster.client.restart()
            except NotEnoughServers:
                result["failed"] = True

        cluster.run_main(main(), until=120)
        assert result.get("failed")

    def test_rotate_write_set_fragments_intervals(self):
        cluster = Cluster(m=4, n=2)

        def main():
            yield from cluster.client.initialize()
            from repro.server.load import RandomAssignment
            cluster.client.assignment = RandomAssignment(random.Random(3))
            for i in range(12):
                yield from cluster.client.log(b"x%d" % i)
                yield from cluster.client.force()
                yield from cluster.client.rotate_write_set()

        cluster.run_main(main(), until=300)
        max_intervals = max(
            len(server.store.client_state("c1").intervals())
            for server in cluster.servers.values()
        )
        assert max_intervals > 1
        assert cluster.client.server_switches > 0


class TestAckTimeoutRace:
    def test_await_ack_sees_ack_at_the_timeout_instant(self):
        """An ack delivered at the exact timeout instant must count.

        The acker is scheduled *after* the waiter's timeout at the same
        simulated time, so the timeout event fires first — exactly the
        race that used to trigger a spurious full resend.
        """
        cluster = Cluster()
        sim = cluster.sim
        client = cluster.client
        result = {}

        def waiter():
            ok = yield from client._await_ack("s0", 5)
            result["ok"] = ok

        def acker():
            yield sim.timeout(client.force_timeout_s)
            client._note_ack("s0", 5)

        sim.spawn(waiter())
        sim.spawn(acker())
        sim.run(until=10)
        assert result["ok"] is True

    def test_force_with_delayed_ack_does_not_resend(self):
        """Regression: a late ack at the timeout must not resend a force.

        The LAN drops every packet after initialization, so the only
        acks the client ever sees are the scripted ones, delivered at
        exactly the instant each ack-wait times out (queued behind the
        timeout event).  The force must complete with one send per
        write-set server — no retries, no server switch.
        """
        cluster = Cluster()
        sim = cluster.sim
        client = cluster.client
        result = {}

        class AckAtTimeout(list):
            """Waiter list that schedules the ack at the timeout instant."""

            def __init__(self, server_id):
                super().__init__()
                self.server_id = server_id

            def append(self, entry):
                super().append(entry)
                high, _event = entry

                def acker():
                    yield sim.timeout(client.force_timeout_s)
                    client._note_ack(self.server_id, high)

                sim.spawn(acker())

        def main():
            yield from client.initialize()
            cluster.lan.loss_prob = 1.0  # servers never see (or ack) anything
            for sid in client.write_set:
                client._ack_waiters[sid] = AckAtTimeout(sid)
            yield from client.log(b"payload")
            before = cluster.metrics.counter("c1.msgs_out").count
            yield from client.force()
            result["sends"] = cluster.metrics.counter("c1.msgs_out").count - before

        cluster.run_main(main(), until=60)
        # exactly one WriteLog per write-set server; a spurious resend
        # would double that (and a switch would add NewInterval traffic)
        assert result["sends"] == 2
        assert cluster.client.server_switches == 0
        assert cluster.client._suspect_since == {}


class TestWriteSetMigration:
    def test_server_held_down_past_threshold_is_migrated(self):
        from repro.core import RetryPolicy

        cluster = Cluster(
            force_timeout_s=0.1, write_retries=10,
            migrate_after_s=0.25,
            retry_policy=RetryPolicy(base_delay_s=0.02, cap_delay_s=0.1,
                                     jitter=0.0),
        )
        result = {}

        def main():
            yield from cluster.client.initialize()
            yield from cluster.client.log(b"before")
            yield from cluster.client.force()
            victim = cluster.client.write_set[0]
            # hold the server down without closing its connections: it
            # keeps accepting packets and silently drops them, so every
            # attempt times out instead of failing fast — §5.4's
            # "down past the threshold" scenario.
            cluster.servers[victim].crashed = True
            t0 = cluster.sim.now
            lsn = yield from cluster.client.log(b"after")
            yield from cluster.client.force()
            result["victim"] = victim
            result["elapsed"] = cluster.sim.now - t0
            result["lsn"] = lsn

        cluster.run_main(main(), until=120)
        victim = result["victim"]
        assert victim not in cluster.client.write_set
        assert cluster.client.server_switches >= 1
        # the migration threshold cut the retry loop short: exhausting
        # all 10 retries at 0.1 s timeouts plus backoff would take ~2 s
        assert result["elapsed"] < 1.0
        # the commit is durable on the migrated write set
        for sid in cluster.client.write_set:
            stored = cluster.servers[sid].store.client_state("c1") \
                .lookup(result["lsn"])
            assert stored is not None and stored.present
            assert stored.data == b"after"

    def test_no_migration_without_threshold(self):
        # migrate_after_s=None (the default) keeps the historical
        # retry-then-switch behaviour: _past_migration_threshold is off
        cluster = Cluster()
        assert cluster.client._past_migration_threshold("s0") is False


class TestInitializeWithRetry:
    def test_rides_out_a_repair_window(self):
        from repro.core import RetryPolicy

        cluster = Cluster()
        result = {}

        def repair():
            yield cluster.sim.timeout(0.3)
            cluster.servers["s0"].restart()

        def main():
            cluster.servers["s0"].crash()
            cluster.servers["s1"].crash()  # 1 of 3 up; init quorum is 2
            cluster.sim.spawn(repair())
            yield from cluster.client.initialize_with_retry(
                policy=RetryPolicy(base_delay_s=0.1, cap_delay_s=0.5,
                                   jitter=0.0, max_attempts=8))
            result["initialized"] = cluster.client.initialized

        cluster.run_main(main(), until=60)
        assert result["initialized"] is True

    def test_deadline_bounds_the_retrying(self):
        from repro.core import RetryPolicy, ServerUnavailable

        cluster = Cluster()
        result = {}

        def main():
            cluster.servers["s0"].crash()
            cluster.servers["s1"].crash()  # never repaired
            t0 = cluster.sim.now
            try:
                yield from cluster.client.initialize_with_retry(
                    deadline_s=0.5,
                    policy=RetryPolicy(base_delay_s=0.1, cap_delay_s=0.2,
                                       jitter=0.0, max_attempts=50))
            except (NotEnoughServers, ServerUnavailable):
                result["raised"] = True
            result["elapsed"] = cluster.sim.now - t0

        cluster.run_main(main(), until=60)
        assert result.get("raised") is True
        # one attempt against crashed servers takes ~3 simulated
        # seconds of RPC timeouts; the deadline must stop the schedule
        # right after it instead of running all 50 attempts
        assert result["elapsed"] <= 6.0

    def test_restart_with_retry_recovers_forced_records(self):
        from repro.core import RetryPolicy

        cluster = Cluster()
        result = {}

        def repair():
            yield cluster.sim.timeout(0.4)
            cluster.servers["s0"].restart()
            cluster.servers["s1"].restart()

        def main():
            yield from cluster.client.initialize()
            lsn = yield from cluster.client.log(b"durable")
            yield from cluster.client.force()
            cluster.client.crash()
            cluster.servers["s0"].crash()
            cluster.servers["s1"].crash()
            cluster.sim.spawn(repair())
            yield from cluster.client.restart_with_retry(
                policy=RetryPolicy(base_delay_s=0.1, cap_delay_s=0.5,
                                   jitter=0.0, max_attempts=10))
            record = yield from cluster.client.read(lsn)
            result["data"] = record.data

        cluster.run_main(main(), until=120)
        assert result["data"] == b"durable"

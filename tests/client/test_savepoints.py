"""Tests for savepoints and partial rollback (Section 2's long txns)."""

import pytest

from repro.client import ClientNode, TransactionError, UndoCache

from ..conftest import drain


def make_node(split=False):
    node, _ = ClientNode.direct(
        m=3, n=2, undo_cache=UndoCache() if split else None)
    return node


class TestSavepointBasics:
    def test_rollback_restores_values(self):
        node = make_node()
        txn = drain(node.rm.begin())
        drain(node.rm.update(txn, "a", "1"))
        sp = drain(node.rm.savepoint(txn))
        drain(node.rm.update(txn, "a", "2"))
        drain(node.rm.update(txn, "b", "x"))
        undone = drain(node.rm.rollback_to_savepoint(txn, sp))
        assert undone == 2
        assert node.read("a") == "1"
        assert node.read("b") == ""
        drain(node.rm.commit(txn))
        assert node.read("a") == "1"

    def test_transaction_continues_after_rollback(self):
        node = make_node()
        txn = drain(node.rm.begin())
        sp = drain(node.rm.savepoint(txn))
        drain(node.rm.update(txn, "k", "discarded"))
        drain(node.rm.rollback_to_savepoint(txn, sp))
        drain(node.rm.update(txn, "k", "kept"))
        drain(node.rm.commit(txn))
        assert node.read("k") == "kept"

    def test_unknown_savepoint_rejected(self):
        node = make_node()
        txn = drain(node.rm.begin())
        with pytest.raises(TransactionError):
            drain(node.rm.rollback_to_savepoint(txn, 42))

    def test_nested_savepoints(self):
        node = make_node()
        txn = drain(node.rm.begin())
        drain(node.rm.update(txn, "x", "1"))
        sp1 = drain(node.rm.savepoint(txn))
        drain(node.rm.update(txn, "x", "2"))
        sp2 = drain(node.rm.savepoint(txn))
        drain(node.rm.update(txn, "x", "3"))
        drain(node.rm.rollback_to_savepoint(txn, sp2))
        assert node.read("x") == "2"
        drain(node.rm.rollback_to_savepoint(txn, sp1))
        assert node.read("x") == "1"
        drain(node.rm.commit(txn))

    def test_rollback_invalidates_later_savepoints(self):
        node = make_node()
        txn = drain(node.rm.begin())
        sp1 = drain(node.rm.savepoint(txn))
        drain(node.rm.update(txn, "x", "1"))
        sp2 = drain(node.rm.savepoint(txn))
        drain(node.rm.rollback_to_savepoint(txn, sp1))
        with pytest.raises(TransactionError):
            drain(node.rm.rollback_to_savepoint(txn, sp2))

    def test_savepoint_forces_log(self):
        node = make_node()
        log = node.backend.replicated_log
        txn = drain(node.rm.begin())
        drain(node.rm.update(txn, "a", "1"))
        before = log.writes_performed
        drain(node.rm.savepoint(txn))
        assert log.writes_performed == before + 1  # the S record

    def test_rollback_with_undo_cache(self):
        node = make_node(split=True)
        txn = drain(node.rm.begin())
        drain(node.rm.update(txn, "a", "keep"))
        sp = drain(node.rm.savepoint(txn))
        drain(node.rm.update(txn, "a", "drop"))
        drain(node.rm.rollback_to_savepoint(txn, sp))
        assert node.read("a") == "keep"
        # the rolled-back component left the cache
        assert len(node.rm.undo_cache) == 1
        drain(node.rm.commit(txn))


class TestSavepointRecovery:
    def test_rolled_back_updates_void_after_crash(self):
        node = make_node()
        txn = drain(node.rm.begin())
        drain(node.rm.update(txn, "a", "good"))
        sp = drain(node.rm.savepoint(txn))
        drain(node.rm.update(txn, "a", "experimental"))
        drain(node.rm.rollback_to_savepoint(txn, sp))
        drain(node.rm.commit(txn))
        node.crash()
        drain(node.restart())
        assert node.db.stable["a"] == "good"

    def test_rollback_after_clean_still_recovers(self):
        node = make_node()
        drain(node.run_transaction([("a", "base")]))
        txn = drain(node.rm.begin())
        sp = drain(node.rm.savepoint(txn))
        drain(node.rm.update(txn, "a", "dirty"))
        drain(node.rm.clean_page("a"))  # contaminate stable
        drain(node.rm.rollback_to_savepoint(txn, sp))
        drain(node.rm.commit(txn))
        node.crash()
        drain(node.restart())
        assert node.db.stable["a"] == "base"

    def test_in_flight_txn_with_savepoints_fully_undone(self):
        node = make_node()
        drain(node.run_transaction([("a", "committed")]))
        txn = drain(node.rm.begin())
        drain(node.rm.update(txn, "a", "v1"))
        sp = drain(node.rm.savepoint(txn))
        drain(node.rm.update(txn, "a", "v2"))
        # crash with the transaction (and its savepoint) in flight
        node.crash()
        drain(node.restart())
        assert node.db.stable["a"] == "committed"

    def test_updates_after_rollback_survive(self):
        node = make_node()
        txn = drain(node.rm.begin())
        sp = drain(node.rm.savepoint(txn))
        drain(node.rm.update(txn, "k", "first-try"))
        drain(node.rm.rollback_to_savepoint(txn, sp))
        drain(node.rm.update(txn, "k", "second-try"))
        drain(node.rm.commit(txn))
        node.crash()
        drain(node.restart())
        assert node.db.stable["k"] == "second-try"

    def test_split_mode_savepoint_recovery(self):
        node = make_node(split=True)
        txn = drain(node.rm.begin())
        drain(node.rm.update(txn, "a", "keep"))
        sp = drain(node.rm.savepoint(txn))
        drain(node.rm.update(txn, "a", "drop"))
        drain(node.rm.clean_page("a"))  # undo component hits the log
        drain(node.rm.rollback_to_savepoint(txn, sp))
        drain(node.rm.commit(txn))
        node.crash()
        drain(node.restart())
        assert node.db.stable["a"] == "keep"

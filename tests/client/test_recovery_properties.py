"""Recovery correctness: regression + property tests against an oracle.

The oracle is plain: the database after crash recovery must equal the
dictionary produced by applying exactly the committed transactions in
order.  Hypothesis drives random transaction mixes (commits, aborts,
in-flight at crash, page cleans at arbitrary points, both logging
modes) and checks the oracle after every crash.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.client import ClientNode, UndoCache

from ..conftest import drain


class TestLoserThenWinnerRegression:
    """A loser's undo must never clobber a later winner (found live)."""

    def test_abort_then_commit_same_key(self):
        node, _ = ClientNode.direct()
        drain(node.run_transaction([("k", "first")]))
        drain(node.run_transaction([("k", "aborted")], abort=True))
        drain(node.run_transaction([("k", "final")]))
        node.crash()
        drain(node.restart())
        assert node.db.stable["k"] == "final"

    def test_abort_then_commit_with_splitting(self):
        node, _ = ClientNode.direct(undo_cache=UndoCache())
        drain(node.run_transaction([("k", "first")]))
        # abort with a mid-transaction clean: the undo reaches the log
        txn = drain(node.rm.begin())
        drain(node.rm.update(txn, "k", "dirty"))
        drain(node.rm.clean_page("k"))
        drain(node.rm.abort(txn))
        drain(node.run_transaction([("k", "final")]))
        node.crash()
        drain(node.restart())
        assert node.db.stable["k"] == "final"

    def test_in_flight_loser_then_nothing(self):
        node, _ = ClientNode.direct()
        drain(node.run_transaction([("k", "good")]))
        txn = drain(node.rm.begin())
        drain(node.rm.update(txn, "k", "wip"))
        drain(node.rm.clean_page("k"))  # contaminate stable
        node.crash()
        drain(node.restart())
        assert node.db.stable["k"] == "good"


# operation alphabet for the property test
txn_strategy = st.lists(
    st.tuples(
        st.integers(0, 5),                       # key index
        st.integers(0, 99),                      # value token
    ),
    min_size=1, max_size=4,
)
op_strategy = st.one_of(
    st.tuples(st.just("commit"), txn_strategy),
    st.tuples(st.just("abort"), txn_strategy),
    st.tuples(st.just("clean"), st.integers(0, 5)),
    st.tuples(st.just("crash"), st.none()),
)


def _run_script(ops, split: bool, mid_clean_seed: int):
    undo_cache = UndoCache() if split else None
    node, _ = ClientNode.direct(m=3, n=2, undo_cache=undo_cache)
    oracle: dict[str, str] = {}
    rng = random.Random(mid_clean_seed)
    for op, arg in ops:
        if op in ("commit", "abort"):
            txn = drain(node.rm.begin())
            staged = {}
            for key_index, token in arg:
                key = f"k{key_index}"
                value = f"v{token}.{txn.txid}"
                drain(node.rm.update(txn, key, value))
                staged[key] = value
                if rng.random() < 0.2:
                    dirty = node.db.dirty_keys()
                    if dirty:
                        drain(node.rm.clean_page(rng.choice(dirty)))
            if op == "commit":
                drain(node.rm.commit(txn))
                oracle.update(staged)
            else:
                drain(node.rm.abort(txn))
        elif op == "clean":
            key = f"k{arg}"
            drain(node.rm.clean_page(key))
        elif op == "crash":
            node.crash()
            drain(node.restart())
            for key, value in oracle.items():
                assert node.db.stable.get(key, "") == value, (
                    f"{key}: stable={node.db.stable.get(key)!r} "
                    f"oracle={value!r}")
    # final crash + audit
    node.crash()
    drain(node.restart())
    for key, value in oracle.items():
        assert node.db.stable.get(key, "") == value
    # and no phantom committed values
    for key, value in node.db.stable.items():
        if key.startswith("k") and key in oracle:
            assert value == oracle[key]


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(op_strategy, max_size=12), seed=st.integers(0, 1000))
def test_recovery_matches_oracle_combined(ops, seed):
    _run_script(ops, split=False, mid_clean_seed=seed)


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(op_strategy, max_size=12), seed=st.integers(0, 1000))
def test_recovery_matches_oracle_split(ops, seed):
    _run_script(ops, split=True, mid_clean_seed=seed)

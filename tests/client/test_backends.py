"""Tests for the backend adapters (direct and simulated)."""

import pytest

from repro.client import ClientNode, DirectLogBackend, SimLogBackend, SimLogClient
from repro.core import (
    LSNNotWritten,
    RecordNotPresent,
    ReplicationConfig,
    make_generator,
)
from repro.net import Lan
from repro.server import SimLogServer
from repro.sim import Simulator

from ..conftest import build_direct_log, drain


class TestDirectLogBackend:
    def test_log_force_read(self):
        log, _ = build_direct_log()
        backend = DirectLogBackend(log)
        lsn = drain(backend.log(b"x", "data"))
        drain(backend.force())
        record = drain(backend.read(lsn))
        assert record.data == b"x"

    def test_end_of_log_delegates(self):
        log, _ = build_direct_log()
        backend = DirectLogBackend(log)
        assert backend.end_of_log() == log.end_of_log()

    def test_iter_backward(self):
        log, _ = build_direct_log()
        backend = DirectLogBackend(log)
        drain(backend.log(b"1"))
        drain(backend.log(b"2"))
        datas = [record.data for record in backend.iter_backward()]
        assert datas == [b"2", b"1"]

    def test_crash_restart_cycle(self):
        log, _ = build_direct_log()
        backend = DirectLogBackend(log)
        lsn = drain(backend.log(b"keep"))
        backend.crash()
        drain(backend.restart())
        assert drain(backend.read(lsn)).data == b"keep"


class TestSimLogBackend:
    def build(self):
        sim = Simulator()
        lan = Lan(sim)
        for i in range(3):
            SimLogServer(sim, lan, f"s{i}")
        client = SimLogClient(
            sim, lan, "c1", [f"s{i}" for i in range(3)],
            ReplicationConfig(3, 2, delta=8), make_generator(3),
        )
        return sim, SimLogBackend(client)

    def test_roundtrip(self):
        sim, backend = self.build()
        result = {}

        def main():
            yield from backend.client.initialize()
            lsn = yield from backend.log(b"net", "data")
            yield from backend.force()
            record = yield from backend.read(lsn)
            result["data"] = record.data

        sim.spawn(main())
        sim.run(until=30)
        assert result["data"] == b"net"

    def test_scan_backward_collects_present_records(self):
        sim, backend = self.build()
        result = {}

        def main():
            yield from backend.client.initialize()
            yield from backend.log(b"one")
            yield from backend.log(b"two")
            yield from backend.force()
            records = yield from backend.scan_backward()
            result["datas"] = [r.data for r in records]

        sim.spawn(main())
        sim.run(until=30)
        assert result["datas"] == [b"two", b"one"]

    def test_iter_backward_not_supported(self):
        _sim, backend = self.build()
        with pytest.raises(NotImplementedError):
            backend.iter_backward()

"""Tests for the networked identifier generator (Appendix I footnote)."""

import pytest

from repro.client import NetworkEpochSource, SimLogClient
from repro.core import NotEnoughServers, ReplicationConfig
from repro.net import Lan
from repro.server import SimLogServer
from repro.sim import Simulator


def build(m=3):
    sim = Simulator()
    lan = Lan(sim)
    server_ids = [f"s{i}" for i in range(m)]
    servers = {sid: SimLogServer(sim, lan, sid) for sid in server_ids}
    source = NetworkEpochSource(server_ids)
    client = SimLogClient(
        sim, lan, "c", server_ids,
        ReplicationConfig(m, 2, delta=8), source,
    )
    return sim, servers, source, client


class TestNetworkEpochSource:
    def test_epochs_come_from_server_representatives(self):
        sim, servers, source, client = build()

        def main():
            yield from client.initialize()

        sim.spawn(main())
        sim.run(until=30)
        assert client.current_epoch == 1
        assert source.new_ids_issued == 1
        # a write quorum of representatives holds the value
        holders = [s for s in servers.values()
                   if s.generator_rep.read() >= 1]
        assert len(holders) >= 2

    def test_epochs_increase_across_restarts(self):
        sim, servers, source, client = build()
        epochs = []

        def main():
            yield from client.initialize()
            epochs.append(client.current_epoch)
            for _ in range(3):
                client.crash()
                yield from client.restart()
                epochs.append(client.current_epoch)

        sim.spawn(main())
        sim.run(until=60)
        assert epochs == sorted(set(epochs))
        assert len(epochs) == 4

    def test_minority_representative_failure_tolerated(self):
        sim, servers, source, client = build()

        def main():
            yield from client.initialize()
            servers["s0"].crash()
            client.crash()
            yield from client.restart()

        proc = sim.spawn(main())
        sim.run(until=60)
        assert proc.ok
        assert client.current_epoch >= 2

    def test_majority_failure_blocks_initialization(self):
        sim, servers, source, client = build()
        result = {}

        def main():
            yield from client.initialize()
            servers["s0"].crash()
            servers["s1"].crash()
            client.crash()
            try:
                yield from client.restart()
            except NotEnoughServers:
                result["blocked"] = True

        sim.spawn(main())
        sim.run(until=120)
        assert result.get("blocked")

    def test_direct_new_id_rejected(self):
        source = NetworkEpochSource(["a"])
        with pytest.raises(NotImplementedError):
            source.new_id()

    def test_empty_representatives_rejected(self):
        with pytest.raises(NotEnoughServers):
            NetworkEpochSource([])

"""Tests for log-record splitting and the undo cache (Section 5.2)."""

import pytest

from repro.client import ClientNode, UndoCache
from repro.client.splitting import UndoComponent

from ..conftest import drain


class TestUndoCache:
    def test_add_and_commit_discard(self):
        cache = UndoCache()
        cache.add(1, "a", "old-a")
        cache.add(1, "b", "old-b")
        assert len(cache) == 2
        assert cache.discard(1) == 2
        assert len(cache) == 0
        assert cache.components_discarded_on_commit == 2

    def test_abort_serves_newest_first(self):
        cache = UndoCache()
        cache.add(1, "a", "v1")
        cache.add(1, "a", "v2")
        undos = cache.take_for_abort(1)
        assert undos == [("a", "v2"), ("a", "v1")]

    def test_clean_surfaces_key_components_oldest_first(self):
        cache = UndoCache()
        cache.add(1, "page", "x")
        cache.add(2, "page", "y")
        cache.add(3, "other", "z")
        cleaned = cache.take_for_clean("page")
        assert cleaned == [(1, "x"), (2, "y")]
        assert len(cache) == 1
        assert cache.components_logged_on_clean == 2

    def test_byte_accounting(self):
        cache = UndoCache()
        cache.add(1, "key", "value")
        assert cache.bytes_cached == 8 + 3 + 5
        cache.discard(1)
        assert cache.bytes_cached == 0

    def test_overflow_evicts_oldest(self):
        cache = UndoCache(capacity_bytes=40)
        cache.add(1, "aaaa", "1111")  # 16 bytes
        cache.add(2, "bbbb", "2222")
        cache.add(3, "cccc", "3333")  # 48 > 40
        overflow = cache.take_overflow()
        assert [c.txid for c in overflow] == [1]
        assert cache.bytes_cached <= 40
        assert cache.components_evicted == 1

    def test_double_removal_safe(self):
        cache = UndoCache()
        cache.add(1, "k", "v")
        cache.take_for_clean("k")
        assert cache.take_for_abort(1) == []

    def test_clear(self):
        cache = UndoCache()
        cache.add(1, "k", "v")
        cache.clear()
        assert len(cache) == 0
        assert cache.bytes_cached == 0

    def test_component_size(self):
        assert UndoComponent(1, "ab", "cde").byte_size == 13

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            UndoCache(capacity_bytes=0)


class TestSplitMode:
    def test_committed_txn_never_logs_undo(self):
        node, _ = ClientNode.direct(undo_cache=UndoCache())
        drain(node.run_transaction([("a", "1"), ("b", "2")]))
        drain(node.rm.clean_all())
        assert node.rm.undo_records_logged == 0

    def test_clean_before_commit_logs_undo(self):
        node, _ = ClientNode.direct(undo_cache=UndoCache())
        txn = drain(node.rm.begin())
        drain(node.rm.update(txn, "a", "dirty"))
        drain(node.rm.clean_page("a"))
        assert node.rm.undo_records_logged == 1
        drain(node.rm.commit(txn))

    def test_abort_is_local(self):
        node, _ = ClientNode.direct(undo_cache=UndoCache())
        drain(node.run_transaction([("a", "keep")]))
        drain(node.run_transaction([("a", "no")], abort=True))
        assert node.read("a") == "keep"
        assert node.rm.remote_abort_reads == 0
        assert node.rm.local_aborts == 1

    def test_split_logs_fewer_bytes_than_combined(self):
        """The Section 5.2 saving: undo bytes never hit the log."""
        def run(undo_cache):
            node, _ = ClientNode.direct(undo_cache=undo_cache)
            drain(node.run_transaction([("key", "A" * 50)]))
            drain(node.run_transaction([("key", "B" * 50)]))
            drain(node.run_transaction([("key", "C" * 50)]))
            return node.rm.bytes_logged

        assert run(UndoCache()) < run(None)

    def test_crash_recovery_correct_with_splitting(self):
        node, _ = ClientNode.direct(undo_cache=UndoCache())
        drain(node.run_transaction([("a", "good")]))
        txn = drain(node.rm.begin())
        drain(node.rm.update(txn, "a", "bad"))
        drain(node.rm.clean_page("a"))  # undo forced to log first
        node.crash()
        drain(node.restart())
        assert node.db.stable["a"] == "good"

    def test_uncleaned_loser_with_splitting_rolls_back(self):
        """No undo in the log, but stable storage never saw the value."""
        node, _ = ClientNode.direct(undo_cache=UndoCache())
        drain(node.run_transaction([("a", "good")]))
        drain(node.rm.clean_all())
        txn = drain(node.rm.begin())
        drain(node.rm.update(txn, "a", "bad"))
        node.crash()  # cache (and the undo component) vanish
        drain(node.restart())
        assert node.db.stable["a"] == "good"

"""Tests for the assembled client node over the simulated stack."""

from repro.client import ClientNode, SimLogClient, UndoCache
from repro.core import ReplicationConfig, make_generator
from repro.net import Lan
from repro.server import SimLogServer
from repro.sim import Simulator

from ..conftest import drain


class TestDirectNode:
    def test_builder_returns_working_node(self):
        node, stores = ClientNode.direct(m=4, n=2)
        assert len(stores) == 4
        drain(node.run_transaction([("k", "v")]))
        assert node.read("k") == "v"

    def test_crash_clears_volatile_state(self):
        node, _ = ClientNode.direct(undo_cache=UndoCache())
        txn = drain(node.rm.begin())
        drain(node.rm.update(txn, "a", "1"))
        node.crash()
        assert node.db.cache == {}
        assert node.rm.active == {}
        assert len(node.rm.undo_cache) == 0


class TestSimulatedNode:
    def build(self):
        sim = Simulator()
        lan = Lan(sim)
        for i in range(3):
            SimLogServer(sim, lan, f"s{i}")
        client = SimLogClient(
            sim, lan, "node-client", [f"s{i}" for i in range(3)],
            ReplicationConfig(3, 2, delta=16), make_generator(3),
        )
        node = ClientNode.simulated(client)
        return sim, client, node

    def test_transactions_over_the_network(self):
        sim, client, node = self.build()
        result = {}

        def main():
            yield from client.initialize()
            yield from node.run_transaction([("acct", "100")])
            yield from node.run_transaction([("acct", "150")])
            result["value"] = node.read("acct")

        sim.spawn(main())
        sim.run(until=60)
        assert result["value"] == "150"

    def test_full_crash_recovery_over_the_network(self):
        sim, client, node = self.build()
        result = {}

        def main():
            yield from client.initialize()
            yield from node.run_transaction([("a", "1"), ("b", "2")])
            txn = yield from node.rm.begin()
            yield from node.rm.update(txn, "a", "dirty")
            node.crash()
            summary = yield from node.restart()
            result["summary"] = summary
            result["a"] = node.db.stable["a"]
            result["b"] = node.db.stable["b"]

        sim.spawn(main())
        sim.run(until=120)
        assert result["a"] == "1"
        assert result["b"] == "2"
        assert result["summary"]["winners"] == 1

    def test_abort_over_the_network(self):
        sim, client, node = self.build()
        result = {}

        def main():
            yield from client.initialize()
            yield from node.run_transaction([("x", "keep")])
            yield from node.run_transaction([("x", "drop")], abort=True)
            result["x"] = node.read("x")

        sim.spawn(main())
        sim.run(until=60)
        assert result["x"] == "keep"

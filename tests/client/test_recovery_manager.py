"""Tests for the WAL recovery manager (direct backend)."""

import pytest

from repro.client import (
    ClientNode,
    Database,
    TransactionError,
    TxnStatus,
    UndoCache,
    decode,
    encode_abort,
    encode_begin,
    encode_checkpoint,
    encode_commit,
    encode_redo,
    encode_undo,
    encode_update,
)

from ..conftest import drain


class TestEncoding:
    def test_roundtrips(self):
        assert decode(encode_begin(7)) == ("B", "7")
        assert decode(encode_update(1, "k", "old", "new")) == (
            "U", "1", "k", "old", "new")
        assert decode(encode_redo(2, "k", "v")) == ("R", "2", "k", "v")
        assert decode(encode_undo(3, "k", "o")) == ("N", "3", "k", "o")
        assert decode(encode_commit(4)) == ("C", "4")
        assert decode(encode_abort(5)) == ("A", "5")
        assert decode(encode_checkpoint([1, 2])) == ("K", "1,2")

    def test_separator_in_field_rejected(self):
        with pytest.raises(TransactionError):
            encode_update(1, "bad|key", "o", "n")

    def test_unknown_record_rejected(self):
        with pytest.raises(TransactionError):
            decode(b"X|junk")


class TestDatabase:
    def test_cache_over_stable(self):
        db = Database({"a": "1"})
        assert db.read("a") == "1"
        db.write_volatile("a", "2")
        assert db.read("a") == "2"
        assert db.stable["a"] == "1"

    def test_missing_key_reads_empty(self):
        assert Database().read("nope") == ""

    def test_clean_moves_to_stable(self):
        db = Database()
        db.write_volatile("k", "v")
        db.clean_to_stable("k")
        assert db.stable["k"] == "v"
        assert "k" not in db.cache

    def test_crash_drops_cache(self):
        db = Database({"a": "1"})
        db.write_volatile("a", "2")
        db.crash()
        assert db.read("a") == "1"


class TestTransactions:
    def test_commit_makes_updates_durable(self):
        node, _ = ClientNode.direct()
        drain(node.run_transaction([("a", "1"), ("b", "2")]))
        node.crash()
        drain(node.restart())
        assert node.db.stable["a"] == "1"
        assert node.db.stable["b"] == "2"

    def test_abort_restores_old_values(self):
        node, _ = ClientNode.direct()
        drain(node.run_transaction([("a", "1")]))
        drain(node.run_transaction([("a", "BAD")], abort=True))
        assert node.read("a") == "1"

    def test_abort_without_splitting_reads_log(self):
        node, _ = ClientNode.direct()
        drain(node.run_transaction([("a", "1"), ("b", "2")], abort=True))
        assert node.rm.remote_abort_reads == 2

    def test_double_commit_rejected(self):
        node, _ = ClientNode.direct()
        txn = drain(node.rm.begin())
        drain(node.rm.commit(txn))
        with pytest.raises(TransactionError):
            drain(node.rm.commit(txn))

    def test_update_after_abort_rejected(self):
        node, _ = ClientNode.direct()
        txn = drain(node.rm.begin())
        drain(node.rm.abort(txn))
        with pytest.raises(TransactionError):
            drain(node.rm.update(txn, "a", "1"))

    def test_status_transitions(self):
        node, _ = ClientNode.direct()
        txn = drain(node.rm.begin())
        assert txn.status is TxnStatus.ACTIVE
        drain(node.rm.commit(txn))
        assert txn.status is TxnStatus.COMMITTED

    def test_per_transaction_accounting(self):
        node, _ = ClientNode.direct()
        txn = drain(node.run_transaction([("a", "1"), ("b", "2")]))
        assert txn.records_written == 4  # begin + 2 updates + commit
        assert txn.bytes_logged > 0


class TestRestartRecovery:
    def test_in_flight_transaction_undone(self):
        node, _ = ClientNode.direct()
        drain(node.run_transaction([("a", "committed")]))
        txn = drain(node.rm.begin())
        drain(node.rm.update(txn, "a", "dirty"))
        node.crash()
        summary = drain(node.restart())
        assert node.db.stable["a"] == "committed"
        assert summary["winners"] == 1
        assert summary["losers"] >= 1

    def test_loser_cleaned_to_stable_is_rolled_back(self):
        node, _ = ClientNode.direct()
        drain(node.run_transaction([("a", "good")]))
        txn = drain(node.rm.begin())
        drain(node.rm.update(txn, "a", "uncommitted"))
        drain(node.rm.clean_page("a"))  # propagate dirty page
        assert node.db.stable["a"] == "uncommitted"
        node.crash()
        drain(node.restart())
        assert node.db.stable["a"] == "good"

    def test_interleaved_transactions(self):
        node, _ = ClientNode.direct()
        t1 = drain(node.rm.begin())
        t2 = drain(node.rm.begin())
        drain(node.rm.update(t1, "x", "t1"))
        drain(node.rm.update(t2, "y", "t2"))
        drain(node.rm.commit(t1))
        # t2 in flight at crash
        node.crash()
        drain(node.restart())
        assert node.db.stable.get("x") == "t1"
        assert node.db.stable.get("y", "") == ""

    def test_aborted_transaction_stays_aborted_after_recovery(self):
        node, _ = ClientNode.direct()
        drain(node.run_transaction([("k", "keep")]))
        drain(node.run_transaction([("k", "rollback")], abort=True))
        node.crash()
        drain(node.restart())
        assert node.db.stable["k"] == "keep"

    def test_multiple_crashes(self):
        node, _ = ClientNode.direct()
        for round_no in range(3):
            drain(node.run_transaction([("counter", str(round_no))]))
            node.crash()
            drain(node.restart())
        assert node.db.stable["counter"] == "2"
        assert node.crashes == 3

    def test_recovery_with_checkpoints_present(self):
        node, _ = ClientNode.direct(checkpoint_every=2)
        for i in range(6):
            drain(node.run_transaction([(f"k{i}", str(i))]))
        node.crash()
        summary = drain(node.restart())
        for i in range(6):
            assert node.db.stable[f"k{i}"] == str(i)
        assert summary["winners"] == 6


class TestCleaning:
    def test_clean_all_flushes_cache(self):
        node, _ = ClientNode.direct()
        drain(node.run_transaction([("a", "1"), ("b", "2")]))
        drain(node.rm.clean_all())
        assert node.db.cache == {}
        assert node.db.stable["a"] == "1"

    def test_clean_forces_log_first(self):
        """WAL: the log force precedes the page write."""
        node, _ = ClientNode.direct()
        txn = drain(node.rm.begin())
        drain(node.rm.update(txn, "a", "v"))
        backend_log = node.backend.replicated_log
        writes_before = backend_log.writes_performed
        drain(node.rm.clean_page("a"))
        # no new records needed (combined records already logged), but
        # the page moved and the log was forced (a no-op force here)
        assert node.db.stable["a"] == "v"
        assert backend_log.writes_performed == writes_before


class FlakyBackend:
    """An in-memory log backend with scripted quorum losses.

    ``fail_logs`` / ``fail_forces`` count down: while positive, the
    next call raises ``NotEnoughServers`` (the log lost its quorum and,
    as with a real re-initialization, every record buffered under the
    old quorum is gone).
    """

    def __init__(self):
        self.records = []
        self._buffered = []
        self.fail_logs = 0
        self.fail_forces = 0
        self.reinits = 0

    def log(self, data, kind="data"):
        from repro.core import NotEnoughServers

        if self.fail_logs > 0:
            self.fail_logs -= 1
            self._buffered.clear()
            raise NotEnoughServers("log quorum lost")
        self._buffered.append((data, kind))
        return len(self.records) + len(self._buffered)
        yield  # pragma: no cover — generator protocol

    def force(self):
        from repro.core import NotEnoughServers

        if self.fail_forces > 0:
            self.fail_forces -= 1
            self._buffered.clear()
            raise NotEnoughServers("force quorum lost")
        self.records.extend(self._buffered)
        self._buffered.clear()
        return None
        yield  # pragma: no cover

    def reinitialize(self):
        self.reinits += 1
        self._buffered.clear()
        return None
        yield  # pragma: no cover


class TestLogRetryUnderQuorumLoss:
    def _manager(self, backend):
        from repro.client.recovery_manager import RecoveryManager

        db = Database()
        rm = RecoveryManager(backend, db,
                             reinitialize=backend.reinitialize)
        return rm, db

    def test_begin_retried_after_transient_loss(self, drive):
        backend = FlakyBackend()
        backend.fail_logs = 1
        rm, _db = self._manager(backend)
        txn = drive(rm.begin())
        assert txn.txid == 1
        assert rm.backend_recoveries == 1
        assert backend.reinits == 1

    def test_mid_transaction_loss_not_silently_retried(self, drive):
        from repro.core import NotEnoughServers

        backend = FlakyBackend()
        rm, _db = self._manager(backend)
        txn = drive(rm.begin())
        # the begin record is already buffered under the old quorum; a
        # retry would lose it and lie about durability — must raise
        backend.fail_logs = 1
        with pytest.raises(NotEnoughServers):
            drive(rm.update(txn, "a", "1"))
        assert rm.backend_recoveries == 0

    def test_without_reinitialize_failures_propagate(self, drive):
        from repro.core import NotEnoughServers
        from repro.client.recovery_manager import RecoveryManager

        backend = FlakyBackend()
        backend.fail_logs = 1
        rm = RecoveryManager(backend, Database())
        with pytest.raises(NotEnoughServers):
            drive(rm.begin())

    def test_commit_loss_aborts_rolls_back_and_recovers(self, drive):
        from repro.client import TransactionAborted

        backend = FlakyBackend()
        rm, db = self._manager(backend)
        db.write_volatile("a", "0")
        txn = drive(rm.begin())
        drive(rm.update(txn, "a", "1"))
        assert db.read("a") == "1"
        backend.fail_forces = 1
        with pytest.raises(TransactionAborted):
            drive(rm.commit(txn))
        # volatile state rolled back, transaction closed, log restored
        assert db.read("a") == "0"
        assert txn.status is TxnStatus.ABORTED
        assert txn.txid not in rm.active
        assert rm.backend_recoveries == 1
        # the caller can simply run the transaction again
        txn2 = drive(rm.begin())
        drive(rm.update(txn2, "a", "1"))
        drive(rm.commit(txn2))
        assert txn2.status is TxnStatus.COMMITTED
        assert db.read("a") == "1"

    def test_commit_loss_discards_cached_undo(self, drive):
        from repro.client import TransactionAborted
        from repro.client.recovery_manager import RecoveryManager

        backend = FlakyBackend()
        cache = UndoCache()
        db = Database()
        rm = RecoveryManager(backend, db, undo_cache=cache,
                             reinitialize=backend.reinitialize)
        txn = drive(rm.begin())
        drive(rm.update(txn, "k", "v"))
        backend.fail_forces = 1
        with pytest.raises(TransactionAborted):
            drive(rm.commit(txn))
        assert cache.take_for_abort(txn.txid) == []

"""Tests for the interleaved on-disk log stream and crash scan."""

import pytest

from repro.core import LogServerStore
from repro.core.records import StoredRecord
from repro.storage import DiskLogStream, StreamEntry


def write_entry(client, lsn, epoch=1, present=True, data=b"x" * 50):
    return StreamEntry(
        "write", client,
        StoredRecord(lsn=lsn, epoch=epoch, present=present,
                     data=data if present else b""),
    )


class TestStreamEntry:
    def test_write_requires_record(self):
        with pytest.raises(ValueError):
            StreamEntry("write", "c1")

    def test_install_requires_epoch(self):
        with pytest.raises(ValueError):
            StreamEntry("install", "c1")

    def test_byte_size(self):
        entry = write_entry("c1", 1, data=b"x" * 100)
        assert entry.byte_size == 124  # 24 header + 100 payload


class TestTrackSealing:
    def test_entries_group_into_tracks(self):
        stream = DiskLogStream(track_bytes=300)
        for lsn in range(1, 9):  # 8 × 74 bytes
            stream.append(write_entry("c1", lsn))
        # 4 entries (296 B) fit per track: one sealed, four still open
        assert len(stream.pages) == 1
        assert stream.open_entry_count == 4
        stream.append(write_entry("c1", 9))  # 5th overflows: seals
        assert len(stream.pages) == 2
        assert stream.open_entry_count == 1

    def test_oversized_entry_gets_own_track(self):
        stream = DiskLogStream(track_bytes=100)
        stream.append(write_entry("c1", 1, data=b"y" * 500))
        assert len(stream.pages) == 1

    def test_seal_empty_is_noop(self):
        stream = DiskLogStream()
        assert stream.seal_track() is None

    def test_interleaves_clients(self):
        stream = DiskLogStream(track_bytes=10_000)
        stream.append(write_entry("c1", 1))
        stream.append(write_entry("c2", 7))
        stream.append(write_entry("c1", 2))
        stream.seal_track()
        entries = list(stream.entries())
        assert [(e.client_id, e.record.lsn) for e in entries] == [
            ("c1", 1), ("c2", 7), ("c1", 2),
        ]


class TestCrashScan:
    def build_reference(self):
        """A live store + stream with writes, copies and installs."""
        stream = DiskLogStream(track_bytes=256)
        live = LogServerStore("s1")
        for lsn in range(1, 20):
            live.server_write_log("c1", lsn, 1, True, b"x" * 40)
            stream.append(write_entry("c1", lsn, data=b"x" * 40))
        live.server_write_log("c2", 1, 2, True, b"z" * 40)
        stream.append(write_entry("c2", 1, epoch=2, data=b"z" * 40))
        # recovery traffic for c1
        live.copy_log("c1", 19, 3, True, b"x" * 40)
        stream.append(StreamEntry("copy", "c1", StoredRecord(
            lsn=19, epoch=3, present=True, data=b"x" * 40)))
        live.copy_log("c1", 20, 3, False)
        stream.append(StreamEntry("copy", "c1", StoredRecord(
            lsn=20, epoch=3, present=False)))
        live.install_copies("c1", 3)
        stream.append(StreamEntry("install", "c1", None, 3))
        return stream, live

    def test_rebuild_equals_live_state(self):
        stream, live = self.build_reference()
        rebuilt, replayed = stream.crash_scan("s1")
        assert rebuilt.dump_table("c1") == live.dump_table("c1")
        assert rebuilt.dump_table("c2") == live.dump_table("c2")
        assert replayed == 23

    def test_rebuild_includes_open_track_with_nvram(self):
        """NVRAM makes the unsealed tail durable."""
        stream = DiskLogStream(track_bytes=100_000)  # nothing seals
        stream.append(write_entry("c1", 1))
        rebuilt, _ = stream.crash_scan("s1")
        assert rebuilt.client_state("c1").high_lsn == 1

    def test_rebuild_without_nvram_loses_open_track(self):
        """Without NVRAM the open track is volatile (the footnote)."""
        stream = DiskLogStream(track_bytes=200)
        for lsn in range(1, 6):
            stream.append(write_entry("c1", lsn))
        sealed_high = max(
            e.record.lsn for _a, track in stream.pages.scan()
            for e in track
        )
        rebuilt, _ = stream.crash_scan("s1", lose_open_track=True)
        assert rebuilt.client_state("c1").high_lsn == sealed_high
        assert sealed_high < 5  # records were genuinely lost

    def test_staged_but_uninstalled_copies_stay_invisible(self):
        stream = DiskLogStream(track_bytes=256)
        stream.append(write_entry("c1", 1))
        stream.append(StreamEntry("copy", "c1", StoredRecord(
            lsn=1, epoch=2, present=True, data=b"c")))
        # crash before install
        rebuilt, _ = stream.crash_scan("s1")
        assert rebuilt.server_read_log("c1", 1).epoch == 1


class TestCheckpoints:
    def test_checkpoint_bounds_scan(self):
        stream = DiskLogStream(track_bytes=256)
        live = LogServerStore("s1")
        for lsn in range(1, 40):
            live.server_write_log("c1", lsn, 1, True, b"x" * 40)
            stream.append(write_entry("c1", lsn, data=b"x" * 40))
            if lsn == 20:
                stream.checkpoint(live)
        full = sum(1 for _ in stream.entries())
        after_cp = stream.scan_cost_with_checkpoint()
        assert after_cp < full

    def test_checkpoint_snapshot_matches_store_intervals(self):
        stream = DiskLogStream(track_bytes=256)
        live = LogServerStore("s1")
        for lsn in range(1, 10):
            live.server_write_log("c1", lsn, 1, True, b"d")
            stream.append(write_entry("c1", lsn, data=b"d"))
        cp = stream.checkpoint(live)
        assert cp.intervals == {"c1": ((1, 1, 9),)}

    def test_no_checkpoint_scans_everything(self):
        stream = DiskLogStream(track_bytes=256)
        for lsn in range(1, 10):
            stream.append(write_entry("c1", lsn))
        assert stream.scan_cost_with_checkpoint() == 9

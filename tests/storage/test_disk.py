"""Tests for the disk timing model."""

import pytest

from repro.sim import Simulator
from repro.storage import (
    FAST_1987_DISK,
    SLOW_1987_DISK,
    DiskParams,
    MirroredDisks,
    SimDisk,
)


class TestDiskParams:
    def test_rotation_time(self):
        assert DiskParams(rpm=3600).rotation_s == pytest.approx(1 / 60)
        assert DiskParams(rpm=7200).rotation_s == pytest.approx(1 / 120)

    def test_transfer_scales_with_bytes(self):
        p = DiskParams(rpm=3600, track_bytes=8192)
        assert p.transfer_s(8192) == pytest.approx(p.rotation_s)
        assert p.transfer_s(4096) == pytest.approx(p.rotation_s / 2)

    def test_sequential_track_write_components(self):
        p = SLOW_1987_DISK
        expected = p.track_to_track_seek_s + p.half_rotation_s + p.rotation_s
        assert p.sequential_track_write_s() == pytest.approx(expected)

    def test_random_read_uses_average_seek(self):
        p = SLOW_1987_DISK
        assert p.random_read_s(512) > p.avg_seek_s

    def test_forced_write_pays_rotational_latency(self):
        """The Section 4.1 point: independent forces are expensive."""
        p = SLOW_1987_DISK
        force = p.forced_record_write_s(700)
        assert force >= p.half_rotation_s
        # 170 forces/second would need a service time below 5.9 ms
        assert force > 1 / 170.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DiskParams(rpm=0)
        with pytest.raises(ValueError):
            DiskParams(track_bytes=0)
        with pytest.raises(ValueError):
            DiskParams(avg_seek_s=-1)


class TestSimDisk:
    def test_sequential_writes_serialize(self):
        sim = Simulator()
        disk = SimDisk(sim, SLOW_1987_DISK)

        def writer():
            for _ in range(4):
                yield from disk.write_track()

        sim.spawn(writer())
        sim.run()
        assert sim.now == pytest.approx(
            4 * SLOW_1987_DISK.sequential_track_write_s()
        )
        assert disk.tracks_written == 4
        assert disk.bytes_written == 4 * SLOW_1987_DISK.track_bytes

    def test_partial_track_write(self):
        sim = Simulator()
        disk = SimDisk(sim, SLOW_1987_DISK)

        def writer():
            yield from disk.write_track(1000)

        sim.spawn(writer())
        sim.run()
        assert disk.bytes_written == 1000
        assert sim.now < SLOW_1987_DISK.sequential_track_write_s()

    def test_utilization_tracked(self):
        sim = Simulator()
        disk = SimDisk(sim, SLOW_1987_DISK)

        def writer():
            yield from disk.write_track()

        sim.spawn(writer())
        sim.run(until=1.0)
        expected = SLOW_1987_DISK.sequential_track_write_s() / 1.0
        assert disk.utilization() == pytest.approx(expected)

    def test_fast_disk_faster(self):
        assert (FAST_1987_DISK.sequential_track_write_s()
                < SLOW_1987_DISK.sequential_track_write_s() * 2)
        # per byte the fast disk is much cheaper
        slow_per_byte = (SLOW_1987_DISK.sequential_track_write_s()
                         / SLOW_1987_DISK.track_bytes)
        fast_per_byte = (FAST_1987_DISK.sequential_track_write_s()
                         / FAST_1987_DISK.track_bytes)
        assert fast_per_byte < slow_per_byte

    def test_reads_counted(self):
        sim = Simulator()
        disk = SimDisk(sim, SLOW_1987_DISK)

        def reader():
            yield from disk.random_read(4096)

        sim.spawn(reader())
        sim.run()
        assert disk.reads == 1
        assert disk.bytes_read == 4096


class TestMirroredDisks:
    def test_write_waits_for_both(self):
        sim = Simulator()
        mirror = MirroredDisks(sim, SLOW_1987_DISK)

        def writer():
            yield from mirror.write_track()

        sim.spawn(writer())
        sim.run()
        # both writes run concurrently: elapsed = one track write
        assert sim.now == pytest.approx(
            SLOW_1987_DISK.sequential_track_write_s()
        )
        assert mirror.primary.tracks_written == 1
        assert mirror.secondary.tracks_written == 1

    def test_force_record_hits_both(self):
        sim = Simulator()
        mirror = MirroredDisks(sim, SLOW_1987_DISK)

        def writer():
            yield from mirror.force_record(700)

        sim.spawn(writer())
        sim.run()
        assert mirror.primary.forces == 1
        assert mirror.secondary.forces == 1

    def test_read_uses_primary(self):
        sim = Simulator()
        mirror = MirroredDisks(sim, SLOW_1987_DISK)

        def reader():
            yield from mirror.random_read(512)

        sim.spawn(reader())
        sim.run()
        assert mirror.primary.reads == 1
        assert mirror.secondary.reads == 0

    def test_params_exposed(self):
        sim = Simulator()
        mirror = MirroredDisks(sim, FAST_1987_DISK)
        assert mirror.params.track_bytes == FAST_1987_DISK.track_bytes

"""Tests for the non-volatile buffer model."""

import pytest

from repro.sim import Simulator
from repro.storage import NvramBuffer, NvramFullError


@pytest.fixture
def nvram():
    return NvramBuffer(Simulator(), capacity_bytes=16 * 1024,
                       reserved_for_intervals=1024)


class TestAppendDrain:
    def test_append_accumulates(self, nvram):
        nvram.append(1000)
        nvram.append(500)
        assert nvram.level == 1500
        assert nvram.total_appended == 1500

    def test_overflow_sheds(self, nvram):
        nvram.append(nvram.data_capacity)
        with pytest.raises(NvramFullError):
            nvram.append(1)
        assert nvram.sheds == 1

    def test_negative_append_rejected(self, nvram):
        with pytest.raises(ValueError):
            nvram.append(-1)

    def test_drain_partial(self, nvram):
        nvram.append(5000)
        assert nvram.drain(3000) == 3000
        assert nvram.level == 2000

    def test_drain_more_than_level(self, nvram):
        nvram.append(100)
        assert nvram.drain(1000) == 100
        assert nvram.level == 0

    def test_track_ready(self, nvram):
        assert not nvram.track_ready(8192)
        nvram.append(8192)
        assert nvram.track_ready(8192)

    def test_free_accounts_reservation(self, nvram):
        assert nvram.free == 16 * 1024 - 1024
        nvram.append(100)
        assert nvram.free == 16 * 1024 - 1024 - 100


class TestIntervalRegion:
    def test_roundtrip(self, nvram):
        nvram.store_intervals({"c1": [(1, 1, 5)]})
        assert nvram.load_intervals() == {"c1": [(1, 1, 5)]}

    def test_crash_preserves_level_and_intervals(self, nvram):
        nvram.append(2000)
        nvram.store_intervals("snapshot")
        level, intervals = nvram.crash_preserves()
        assert level == 2000
        assert intervals == "snapshot"


class TestValidation:
    def test_capacity_must_exceed_reservation(self):
        with pytest.raises(ValueError):
            NvramBuffer(Simulator(), capacity_bytes=1024,
                        reserved_for_intervals=1024)

    def test_occupancy_tracks_level(self):
        sim = Simulator()
        nvram = NvramBuffer(sim, capacity_bytes=16 * 1024)
        nvram.append(1000)
        assert nvram.occupancy.current == 1000
        nvram.drain(1000)
        assert nvram.occupancy.current == 0
        assert nvram.occupancy.peak == 1000

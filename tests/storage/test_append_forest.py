"""Tests for the append-forest (Section 4.3, Figures 4-2/4-3)."""

import pytest

from repro.storage import AppendForest, AppendForestError


def build_forest(n_keys: int) -> AppendForest:
    forest = AppendForest()
    for key in range(1, n_keys + 1):
        forest.append_key(key, f"loc{key}")
    return forest


class TestAppendRules:
    def test_keys_must_increase(self):
        forest = build_forest(3)
        with pytest.raises(AppendForestError):
            forest.append_key(2, "dup")
        with pytest.raises(AppendForestError):
            forest.append_key(3, "dup")

    def test_range_node_entry_count_checked(self):
        forest = AppendForest()
        with pytest.raises(AppendForestError):
            forest.append(1, 3, ("only-one",))

    def test_empty_range_rejected(self):
        forest = AppendForest()
        with pytest.raises(AppendForestError):
            forest.append(5, 4, ())

    def test_eleven_node_forest_heights(self):
        # Figure 4-3: an 11-node forest = trees of 7, 3, 1 nodes
        forest = build_forest(11)
        assert forest.tree_heights() == [2, 1, 0]

    def test_figure_4_3_narration_key_12(self):
        forest = build_forest(12)
        root = forest.store.read(forest.root_address)
        assert root.hi == 12
        assert forest.store.read(root.forest).hi == 11

    def test_figure_4_3_narration_key_13(self):
        forest = build_forest(13)
        root = forest.store.read(forest.root_address)
        assert root.hi == 13
        assert root.height == 1
        assert forest.store.read(root.left).hi == 11
        assert forest.store.read(root.right).hi == 12
        assert forest.store.read(root.forest).hi == 10

    def test_figure_4_3_narration_key_14(self):
        forest = build_forest(14)
        root = forest.store.read(forest.root_address)
        assert root.hi == 14
        assert forest.store.read(root.left).hi == 10
        assert forest.store.read(root.right).hi == 13
        assert forest.store.read(root.forest).hi == 7

    def test_complete_forest_is_single_tree(self):
        for n in (1, 3, 7, 15, 31):
            forest = build_forest(n)
            assert len(forest.tree_heights()) == 1, n

    def test_at_most_two_trees_share_height(self):
        for n in range(1, 64):
            forest = build_forest(n)
            forest.check_invariants()


class TestSearch:
    def test_all_keys_findable(self):
        forest = build_forest(25)
        for key in range(1, 26):
            assert forest.search(key) == f"loc{key}"

    def test_missing_keys_raise(self):
        forest = build_forest(10)
        with pytest.raises(KeyError):
            forest.search(11)
        with pytest.raises(KeyError):
            forest.search(0)

    def test_contains(self):
        forest = build_forest(5)
        assert 3 in forest
        assert 9 not in forest

    def test_empty_forest(self):
        forest = AppendForest()
        with pytest.raises(KeyError):
            forest.search(1)
        assert forest.root_address is None
        assert forest.high_key is None

    def test_gap_in_key_space(self):
        forest = AppendForest()
        forest.append(1, 5, tuple(range(5)))
        forest.append(10, 12, tuple(range(3)))
        assert forest.search(3) == 2
        assert forest.search(11) == 1
        with pytest.raises(KeyError):
            forest.search(7)  # between the two nodes

    def test_search_cost_logarithmic(self):
        """O(log n) pointer traversals (Section 4.3)."""
        import math
        forest = build_forest(1023)
        worst = 0
        for key in range(1, 1024, 37):
            forest.search(key)
            worst = max(worst, forest.last_search_hops)
        # forest chain ≤ log2(n) trees, tree search ≤ log2(n) levels
        assert worst <= 2 * math.ceil(math.log2(1024)) + 1

    def test_range_nodes_index_many_records(self):
        # "each page sized node of the tree can index one thousand or
        # more records"
        forest = AppendForest()
        forest.append(1, 1000, tuple(f"t0:{i}" for i in range(1000)))
        forest.append(1001, 2000, tuple(f"t1:{i}" for i in range(1000)))
        assert forest.search(1) == "t0:0"
        assert forest.search(1500) == "t1:499"
        assert len(forest) == 2  # two page-sized nodes


class TestRebuild:
    def test_rebuild_matches_original(self):
        forest = build_forest(37)
        rebuilt = AppendForest(forest.store)
        rebuilt.rebuild_from_store()
        rebuilt.check_invariants()
        assert rebuilt.tree_heights() == forest.tree_heights()
        assert list(rebuilt.keys()) == list(forest.keys())
        assert rebuilt.high_key == 37

    def test_rebuild_empty(self):
        forest = AppendForest()
        forest.rebuild_from_store()
        assert forest.high_key is None

    def test_rebuild_after_torn_tail(self):
        """Losing the last page yields the previous consistent forest."""
        forest = build_forest(12)
        forest.store.truncate_tail(11)
        rebuilt = AppendForest(forest.store)
        rebuilt.rebuild_from_store()
        rebuilt.check_invariants()
        assert list(rebuilt.keys()) == list(range(1, 12))

    def test_append_continues_after_rebuild(self):
        forest = build_forest(9)
        rebuilt = AppendForest(forest.store)
        rebuilt.rebuild_from_store()
        rebuilt.append_key(10, "loc10")
        rebuilt.check_invariants()
        assert rebuilt.search(10) == "loc10"
        assert rebuilt.search(1) == "loc1"


class TestWriteOnceDiscipline:
    def test_all_pointers_point_backwards(self):
        """Every pointer names an earlier page: write-once safe."""
        forest = build_forest(50)
        for address in range(len(forest.store)):
            node = forest.store.read(address)
            for pointer in (node.left, node.right, node.forest):
                if pointer is not None:
                    assert pointer < address

    def test_nodes_never_rewritten(self):
        forest = build_forest(20)
        assert forest.store.appends == 20  # exactly one append per key

"""Property-based tests for the append-forest."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import AppendForest


@settings(max_examples=80, deadline=None)
@given(n=st.integers(min_value=0, max_value=200))
def test_invariants_hold_for_any_size(n):
    forest = AppendForest()
    for key in range(1, n + 1):
        forest.append_key(key, key * 10)
    forest.check_invariants()
    assert list(forest.keys()) == list(range(1, n + 1))


@settings(max_examples=60, deadline=None)
@given(
    gaps=st.lists(st.integers(min_value=1, max_value=9),
                  min_size=1, max_size=40)
)
def test_sparse_keys_all_findable(gaps):
    """Keys with arbitrary gaps: every appended key stays findable."""
    forest = AppendForest()
    key = 0
    keys = []
    for gap in gaps:
        key += gap
        forest.append_key(key, f"v{key}")
        keys.append(key)
    forest.check_invariants()
    for k in keys:
        assert forest.search(k) == f"v{k}"
    # and keys in the gaps are absent
    present = set(keys)
    for k in range(1, key + 1):
        if k not in present:
            try:
                forest.search(k)
            except KeyError:
                continue
            raise AssertionError(f"phantom key {k}")


@settings(max_examples=40, deadline=None)
@given(
    spans=st.lists(st.integers(min_value=1, max_value=50),
                   min_size=1, max_size=25)
)
def test_range_nodes_cover_every_key(spans):
    """Range-keyed nodes: each key in each range maps to its entry."""
    forest = AppendForest()
    lo = 1
    expected = {}
    for span in spans:
        hi = lo + span - 1
        entries = tuple(f"{lo}+{i}" for i in range(span))
        forest.append(lo, hi, entries)
        for i in range(span):
            expected[lo + i] = f"{lo}+{i}"
        lo = hi + 1
    forest.check_invariants()
    for key, value in expected.items():
        assert forest.search(key) == value


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=120),
    cut=st.integers(min_value=0, max_value=120),
)
def test_rebuild_from_any_prefix(n, cut):
    """Rebuilding from any durable prefix gives a valid forest."""
    forest = AppendForest()
    for key in range(1, n + 1):
        forest.append_key(key, key)
    keep = min(cut, len(forest.store))
    forest.store.truncate_tail(keep)
    rebuilt = AppendForest(forest.store)
    rebuilt.rebuild_from_store()
    rebuilt.check_invariants()
    assert list(rebuilt.keys()) == list(range(1, keep + 1))

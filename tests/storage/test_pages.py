"""Tests for append-only page stores."""

import pytest

from repro.storage import AppendOnlyPageStore, PageStoreError, ReusablePageStore


class TestAppendOnlyPageStore:
    def test_addresses_increase(self):
        store = AppendOnlyPageStore()
        assert store.append("a") == 0
        assert store.append("b") == 1
        assert store.next_address == 2

    def test_read_back(self):
        store = AppendOnlyPageStore()
        addr = store.append({"k": 1})
        assert store.read(addr) == {"k": 1}

    def test_out_of_range_read(self):
        store = AppendOnlyPageStore()
        with pytest.raises(PageStoreError):
            store.read(0)
        store.append("x")
        with pytest.raises(PageStoreError):
            store.read(1)
        with pytest.raises(PageStoreError):
            store.read(-1)

    def test_scan(self):
        store = AppendOnlyPageStore()
        for ch in "abc":
            store.append(ch)
        assert list(store.scan()) == [(0, "a"), (1, "b"), (2, "c")]
        assert list(store.scan(start=2)) == [(2, "c")]

    def test_truncate_tail(self):
        store = AppendOnlyPageStore()
        for ch in "abcd":
            store.append(ch)
        store.truncate_tail(2)
        assert len(store) == 2
        assert store.read(1) == "b"

    def test_truncate_bounds(self):
        store = AppendOnlyPageStore()
        store.append("a")
        with pytest.raises(PageStoreError):
            store.truncate_tail(5)
        with pytest.raises(PageStoreError):
            store.truncate_tail(-1)

    def test_counters(self):
        store = AppendOnlyPageStore()
        store.append("a")
        store.read(0)
        store.read(0)
        assert store.appends == 1
        assert store.reads == 2


class TestReusablePageStore:
    def test_known_location_roundtrip(self):
        store = ReusablePageStore()
        assert store.read_known_location() is None
        store.write_known_location("checkpoint-1")
        assert store.read_known_location() == "checkpoint-1"
        store.write_known_location("checkpoint-2")
        assert store.read_known_location() == "checkpoint-2"
        assert store.checkpoint_writes == 2

    def test_known_location_independent_of_appends(self):
        store = ReusablePageStore()
        store.append("data")
        store.write_known_location("cp")
        assert store.read(0) == "data"
        assert store.read_known_location() == "cp"

"""Tests for write-once (optical) media support (Section 4.3).

"They may be checkpointed to a known location on a reusable disk or to
a write once disk along with the log data stream."
"""

from repro.core import LogServerStore
from repro.core.records import StoredRecord
from repro.server.index import ServerLogIndex
from repro.storage import DiskLogStream, StreamEntry
from repro.storage.log_stream import Checkpoint


def write_entry(lsn, client="c", data=b"x" * 40):
    return StreamEntry("write", client,
                       StoredRecord(lsn=lsn, epoch=1, data=data))


def build(write_once=True, records=30, checkpoint_at=(10, 20)):
    stream = DiskLogStream(track_bytes=200, write_once=write_once)
    live = LogServerStore("s")
    for lsn in range(1, records + 1):
        live.server_write_log("c", lsn, 1, True, b"x" * 40)
        stream.append(write_entry(lsn))
        if lsn in checkpoint_at:
            stream.checkpoint(live)
    stream.seal_track()
    return stream, live


class TestWriteOnceCheckpoints:
    def test_checkpoint_appended_to_stream(self):
        stream, _live = build()
        kinds = [type(stream.pages.read(a)).__name__
                 for a in range(len(stream.pages))]
        assert kinds.count("Checkpoint") == 2
        # never touched the reusable known location
        assert stream.pages.read_known_location() is None

    def test_latest_checkpoint_is_newest(self):
        stream, live = build()
        cp = stream.latest_checkpoint()
        assert isinstance(cp, Checkpoint)
        assert cp.intervals["c"] == ((1, 1, 20),)

    def test_entries_skip_checkpoint_pages(self):
        stream, _live = build()
        lsns = [e.record.lsn for e in stream.entries()]
        assert lsns == list(range(1, 31))

    def test_crash_scan_rebuilds_exactly(self):
        stream, live = build()
        rebuilt, _n = stream.crash_scan("s")
        assert rebuilt.dump_table("c") == live.dump_table("c")

    def test_scan_cost_bounded_by_in_stream_checkpoint(self):
        stream, _live = build()
        total = sum(1 for _ in stream.entries())
        assert stream.scan_cost_with_checkpoint() < total

    def test_no_checkpoint_scans_all(self):
        stream, _live = build(checkpoint_at=())
        assert stream.latest_checkpoint() is None
        assert stream.scan_cost_with_checkpoint() == 30

    def test_reusable_mode_unchanged(self):
        stream, live = build(write_once=False)
        cp = stream.latest_checkpoint()
        assert isinstance(cp, Checkpoint)
        # checkpoints live in the known location, not the stream
        pages = [stream.pages.read(a) for a in range(len(stream.pages))]
        assert not any(isinstance(p, Checkpoint) for p in pages)

    def test_index_rebuild_skips_checkpoint_pages(self):
        stream, _live = build()
        index = ServerLogIndex()
        index.rebuild(stream)
        for lsn in range(1, 31):
            assert index.locate("c", lsn) is not None

    def test_all_pointers_backward_write_once_safe(self):
        """Checkpoint track_index only ever names later tracks."""
        stream, _live = build()
        for address in range(len(stream.pages)):
            page = stream.pages.read(address)
            if isinstance(page, Checkpoint):
                assert page.track_index == address + 1

"""Property tests: the durable stream is always a faithful authority.

Whatever sequence of writes, copies and installs a server performs,
replaying its stream must rebuild exactly the semantic store — and the
interval-list checkpoint must never under-report what a tail scan
would need.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LogServerStore, ProtocolError
from repro.core.records import StoredRecord
from repro.storage import DiskLogStream, StreamEntry

# script ops: ("write", lsn_step, present) | ("copy+install",) | ("checkpoint",)
op_strategy = st.one_of(
    st.tuples(st.just("write"), st.integers(1, 3), st.booleans()),
    st.just(("recover",)),
    st.just(("checkpoint",)),
)


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(op_strategy, max_size=30),
       track_bytes=st.sampled_from([128, 512, 4096]))
def test_stream_replay_rebuilds_store_exactly(ops, track_bytes):
    stream = DiskLogStream(track_bytes=track_bytes)
    live = LogServerStore("s")
    lsn = 0
    epoch = 1
    for op in ops:
        if op[0] == "write":
            _tag, step, present = op
            lsn += step  # steps > 1 model NewInterval gaps
            record = StoredRecord(lsn=lsn, epoch=epoch, present=present,
                                  data=b"" if not present else b"d" * 20)
            live.server_write_log("c", lsn, epoch, present, record.data)
            stream.append(StreamEntry("write", "c", record))
        elif op[0] == "recover":
            # a client restart: copy the last record + a guard, install
            if lsn == 0:
                continue
            epoch += 1
            state = live.client_state("c")
            last = state.lookup(lsn)
            copy = StoredRecord(lsn=lsn, epoch=epoch, present=last.present,
                                data=last.data)
            guard = StoredRecord(lsn=lsn + 1, epoch=epoch, present=False)
            live.copy_log("c", copy.lsn, epoch, copy.present, copy.data)
            stream.append(StreamEntry("copy", "c", copy))
            live.copy_log("c", guard.lsn, epoch, False)
            stream.append(StreamEntry("copy", "c", guard))
            live.install_copies("c", epoch)
            stream.append(StreamEntry("install", "c", None, epoch))
            lsn += 1
        else:
            stream.checkpoint(live)

    rebuilt, _count = stream.crash_scan("s")
    assert rebuilt.dump_table("c") == live.dump_table("c")
    # checkpoint (if any) must cover the scan: replaying from the
    # checkpointed track yields interval ends consistent with live
    cp = stream.pages.read_known_location()
    if cp is not None:
        assert stream.scan_cost_with_checkpoint() <= sum(
            1 for _ in stream.entries()
        )


@settings(max_examples=40, deadline=None)
@given(
    n_records=st.integers(0, 60),
    track_bytes=st.sampled_from([128, 1024]),
    lose_open=st.booleans(),
)
def test_crash_scan_prefix_property(n_records, track_bytes, lose_open):
    """Losing the open track yields a clean prefix, never corruption."""
    stream = DiskLogStream(track_bytes=track_bytes)
    for lsn in range(1, n_records + 1):
        stream.append(StreamEntry("write", "c", StoredRecord(
            lsn=lsn, epoch=1, data=b"x" * 16)))
    rebuilt, _ = stream.crash_scan("s", lose_open_track=lose_open)
    state = rebuilt.client_state("c")
    high = state.high_lsn or 0
    assert high <= n_records
    if not lose_open:
        assert high == n_records
    # contiguous prefix: every LSN up to high is present
    for lsn in range(1, high + 1):
        assert state.lookup(lsn) is not None

"""Tests for failure injection."""

import random

import pytest

from repro.core import LogServerStore
from repro.sim import (
    Simulator,
    UpDownProcess,
    bernoulli_outage_sample,
    mttr_for_unavailability,
    restore_all,
    unavailability,
)


class TestUnavailabilityMath:
    def test_long_run_fraction(self):
        assert unavailability(mtbf=95, mttr=5) == pytest.approx(0.05)

    def test_mttr_inverse(self):
        mttr = mttr_for_unavailability(mtbf=100, p=0.05)
        assert unavailability(100, mttr) == pytest.approx(0.05)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            unavailability(0, 5)
        with pytest.raises(ValueError):
            mttr_for_unavailability(10, 1.0)


class TestUpDownProcess:
    def test_drives_target_through_cycles(self):
        sim = Simulator()
        store = LogServerStore("s")
        proc = UpDownProcess(sim, store, mtbf=10, mttr=1,
                             rng=random.Random(0))
        sim.run(until=200)
        assert proc.crashes > 5

    def test_long_run_unavailability_near_model(self):
        sim = Simulator()
        store = LogServerStore("s")
        transitions = []
        proc = UpDownProcess(
            sim, store, mtbf=9.5, mttr=0.5, rng=random.Random(1),
            on_change=lambda up: transitions.append((sim.now, up)),
        )
        sim.run(until=5000)
        # integrate downtime from transitions
        down = 0.0
        last_down_start = None
        for t, up in transitions:
            if not up:
                last_down_start = t
            elif last_down_start is not None:
                down += t - last_down_start
                last_down_start = None
        assert down / 5000 == pytest.approx(0.05, abs=0.02)

    def test_stop_interrupts(self):
        sim = Simulator()
        store = LogServerStore("s")
        proc = UpDownProcess(sim, store, mtbf=10, mttr=1,
                             rng=random.Random(0))
        proc.stop()
        sim.run(until=100)
        assert proc.process.triggered


class TestBernoulliOutage:
    def test_p_zero_keeps_all_up(self):
        stores = [LogServerStore(f"s{i}") for i in range(10)]
        states = bernoulli_outage_sample(stores, 0.0, random.Random(0))
        assert all(states)
        assert all(s.available for s in stores)

    def test_p_one_downs_all(self):
        stores = [LogServerStore(f"s{i}") for i in range(10)]
        bernoulli_outage_sample(stores, 1.0, random.Random(0))
        assert not any(s.available for s in stores)

    def test_fraction_approximates_p(self):
        stores = [LogServerStore(f"s{i}") for i in range(2000)]
        states = bernoulli_outage_sample(stores, 0.3, random.Random(7))
        downs = states.count(False)
        assert downs / 2000 == pytest.approx(0.3, abs=0.03)

    def test_restore_all(self):
        stores = [LogServerStore(f"s{i}") for i in range(5)]
        bernoulli_outage_sample(stores, 1.0, random.Random(0))
        restore_all(stores)
        assert all(s.available for s in stores)


class RecordingNode:
    """A crashable that records every crash()/restart() call."""

    def __init__(self, up=True):
        self.available = up
        self.calls = []

    def crash(self):
        self.available = False
        self.calls.append("crash")

    def restart(self):
        self.available = True
        self.calls.append("restart")


class TestNodeIsUp:
    def test_probes_available_up_and_crashed(self):
        from repro.sim import node_is_up

        store = LogServerStore("s")
        assert node_is_up(store) is True
        store.crash()
        assert node_is_up(store) is False

        class CrashedStyle:
            crashed = False

        assert node_is_up(CrashedStyle()) is True

        class Opaque:
            pass

        assert node_is_up(Opaque()) is None


class TestUpDownProcessHardening:
    def test_mttr_must_be_positive(self):
        sim = Simulator()
        store = LogServerStore("s")
        with pytest.raises(ValueError):
            UpDownProcess(sim, store, mtbf=10, mttr=0,
                          rng=random.Random(0))
        with pytest.raises(ValueError):
            UpDownProcess(sim, store, mtbf=0, mttr=1,
                          rng=random.Random(0))

    def test_for_unavailability_p_zero_means_no_injector(self):
        sim = Simulator()
        store = LogServerStore("s")
        injector = UpDownProcess.for_unavailability(
            sim, store, mtbf=10, p=0.0, rng=random.Random(0))
        assert injector is None
        assert store.available

    def test_stop_while_down_restores_target(self):
        sim = Simulator()
        store = LogServerStore("s")
        # repair takes ~forever: once down, the target stays down
        proc = UpDownProcess(sim, store, mtbf=2, mttr=1e9,
                             rng=random.Random(3))
        sim.run(until=100)
        assert not store.available
        assert proc.target_down
        proc.stop()
        sim.run(until=101)
        assert store.available
        assert not proc.target_down
        assert proc.process.triggered
        # downtime accounted up to the stop instant
        assert proc.down_time > 0

    def test_stop_skips_restart_when_manually_restored(self):
        sim = Simulator()
        node = RecordingNode()
        proc = UpDownProcess(sim, node, mtbf=2, mttr=1e9,
                             rng=random.Random(3))
        sim.run(until=100)
        assert not node.available
        node.restart()  # operator intervention, as the soak test does
        calls_before = len(node.calls)
        proc.stop()
        sim.run(until=101)
        # no redundant restart — it would re-run a server's crash scan
        assert node.calls[calls_before:] == []
        assert node.available


class TestBernoulliStateChangeOnly:
    def test_no_spurious_restart_of_up_nodes(self):
        nodes = [RecordingNode() for _ in range(5)]
        bernoulli_outage_sample(nodes, 0.0, random.Random(0))
        bernoulli_outage_sample(nodes, 0.0, random.Random(1))
        assert all(n.calls == [] for n in nodes)

    def test_no_double_crash_of_down_nodes(self):
        nodes = [RecordingNode() for _ in range(5)]
        bernoulli_outage_sample(nodes, 1.0, random.Random(0))
        bernoulli_outage_sample(nodes, 1.0, random.Random(1))
        assert all(n.calls == ["crash"] for n in nodes)

    def test_restore_all_only_touches_down_nodes(self):
        nodes = [RecordingNode() for _ in range(4)]
        nodes[1].crash()
        nodes[3].crash()
        restore_all(nodes)
        assert nodes[0].calls == []
        assert nodes[1].calls == ["crash", "restart"]
        assert all(n.available for n in nodes)


class TestLinkDegrader:
    def test_degrades_and_restores_loss(self):
        from repro.net import Lan
        from repro.sim import LinkDegrader

        sim = Simulator()
        lan = Lan(sim, loss_prob=0.01, rng=random.Random(0))
        degrader = LinkDegrader(lan, degraded_loss=0.8)
        assert degrader.up
        degrader.crash()
        assert lan.loss_prob == pytest.approx(0.8)
        assert not degrader.up
        degrader.crash()  # idempotent: healthy loss not overwritten
        degrader.restart()
        assert lan.loss_prob == pytest.approx(0.01)
        assert degrader.up

    def test_rejects_zero_loss(self):
        from repro.net import Lan
        from repro.sim import LinkDegrader

        sim = Simulator()
        lan = Lan(sim, rng=random.Random(0))
        with pytest.raises(ValueError):
            LinkDegrader(lan, degraded_loss=0.0)


class TestClusterChurn:
    def _run_churn(self, seed=0, until=200.0):
        from repro.sim import ClusterChurn

        sim = Simulator()
        stores = {f"s{i}": LogServerStore(f"s{i}") for i in range(4)}
        transitions = []
        churn = ClusterChurn(
            sim, stores, mtbf=10, mttr=1, seed=seed,
            on_change=lambda tid, up: transitions.append((sim.now, tid, up)),
        )
        sim.run(until=until)
        return sim, stores, churn, transitions

    def test_histogram_sums_to_elapsed(self):
        sim, _stores, churn, _ = self._run_churn()
        total = sum(churn.down_histogram().values())
        assert total == pytest.approx(churn.elapsed)
        assert churn.crashes() > 10

    def test_deterministic_from_seed(self):
        _, _, churn_a, trans_a = self._run_churn(seed=7)
        _, _, churn_b, trans_b = self._run_churn(seed=7)
        assert trans_a == trans_b
        assert churn_a.down_histogram() == churn_b.down_histogram()
        _, _, _, trans_c = self._run_churn(seed=8)
        assert trans_a != trans_c

    def test_fraction_time_at_most_down(self):
        _, _, churn, _ = self._run_churn()
        # monotone in the threshold, and everything <= M is certain
        fracs = [churn.fraction_time_at_most_down(d) for d in range(5)]
        assert fracs == sorted(fracs)
        assert fracs[4] == pytest.approx(1.0)

    def test_stop_restores_everything(self):
        sim, stores, churn, _ = self._run_churn(until=57.0)
        churn.stop()
        sim.run(until=58.0)
        assert all(s.available for s in stores.values())

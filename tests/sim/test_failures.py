"""Tests for failure injection."""

import random

import pytest

from repro.core import LogServerStore
from repro.sim import (
    Simulator,
    UpDownProcess,
    bernoulli_outage_sample,
    mttr_for_unavailability,
    restore_all,
    unavailability,
)


class TestUnavailabilityMath:
    def test_long_run_fraction(self):
        assert unavailability(mtbf=95, mttr=5) == pytest.approx(0.05)

    def test_mttr_inverse(self):
        mttr = mttr_for_unavailability(mtbf=100, p=0.05)
        assert unavailability(100, mttr) == pytest.approx(0.05)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            unavailability(0, 5)
        with pytest.raises(ValueError):
            mttr_for_unavailability(10, 1.0)


class TestUpDownProcess:
    def test_drives_target_through_cycles(self):
        sim = Simulator()
        store = LogServerStore("s")
        proc = UpDownProcess(sim, store, mtbf=10, mttr=1,
                             rng=random.Random(0))
        sim.run(until=200)
        assert proc.crashes > 5

    def test_long_run_unavailability_near_model(self):
        sim = Simulator()
        store = LogServerStore("s")
        transitions = []
        proc = UpDownProcess(
            sim, store, mtbf=9.5, mttr=0.5, rng=random.Random(1),
            on_change=lambda up: transitions.append((sim.now, up)),
        )
        sim.run(until=5000)
        # integrate downtime from transitions
        down = 0.0
        last_down_start = None
        for t, up in transitions:
            if not up:
                last_down_start = t
            elif last_down_start is not None:
                down += t - last_down_start
                last_down_start = None
        assert down / 5000 == pytest.approx(0.05, abs=0.02)

    def test_stop_interrupts(self):
        sim = Simulator()
        store = LogServerStore("s")
        proc = UpDownProcess(sim, store, mtbf=10, mttr=1,
                             rng=random.Random(0))
        proc.stop()
        sim.run(until=100)
        assert proc.process.triggered


class TestBernoulliOutage:
    def test_p_zero_keeps_all_up(self):
        stores = [LogServerStore(f"s{i}") for i in range(10)]
        states = bernoulli_outage_sample(stores, 0.0, random.Random(0))
        assert all(states)
        assert all(s.available for s in stores)

    def test_p_one_downs_all(self):
        stores = [LogServerStore(f"s{i}") for i in range(10)]
        bernoulli_outage_sample(stores, 1.0, random.Random(0))
        assert not any(s.available for s in stores)

    def test_fraction_approximates_p(self):
        stores = [LogServerStore(f"s{i}") for i in range(2000)]
        states = bernoulli_outage_sample(stores, 0.3, random.Random(7))
        downs = states.count(False)
        assert downs / 2000 == pytest.approx(0.3, abs=0.03)

    def test_restore_all(self):
        stores = [LogServerStore(f"s{i}") for i in range(5)]
        bernoulli_outage_sample(stores, 1.0, random.Random(0))
        restore_all(stores)
        assert all(s.available for s in stores)

"""Two runs of the target-load experiment must agree bit for bit.

The simulator is meant to be a deterministic function of its seed: all
randomness flows through explicitly seeded ``random.Random`` streams,
and the kernel breaks ties by scheduling sequence number.  The hot-path
optimizations (event pooling, demux-as-callback, GC gating, generator
flattening) must preserve this — a divergence here means some
optimization leaked wall-clock state, iteration order, or shared
mutable state into the simulation.
"""

import dataclasses

from repro.harness import TargetLoadConfig, run_target_load

#: Fields that legitimately differ between identical runs (wall-clock
#: measurement) or compare by object identity (the config carries the
#: disk/et1 parameter dataclasses).
_NONDETERMINISTIC = {"wall_seconds", "config"}


def _stats(result) -> dict:
    return {
        f.name: getattr(result, f.name)
        for f in dataclasses.fields(result)
        if f.name not in _NONDETERMINISTIC
    }


def test_target_load_repeats_identically():
    config = TargetLoadConfig(duration_s=1.0)
    first = _stats(run_target_load(config))
    second = _stats(run_target_load(config))
    assert first == second


def test_seed_changes_the_run():
    base = TargetLoadConfig(duration_s=1.0)
    other = TargetLoadConfig(duration_s=1.0, seed=7)
    a = run_target_load(base)
    b = run_target_load(other)
    # same workload shape, different arrival randomness
    assert a.completed_txns != b.completed_txns or \
        a.force_mean_ms != b.force_mean_ms

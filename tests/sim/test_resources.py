"""Tests for FIFO resources and channels."""

import pytest

from repro.sim import Channel, Resource, Simulator


class TestResource:
    def test_serializes_holders(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        finish = []

        def worker(tag):
            yield from res.use(2.0)
            finish.append((tag, sim.now))

        for tag in ("a", "b", "c"):
            sim.spawn(worker(tag))
        sim.run()
        assert finish == [("a", 2.0), ("b", 4.0), ("c", 6.0)]

    def test_capacity_two_runs_pairs(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        finish = []

        def worker(tag):
            yield from res.use(1.0)
            finish.append((tag, sim.now))

        for tag in "abcd":
            sim.spawn(worker(tag))
        sim.run()
        assert [t for _, t in finish] == [1.0, 1.0, 2.0, 2.0]

    def test_utilization_full(self):
        sim = Simulator()
        res = Resource(sim)

        def worker():
            yield from res.use(5.0)

        sim.spawn(worker())
        sim.run()
        assert res.utilization() == pytest.approx(1.0)

    def test_utilization_half(self):
        sim = Simulator()
        res = Resource(sim)

        def worker():
            yield from res.use(5.0)

        sim.spawn(worker())
        sim.run(until=10.0)
        assert res.utilization() == pytest.approx(0.5)

    def test_busy_integral_windows(self):
        sim = Simulator()
        res = Resource(sim)

        def worker():
            yield sim.timeout(2)
            yield from res.use(3.0)

        sim.spawn(worker())
        sim.run(until=2)
        start = res.busy_integral()
        sim.run(until=10)
        assert res.busy_integral() - start == pytest.approx(3.0)

    def test_mean_wait(self):
        sim = Simulator()
        res = Resource(sim)

        def worker():
            yield from res.use(4.0)

        sim.spawn(worker())
        sim.spawn(worker())
        sim.run()
        # first waits 0, second waits 4
        assert res.mean_wait() == pytest.approx(2.0)

    def test_use_returns_queueing_delay(self):
        sim = Simulator()
        res = Resource(sim)
        waits = []

        def worker():
            waited = yield from res.use(3.0)
            waits.append(waited)

        sim.spawn(worker())
        sim.spawn(worker())
        sim.run()
        assert waits == [0.0, 3.0]

    def test_release_idle_rejected(self):
        sim = Simulator()
        res = Resource(sim)
        with pytest.raises(RuntimeError):
            res.release()

    def test_capacity_validated(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_total_served(self):
        sim = Simulator()
        res = Resource(sim)

        def worker():
            yield from res.use(1.0)

        for _ in range(3):
            sim.spawn(worker())
        sim.run()
        assert res.total_served == 3


class TestChannel:
    def test_put_then_get(self):
        sim = Simulator()
        ch = Channel(sim)
        ch.put("x")

        def getter():
            value = yield ch.get()
            return value

        p = sim.spawn(getter())
        sim.run()
        assert p.value == "x"

    def test_get_blocks_until_put(self):
        sim = Simulator()
        ch = Channel(sim)

        def getter():
            value = yield ch.get()
            return (value, sim.now)

        def putter():
            yield sim.timeout(3)
            ch.put("late")

        g = sim.spawn(getter())
        sim.spawn(putter())
        sim.run()
        assert g.value == ("late", 3.0)

    def test_fifo_order(self):
        sim = Simulator()
        ch = Channel(sim)
        for i in range(3):
            ch.put(i)
        got = []

        def getter():
            for _ in range(3):
                value = yield ch.get()
                got.append(value)

        sim.spawn(getter())
        sim.run()
        assert got == [0, 1, 2]

    def test_max_depth_tracked(self):
        sim = Simulator()
        ch = Channel(sim)
        for i in range(5):
            ch.put(i)
        assert ch.max_depth == 5
        assert len(ch) == 5

    def test_multiple_getters_fifo(self):
        sim = Simulator()
        ch = Channel(sim)
        results = []

        def getter(tag):
            value = yield ch.get()
            results.append((tag, value))

        sim.spawn(getter("g1"))
        sim.spawn(getter("g2"))

        def putter():
            yield sim.timeout(1)
            ch.put("a")
            ch.put("b")

        sim.spawn(putter())
        sim.run()
        assert results == [("g1", "a"), ("g2", "b")]

"""Tests for named seeded random streams."""

from repro.sim import RngRegistry


class TestRngRegistry:
    def test_same_name_same_stream(self):
        reg = RngRegistry(7)
        assert reg.stream("a") is reg.stream("a")

    def test_different_names_independent(self):
        reg = RngRegistry(7)
        a = [reg.stream("a").random() for _ in range(5)]
        b = [reg.stream("b").random() for _ in range(5)]
        assert a != b

    def test_reproducible_across_registries(self):
        r1 = RngRegistry(42)
        r2 = RngRegistry(42)
        assert [r1.stream("x").random() for _ in range(5)] == [
            r2.stream("x").random() for _ in range(5)
        ]

    def test_master_seed_changes_streams(self):
        r1 = RngRegistry(1)
        r2 = RngRegistry(2)
        assert r1.stream("x").random() != r2.stream("x").random()

    def test_adding_stream_does_not_perturb_existing(self):
        r1 = RngRegistry(3)
        first = r1.stream("a").random()
        r2 = RngRegistry(3)
        r2.stream("zzz")  # extra stream created first
        assert r2.stream("a").random() == first

    def test_exponential_positive(self):
        reg = RngRegistry(0)
        draws = [reg.exponential("arrivals", 2.0) for _ in range(100)]
        assert all(d > 0 for d in draws)
        assert 1.0 < sum(draws) / len(draws) < 3.5  # mean ≈ 2

    def test_uniform_bounds(self):
        reg = RngRegistry(0)
        draws = [reg.uniform("u", 3.0, 4.0) for _ in range(50)]
        assert all(3.0 <= d <= 4.0 for d in draws)

    def test_coin_extremes(self):
        reg = RngRegistry(0)
        assert not any(reg.coin("never", 0.0) for _ in range(20))
        assert all(reg.coin("always", 1.0) for _ in range(20))

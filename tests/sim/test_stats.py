"""Tests for metric collectors."""

import pytest

from repro.sim import Counter, LatencySample, MetricSet, TimeWeighted


class TestCounter:
    def test_add_default_amount(self):
        c = Counter()
        c.add()
        c.add()
        assert c.count == 2
        assert c.total == 2.0

    def test_add_amounts(self):
        c = Counter()
        c.add(100)
        c.add(50)
        assert c.count == 2
        assert c.total == 150

    def test_rates(self):
        c = Counter()
        c.add(100)
        assert c.rate(10) == 10.0
        assert c.count_rate(10) == 0.1

    def test_zero_elapsed(self):
        c = Counter()
        c.add()
        assert c.rate(0) == 0.0


class TestLatencySample:
    def test_mean(self):
        lat = LatencySample()
        for v in (1.0, 2.0, 3.0):
            lat.observe(v)
        assert lat.mean() == pytest.approx(2.0)

    def test_empty_summaries(self):
        lat = LatencySample()
        assert lat.mean() == 0.0
        assert lat.p95() == 0.0
        assert lat.max() == 0.0
        assert lat.stdev() == 0.0

    def test_percentiles(self):
        lat = LatencySample()
        for v in range(1, 101):
            lat.observe(float(v))
        assert lat.p50() == pytest.approx(50.5)
        assert lat.percentile(0.0) == 1.0
        assert lat.percentile(1.0) == 100.0
        assert lat.p99() == pytest.approx(99.01)

    def test_invalid_quantile(self):
        lat = LatencySample()
        lat.observe(1.0)
        with pytest.raises(ValueError):
            lat.percentile(1.5)

    def test_negative_latency_rejected(self):
        lat = LatencySample()
        with pytest.raises(ValueError):
            lat.observe(-0.1)

    def test_stdev(self):
        lat = LatencySample()
        for v in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            lat.observe(v)
        assert lat.stdev() == pytest.approx(2.138, abs=0.01)

    def test_count_and_len(self):
        lat = LatencySample()
        lat.observe(1.0)
        assert len(lat) == lat.count == 1


class TestTimeWeighted:
    def test_mean_level(self):
        tw = TimeWeighted()
        tw.set(10, now=5)   # level 0 for [0,5)
        tw.set(0, now=10)   # level 10 for [5,10)
        assert tw.mean(now=10) == pytest.approx(5.0)

    def test_peak(self):
        tw = TimeWeighted()
        tw.set(3, now=1)
        tw.set(7, now=2)
        tw.set(2, now=3)
        assert tw.peak == 7

    def test_adjust(self):
        tw = TimeWeighted()
        tw.adjust(5, now=1)
        tw.adjust(-2, now=2)
        assert tw.current == 3

    def test_time_backwards_rejected(self):
        tw = TimeWeighted()
        tw.set(1, now=5)
        with pytest.raises(ValueError):
            tw.set(2, now=4)


class TestMetricSet:
    def test_lazily_creates_collectors(self):
        metrics = MetricSet()
        metrics.counter("a").add()
        metrics.latency("b").observe(1.0)
        metrics.level("c").set(1, now=0)
        assert metrics.counter("a").count == 1
        assert metrics.latency("b").count == 1
        assert metrics.level("c").current == 1

    def test_same_name_same_collector(self):
        metrics = MetricSet()
        assert metrics.counter("x") is metrics.counter("x")

"""Tests for the discrete-event kernel."""

import pytest

from repro.sim import Event, Interrupt, SimulationError, Simulator


class TestEvents:
    def test_succeed_carries_value(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(42)
        assert ev.triggered and ev.ok
        assert ev.value == 42

    def test_fail_carries_exception(self):
        sim = Simulator()
        ev = sim.event()
        ev.fail(ValueError("boom"))
        assert ev.triggered and not ev.ok
        with pytest.raises(ValueError):
            _ = ev.value

    def test_double_trigger_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_value_before_trigger_rejected(self):
        sim = Simulator()
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_callback_after_trigger_still_runs(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(7)
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        sim.run()
        assert seen == [7]


class TestTimeAdvance:
    def test_timeout_advances_clock(self):
        sim = Simulator()
        done = []

        def proc():
            yield sim.timeout(2.5)
            done.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert done == [2.5]

    def test_zero_delay_allowed(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(0)
            return sim.now

        p = sim.spawn(proc())
        sim.run()
        assert p.value == 0.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []

        def proc(delay, tag):
            yield sim.timeout(delay)
            order.append(tag)

        sim.spawn(proc(3, "c"))
        sim.spawn(proc(1, "a"))
        sim.spawn(proc(2, "b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo_by_schedule_order(self):
        sim = Simulator()
        order = []

        def proc(tag):
            yield sim.timeout(1)
            order.append(tag)

        sim.spawn(proc("first"))
        sim.spawn(proc("second"))
        sim.run()
        assert order == ["first", "second"]

    def test_run_until_stops_clock(self):
        sim = Simulator()

        def proc():
            while True:
                yield sim.timeout(1)

        sim.spawn(proc())
        sim.run(until=5.5)
        assert sim.now == 5.5

    def test_run_until_advances_even_with_no_events(self):
        sim = Simulator()
        sim.run(until=10)
        assert sim.now == 10

    def test_peek(self):
        sim = Simulator()
        assert sim.peek() is None
        sim.timeout(4)
        assert sim.peek() == pytest.approx(4)


class TestProcesses:
    def test_return_value_via_stopiteration(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1)
            return "done"

        p = sim.spawn(proc())
        sim.run()
        assert p.value == "done"

    def test_join_another_process(self):
        sim = Simulator()

        def worker():
            yield sim.timeout(2)
            return 99

        def waiter(target):
            value = yield target
            return value + 1

        w = sim.spawn(worker())
        j = sim.spawn(waiter(w))
        sim.run()
        assert j.value == 100

    def test_exception_propagates_to_joiner(self):
        sim = Simulator()

        def bad():
            yield sim.timeout(1)
            raise RuntimeError("inner")

        def waiter(target):
            try:
                yield target
            except RuntimeError:
                return "caught"

        b = sim.spawn(bad())
        w = sim.spawn(waiter(b))
        sim.run()
        assert w.value == "caught"

    def test_failed_process_recorded(self):
        sim = Simulator()

        def bad():
            yield sim.timeout(1)
            raise RuntimeError("x")

        sim.spawn(bad())
        sim.run()
        assert len(sim.failed_processes) == 1

    def test_interrupt_wakes_sleeper(self):
        sim = Simulator()

        def sleeper():
            try:
                yield sim.timeout(100)
            except Interrupt as exc:
                return ("interrupted", exc.cause, sim.now)

        def killer(target):
            yield sim.timeout(5)
            target.interrupt("stop")

        s = sim.spawn(sleeper())
        sim.spawn(killer(s))
        sim.run()
        assert s.value == ("interrupted", "stop", 5.0)

    def test_interrupt_finished_process_is_noop(self):
        sim = Simulator()

        def quick():
            yield sim.timeout(1)
            return "ok"

        p = sim.spawn(quick())
        sim.run()
        p.interrupt("late")
        assert p.value == "ok"

    def test_unhandled_interrupt_terminates_quietly(self):
        sim = Simulator()

        def sleeper():
            yield sim.timeout(100)

        s = sim.spawn(sleeper())

        def killer():
            yield sim.timeout(1)
            s.interrupt("bye")

        sim.spawn(killer())
        sim.run(until=10)
        assert s.triggered
        assert not sim.failed_processes

    def test_nested_yield_from(self):
        sim = Simulator()

        def inner():
            yield sim.timeout(1)
            return 10

        def outer():
            a = yield from inner()
            b = yield from inner()
            return a + b

        p = sim.spawn(outer())
        sim.run()
        assert p.value == 20
        assert sim.now == 2.0


class TestCombinators:
    def test_all_of_gathers_values(self):
        sim = Simulator()

        def worker(delay, value):
            yield sim.timeout(delay)
            return value

        def main():
            procs = [sim.spawn(worker(d, d * 10)) for d in (3, 1, 2)]
            values = yield sim.all_of(procs)
            return values

        p = sim.spawn(main())
        sim.run()
        assert p.value == [30, 10, 20]
        assert sim.now == 3.0

    def test_all_of_empty(self):
        sim = Simulator()

        def main():
            values = yield sim.all_of([])
            return values

        p = sim.spawn(main())
        sim.run()
        assert p.value == []

    def test_any_of_returns_first(self):
        sim = Simulator()

        def main():
            value = yield sim.any_of([
                sim.timeout(5, value="slow"),
                sim.timeout(1, value="fast"),
            ])
            return value

        p = sim.spawn(main())
        sim.run()
        assert p.value == "fast"

    def test_all_of_fails_fast(self):
        sim = Simulator()

        def bad():
            yield sim.timeout(1)
            raise ValueError("nope")

        def main():
            try:
                yield sim.all_of([sim.spawn(bad()), sim.timeout(100)])
            except ValueError:
                return sim.now

        p = sim.spawn(main())
        sim.run(until=200)
        assert p.value == 1.0

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["availability"])
        assert args.p == 0.05
        assert args.max_m == 8

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_serve_requires_data_dir_and_server_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--server-id", "s1"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--data-dir", "/tmp/x"])

    def test_loadgen_defaults(self):
        args = build_parser().parse_args(
            ["loadgen", "--server", "s1=127.0.0.1:7311"])
        assert args.copies == 2
        assert args.delta == 8
        assert args.server == ["s1=127.0.0.1:7311"]

    def test_loadgen_rejects_malformed_server(self):
        from repro.cli import _parse_server_arg
        import argparse
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_server_arg("no-equals-sign")


class TestCommands:
    def test_availability(self, capsys):
        assert main(["availability", "--max-m", "4"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3-4" in out
        assert "WriteLog" in out

    def test_availability_custom_p(self, capsys):
        assert main(["availability", "--p", "0.1", "--max-m", "3"]) == 0
        out = capsys.readouterr().out
        assert "p = 0.1" in out
        assert "0.810000" in out  # (1-0.1)^2 for M=N=2

    def test_capacity(self, capsys):
        assert main(["capacity"]) == 0
        out = capsys.readouterr().out
        assert "2,333" in out
        assert "~2400" in out

    def test_capacity_custom_cluster(self, capsys):
        assert main(["capacity", "--servers", "12"]) == 0
        out = capsys.readouterr().out
        assert "12 servers" in out

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Server 3" in out
        assert "[1, 2, 3, 5, 6, 7, 8, 9]" in out

    def test_target_load_small(self, capsys):
        assert main(["target-load", "--clients", "4", "--servers", "2",
                     "--duration", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "achieved TPS" in out

    def test_prototype_small(self, capsys):
        assert main(["prototype", "--transactions", "30"]) == 0
        out = capsys.readouterr().out
        assert "less than twice" in out


class TestExtendedCommands:
    def test_degraded(self, capsys):
        from repro.cli import main
        assert main(["degraded", "--duration", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "survivor CPU" in out

    def test_sweep(self, capsys):
        from repro.cli import main
        assert main(["sweep", "--duration", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "Saturation sweep" in out

    def test_restart_latency(self, capsys):
        from repro.cli import main
        assert main(["restart-latency"]) == 0
        out = capsys.readouterr().out
        assert "Client initialization latency" in out

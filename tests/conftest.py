"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core import (
    DirectServerPort,
    LogServerStore,
    ReplicatedLog,
    ReplicationConfig,
    make_generator,
)


def drain(gen):
    """Run a generator-based operation outside a simulator.

    Direct-backend operations never yield; this drives them to
    completion and returns their value.
    """
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value


@pytest.fixture
def drive():
    """The drain helper as a fixture."""
    return drain


def build_direct_log(
    m: int = 3, n: int = 2, delta: int = 1, client_id: str = "c1"
) -> tuple[ReplicatedLog, dict[str, LogServerStore]]:
    """An initialized direct-mode replicated log plus its stores."""
    stores = {f"s{i}": LogServerStore(f"s{i}") for i in range(m)}
    ports = {sid: DirectServerPort(store) for sid, store in stores.items()}
    log = ReplicatedLog(
        client_id=client_id,
        ports=ports,
        config=ReplicationConfig(total_servers=m, copies=n, delta=delta),
        epoch_source=make_generator(3),
    )
    log.initialize()
    return log, stores


@pytest.fixture
def direct_log():
    """(log, stores) with M=3, N=2, δ=1, already initialized."""
    return build_direct_log()

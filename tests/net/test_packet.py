"""Tests for packet framing."""

from repro.core.records import StoredRecord
from repro.net import (
    PACKET_HEADER_BYTES,
    PACKET_PAYLOAD_BYTES,
    Packet,
    WriteLogMsg,
    fits_in_packet,
)


def make_packet(payload=None, **kw):
    defaults = dict(src="a", dst="b", conn_id=1, seq=1, allocation=64,
                    payload=payload)
    defaults.update(kw)
    return Packet(**defaults)


class TestPacket:
    def test_wire_size_includes_header(self):
        packet = make_packet(payload=None)
        assert packet.wire_size == PACKET_HEADER_BYTES

    def test_wire_size_adds_payload(self):
        msg = WriteLogMsg(
            client_id="c1", epoch=1,
            records=(StoredRecord(lsn=1, epoch=1, data=b"x" * 100),),
        )
        packet = make_packet(payload=msg)
        assert packet.wire_size == PACKET_HEADER_BYTES + msg.wire_size

    def test_frame_ids_unique(self):
        a = make_packet()
        b = make_packet()
        assert a.frame_id != b.frame_id

    def test_duplicate_shares_frame_id(self):
        packet = make_packet()
        assert packet.duplicate().frame_id == packet.frame_id

    def test_fits_in_packet(self):
        assert fits_in_packet(PACKET_PAYLOAD_BYTES)
        assert not fits_in_packet(PACKET_PAYLOAD_BYTES + 1)

    def test_et1_force_fits_one_packet(self):
        """Seven 100-byte ET1 records ride in a single packet."""
        records = tuple(
            StoredRecord(lsn=i, epoch=1, data=b"u" * 100)
            for i in range(1, 8)
        )
        msg = WriteLogMsg(client_id="c1", epoch=1, records=records)
        assert fits_in_packet(msg.wire_size)

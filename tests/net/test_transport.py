"""Tests for the Watson-style transport connections."""

import random

import pytest

from repro.core.errors import ServerUnavailable
from repro.net import DEFAULT_WINDOW, Endpoint, Lan
from repro.sim import Simulator


def build_pair(loss_prob=0.0, seed=0):
    sim = Simulator()
    lan = Lan(sim, loss_prob=loss_prob, rng=random.Random(seed))
    client = Endpoint(sim, lan, "client")
    server = Endpoint(sim, lan, "server")
    return sim, lan, client, server


class TestHandshake:
    def test_three_way_establishes_both_ends(self):
        sim, lan, client, server = build_pair()
        result = {}

        def client_side():
            conn = yield from client.connect("server")
            result["client_conn"] = conn

        def server_side():
            conn = yield from server.accept()
            result["server_conn"] = conn

        sim.spawn(client_side())
        sim.spawn(server_side())
        sim.run(until=5)
        assert result["client_conn"].remote_id == "server"
        assert result["server_conn"].remote_id == "client"

    def test_handshake_survives_loss(self):
        sim, lan, client, server = build_pair(loss_prob=0.4, seed=3)
        result = {}

        def client_side():
            conn = yield from client.connect("server")
            result["ok"] = True

        sim.spawn(client_side())
        sim.run(until=30)
        assert result.get("ok")

    def test_handshake_times_out_against_dead_server(self):
        sim, lan, client, server = build_pair()
        server.crash()
        result = {}

        def client_side():
            try:
                yield from client.connect("server")
            except ServerUnavailable:
                result["failed"] = True

        sim.spawn(client_side())
        sim.run(until=30)
        assert result.get("failed")

    def test_connection_ids_unique_across_connects(self):
        sim, lan, client, server = build_pair()
        ids = []

        def client_side():
            for _ in range(3):
                conn = yield from client.connect("server")
                ids.append(conn.conn_id)

        sim.spawn(client_side())
        sim.run(until=10)
        assert len(set(ids)) == 3


class TestDataTransfer:
    def exchange(self, n_messages, loss_prob=0.0, dup_prob=0.0, seed=0):
        sim = Simulator()
        lan = Lan(sim, loss_prob=loss_prob, dup_prob=dup_prob,
                  rng=random.Random(seed))
        client = Endpoint(sim, lan, "client")
        server = Endpoint(sim, lan, "server")
        received = []

        def server_side():
            conn = yield from server.accept()
            while True:
                message = yield conn.inbox.get()
                received.append(message)

        def client_side():
            conn = yield from client.connect("server")
            for i in range(n_messages):
                yield from conn.send(f"m{i}")

        sim.spawn(server_side())
        sim.spawn(client_side())
        sim.run(until=60)
        return received

    def test_messages_delivered_in_order(self):
        received = self.exchange(10)
        assert received == [f"m{i}" for i in range(10)]

    def test_duplicates_suppressed(self):
        received = self.exchange(20, dup_prob=0.5, seed=5)
        assert received == [f"m{i}" for i in range(20)]

    def test_loss_leaves_gaps_not_corruption(self):
        """No transport retransmit: lost data is simply missing."""
        received = self.exchange(30, loss_prob=0.3, seed=7)
        indices = [int(m[1:]) for m in received]
        assert indices == sorted(indices)
        assert len(set(indices)) == len(indices)
        assert len(indices) < 30  # something was genuinely lost


class TestFlowControl:
    def test_sender_stalls_without_allocation(self):
        """A silent receiver stops granting; the window fills."""
        sim = Simulator()
        lan = Lan(sim)
        client = Endpoint(sim, lan, "client")
        server = Endpoint(sim, lan, "server")
        sent = []

        def server_side():
            conn = yield from server.accept()
            # receive but the demux grants allocation only via packets;
            # inbox is drained so delivery continues, grants flow in
            # window updates.
            while True:
                yield conn.inbox.get()

        def client_side():
            conn = yield from client.connect("server")
            for i in range(DEFAULT_WINDOW * 3):
                yield from conn.send(i)
                sent.append(i)

        sim.spawn(server_side())
        sim.spawn(client_side())
        sim.run(until=120)
        assert len(sent) == DEFAULT_WINDOW * 3

    def test_override_pause_prevents_deadlock(self):
        """A sender out of allocation may proceed after the pause."""
        sim = Simulator()
        lan = Lan(sim)
        client = Endpoint(sim, lan, "client")
        server = Endpoint(sim, lan, "server")
        done = {}

        def server_side():
            conn = yield from server.accept()
            # never drain: no window updates at all
            while True:
                yield sim.timeout(1000)

        def client_side():
            conn = yield from client.connect("server")
            # exhaust the initial window, then one more
            for i in range(DEFAULT_WINDOW + 1):
                yield from conn.send(i)
            done["t"] = sim.now

        sim.spawn(server_side())
        sim.spawn(client_side())
        sim.run(until=300)
        assert "t" in done  # progress despite zero grants
        assert done["t"] >= 3.0  # but only after the pause

    def test_stall_counted(self):
        sim = Simulator()
        lan = Lan(sim)
        client = Endpoint(sim, lan, "client")
        server = Endpoint(sim, lan, "server")
        conns = {}

        def server_side():
            conn = yield from server.accept()
            while True:
                yield sim.timeout(1000)

        def client_side():
            conn = yield from client.connect("server")
            conns["c"] = conn
            for i in range(DEFAULT_WINDOW + 1):
                yield from conn.send(i)

        sim.spawn(server_side())
        sim.spawn(client_side())
        sim.run(until=300)
        assert conns["c"].allocation_stalls >= 1


class TestCrashSemantics:
    def test_crashed_endpoint_receives_nothing(self):
        sim = Simulator()
        lan = Lan(sim)
        client = Endpoint(sim, lan, "client")
        server = Endpoint(sim, lan, "server")
        received = []

        def server_side():
            conn = yield from server.accept()
            while True:
                message = yield conn.inbox.get()
                received.append(message)

        def client_side():
            conn = yield from client.connect("server")
            yield from conn.send("before")
            yield sim.timeout(1)
            server.crash()
            yield from conn.send("during")
            yield sim.timeout(1)
            server.restart()
            yield from conn.send("after-restart-stale-conn")

        sim.spawn(server_side())
        sim.spawn(client_side())
        sim.run(until=30)
        # "during" dropped (deaf), "after" dropped (stale connection
        # state was cleared by the crash): cross-crash duplicate
        # rejection via permanently unique connection ids.
        assert received == ["before"]

    def test_client_crash_closes_connections(self):
        sim = Simulator()
        lan = Lan(sim)
        client = Endpoint(sim, lan, "client")
        server = Endpoint(sim, lan, "server")
        conns = {}

        def client_side():
            conn = yield from client.connect("server")
            conns["c"] = conn

        sim.spawn(client_side())
        sim.run(until=5)
        client.crash()
        assert not conns["c"].open

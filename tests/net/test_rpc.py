"""Tests for the synchronous RPC layer."""

import random

import pytest

from repro.core.errors import ServerUnavailable
from repro.net import Endpoint, Lan, RpcClient, RpcReply, serve_rpc
from repro.net.messages import IntervalListCall, IntervalListReply
from repro.sim import Simulator


def build(loss_prob=0.0, seed=0, handler_delay=0.001):
    sim = Simulator()
    lan = Lan(sim, loss_prob=loss_prob, rng=random.Random(seed))
    client = Endpoint(sim, lan, "client")
    server = Endpoint(sim, lan, "server")
    calls_served = []

    def server_side():
        conn = yield from server.accept()

        def handler(body):
            yield sim.timeout(handler_delay)
            calls_served.append(body)
            return IntervalListReply(client_id=body.client_id, intervals=())

        yield from serve_rpc(sim, conn, handler)

    sim.spawn(server_side())
    return sim, lan, client, calls_served


class TestRpc:
    def test_call_returns_reply_body(self):
        sim, lan, client, served = build()
        result = {}

        def client_side():
            conn = yield from client.connect("server")
            rpc = RpcClient(sim, conn)

            def pump():
                while True:
                    message = yield conn.inbox.get()
                    if isinstance(message, RpcReply):
                        rpc.dispatch(message)

            sim.spawn(pump())
            reply = yield from rpc.call(IntervalListCall(client_id="c1"))
            result["reply"] = reply

        sim.spawn(client_side())
        sim.run(until=10)
        assert isinstance(result["reply"], IntervalListReply)
        assert len(served) == 1

    def test_retries_on_loss_then_succeeds(self):
        sim, lan, client, served = build(loss_prob=0.4, seed=2)
        result = {"count": 0}

        def client_side():
            conn = yield from client.connect("server")
            rpc = RpcClient(sim, conn)

            def pump():
                while True:
                    message = yield conn.inbox.get()
                    if isinstance(message, RpcReply):
                        rpc.dispatch(message)

            sim.spawn(pump())
            for _ in range(10):
                yield from rpc.call(IntervalListCall(client_id="c1"),
                                    retries=8)
                result["count"] += 1
            result["retries"] = rpc.retries

        sim.spawn(client_side())
        sim.run(until=120)
        assert result["count"] == 10
        assert result["retries"] > 0

    def test_gives_up_after_budget(self):
        sim = Simulator()
        lan = Lan(sim)
        client = Endpoint(sim, lan, "client")
        server = Endpoint(sim, lan, "server")

        def server_side():
            yield from server.accept()
            # accept the connection, never answer RPCs

        sim.spawn(server_side())
        result = {}

        def client_side():
            conn = yield from client.connect("server")
            rpc = RpcClient(sim, conn)
            try:
                yield from rpc.call(IntervalListCall(client_id="c1"),
                                    timeout_s=0.1, retries=1)
            except ServerUnavailable:
                result["failed_at"] = sim.now

        sim.spawn(client_side())
        sim.run(until=60)
        assert result["failed_at"] == pytest.approx(0.2, abs=0.05)

    def test_duplicate_reply_ignored(self):
        sim, lan, client, served = build()
        result = {}

        def client_side():
            conn = yield from client.connect("server")
            rpc = RpcClient(sim, conn)

            def pump():
                while True:
                    message = yield conn.inbox.get()
                    if isinstance(message, RpcReply):
                        first = rpc.dispatch(message)
                        second = rpc.dispatch(message)  # duplicated
                        result.setdefault("dups", []).append((first, second))

            sim.spawn(pump())
            yield from rpc.call(IntervalListCall(client_id="c1"))

        sim.spawn(client_side())
        sim.run(until=10)
        assert result["dups"][0] == (True, False)

    def test_non_rpc_messages_ignored_by_server(self):
        sim = Simulator()
        lan = Lan(sim)
        client = Endpoint(sim, lan, "client")
        server = Endpoint(sim, lan, "server")
        served = []

        def server_side():
            conn = yield from server.accept()

            def handler(body):
                served.append(body)
                return IntervalListReply(client_id="x", intervals=())
                yield  # pragma: no cover

            yield from serve_rpc(sim, conn, handler)

        def client_side():
            conn = yield from client.connect("server")
            yield from conn.send("not-an-rpc")

        sim.spawn(server_side())
        sim.spawn(client_side())
        sim.run(until=10)
        assert served == []

"""Tests for the Figure 4-1 message set."""

import pytest

from repro.core.intervals import Interval
from repro.core.records import StoredRecord
from repro.net import (
    AckReply,
    CopyLogCall,
    ErrorReply,
    ForceLogMsg,
    InstallCopiesCall,
    IntervalListCall,
    IntervalListReply,
    MissingIntervalMsg,
    NewHighLSNMsg,
    NewIntervalMsg,
    ReadLogBackwardCall,
    ReadLogForwardCall,
    ReadLogReply,
    WriteLogMsg,
)


def records(lsns, epoch=1, size=10):
    return tuple(
        StoredRecord(lsn=l, epoch=epoch, data=b"d" * size) for l in lsns
    )


class TestWriteMessages:
    def test_bounds(self):
        msg = WriteLogMsg(client_id="c", epoch=1, records=records([3, 4, 5]))
        assert msg.low_lsn == 3
        assert msg.high_lsn == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            WriteLogMsg(client_id="c", epoch=1, records=())

    def test_non_consecutive_rejected(self):
        with pytest.raises(ValueError):
            WriteLogMsg(client_id="c", epoch=1, records=records([1, 3]))

    def test_epoch_mismatch_rejected(self):
        with pytest.raises(ValueError):
            WriteLogMsg(client_id="c", epoch=2, records=records([1, 2]))

    def test_force_is_a_write(self):
        msg = ForceLogMsg(client_id="c", epoch=1, records=records([1]))
        assert isinstance(msg, WriteLogMsg)

    def test_wire_size_grows_with_records(self):
        one = WriteLogMsg(client_id="c", epoch=1, records=records([1]))
        three = WriteLogMsg(client_id="c", epoch=1, records=records([1, 2, 3]))
        assert three.wire_size > one.wire_size


class TestServerMessages:
    def test_new_high_lsn(self):
        msg = NewHighLSNMsg(client_id="c", new_high_lsn=42)
        assert msg.new_high_lsn == 42

    def test_missing_interval(self):
        msg = MissingIntervalMsg(client_id="c", lo=5, hi=9)
        assert (msg.lo, msg.hi) == (5, 9)

    def test_new_interval(self):
        msg = NewIntervalMsg(client_id="c", epoch=2, starting_lsn=10)
        assert msg.starting_lsn == 10


class TestSyncCalls:
    def test_interval_list_reply_sizes_by_triples(self):
        empty = IntervalListReply(client_id="c", intervals=())
        two = IntervalListReply(
            client_id="c",
            intervals=(Interval(1, 1, 5), Interval(2, 6, 9)),
        )
        assert two.wire_size - empty.wire_size == 24  # 2 × 3 integers

    def test_read_calls_carry_lsn(self):
        assert ReadLogForwardCall(client_id="c", lsn=7).lsn == 7
        assert ReadLogBackwardCall(client_id="c", lsn=7).lsn == 7

    def test_read_reply_may_be_empty(self):
        reply = ReadLogReply(client_id="c")
        assert reply.records == ()

    def test_copy_log_epoch_checked(self):
        with pytest.raises(ValueError):
            CopyLogCall(client_id="c", epoch=5, records=records([1], epoch=4))

    def test_copy_log_non_consecutive_allowed(self):
        # CopyLog rewrites arbitrary LSNs (a copy + a guard may not be
        # adjacent to each other on this server)
        recs = (
            StoredRecord(lsn=1, epoch=2, data=b"a"),
            StoredRecord(lsn=5, epoch=2, present=False),
        )
        call = CopyLogCall(client_id="c", epoch=2, records=recs)
        assert len(call.records) == 2

    def test_install_and_acks(self):
        assert InstallCopiesCall(client_id="c", epoch=3).epoch == 3
        assert AckReply(client_id="c").ok
        assert ErrorReply(client_id="c", reason="bad").reason == "bad"

    def test_interval_list_call(self):
        assert IntervalListCall(client_id="c").client_id == "c"

"""Tests for the simulated LAN."""

import random

import pytest

from repro.net import DualLan, Lan, Packet
from repro.sim import Simulator


def packet(src="a", dst="b"):
    return Packet(src=src, dst=dst, conn_id=1, seq=1, allocation=64,
                  payload=None)


class TestLan:
    def test_delivery(self):
        sim = Simulator()
        lan = Lan(sim)
        nic = lan.attach("b")
        lan.attach("a")

        def sender():
            yield from lan.send(packet())

        sim.spawn(sender())
        sim.run()
        assert len(nic) == 1

    def test_transmission_time_from_bandwidth(self):
        sim = Simulator()
        lan = Lan(sim, bandwidth_bps=10e6, latency_s=0.0)
        lan.attach("a")
        lan.attach("b")

        def sender():
            yield from lan.send(packet())

        sim.spawn(sender())
        sim.run()
        assert sim.now == pytest.approx(64 * 8 / 10e6)

    def test_latency_added_after_transmission(self):
        sim = Simulator()
        lan = Lan(sim, bandwidth_bps=10e6, latency_s=0.001)
        nic = lan.attach("b")
        lan.attach("a")
        arrival = {}

        def sender():
            yield from lan.send(packet())

        def receiver():
            yield nic.get()
            arrival["t"] = sim.now

        sim.spawn(sender())
        sim.spawn(receiver())
        sim.run()
        assert arrival["t"] == pytest.approx(64 * 8 / 10e6 + 0.001)

    def test_medium_serializes_senders(self):
        sim = Simulator()
        lan = Lan(sim, bandwidth_bps=10e6, latency_s=0.0)
        lan.attach("a")
        lan.attach("b")

        def sender():
            yield from lan.send(packet())

        sim.spawn(sender())
        sim.spawn(sender())
        sim.run()
        assert sim.now == pytest.approx(2 * 64 * 8 / 10e6)

    def test_loss(self):
        sim = Simulator()
        lan = Lan(sim, loss_prob=1.0 - 1e-12, rng=random.Random(0))
        nic = lan.attach("b")
        lan.attach("a")

        def sender():
            for _ in range(10):
                yield from lan.send(packet())

        sim.spawn(sender())
        sim.run()
        assert len(nic) == 0
        assert lan.packets_lost == 10

    def test_duplication(self):
        sim = Simulator()
        lan = Lan(sim, dup_prob=1.0 - 1e-12, rng=random.Random(0))
        nic = lan.attach("b")
        lan.attach("a")

        def sender():
            yield from lan.send(packet())

        sim.spawn(sender())
        sim.run()
        assert len(nic) == 2
        assert lan.packets_duplicated == 1

    def test_unknown_destination_dropped(self):
        sim = Simulator()
        lan = Lan(sim)
        lan.attach("a")

        def sender():
            yield from lan.send(packet(dst="ghost"))

        sim.spawn(sender())
        sim.run()
        assert lan.packets_lost == 1

    def test_downed_network_drops(self):
        sim = Simulator()
        lan = Lan(sim)
        nic = lan.attach("b")
        lan.attach("a")
        lan.crash()

        def sender():
            yield from lan.send(packet())

        sim.spawn(sender())
        sim.run()
        assert len(nic) == 0
        lan.restart()
        assert lan.up

    def test_multicast_single_transmission(self):
        """One medium transmission reaches all receivers (Section 4.1)."""
        sim = Simulator()
        lan = Lan(sim, bandwidth_bps=10e6, latency_s=0.0)
        nics = [lan.attach(f"r{i}") for i in range(3)]
        lan.attach("a")

        def sender():
            yield from lan.multicast(packet(dst="r0"), ["r0", "r1", "r2"])

        sim.spawn(sender())
        sim.run()
        assert all(len(n) == 1 for n in nics)
        assert lan.packets_sent.count == 1
        assert sim.now == pytest.approx(64 * 8 / 10e6)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Lan(sim, bandwidth_bps=0)
        with pytest.raises(ValueError):
            Lan(sim, loss_prob=1.5)


class TestDualLan:
    def build(self):
        sim = Simulator()
        a = Lan(sim, name="a")
        b = Lan(sim, name="b")
        dual = DualLan(a, b)
        return sim, a, b, dual

    def test_attach_returns_both_nics(self):
        sim, a, b, dual = self.build()
        nic_a, nic_b = dual.attach("x")
        assert nic_a is a.nic("x")
        assert nic_b is b.nic("x")

    def test_stripes_across_networks(self):
        sim, a, b, dual = self.build()
        dual.attach("x")
        dual.attach("y")

        def sender():
            for _ in range(10):
                yield from dual.send(packet(src="x", dst="y"))

        sim.spawn(sender())
        sim.run()
        assert a.packets_sent.count == 5
        assert b.packets_sent.count == 5

    def test_fails_over_when_one_down(self):
        sim, a, b, dual = self.build()
        dual.attach("x")
        dual.attach("y")
        a.crash()

        def sender():
            for _ in range(6):
                yield from dual.send(packet(src="x", dst="y"))

        sim.spawn(sender())
        sim.run()
        assert b.packets_sent.count == 6

    def test_totals_aggregate(self):
        sim, a, b, dual = self.build()
        dual.attach("x")
        dual.attach("y")

        def sender():
            for _ in range(4):
                yield from dual.send(packet(src="x", dst="y"))

        sim.spawn(sender())
        sim.run()
        assert dual.packets_sent == 4
        assert dual.bytes_sent == 4 * 64

"""Property tests for the transport: delivery under loss and duplication.

Invariant (Section 4.2's duplicate-detection contract): whatever the
network does short of partition, the receiver sees a *subsequence* of
the sent messages, in order, with no duplicates — the log protocol
above recovers the gaps (MissingInterval), never the transport.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Endpoint, Lan
from repro.sim import Simulator


def run_exchange(n_messages: int, loss: float, dup: float, seed: int):
    sim = Simulator()
    lan = Lan(sim, loss_prob=loss, dup_prob=dup, rng=random.Random(seed))
    sender = Endpoint(sim, lan, "sender")
    receiver = Endpoint(sim, lan, "receiver")
    received: list[int] = []

    def receive_side():
        conn = yield from receiver.accept()
        while True:
            message = yield conn.inbox.get()
            received.append(message)

    def send_side():
        conn = yield from sender.connect("receiver")
        for i in range(n_messages):
            yield from conn.send(i)

    sim.spawn(receive_side())
    sim.spawn(send_side())
    sim.run(until=300)
    return received


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(1, 40),
    loss=st.floats(0.0, 0.4),
    dup=st.floats(0.0, 0.4),
    seed=st.integers(0, 10_000),
)
def test_received_is_ordered_subsequence_without_duplicates(n, loss, dup, seed):
    received = run_exchange(n, loss, dup, seed)
    # no duplicates
    assert len(received) == len(set(received))
    # in order
    assert received == sorted(received)
    # a subsequence of what was sent
    assert set(received) <= set(range(n))


@settings(max_examples=15, deadline=None)
@given(n=st.integers(1, 40), dup=st.floats(0.0, 0.9), seed=st.integers(0, 10_000))
def test_lossless_network_delivers_everything(n, dup, seed):
    """With no loss, duplication alone never drops or reorders."""
    received = run_exchange(n, 0.0, dup, seed)
    assert received == list(range(n))

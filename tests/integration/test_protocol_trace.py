"""Golden-trace tests: the Figure 4-1 exchanges, packet by packet.

These tests pin down the wire behaviour the paper designs for — one
ForceLog packet per force per copy, one NewHighLSN acknowledgment
back, RPC request/reply pairs for the synchronous calls — so protocol
regressions show up as a changed trace, not as a vague latency shift.
"""

from repro.client import SimLogClient
from repro.core import ReplicationConfig, make_generator
from repro.net import Lan
from repro.net.rpc import RpcReply, RpcRequest
from repro.server import SimLogServer
from repro.sim import Simulator


class TracingLan(Lan):
    """A LAN that records every transmitted packet's shape."""

    def __init__(self, sim):
        super().__init__(sim)
        self.trace: list[tuple[str, str, str]] = []

    def _transmit(self, packet, destinations):
        label = self._label(packet)
        for dst in destinations:
            self.trace.append((packet.src, dst, label))
        yield from super()._transmit(packet, destinations)

    @staticmethod
    def _label(packet) -> str:
        if packet.kind != "data":
            return packet.kind.upper()
        payload = packet.payload
        if isinstance(payload, RpcRequest):
            return f"RPC:{type(payload.body).__name__}"
        if isinstance(payload, RpcReply):
            return f"REPLY:{type(payload.body).__name__}"
        return type(payload).__name__


def build():
    sim = Simulator()
    lan = TracingLan(sim)
    for i in range(3):
        SimLogServer(sim, lan, f"s{i}")
    client = SimLogClient(
        sim, lan, "c", [f"s{i}" for i in range(3)],
        ReplicationConfig(3, 2, delta=16), make_generator(3),
    )
    return sim, lan, client


class TestForceTrace:
    def test_one_force_is_one_packet_per_copy_plus_acks(self):
        sim, lan, client = build()

        def main():
            yield from client.initialize()
            lan.trace.clear()
            for i in range(7):
                yield from client.log(b"u" * 100)
            yield from client.force()

        sim.spawn(main())
        sim.run(until=30)
        data = [t for t in lan.trace if t[2] in ("ForceLogMsg",
                                                 "NewHighLSNMsg")]
        forces = [t for t in data if t[2] == "ForceLogMsg"]
        acks = [t for t in data if t[2] == "NewHighLSNMsg"]
        # exactly N=2 ForceLog packets out, N=2 acknowledgments back
        assert len(forces) == 2
        assert len(acks) == 2
        assert {t[0] for t in forces} == {"c"}
        assert {t[1] for t in acks} == {"c"}
        # each server that got a force sent the ack
        assert {t[1] for t in forces} == {t[0] for t in acks}

    def test_buffered_records_generate_no_traffic(self):
        sim, lan, client = build()
        counts = {}

        def main():
            yield from client.initialize()
            lan.trace.clear()
            for i in range(3):  # stays below a packet's capacity
                yield from client.log(b"u" * 100)
            counts["after_log"] = len(lan.trace)
            yield from client.force()

        sim.spawn(main())
        sim.run(until=30)
        assert counts["after_log"] == 0  # grouping: nothing until force


class TestInitializationTrace:
    def test_init_exchange_shape(self):
        sim, lan, client = build()

        def main():
            yield from client.initialize()

        sim.spawn(main())
        sim.run(until=30)
        labels = [t[2] for t in lan.trace]
        # three-way handshakes with every server
        assert labels.count("SYN") == 3
        assert labels.count("SYNACK") == 3
        # one IntervalList call per server
        assert labels.count("RPC:IntervalListCall") == 3
        assert labels.count("REPLY:IntervalListReply") == 3
        # epoch from the replicated generator is direct here (the
        # LocalIdGenerator path) — no generator RPCs expected
        assert not any("Generator" in label for label in labels)
        # copies staged and installed on exactly N=2 servers
        assert labels.count("RPC:CopyLogCall") == 2
        assert labels.count("RPC:InstallCopiesCall") == 2
        assert labels.count("REPLY:AckReply") == 4

    def test_ordering_within_one_server(self):
        """IntervalList precedes CopyLog precedes InstallCopies."""
        sim, lan, client = build()

        def main():
            yield from client.initialize()

        sim.spawn(main())
        sim.run(until=30)
        write_set = set(client.write_set)
        for server in write_set:
            to_server = [t[2] for t in lan.trace if t[1] == server
                         and t[2].startswith("RPC:")]
            assert to_server.index("RPC:IntervalListCall") \
                < to_server.index("RPC:CopyLogCall") \
                < to_server.index("RPC:InstallCopiesCall")


class TestReadTrace:
    def test_read_contacts_single_server(self):
        sim, lan, client = build()

        def main():
            yield from client.initialize()
            lsn = yield from client.log(b"x")
            yield from client.force()
            lan.trace.clear()
            yield from client.read(lsn)

        sim.spawn(main())
        sim.run(until=30)
        reads = [t for t in lan.trace if t[2] == "RPC:ReadLogForwardCall"]
        # "each ReadLog operation can be implemented with a request to
        # one log server"
        assert len(reads) == 1

"""End-to-end scenarios spanning the whole stack."""

import random

from repro.client import ClientNode, SimLogClient, UndoCache
from repro.core import ReplicationConfig, make_generator
from repro.net import DualLan, Lan
from repro.server import SimLogServer
from repro.sim import MetricSet, Simulator
from repro.workload import Et1Params, et1_transaction


class TestWorkstationCluster:
    """Several workstation nodes sharing the same log servers."""

    def test_multiple_clients_share_servers(self):
        sim = Simulator()
        lan = Lan(sim)
        metrics = MetricSet()
        server_ids = [f"s{i}" for i in range(3)]
        servers = {sid: SimLogServer(sim, lan, sid, metrics=metrics)
                   for sid in server_ids}
        generator = make_generator(3)
        nodes = []
        for i in range(4):
            client = SimLogClient(
                sim, lan, f"ws{i}", server_ids,
                ReplicationConfig(3, 2, delta=16), generator,
                metrics=metrics,
            )
            nodes.append(ClientNode.simulated(client))

        params = Et1Params(branches=2, tellers_per_branch=2,
                           accounts_per_branch=20)

        def run_node(index, node):
            rng = random.Random(index)
            yield from node.backend.client.initialize()
            for _ in range(5):
                yield from et1_transaction(node, params, rng)

        def main():
            procs = [sim.spawn(run_node(i, node))
                     for i, node in enumerate(nodes)]
            yield sim.all_of(procs)

        sim.spawn(main())
        sim.run(until=120)
        # every server holds records from several clients, interleaved
        for server in servers.values():
            assert len(server.store.known_clients()) >= 2
        # and each node's database reflects its transactions
        for node in nodes:
            assert any(k.startswith("account:") for k in node.db.cache)

    def test_dual_network_survives_single_network_failure(self):
        sim = Simulator()
        net_a = Lan(sim, name="a")
        net_b = Lan(sim, name="b")
        dual = DualLan(net_a, net_b)
        for i in range(3):
            SimLogServer(sim, dual, f"s{i}")
        client = SimLogClient(
            sim, dual, "c1", [f"s{i}" for i in range(3)],
            ReplicationConfig(3, 2, delta=16), make_generator(3),
        )
        result = {}

        def main():
            yield from client.initialize()
            yield from client.log(b"before")
            yield from client.force()
            net_a.crash()  # one entire network dies
            lsn = yield from client.log(b"after")
            yield from client.force()
            record = yield from client.read(lsn)
            result["data"] = record.data

        sim.spawn(main())
        sim.run(until=120)
        assert result["data"] == b"after"


class TestWholeStackCrashStory:
    """Client crash + server crash + recovery, over the network."""

    def test_client_and_server_crashes_interleaved(self):
        sim = Simulator()
        lan = Lan(sim)
        server_ids = [f"s{i}" for i in range(4)]
        servers = {sid: SimLogServer(sim, lan, sid) for sid in server_ids}
        client = SimLogClient(
            sim, lan, "c1", server_ids,
            ReplicationConfig(4, 2, delta=8), make_generator(3),
        )
        node = ClientNode.simulated(client)
        result = {}

        def main():
            yield from client.initialize()
            yield from node.run_transaction([("a", "1")])
            # server crash mid-life: the client fails over
            victim = client.write_set[0]
            servers[victim].crash()
            yield from node.run_transaction([("b", "2")])
            # client crash: full node recovery over the network
            node.crash()
            yield from node.restart()
            result["a"] = node.db.stable["a"]
            result["b"] = node.db.stable["b"]
            # crashed server comes back (durable store intact) and can
            # serve interval lists again
            servers[victim].restart(lose_nvram=False)
            node.crash()
            yield from node.restart()
            result["a2"] = node.db.stable["a"]

        sim.spawn(main())
        sim.run(until=300)
        assert result["a"] == "1"
        assert result["b"] == "2"
        assert result["a2"] == "1"

    def test_server_power_failure_preserves_acknowledged_data(self):
        sim = Simulator()
        lan = Lan(sim)
        server_ids = ["s0", "s1"]
        servers = {sid: SimLogServer(sim, lan, sid) for sid in server_ids}
        client = SimLogClient(
            sim, lan, "c1", server_ids,
            ReplicationConfig(2, 2, delta=8), make_generator(3),
        )
        result = {}

        def main():
            yield from client.initialize()
            lsn = yield from client.log(b"precious")
            yield from client.force()  # durable on both (in NVRAM)
            servers["s0"].crash()
            servers["s1"].crash()
            servers["s0"].restart()  # NVRAM preserved
            servers["s1"].restart()
            client.crash()
            yield from client.restart()
            record = yield from client.read(lsn)
            result["data"] = record.data

        sim.spawn(main())
        sim.run(until=300)
        assert result["data"] == b"precious"


class TestSplitLoggingOverNetwork:
    def test_undo_cache_with_simulated_backend(self):
        sim = Simulator()
        lan = Lan(sim)
        for i in range(3):
            SimLogServer(sim, lan, f"s{i}")
        client = SimLogClient(
            sim, lan, "c1", [f"s{i}" for i in range(3)],
            ReplicationConfig(3, 2, delta=16), make_generator(3),
        )
        node = ClientNode.simulated(client, undo_cache=UndoCache())
        result = {}

        def main():
            yield from client.initialize()
            yield from node.run_transaction([("x", "keep")])
            yield from node.run_transaction([("x", "drop")], abort=True)
            result["x"] = node.read("x")
            result["remote_reads"] = node.rm.remote_abort_reads

        sim.spawn(main())
        sim.run(until=60)
        assert result["x"] == "keep"
        assert result["remote_reads"] == 0

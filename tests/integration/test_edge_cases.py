"""Edge cases across packages that the focused suites do not reach."""

import random

import pytest

from repro.baselines import LocalDiskLog, UnbatchedBackend
from repro.client import ClientNode, SimLogClient
from repro.client.dumps import DumpManager
from repro.core import ReplicationConfig, make_generator
from repro.net import DualLan, Lan, Packet
from repro.server import SimLogServer, SpaceManager, TruncationPoint
from repro.sim import Channel, Resource, Simulator
from repro.storage import SLOW_1987_DISK, DiskLogStream, SimDisk, StreamEntry
from repro.core.records import StoredRecord

from ..conftest import drain


class TestDualLanBothDown:
    def test_packets_dropped_not_crashed(self):
        sim = Simulator()
        a, b = Lan(sim, name="a"), Lan(sim, name="b")
        dual = DualLan(a, b)
        dual.attach("x")
        nic_a, nic_b = dual.attach("y")
        a.crash()
        b.crash()

        def sender():
            yield from dual.send(Packet(src="x", dst="y", conn_id=1,
                                        seq=1, allocation=1, payload=None))

        proc = sim.spawn(sender())
        sim.run()
        assert proc.ok
        assert len(nic_a) == 0 and len(nic_b) == 0


class TestChannelHook:
    def test_consume_hook_called_on_both_paths(self):
        sim = Simulator()
        ch = Channel(sim)
        consumed = []
        ch.consume_hook = lambda: consumed.append(ch.total_got)
        # path 1: item waits for getter
        ch.put("a")

        def getter():
            value = yield ch.get()
            return value

        p = sim.spawn(getter())
        sim.run()
        assert p.value == "a"
        # path 2: getter waits for item
        p2 = sim.spawn(getter())
        sim.run()
        ch.put("b")
        sim.run()
        assert p2.value == "b"
        assert consumed == [1, 2]


class TestResourceQueueAccounting:
    def test_busy_integral_continuous_across_handoff(self):
        sim = Simulator()
        res = Resource(sim)

        def worker():
            yield from res.use(1.0)

        for _ in range(3):
            sim.spawn(worker())
        sim.run()
        assert res.busy_integral() == pytest.approx(3.0)
        assert res.utilization() == pytest.approx(1.0)


class TestLocalDiskLogScan:
    def test_scan_backward_for_recovery_manager(self):
        sim = Simulator()
        log = LocalDiskLog(sim, SimDisk(sim, SLOW_1987_DISK))

        def main():
            yield from log.log(b"B|1")
            yield from log.log(b"C|1")
            yield from log.force()
            records = yield from log.scan_backward()
            return [r.data for r in records]

        proc = sim.spawn(main())
        sim.run()
        assert proc.value == [b"C|1", b"B|1"]

    def test_recovery_manager_over_local_log(self):
        """The WAL layer runs unchanged over the local baseline."""
        sim = Simulator()
        log = LocalDiskLog(sim, SimDisk(sim, SLOW_1987_DISK))
        node = ClientNode(log)

        def main():
            yield from node.run_transaction([("a", "1")])
            txn = yield from node.rm.begin()
            yield from node.rm.update(txn, "a", "dirty")
            node.crash()
            summary = yield from node.restart()
            return summary

        proc = sim.spawn(main())
        sim.run()
        assert proc.ok
        assert node.db.stable["a"] == "1"


class TestUnbatchedLifecycle:
    def test_crash_restart_through_adapter(self):
        sim = Simulator()
        lan = Lan(sim)
        for i in range(2):
            SimLogServer(sim, lan, f"s{i}")
        client = SimLogClient(
            sim, lan, "c", ["s0", "s1"],
            ReplicationConfig(2, 2, delta=16), make_generator(3),
        )
        backend = UnbatchedBackend(client)
        result = {}

        def main():
            yield from client.initialize()
            lsn = yield from backend.log(b"x")
            backend.crash()
            yield from backend.restart()
            record = yield from backend.read(lsn)
            result["data"] = record.data

        sim.spawn(main())
        sim.run(until=60)
        assert result["data"] == b"x"


class TestSpaceManagerInterplay:
    def test_spool_then_discard_upgrades_tracks(self):
        stream = DiskLogStream(track_bytes=200)
        for lsn in range(1, 21):
            stream.append(StreamEntry("write", "c", StoredRecord(
                lsn=lsn, epoch=1, data=b"x" * 40)))
        stream.seal_track()
        manager = SpaceManager(stream)
        manager.declare("c", TruncationPoint(21, 1))
        manager.spool_to_offline()
        spooled = manager.report.spooled_tracks
        assert spooled > 0
        # a later dump allows discarding even the spooled tracks
        manager.declare("c", TruncationPoint(21, 21))
        manager.discard_unneeded()
        states = set(manager.track_states().values())
        assert states == {"discarded"}
        assert manager.offline_store == {}


class TestMultipleDumps:
    def test_latest_dump_governs_recovery(self):
        node, _ = ClientNode.direct(m=3, n=2)
        dumps = DumpManager(node.rm)
        drain(node.run_transaction([("k", "old")]))
        drain(dumps.take_dump())
        drain(node.run_transaction([("k", "mid")]))
        second = drain(dumps.take_dump())
        drain(node.run_transaction([("k", "new")]))
        assert dumps.latest is second
        node.db.stable.clear()
        summary = drain(dumps.media_recovery())
        assert summary["replayed_from_lsn"] == second.replay_from
        assert node.db.stable["k"] == "new"


class TestRotateNoop:
    def test_rotate_keeping_same_set_is_cheap(self):
        sim = Simulator()
        lan = Lan(sim)
        for i in range(2):
            SimLogServer(sim, lan, f"s{i}")
        client = SimLogClient(
            sim, lan, "c", ["s0", "s1"],
            ReplicationConfig(2, 2, delta=16), make_generator(3),
        )
        result = {}

        def main():
            yield from client.initialize()
            yield from client.log(b"x")
            yield from client.force()
            before = client.write_set
            # with M == N there is nowhere else to go
            yield from client.rotate_write_set()
            result["same"] = set(client.write_set) == set(before)
            yield from client.log(b"y")
            yield from client.force()

        proc = sim.spawn(main())
        sim.run(until=60)
        assert proc.ok
        assert result["same"]

"""Group commit: concurrent transaction streams share one log process.

"Recovery managers commonly support the grouping of log record writes"
— when several transactions on one node commit close together, a
single ForceLog can carry (and a single NewHighLSN can acknowledge)
all of them, because acknowledgments are cumulative.
"""

from repro.client import SimLogClient
from repro.core import ReplicationConfig, make_generator
from repro.net import Lan
from repro.server import SimLogServer
from repro.sim import MetricSet, Simulator


def build():
    sim = Simulator()
    lan = Lan(sim)
    metrics = MetricSet()
    for i in range(2):
        SimLogServer(sim, lan, f"s{i}", metrics=metrics)
    client = SimLogClient(
        sim, lan, "c", ["s0", "s1"],
        ReplicationConfig(2, 2, delta=64), make_generator(3),
        metrics=metrics,
    )
    return sim, metrics, client


class TestGroupCommit:
    def test_concurrent_streams_commit_correctly(self):
        sim, metrics, client = build()
        committed = {}

        def stream(tag, n_txns):
            for i in range(n_txns):
                lsns = []
                for j in range(3):
                    data = b"%s:%d:%d" % (tag.encode(), i, j)
                    lsn = yield from client.log(data)
                    lsns.append((lsn, data))
                yield from client.force()
                committed.setdefault(tag, []).extend(lsns)

        def main():
            yield from client.initialize()
            procs = [
                sim.spawn(stream("alpha", 10)),
                sim.spawn(stream("beta", 10)),
            ]
            yield sim.all_of(procs)
            # audit: every stream's records are durable and exact
            for tag, entries in committed.items():
                for lsn, data in entries:
                    record = yield from client.read(lsn)
                    assert record.data == data, (tag, lsn)

        proc = sim.spawn(main())
        sim.run(until=120)
        assert proc.triggered and proc.ok
        assert len(committed["alpha"]) == 30
        assert len(committed["beta"]) == 30
        # LSNs are globally unique across the streams
        all_lsns = [lsn for entries in committed.values()
                    for lsn, _data in entries]
        assert len(all_lsns) == len(set(all_lsns))

    def test_cumulative_ack_makes_second_force_free(self):
        """A later force's ack covers earlier buffered records.

        Stream A buffers records without forcing; stream B logs and
        forces — the cumulative NewHighLSN covers A's records too, so
        A's subsequent force sends no new packets at all.
        """
        sim, metrics, client = build()
        counts = {}

        def main():
            yield from client.initialize()
            # A: buffer three records, do not force yet
            for j in range(3):
                yield from client.log(b"A%d" % j)
            # B: one record, then force — carries A's records with it
            yield from client.log(b"B")
            yield from client.force()
            before = metrics.counter("c.msgs_out").count
            # A's force finds everything acknowledged already
            yield from client.force()
            counts["extra_msgs"] = (
                metrics.counter("c.msgs_out").count - before)

        proc = sim.spawn(main())
        sim.run(until=60)
        assert proc.ok
        assert counts["extra_msgs"] == 0

    def test_each_commit_is_at_most_one_message_per_copy(self):
        sim, metrics, client = build()

        def stream(n_txns):
            for i in range(n_txns):
                for j in range(3):
                    yield from client.log(b"r")
                yield from client.force()

        def main():
            yield from client.initialize()
            procs = [sim.spawn(stream(15)) for _ in range(4)]
            yield sim.all_of(procs)

        proc = sim.spawn(main())
        sim.run(until=120)
        assert proc.ok
        force_msgs = (metrics.counter("s0.force_msgs").count
                      + metrics.counter("s1.force_msgs").count)
        assert force_msgs <= 60 * 2
        assert client.forces == 60

"""Soak test: ET1 under continuous random server failures.

Servers crash and recover on independent exponential schedules while
clients run transactions; every transaction whose commit force
returned is recorded, and after the storm every recorded record must
be readable with its exact payload — the durability contract under
sustained, overlapping failures rather than the scripted ones of the
crash matrix.
"""

import random

import pytest

from repro.client import SimLogClient
from repro.core import NotEnoughServers, ReplicationConfig, ServerUnavailable, make_generator
from repro.net import Lan
from repro.server import SimLogServer, StickyAssignment
from repro.sim import MetricSet, Simulator, UpDownProcess


class SoakHarness:
    def __init__(self, clients=4, servers=4, seed=0, mtbf=4.0, mttr=0.4):
        self.sim = Simulator()
        self.lan = Lan(self.sim, rng=random.Random(seed))
        self.metrics = MetricSet()
        self.server_ids = [f"s{i}" for i in range(servers)]
        self.servers = {
            sid: SimLogServer(self.sim, self.lan, sid, metrics=self.metrics)
            for sid in self.server_ids
        }
        self.failers = [
            UpDownProcess(self.sim, server, mtbf=mtbf, mttr=mttr,
                          rng=random.Random(seed + 17 + i))
            for i, (sid, server) in enumerate(self.servers.items())
        ]
        generator = make_generator(3)
        self.clients = []
        for i in range(clients):
            client = SimLogClient(
                self.sim, self.lan, f"c{i}", self.server_ids,
                ReplicationConfig(servers, 2, delta=32), generator,
                metrics=self.metrics,
                assignment=StickyAssignment([
                    self.server_ids[i % servers],
                    self.server_ids[(i + 1) % servers],
                ]),
                force_timeout_s=0.15,
            )
            self.clients.append(client)
        #: committed (client, lsn, payload) triples — the audit set.
        self.committed: list[tuple[SimLogClient, int, bytes]] = []
        self.txn_attempts = 0
        self.txn_commits = 0
        self.recoveries = 0

    def client_loop(self, client: SimLogClient, duration_s: float,
                    rng: random.Random):
        initialized = False
        t_end = duration_s
        while self.sim.now < t_end:
            if not initialized:
                try:
                    yield from client.restart()
                    initialized = True
                    self.recoveries += 1
                except (NotEnoughServers, ServerUnavailable):
                    yield self.sim.timeout(0.3)
                    continue
            yield self.sim.timeout(rng.expovariate(8.0))
            self.txn_attempts += 1
            lsns = []
            payloads = []
            try:
                for i in range(5):
                    data = b"%s:%d:%d" % (client.client_id.encode(),
                                          self.txn_attempts, i)
                    lsn = yield from client.log(data)
                    lsns.append(lsn)
                    payloads.append(data)
                yield from client.force()
            except (NotEnoughServers, ServerUnavailable):
                client.crash()
                initialized = False
                continue
            self.txn_commits += 1
            self.committed.extend(
                (client, lsn, data) for lsn, data in zip(lsns, payloads))

    def run(self, duration_s: float = 12.0):
        procs = [
            self.sim.spawn(self.client_loop(
                client, duration_s, random.Random(100 + i)))
            for i, client in enumerate(self.clients)
        ]
        self.sim.run(until=duration_s + 5)
        for failer in self.failers:
            failer.stop()
        # calm the cluster and finish any stuck client loops
        for server in self.servers.values():
            if server.crashed:
                server.restart()
        self.sim.run(until=self.sim.now + 30)

    def audit(self):
        """Every committed record must be readable, exact payload."""
        failures = []

        def auditor():
            for client in self.clients:
                client.crash()
                yield from client.restart()
            for client, lsn, expected in self.committed:
                try:
                    record = yield from client.read(lsn)
                except Exception as exc:  # noqa: BLE001 - collected
                    failures.append((client.client_id, lsn, repr(exc)))
                    continue
                if record.data != expected:
                    failures.append((client.client_id, lsn,
                                     f"{record.data!r} != {expected!r}"))

        proc = self.sim.spawn(auditor())
        # each audit read costs a real random disk read (~66 ms), so
        # budget simulated time proportional to the committed volume
        budget = 0.3 * len(self.committed) + 120
        self.sim.run(until=self.sim.now + budget)
        assert proc.triggered, "audit did not finish"
        if not proc.ok:
            _ = proc.value  # re-raise
        return failures


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_no_committed_transaction_lost_under_failure_storm(seed):
    harness = SoakHarness(seed=seed)
    harness.run(duration_s=10.0)
    # the storm must have actually done something
    assert sum(f.crashes for f in harness.failers) >= 3
    assert harness.txn_commits > 20
    failures = harness.audit()
    assert failures == [], failures[:5]


def test_soak_with_aggressive_failures():
    """Higher failure rate: fewer commits, still zero loss."""
    harness = SoakHarness(seed=9, mtbf=2.0, mttr=0.8)
    harness.run(duration_s=8.0)
    failures = harness.audit()
    assert failures == [], failures[:5]
    # commits happened despite ~29% per-server downtime
    assert harness.txn_commits > 5

"""Systematic failure injection: crash at every interesting point.

The matrix walks the direct algorithm through a scripted life —
writes, client crashes, server outages, partial writes — verifying
after every step that the two core guarantees hold:

* **durability**: every acknowledged write stays readable with its
  exact payload;
* **consistency**: a partially written record reports one fate,
  forever.
"""

import itertools

import pytest

from repro.core import (
    LSNNotWritten,
    NotEnoughServers,
    RecordNotPresent,
    ReplicationConfig,
)

from ..conftest import build_direct_log


def audit(log, acknowledged):
    for lsn, data in acknowledged.items():
        assert log.read(lsn).data == data


class TestCrashPoints:
    @pytest.mark.parametrize("crash_after", range(6))
    def test_client_crash_after_k_writes(self, crash_after):
        log, _ = build_direct_log(m=3, n=2)
        acknowledged = {}
        for i in range(6):
            lsn = log.write(b"w%d" % i)
            acknowledged[lsn] = b"w%d" % i
            if i == crash_after:
                log.crash()
                log.initialize()
        audit(log, acknowledged)

    @pytest.mark.parametrize("down_server", range(3))
    def test_single_server_outage_at_each_position(self, down_server):
        log, stores = build_direct_log(m=3, n=2)
        acknowledged = {}
        for i in range(3):
            lsn = log.write(b"a%d" % i)
            acknowledged[lsn] = b"a%d" % i
        list(stores.values())[down_server].crash()
        for i in range(3):
            lsn = log.write(b"b%d" % i)
            acknowledged[lsn] = b"b%d" % i
        audit(log, acknowledged)

    @pytest.mark.parametrize("m,n", [(2, 2), (3, 2), (4, 2), (5, 3), (4, 3)])
    def test_configurations(self, m, n):
        log, stores = build_direct_log(m=m, n=n)
        acknowledged = {}
        for i in range(4):
            lsn = log.write(b"x%d" % i)
            acknowledged[lsn] = b"x%d" % i
        log.crash()
        log.initialize()
        audit(log, acknowledged)

    @pytest.mark.parametrize("delta", [1, 2, 4, 8])
    def test_delta_values(self, delta):
        log, _ = build_direct_log(m=3, n=2, delta=delta)
        acknowledged = {}
        for i in range(10):
            lsn = log.write(b"d%d" % i)
            acknowledged[lsn] = b"d%d" % i
        log.crash()
        log.initialize()
        audit(log, acknowledged)
        # guards: δ not-present records at the tail
        end = log.end_of_log()
        for g in range(end - delta + 1, end + 1):
            with pytest.raises(RecordNotPresent):
                log.read(g)


class TestPartialWriteFates:
    def simulate_partial(self, holders, m=3, n=2):
        """Write a record to only ``holders`` of the write set."""
        log, stores = build_direct_log(m=m, n=n)
        base = log.write(b"base")
        partial_lsn = base + 1
        for sid in list(log.write_set)[:holders]:
            stores[sid].server_write_log(
                "c1", partial_lsn, log.current_epoch, True, b"partial")
        return log, stores, base, partial_lsn

    @pytest.mark.parametrize("holders", [0, 1])
    def test_consistent_fate_across_restarts(self, holders):
        log, stores, base, partial_lsn = self.simulate_partial(holders)
        fates = []
        for _ in range(3):
            log.crash()
            log.initialize()
            try:
                fates.append(log.read(partial_lsn).data)
            except (RecordNotPresent, LSNNotWritten):
                fates.append(None)
        assert len(set(fates)) == 1
        assert log.read(base).data == b"base"

    def test_partial_write_never_corrupts_neighbours(self):
        log, stores, base, partial_lsn = self.simulate_partial(1)
        log.crash()
        log.initialize()
        after = log.write(b"after")
        assert after > partial_lsn
        assert log.read(base).data == b"base"
        assert log.read(after).data == b"after"


class TestRepeatedFailures:
    def test_rolling_server_outages(self):
        """Servers fail round-robin; the log never loses data."""
        log, stores = build_direct_log(m=4, n=2)
        store_list = list(stores.values())
        acknowledged = {}
        counter = itertools.count()
        for round_no in range(8):
            victim = store_list[round_no % 4]
            victim.crash()
            for _ in range(2):
                i = next(counter)
                try:
                    lsn = log.write(b"r%d" % i)
                except NotEnoughServers:
                    victim.restart()
                    log.initialize()
                    lsn = log.write(b"r%d" % i)
                acknowledged[lsn] = b"r%d" % i
            victim.restart()
        audit(log, acknowledged)

    def test_crash_storm_then_full_audit(self):
        log, stores = build_direct_log(m=3, n=2)
        acknowledged = {}
        for i in range(5):
            lsn = log.write(b"s%d" % i)
            acknowledged[lsn] = b"s%d" % i
            log.crash()
            log.initialize()
        # five crash/recover cycles: everything still there
        audit(log, acknowledged)
        # interval lists stay bounded: recovery adds at most a couple
        # of intervals per epoch
        for store in stores.values():
            assert len(store.client_state("c1").intervals()) <= 12

    def test_epoch_monotone_through_storm(self):
        log, _ = build_direct_log(m=3, n=2)
        epochs = [log.current_epoch]
        for _ in range(5):
            log.crash()
            log.initialize()
            epochs.append(log.current_epoch)
        assert epochs == sorted(set(epochs))

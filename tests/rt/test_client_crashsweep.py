"""Client-phase crash sweep: pinned regressions and harness units.

The bug pinned here was found by inspection while instrumenting the
client for the sweep and is reachable at crash point
``client.force.ack:0`` (killed after a *partial* force ack): reply
matching in :class:`~repro.rt.client.ServerConnection` is positional,
so a future registered before a send that then *fails* — or left over
from a torn-down connection — becomes a stale entry that swallows the
first reply after a reconnect, shifting every later reply by one.  The
fix is twofold: futures join ``_pending``/``_force_waiters`` only
after the send is accepted, and ``connect()`` fails any leftover
routing state before the fresh stream starts.

The end-to-end smoke (one real kill/restart case through
:func:`run_crashsweep`) runs the whole tentpole machinery: a worker
process killed at the partial-ack point, §5.4 recovery from a second
OS process, and the journal invariants.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.errors import ServerUnavailable
from repro.harness.crashsweep import (
    SweepConfig,
    _client_verify,
    _parse_worker_journal,
    _WorkerJournal,
    run_crashsweep,
)
from repro.net.messages import IntervalListCall, ForceLogMsg
from repro.rt.client import ServerConnection


# -- the waiter-leak regression (crash point client.force.ack:0) ------


def test_failed_call_send_leaves_no_stale_pending_future():
    """A call whose send fails must not register a reply waiter.

    Pre-fix, ``call()`` appended its future to ``_pending`` *before*
    sending; a dead connection then raised out of ``send()`` with the
    future still enqueued, where it would positionally swallow the
    first reply after a reconnect.
    """

    async def main():
        conn = ServerConnection("s1", "127.0.0.1", 1, timeout=0.5,
                                client_id="c1")
        with pytest.raises(ServerUnavailable):
            await conn.call(IntervalListCall("c1"))
        assert conn._pending == []

    asyncio.run(main())


def test_failed_force_send_leaves_no_stale_waiter():
    """Same leak on the force path: a failed ForceLog send must not
    leave a ``(high_lsn, future)`` entry that a later connection's ack
    would resolve as if this force had been made durable."""

    async def main():
        conn = ServerConnection("s1", "127.0.0.1", 1, timeout=0.5,
                                client_id="c1")
        msg = ForceLogMsg.trusted("c1", 1, ())
        with pytest.raises(ServerUnavailable):
            await conn.force(msg)
        assert conn._force_waiters == []

    asyncio.run(main())


def test_connect_fails_stale_routing_state():
    """A fresh connection must never inherit reply-routing futures.

    Any future still in the routing lists when a new stream comes up
    (however it got there) belongs to a connection that can no longer
    answer it; ``connect()`` must fail it immediately rather than let
    the new stream's first reply resolve it out of position.
    """

    async def main():
        server = await asyncio.start_server(
            lambda r, w: None, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        try:
            conn = ServerConnection("s1", "127.0.0.1", port,
                                    timeout=1.0, client_id="c1")
            loop = asyncio.get_running_loop()
            stale_call = loop.create_future()
            stale_force = loop.create_future()
            conn._pending.append(stale_call)
            conn._force_waiters.append((7, stale_force))
            await conn.connect()
            assert conn._pending == [] and conn._force_waiters == []
            assert isinstance(stale_call.exception(), ServerUnavailable)
            assert isinstance(stale_force.exception(), ServerUnavailable)
            await conn.close()
        finally:
            server.close()
            await server.wait_closed()

    asyncio.run(main())


# -- journal parsing and invariant checking ---------------------------


def _journal(tmp_path, name, lines):
    path = tmp_path / name
    path.write_text("".join(line + "\n" for line in lines))
    return _parse_worker_journal(path)


def test_parse_worker_journal(tmp_path):
    j = _journal(tmp_path, "run.journal", [
        "EPOCH 3",
        f"ATTEMPT 1 {b'aa'.hex()}",
        "LSN 1 5",
        "ACK 5",
        "TRUNCREQ 4",
        "TRUNC 4",
        f"FINAL 5 1 {b'aa'.hex()}",
        "FINAL 6 0",
        "FINAL 7 -",
        f"POST 8 {b'bb'.hex()}",
        "POSTACK 8",
        "RECOVERED 4 8",
        "DONE",
    ])
    assert j.epoch == 3
    assert j.attempts == {1: b"aa"}
    assert j.lsn_of == {1: 5}
    assert j.acked_high == 5
    assert j.trunc_req == 4 and j.trunc_mark == 4
    assert j.finals == {5: ("1", b"aa"), 6: ("0", None), 7: ("-", None)}
    assert j.posts == {8: b"bb"}
    assert j.postack == 8
    assert (j.rec_epoch, j.rec_high) == (4, 8)
    assert j.done


def test_parse_worker_journal_missing_file(tmp_path):
    j = _parse_worker_journal(tmp_path / "never-written.journal")
    assert not j.done and j.epoch == 0 and j.finals == {}


def _run_journal(**kw) -> _WorkerJournal:
    j = _WorkerJournal(epoch=1, attempts={1: b"r1", 2: b"r2"},
                       lsn_of={1: 5, 2: 6}, acked_high=6, done=True)
    for key, value in kw.items():
        setattr(j, key, value)
    return j


def _recovered(epoch, finals, **kw) -> _WorkerJournal:
    j = _WorkerJournal(rec_epoch=epoch, rec_high=max(finals, default=0),
                       finals=dict(finals), done=True,
                       posts={7: b"p"}, postack=7)
    for key, value in kw.items():
        setattr(j, key, value)
    return j


def test_client_verify_accepts_clean_recovery():
    run = _run_journal()
    base = {5: ("1", b"r1"), 6: ("1", b"r2"), 7: ("1", b"p")}
    rec1 = _recovered(2, {5: ("1", b"r1"), 6: ("1", b"r2")})
    rec2 = _recovered(3, base)
    assert _client_verify(run, rec1, rec2) == []


def test_client_verify_flags_lost_ack_and_fabrication():
    run = _run_journal()
    rec1 = _recovered(2, {5: ("1", b"r1"), 6: ("-", None)})
    rec2 = _recovered(3, {5: ("1", b"r1"), 6: ("-", None),
                          7: ("1", b"p"), 9: ("1", b"forged")})
    errors = _client_verify(run, rec1, rec2)
    assert any("acked lsn 6 lost" in e for e in errors)
    assert any("fabricated lsn 9" in e for e in errors)


def test_client_verify_flags_non_monotone_epoch_and_divergence():
    run = _run_journal()
    rec1 = _recovered(1, {5: ("1", b"r1"), 6: ("1", b"r2")})
    rec2 = _recovered(1, {5: ("1", b"r1"), 6: ("0", None),
                          7: ("1", b"p")})
    errors = _client_verify(run, rec1, rec2)
    assert any("epoch not monotone" in e for e in errors)
    assert any("not idempotent at lsn 6" in e for e in errors)


def test_client_verify_requested_truncation_may_or_may_not_apply():
    """A kill between TRUNCREQ and TRUNC makes both outcomes legal:
    the record may be reclaimed ("-") or survive with its exact
    payload — but never survive with a different one."""
    run = _run_journal(trunc_req=6)
    gone = _recovered(2, {5: ("-", None), 6: ("1", b"r2")})
    gone2 = _recovered(3, {5: ("-", None), 6: ("1", b"r2"),
                           7: ("1", b"p")})
    assert _client_verify(run, gone, gone2) == []
    forged = _recovered(2, {5: ("1", b"not-r1"), 6: ("1", b"r2")})
    forged2 = _recovered(3, {5: ("1", b"not-r1"), 6: ("1", b"r2"),
                             7: ("1", b"p")})
    errors = _client_verify(run, forged, forged2)
    assert any("does not match" in e for e in errors)


# -- the end-to-end smoke ---------------------------------------------


def test_client_case_partial_ack_kill_and_recovery(tmp_path):
    """One real case at the pinned point: the worker process is killed
    right after the first partial force ack (``client.force.ack:0``),
    and two successive §5.4 restarts from fresh OS processes must see
    a consistent, fabrication-free log."""
    report = run_crashsweep(SweepConfig(
        root_dir=str(tmp_path), point="client.force.ack:0:exit",
    ))
    assert len(report.client_cases) == 1
    case = report.client_cases[0]
    assert case.spec == "client.force.ack:0:exit"
    assert case.hit, "the workload never reached the armed point"
    assert case.ok, case.errors

"""The reusable network chaos layer (:mod:`repro.rt.chaosproxy`).

The stall knob is exercised at length by ``test_backpressure.py``;
these tests cover the knobs that were added when the proxy was promoted
out of that file: latency, loss, one-way partitions, and corruption.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.core.config import ReplicationConfig
from repro.core.errors import LogError, ServerUnavailable
from repro.net.messages import IntervalListCall
from repro.rt.chaosproxy import ChaosProxy, ProxiedCluster
from repro.rt.client import AsyncReplicatedLog, ServerConnection

CONFIG = ReplicationConfig(total_servers=3, copies=2, delta=8)


def test_latency_delays_every_round_trip(tmp_path):
    async def main():
        async with ProxiedCluster(tmp_path, latency_s=0.05) as cluster:
            conn = ServerConnection("s1", "127.0.0.1", cluster.proxy.port,
                                    timeout=5.0, client_id="c1")
            await conn.connect()
            t0 = time.monotonic()
            await conn.call(IntervalListCall("c1"))
            elapsed = time.monotonic() - t0
            # one chunk each way through the proxy: >= 2 * latency
            assert elapsed >= 0.09
            assert cluster.proxy.bytes_forwarded > 0
            await conn.close()

    asyncio.run(main())


def test_one_way_partition_starves_replies(tmp_path):
    async def main():
        async with ProxiedCluster(tmp_path) as cluster:
            conn = ServerConnection("s1", "127.0.0.1", cluster.proxy.port,
                                    timeout=0.4, client_id="c1")
            await conn.connect()
            await conn.call(IntervalListCall("c1"))  # healthy baseline
            cluster.proxy.partition("s2c")
            with pytest.raises(ServerUnavailable):
                await conn.call(IntervalListCall("c1"))
            assert cluster.proxy.chunks_dropped >= 1
            # After healing, a fresh connection works again.
            cluster.proxy.heal()
            conn2 = ServerConnection("s1", "127.0.0.1", cluster.proxy.port,
                                     timeout=2.0, client_id="c1")
            await conn2.connect()
            await conn2.call(IntervalListCall("c1"))
            await conn.close()
            await conn2.close()

    asyncio.run(main())


def test_total_loss_blocks_progress_spares_carry_it(tmp_path):
    async def main():
        async with ProxiedCluster(tmp_path, loss_rate=1.0) as cluster:
            log = AsyncReplicatedLog("c1", cluster.addresses(), CONFIG,
                                     timeout=1.0)
            await log.initialize()  # s1 unusable; spares answer
            lsn = await log.write(b"x")
            high = await log.force()
            assert high >= lsn
            assert (await log.read(lsn)).data == b"x"
            assert "s1" not in log.write_set
            await log.close()
            assert cluster.proxy.chunks_dropped >= 1

    asyncio.run(main())


def test_corruption_is_detected_not_accepted(tmp_path):
    async def main():
        async with ProxiedCluster(tmp_path, corrupt_rate=1.0,
                                  seed=7) as cluster:
            conn = ServerConnection("s1", "127.0.0.1", cluster.proxy.port,
                                    timeout=1.0, client_id="c1")
            await conn.connect()
            # A corrupted frame desynchronizes the stream: the call
            # must fail (decode error / teardown / timeout) — never
            # return corrupt data as success.
            with pytest.raises((ServerUnavailable, LogError)):
                await conn.call(IntervalListCall("c1"))
            assert cluster.proxy.chunks_corrupted >= 1
            await conn.close()

    asyncio.run(main())


def test_partition_validates_direction():
    proxy = ChaosProxy("127.0.0.1", 1)
    with pytest.raises(ValueError):
        proxy.partition("sideways")

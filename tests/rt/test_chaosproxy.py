"""The reusable network chaos layer (:mod:`repro.rt.chaosproxy`).

The stall knob is exercised at length by ``test_backpressure.py``;
these tests cover the knobs that were added when the proxy was promoted
out of that file: latency, loss, one-way partitions, and corruption.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.core.config import ReplicationConfig
from repro.core.errors import LogError, ServerUnavailable
from repro.net.messages import IntervalListCall
from repro.rt.chaosproxy import ChaosProxy, ProxiedCluster
from repro.rt.client import AsyncReplicatedLog, ServerConnection

CONFIG = ReplicationConfig(total_servers=3, copies=2, delta=8)


def test_latency_delays_every_round_trip(tmp_path):
    async def main():
        async with ProxiedCluster(tmp_path, latency_s=0.05) as cluster:
            conn = ServerConnection("s1", "127.0.0.1", cluster.proxy.port,
                                    timeout=5.0, client_id="c1")
            await conn.connect()
            t0 = time.monotonic()
            await conn.call(IntervalListCall("c1"))
            elapsed = time.monotonic() - t0
            # one chunk each way through the proxy: >= 2 * latency
            assert elapsed >= 0.09
            assert cluster.proxy.bytes_forwarded > 0
            await conn.close()

    asyncio.run(main())


def test_one_way_partition_starves_replies(tmp_path):
    async def main():
        async with ProxiedCluster(tmp_path) as cluster:
            conn = ServerConnection("s1", "127.0.0.1", cluster.proxy.port,
                                    timeout=0.4, client_id="c1")
            await conn.connect()
            await conn.call(IntervalListCall("c1"))  # healthy baseline
            cluster.proxy.partition("s2c")
            with pytest.raises(ServerUnavailable):
                await conn.call(IntervalListCall("c1"))
            assert cluster.proxy.chunks_dropped >= 1
            # After healing, a fresh connection works again.
            cluster.proxy.heal()
            conn2 = ServerConnection("s1", "127.0.0.1", cluster.proxy.port,
                                     timeout=2.0, client_id="c1")
            await conn2.connect()
            await conn2.call(IntervalListCall("c1"))
            await conn.close()
            await conn2.close()

    asyncio.run(main())


def test_total_loss_blocks_progress_spares_carry_it(tmp_path):
    async def main():
        async with ProxiedCluster(tmp_path, loss_rate=1.0) as cluster:
            log = AsyncReplicatedLog("c1", cluster.addresses(), CONFIG,
                                     timeout=1.0)
            await log.initialize()  # s1 unusable; spares answer
            lsn = await log.write(b"x")
            high = await log.force()
            assert high >= lsn
            assert (await log.read(lsn)).data == b"x"
            assert "s1" not in log.write_set
            await log.close()
            assert cluster.proxy.chunks_dropped >= 1

    asyncio.run(main())


def test_corruption_is_detected_not_accepted(tmp_path):
    async def main():
        async with ProxiedCluster(tmp_path, corrupt_rate=1.0,
                                  seed=7) as cluster:
            conn = ServerConnection("s1", "127.0.0.1", cluster.proxy.port,
                                    timeout=1.0, client_id="c1")
            await conn.connect()
            # A corrupted frame desynchronizes the stream: the call
            # must fail (decode error / teardown / timeout) — never
            # return corrupt data as success.
            with pytest.raises((ServerUnavailable, LogError)):
                await conn.call(IntervalListCall("c1"))
            assert cluster.proxy.chunks_corrupted >= 1
            await conn.close()

    asyncio.run(main())


def test_partition_validates_direction():
    proxy = ChaosProxy("127.0.0.1", 1)
    with pytest.raises(ValueError):
        proxy.partition("sideways")
    with pytest.raises(ValueError):
        proxy.heal("sideways")


async def _echo_server():
    """A trivial upstream: echoes every chunk back."""

    async def handle(reader, writer):
        try:
            while True:
                chunk = await reader.read(4096)
                if not chunk:
                    break
                writer.write(chunk)
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()

    return await asyncio.start_server(handle, "127.0.0.1", 0)


def test_close_tears_down_inflight_connections():
    """``close()`` must not leak a stalled connection's pump tasks.

    Before connection tracking, ``close()`` only closed the listener:
    an established, stalled connection kept both sockets (and its pump
    coroutines) alive indefinitely.
    """

    async def main():
        upstream = await _echo_server()
        port = upstream.sockets[0].getsockname()[1]
        proxy = ChaosProxy("127.0.0.1", port)
        await proxy.start()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", proxy.port)
        writer.write(b"ping")
        assert await reader.readexactly(4) == b"ping"
        # Stall the proxy so the connection is mid-flight, then close:
        # the client must see EOF promptly, not hang.
        proxy.stall()
        writer.write(b"stuck")
        await writer.drain()
        await proxy.close()
        # EOF or a reset both prove the connection died promptly (the
        # abrupt teardown RSTs if bytes were still buffered).
        try:
            assert await asyncio.wait_for(reader.read(),
                                          timeout=2.0) == b""
        except ConnectionResetError:
            pass
        assert not proxy._conn_tasks
        writer.close()
        upstream.close()
        await upstream.wait_closed()

    asyncio.run(main())


def test_heal_is_per_direction():
    """``heal("c2s")`` after a full partition leaves s2c blocked."""

    async def main():
        upstream = await _echo_server()
        port = upstream.sockets[0].getsockname()[1]
        proxy = ChaosProxy("127.0.0.1", port)
        await proxy.start()
        reader, writer = await asyncio.open_connection(
            "127.0.0.1", proxy.port)
        proxy.partition("both")
        writer.write(b"lost")
        await writer.drain()
        await asyncio.sleep(0.1)
        assert proxy.dropped_by_direction["c2s"] >= 1
        proxy.heal("c2s")
        # The request now reaches the echo server, but its reply is
        # still partitioned away.
        writer.write(b"half")
        await writer.drain()
        with pytest.raises(asyncio.TimeoutError):
            await asyncio.wait_for(reader.readexactly(4), timeout=0.3)
        assert proxy.dropped_by_direction["s2c"] >= 1
        # A full heal restores the round trip on a fresh connection.
        proxy.heal()
        r2, w2 = await asyncio.open_connection("127.0.0.1", proxy.port)
        w2.write(b"back")
        assert await asyncio.wait_for(r2.readexactly(4),
                                      timeout=2.0) == b"back"
        w2.close()
        writer.close()
        await proxy.close()
        upstream.close()
        await upstream.wait_closed()

    asyncio.run(main())


def test_s2c_partition_trips_keepalive_within_miss_budget(tmp_path):
    """An s2c partition starves *all* inbound bytes: keep-alive pongs
    stop, so the probe task — not the (much longer) call timeout —
    must detect it, quarantine the server, and drive the §5.4 switch
    within the miss budget."""

    async def main():
        async with ProxiedCluster(tmp_path) as cluster:
            log = AsyncReplicatedLog(
                "c1", cluster.addresses(), CONFIG, timeout=4.0,
                keepalive_interval=0.1, keepalive_misses=2)
            await log.initialize()
            lsn = await log.write(b"before")
            await log.force()
            cluster.proxy.partition("s2c")
            t0 = time.monotonic()
            lsn2 = await log.write(b"after")
            high = await log.force()
            elapsed = time.monotonic() - t0
            assert high >= lsn2
            assert log.server_switches >= 1
            assert "s1" not in log.write_set
            conn = log._conns["s1"]
            assert conn.keepalive_aborts >= 1
            assert conn.quarantined_until > 0.0
            # Detection came from the keep-alive budget (0.3s), not
            # the 4s call timeout.
            assert elapsed < 2.0
            assert (await log.read(lsn)).data == b"before"
            await log.close()

    asyncio.run(main())


def test_c2s_partition_surfaces_as_force_timeout(tmp_path):
    """A c2s partition is the inverse gray failure: the server's pongs
    still arrive (keep-alive stays green) but our frames never land,
    so detection must come from the force-ack timeout instead."""

    async def main():
        async with ProxiedCluster(tmp_path) as cluster:
            log = AsyncReplicatedLog(
                "c1", cluster.addresses(), CONFIG, timeout=0.5,
                keepalive_interval=2.0, keepalive_misses=2)
            await log.initialize()
            cluster.proxy.partition("c2s")
            lsn = await log.write(b"x")
            high = await log.force()
            assert high >= lsn
            assert log.server_switches >= 1
            assert "s1" not in log.write_set
            # Keep-alive never fired: pongs flowed the whole time.
            assert log._conns["s1"].keepalive_aborts == 0
            assert cluster.proxy.dropped_by_direction["c2s"] >= 1
            assert cluster.proxy.dropped_by_direction["s2c"] == 0
            await log.close()

    asyncio.run(main())

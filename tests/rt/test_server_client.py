"""In-process integration: asyncio client against asyncio daemons.

Real sockets (loopback TCP, ephemeral ports) and real files, but all
inside one process so tests stay fast and debuggable.  Process-level
failures are covered by ``test_cluster_failover.py``.
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.core.config import ReplicationConfig
from repro.core.errors import NotEnoughServers, NotInitialized, RecordNotPresent
from repro.rt.client import AsyncReplicatedLog
from repro.rt.filestore import FileLogStore
from repro.rt.server import LogServerDaemon


class Cluster:
    """M in-process daemons over file stores in tmp_path."""

    def __init__(self, tmp_path, m=3):
        self.tmp_path = tmp_path
        self.m = m
        self.daemons: dict[str, LogServerDaemon] = {}

    async def __aenter__(self):
        for i in range(self.m):
            sid = f"s{i + 1}"
            await self.start(sid)
        return self

    async def start(self, sid):
        data_dir = os.path.join(self.tmp_path, sid)
        daemon = LogServerDaemon(FileLogStore(data_dir, sid))
        await daemon.start()
        self.daemons[sid] = daemon
        return daemon

    async def stop(self, sid):
        await self.daemons[sid].close()

    def addresses(self):
        return {sid: (d.host, d.port) for sid, d in self.daemons.items()}

    async def __aexit__(self, *exc):
        for daemon in self.daemons.values():
            try:
                await daemon.close()
            except Exception:
                pass


def run(coro):
    return asyncio.run(coro)


CONFIG = ReplicationConfig(total_servers=3, copies=2, delta=8)


def test_write_force_read_round_trip(tmp_path):
    async def main():
        async with Cluster(tmp_path) as cluster:
            log = AsyncReplicatedLog("c1", cluster.addresses(), CONFIG)
            await log.initialize()
            assert log.current_epoch == 1
            assert len(log.write_set) == CONFIG.copies
            lsns = [await log.write(f"rec{i}".encode()) for i in range(10)]
            high = await log.force()
            assert high == lsns[-1]
            for i, lsn in enumerate(lsns):
                rec = await log.read(lsn)
                assert rec.data == f"rec{i}".encode()
            # Guards written by initialization are not-present.
            with pytest.raises(RecordNotPresent):
                await log.read(1)
            await log.close()

    run(main())


def test_force_is_durable_on_n_servers(tmp_path):
    async def main():
        async with Cluster(tmp_path) as cluster:
            log = AsyncReplicatedLog("c1", cluster.addresses(), CONFIG)
            await log.initialize()
            lsn = await log.write(b"must-survive")
            await log.force()
            write_set = log.write_set
            await log.close()
            return lsn, write_set

    lsn, write_set = run(main())
    # After every daemon is closed, reopen the files: the record must
    # be on disk on every write-set server.
    stored_on = []
    for sid in write_set:
        store = FileLogStore(os.path.join(tmp_path, sid), sid)
        if lsn in store.stored_lsns("c1"):
            assert store.read_record("c1", lsn).data == b"must-survive"
            stored_on.append(sid)
        store.close()
    assert len(stored_on) == CONFIG.copies


def test_restart_bumps_epoch_and_recovers_high_lsn(tmp_path):
    async def main():
        async with Cluster(tmp_path) as cluster:
            log = AsyncReplicatedLog("c1", cluster.addresses(), CONFIG)
            await log.initialize()
            lsns = [await log.write(f"a{i}".encode()) for i in range(12)]
            await log.force()
            first_epoch = log.current_epoch
            first_high = log.end_of_log()
            await log.close()

            log2 = AsyncReplicatedLog("c1", cluster.addresses(), CONFIG)
            await log2.initialize()
            assert log2.current_epoch > first_epoch
            # δ guard records extend the log past the old high LSN.
            assert log2.end_of_log() == first_high + CONFIG.delta
            # Every forced record survives the restart with its bytes.
            for i, lsn in enumerate(lsns):
                assert (await log2.read(lsn)).data == f"a{i}".encode()
            # And the restarted log accepts new writes.
            lsn = await log2.write(b"post-restart")
            await log2.force()
            assert (await log2.read(lsn)).data == b"post-restart"
            await log2.close()

    run(main())


def test_server_loss_switches_write_set_mid_stream(tmp_path):
    async def main():
        async with Cluster(tmp_path) as cluster:
            log = AsyncReplicatedLog("c1", cluster.addresses(), CONFIG)
            await log.initialize()
            victim = log.write_set[0]
            spare = next(s for s in cluster.addresses()
                         if s not in log.write_set)
            for i in range(4):
                await log.write(f"pre{i}".encode())
            await log.force()
            await cluster.stop(victim)  # connection dies server-side
            for i in range(4):
                await log.write(f"post{i}".encode())
            high = await log.force()
            assert victim not in log.write_set
            assert spare in log.write_set
            assert log.server_switches >= 1
            # All records still readable at N=2 with one server down.
            assert (await log.read(high)).data == b"post3"
            await log.close()

    run(main())


def test_write_set_loss_below_n_raises(tmp_path):
    async def main():
        async with Cluster(tmp_path, m=2) as cluster:
            config = ReplicationConfig(total_servers=2, copies=2, delta=4)
            log = AsyncReplicatedLog(
                "c1", cluster.addresses(), config,
            )
            # Speed the failure path up: one attempt, no backoff.
            log.retry_policy = type(log.retry_policy)(
                max_attempts=1, base_delay_s=0.0)
            await log.initialize()
            await log.write(b"x")
            await cluster.stop(log.write_set[0])
            with pytest.raises(NotEnoughServers):
                await log.force()
            await log.close()

    run(main())


def test_gap_triggers_missing_interval_then_new_interval(tmp_path):
    async def main():
        async with Cluster(tmp_path, m=1) as cluster:
            from repro.core.records import StoredRecord
            from repro.net.codec import frame, read_message
            from repro.net.messages import (
                ForceLogMsg,
                MissingIntervalMsg,
                NewHighLSNMsg,
                NewIntervalMsg,
            )

            host, port = cluster.addresses()["s1"]
            reader, writer = await asyncio.open_connection(host, port)

            def force(lsn):
                return ForceLogMsg("c1", 1, (StoredRecord(
                    lsn=lsn, epoch=1, data=b"z"),))

            writer.write(frame(force(1)))
            await writer.drain()
            ack = await read_message(reader)
            assert isinstance(ack, NewHighLSNMsg) and ack.new_high_lsn == 1

            # Jump to LSN 5: the server must NAK the gap [2, 4] ...
            writer.write(frame(force(5)))
            await writer.drain()
            nak = await read_message(reader)
            assert isinstance(nak, MissingIntervalMsg)
            assert (nak.lo, nak.hi) == (2, 4)
            ack = await read_message(reader)
            assert isinstance(ack, NewHighLSNMsg) and ack.new_high_lsn == 5

            # ... and a NewInterval makes the next jump legitimate.
            writer.write(frame(NewIntervalMsg("c1", 1, starting_lsn=9)))
            writer.write(frame(force(9)))
            await writer.drain()
            ack = await read_message(reader)
            assert isinstance(ack, NewHighLSNMsg) and ack.new_high_lsn == 9

            daemon = cluster.daemons["s1"]
            assert daemon.missing_intervals_sent == 1
            intervals = daemon.store.interval_list("c1").intervals
            assert [(iv.lo, iv.hi) for iv in intervals] == [(1, 1), (5, 5),
                                                            (9, 9)]
            writer.close()
            await writer.wait_closed()

    run(main())


def test_read_log_packs_within_packet_budget(tmp_path):
    async def main():
        async with Cluster(tmp_path, m=1) as cluster:
            from repro.net.codec import frame, read_message
            from repro.net.messages import (
                RECORD_HEADER_BYTES,
                ReadLogBackwardCall,
                ReadLogForwardCall,
                ReadLogReply,
            )
            from repro.net.packet import PACKET_PAYLOAD_BYTES

            daemon = cluster.daemons["s1"]
            from repro.core.records import StoredRecord

            for lsn in range(1, 101):
                daemon.store.append_record(
                    "c1", StoredRecord(lsn=lsn, epoch=1, data=b"d" * 100),
                    fsync=False,
                )
            host, port = cluster.addresses()["s1"]
            reader, writer = await asyncio.open_connection(host, port)

            writer.write(frame(ReadLogForwardCall("c1", 1)))
            await writer.drain()
            fwd = await read_message(reader)
            assert isinstance(fwd, ReadLogReply)
            per_record = RECORD_HEADER_BYTES + 100
            expected = PACKET_PAYLOAD_BYTES // per_record
            assert len(fwd.records) == expected
            assert [r.lsn for r in fwd.records] == list(range(1, expected + 1))

            writer.write(frame(ReadLogBackwardCall("c1", 100)))
            await writer.drain()
            bwd = await read_message(reader)
            assert isinstance(bwd, ReadLogReply)
            assert [r.lsn for r in bwd.records] == \
                list(range(101 - expected, 101))

            # Reading past the end returns an empty reply, not an error.
            writer.write(frame(ReadLogForwardCall("c1", 200)))
            await writer.drain()
            empty = await read_message(reader)
            assert isinstance(empty, ReadLogReply) and empty.records == ()
            writer.close()
            await writer.wait_closed()

    run(main())


def test_two_clients_share_a_cluster(tmp_path):
    async def main():
        async with Cluster(tmp_path) as cluster:
            a = AsyncReplicatedLog("alice", cluster.addresses(), CONFIG)
            b = AsyncReplicatedLog("bob", cluster.addresses(), CONFIG)
            await a.initialize()
            await b.initialize()
            la = await a.write(b"from-alice")
            lb = await b.write(b"from-bob")
            await a.force()
            await b.force()
            assert (await a.read(la)).data == b"from-alice"
            assert (await b.read(lb)).data == b"from-bob"
            await a.close()
            await b.close()

    run(main())


def test_use_before_initialize_raises(tmp_path):
    async def main():
        async with Cluster(tmp_path) as cluster:
            log = AsyncReplicatedLog("c1", cluster.addresses(), CONFIG)
            with pytest.raises(NotInitialized):
                await log.write(b"x")
            await log.close()

    run(main())

"""The ``--loop`` backend gate must never kill a daemon over an
optional dependency: uvloop-absent degrades to asyncio with a warning,
while a typo'd backend name stays a hard startup error."""

import builtins
import sys

import pytest

from repro.rt.eventloop import LOOP_BACKENDS, install_loop_backend


def test_default_backends_are_noops():
    assert install_loop_backend(None) == "asyncio"
    assert install_loop_backend("") == "asyncio"
    assert install_loop_backend("asyncio") == "asyncio"


def test_uvloop_absent_degrades_to_asyncio(monkeypatch, capsys):
    """No uvloop installed → fall back, warn once, keep running."""
    real_import = builtins.__import__

    def no_uvloop(name, *args, **kwargs):
        if name == "uvloop":
            raise ImportError("No module named 'uvloop'")
        return real_import(name, *args, **kwargs)

    monkeypatch.delitem(sys.modules, "uvloop", raising=False)
    monkeypatch.setattr(builtins, "__import__", no_uvloop)
    assert install_loop_backend("uvloop") == "asyncio"
    err = capsys.readouterr().err
    assert "uvloop" in err and "falling back" in err
    assert err.count("\n") == 1


def test_uvloop_present_installs_policy(monkeypatch):
    """With an importable uvloop module, its install() is called."""
    calls = []

    class FakeUvloop:
        @staticmethod
        def install():
            calls.append("install")

    monkeypatch.setitem(sys.modules, "uvloop", FakeUvloop())
    assert install_loop_backend("uvloop") == "uvloop"
    assert calls == ["install"]


def test_unknown_backend_is_a_hard_error():
    with pytest.raises(SystemExit) as excinfo:
        install_loop_backend("libuv")
    for name in LOOP_BACKENDS:
        assert name in str(excinfo.value)

"""Process-level failover: M=3 real daemons, one SIGKILLed mid-run.

The acceptance scenario of the real runtime: a loopback cluster of
three server *processes* sustains ET1 load while one write-set member
is SIGKILLed mid-run (writes continue at N=2 on the survivors), and a
subsequent client restart merges the surviving interval lists to the
correct high LSN.  Also exercises the ``repro loadgen`` CLI as a real
subprocess against the same cluster.
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
from pathlib import Path

from repro.core.config import ReplicationConfig
from repro.rt.client import AsyncReplicatedLog
from repro.rt.cluster import LoopbackCluster
from repro.rt.filestore import FileLogStore
from repro.workload.et1 import Et1Params, et1_log_pattern

SRC = str(Path(__file__).resolve().parents[2] / "src")
CONFIG = ReplicationConfig(total_servers=3, copies=2, delta=8)


def test_et1_survives_sigkill_and_restart_merges(tmp_path):
    async def run_txns(log, start_seq, count, written):
        for seq in range(start_seq, start_seq + count):
            for data, kind, forced in et1_log_pattern(Et1Params(), seq):
                lsn = await log.write(data, kind=kind)
                written[lsn] = data
                if forced:
                    await log.force()

    async def main(cluster):
        written: dict[int, bytes] = {}
        log = AsyncReplicatedLog("c1", cluster.addresses(), CONFIG)
        await log.initialize()
        first_epoch = log.current_epoch

        await run_txns(log, 0, 5, written)
        victim = log.write_set[0]
        cluster.kill(victim)  # SIGKILL: a real process dies mid-run

        # Writes must continue at N=2 on the survivors.
        await run_txns(log, 5, 5, written)
        assert victim not in log.write_set
        assert log.server_switches >= 1
        high_before_restart = log.end_of_log()
        await log.close()

        # Client restart with the victim still dead: interval lists
        # from the two survivors (== M − N + 1) merge to the full log.
        log2 = AsyncReplicatedLog("c1", cluster.addresses(), CONFIG)
        await log2.initialize()
        assert log2.current_epoch > first_epoch
        assert log2.end_of_log() == high_before_restart + CONFIG.delta

        # Every forced record survives with its exact bytes.  (The last
        # δ−1 buffered-but-unforced records may legitimately be masked,
        # but ET1 forces each commit, so only the guard tail is masked.)
        forced_high = max(written)
        for lsn in sorted(written):
            if lsn <= forced_high:
                rec = await log2.read(lsn)
                assert rec.data == written[lsn]

        # And the restarted client keeps logging on the N=2 cluster.
        lsn = await log2.write(b"after-everything")
        await log2.force()
        assert (await log2.read(lsn)).data == b"after-everything"
        await log2.close()
        return victim

    with LoopbackCluster(tmp_path, num_servers=3) as cluster:
        victim = asyncio.run(main(cluster))

        # The SIGKILLed server's files recover to a consistent prefix.
        store = FileLogStore(os.path.join(tmp_path, victim), victim)
        lsns = store.stored_lsns("c1")
        assert lsns == sorted(lsns)
        store.close()


def test_killed_server_restarts_and_serves_again(tmp_path):
    async def main(cluster):
        log = AsyncReplicatedLog("c1", cluster.addresses(), CONFIG)
        await log.initialize()
        for i in range(10):
            await log.write(f"gen1-{i}".encode())
        await log.force()
        victim = log.write_set[0]
        await log.close()

        cluster.restart(victim)  # SIGKILL, then recover from its files

        # A fresh client sees the restarted server's recovered
        # interval list — it participates in the merge again.
        log2 = AsyncReplicatedLog("c1", cluster.addresses(), CONFIG)
        await log2.initialize()
        lsn = await log2.write(b"post-restart-write")
        await log2.force()
        assert (await log2.read(lsn)).data == b"post-restart-write"
        await log2.close()

    with LoopbackCluster(tmp_path, num_servers=3) as cluster:
        asyncio.run(main(cluster))


def test_loadgen_cli_against_real_cluster(tmp_path):
    with LoopbackCluster(tmp_path, num_servers=3) as cluster:
        args = [sys.executable, "-m", "repro", "loadgen",
                "--copies", "2", "--duration", "10", "--max-txns", "5",
                "--json"]
        for sid, (host, port) in cluster.addresses().items():
            args += ["--server", f"{sid}={host}:{port}"]
        env = dict(os.environ, PYTHONPATH=SRC)
        out = subprocess.run(args, env=env, capture_output=True, text=True,
                             timeout=120)
        assert out.returncode == 0, out.stderr
        report = json.loads(out.stdout)
        assert report["transactions"] == 5
        assert report["records_written"] == 5 * 7
        assert report["force_p50_ms"] > 0
        assert report["final_high_lsn"] >= 5 * 7

"""Live rebalancing and tenant quotas against real server processes.

The acceptance scenario for the sharded multi-tenant layer: a fleet of
real daemons serves K ring-placed client streams; a server is
SIGKILLed and retired from the roster (or a new one joins) while the
streams keep writing; every client adopts the new directory through
:meth:`AsyncReplicatedLog.apply_placement` — the same Section 5.4
write-set switch the failure path uses — and afterwards

* only the clients whose write set contained the changed server moved
  (~K·N/M, not all K),
* every acknowledged record is still durable on the surviving stores
  (zero acked loss), and
* a restarted client reads every record back byte-identical.

Quota enforcement runs against in-process daemons (fast, debuggable):
stream admission refuses a tenant's surplus stream fleet-wide, and the
records/s token bucket throttles a hot tenant until refill — the
client backing off on its retry schedule rather than switching
servers.
"""

from __future__ import annotations

import asyncio
import math
import os

import pytest

from repro.core.config import ReplicationConfig
from repro.core.errors import TenantQuotaExceeded
from repro.core.retry import RetryPolicy
from repro.rt.client import AsyncReplicatedLog
from repro.rt.cluster import LoopbackCluster
from repro.rt.filestore import FileLogStore
from repro.rt.loadgen import run_multi_loadgen
from repro.rt.placement import (
    ClusterSpec,
    PlacementDirectory,
    TenantQuota,
)
from repro.rt.server import LogServerDaemon
from repro.workload.et1 import Et1Params, et1_log_pattern

K = 16  # placed client streams


def _client_ids() -> list[str]:
    return [f"t{i + 1}/c{i + 1}" for i in range(K)]


async def _run_txns(log, start_seq, count, written):
    for seq in range(start_seq, start_seq + count):
        for data, kind, forced in et1_log_pattern(Et1Params(), seq):
            lsn = await log.write(data, kind=kind)
            written[lsn] = data
            if forced:
                await log.force()


def _durable_lsns(root_dir, server_ids, client_id) -> set[int]:
    """Union of a client's stored LSNs across the named servers' files."""
    lsns: set[int] = set()
    for sid in server_ids:
        store = FileLogStore(os.path.join(root_dir, sid), sid)
        try:
            lsns.update(store.stored_lsns(client_id))
        finally:
            store.close()
    return lsns


def test_live_rebalance_when_server_retires(tmp_path):
    """SIGKILL + roster removal mid-run: ~K·N/M streams move, none lose
    an acknowledged record."""
    ids = _client_ids()

    async def main(cluster):
        directory = PlacementDirectory(cluster.cluster_spec(copies=2))
        logs = {cid: AsyncReplicatedLog(cid, directory) for cid in ids}
        await asyncio.gather(*(log.initialize() for log in logs.values()))
        # Placement decided every initial write set.
        for cid, log in logs.items():
            assert list(log.write_set) == directory.write_set(cid)

        written = {cid: {} for cid in ids}
        await asyncio.gather(*(
            _run_txns(logs[cid], 0, 2, written[cid]) for cid in ids))

        victim = logs[ids[0]].write_set[0]
        cluster.kill(victim)
        changed = directory.without_server(victim)
        expected_moves = set(directory.moved_clients(changed, ids))
        assert ids[0] in expected_moves
        # Removing 1 of M servers moves ~K·N/M streams, far from all K.
        m = len(directory.addresses())
        bound = math.ceil(K * directory.spec.copies / m) + 4
        assert len(expected_moves) <= bound < K

        moves = dict(zip(ids, await asyncio.gather(*(
            logs[cid].apply_placement(changed) for cid in ids))))
        for cid, log in logs.items():
            assert victim not in log.write_set
            assert set(log.write_set) == set(changed.write_set(cid))
            if cid in expected_moves:
                assert log.rebalance_moves == 1, cid
                assert moves[cid] and moves[cid][0][0] == victim
            else:
                assert log.rebalance_moves == 0, cid
                assert moves[cid] == []

        # The rebalanced fleet keeps taking writes from every stream.
        await asyncio.gather(*(
            _run_txns(logs[cid], 2, 2, written[cid]) for cid in ids))
        await asyncio.gather(*(log.close() for log in logs.values()))

        # A moved client restarts against the new directory and reads
        # every one of its records back byte-identical.
        probe_cid = sorted(expected_moves)[0]
        probe = AsyncReplicatedLog(probe_cid, changed)
        await probe.initialize()
        for lsn, data in sorted(written[probe_cid].items()):
            assert (await probe.read(lsn)).data == data
        await probe.close()
        return written, victim

    with LoopbackCluster(tmp_path, num_servers=4) as cluster:
        survivors = None
        written, victim = asyncio.run(main(cluster))
        survivors = [sid for sid in cluster.servers if sid != victim]

    # Zero acked loss, checked against the durable files themselves:
    # every record a force acknowledged is stored by some survivor.
    for cid in ids:
        acked = set(written[cid])
        durable = _durable_lsns(tmp_path, survivors, cid)
        assert acked <= durable, (cid, sorted(acked - durable))


def test_live_rebalance_when_server_joins(tmp_path):
    """Adding a server to the roster pulls ~K·N/M streams onto it."""
    ids = _client_ids()

    async def main(cluster):
        addrs = cluster.addresses()
        joining = "s4"
        spec = ClusterSpec(
            servers={sid: a for sid, a in addrs.items() if sid != joining},
            copies=2,
        )
        directory = PlacementDirectory(spec)
        logs = {cid: AsyncReplicatedLog(cid, directory) for cid in ids}
        await asyncio.gather(*(log.initialize() for log in logs.values()))
        written = {cid: {} for cid in ids}
        await asyncio.gather(*(
            _run_txns(logs[cid], 0, 2, written[cid]) for cid in ids))

        grown = directory.with_server(joining, addrs[joining])
        expected_moves = set(directory.moved_clients(grown, ids))
        assert expected_moves, "a 3→4 roster growth must move someone"
        m = len(grown.addresses())
        bound = math.ceil(K * grown.spec.copies / m) + 4
        assert len(expected_moves) <= bound < K

        await asyncio.gather(*(
            logs[cid].apply_placement(grown) for cid in ids))
        for cid, log in logs.items():
            assert set(log.write_set) == set(grown.write_set(cid))
        assert any(joining in log.write_set for log in logs.values())

        await asyncio.gather(*(
            _run_txns(logs[cid], 2, 2, written[cid]) for cid in ids))
        await asyncio.gather(*(log.close() for log in logs.values()))
        return written, expected_moves

    with LoopbackCluster(tmp_path, num_servers=4) as cluster:
        written, moved = asyncio.run(main(cluster))

    # The joining server now durably stores records for moved streams.
    stored_on_s4 = {cid for cid in ids
                    if _durable_lsns(tmp_path, ["s4"], cid)}
    assert stored_on_s4
    assert stored_on_s4 <= moved


# -- tenant quotas (in-process daemons) -------------------------------------


class QuotaCluster:
    """Three in-process daemons sharing one tenant quota table."""

    def __init__(self, tmp_path, quotas):
        self.tmp_path = tmp_path
        self.quotas = quotas
        self.daemons: dict[str, LogServerDaemon] = {}

    async def __aenter__(self):
        for i in range(3):
            sid = f"s{i + 1}"
            daemon = LogServerDaemon(
                FileLogStore(os.path.join(self.tmp_path, sid), sid),
                quotas=self.quotas,
            )
            await daemon.start()
            self.daemons[sid] = daemon
        return self

    def addresses(self):
        return {sid: (d.host, d.port) for sid, d in self.daemons.items()}

    async def __aexit__(self, *exc):
        for daemon in self.daemons.values():
            await daemon.close()


CONFIG = ReplicationConfig(total_servers=3, copies=2, delta=8)
FAST_RETRY = RetryPolicy(base_delay_s=0.05, cap_delay_s=0.2,
                         max_attempts=8)


def test_stream_quota_refuses_surplus_stream(tmp_path):
    async def main():
        quotas = {"acme": TenantQuota(max_streams=1)}
        async with QuotaCluster(tmp_path, quotas) as cluster:
            first = AsyncReplicatedLog("acme/a", cluster.addresses(),
                                       CONFIG, retry_policy=FAST_RETRY)
            await first.initialize()
            await first.write(b"admitted")
            await first.force()

            # The tenant's second stream is refused by *every* server —
            # a fleet-wide condition, so the client must not burn spare
            # servers switching: no server switches, only throttles.
            second = AsyncReplicatedLog("acme/b", cluster.addresses(),
                                        CONFIG, retry_policy=FAST_RETRY)
            await second.initialize()
            await second.write(b"refused")
            with pytest.raises(TenantQuotaExceeded):
                await second.force()
            assert second.quota_throttles >= 1
            assert second.server_switches == 0

            # A different tenant is unaffected.
            other = AsyncReplicatedLog("beta/a", cluster.addresses(),
                                       CONFIG, retry_policy=FAST_RETRY)
            await other.initialize()
            await other.write(b"other tenant")
            await other.force()
            await asyncio.gather(first.close(), second.close(),
                                 other.close())
            rejections = [d.quota_rejections
                          for d in cluster.daemons.values()]
            assert sum(rejections) >= 2  # both write-set members refused

    asyncio.run(main())


def test_rate_quota_throttles_then_recovers(tmp_path):
    async def main():
        # Bucket: 30 rec/s, burst 0.1 s ⇒ capacity 3 records.  A
        # 3-record force drains it; the immediate next force is
        # refused until ~0.1 s of refill — within the client's retry
        # schedule, so the second force succeeds after backing off.
        quotas = {"acme": TenantQuota(max_records_per_s=30.0,
                                      burst_s=0.1)}
        async with QuotaCluster(tmp_path, quotas) as cluster:
            log = AsyncReplicatedLog("acme/hot", cluster.addresses(),
                                     CONFIG, retry_policy=FAST_RETRY)
            await log.initialize()
            for _ in range(3):
                await log.write(b"x" * 32)
            await log.force()
            for _ in range(3):
                await log.write(b"y" * 32)
            high = await log.force()  # throttled, retried, admitted
            assert log.quota_throttles >= 1
            assert log.server_switches == 0
            assert (await log.read(high)).data == b"y" * 32
            await log.close()

    asyncio.run(main())


def test_idle_stream_slot_is_reclaimed_after_ttl(tmp_path):
    """A tenant at max_streams gets re-admitted once an old stream has
    idled past ``idle_ttl_s`` — without a daemon restart."""
    async def main():
        quotas = {"acme": TenantQuota(max_streams=1, idle_ttl_s=0.5)}
        async with QuotaCluster(tmp_path, quotas) as cluster:
            first = AsyncReplicatedLog("acme/a", cluster.addresses(),
                                       CONFIG, retry_policy=FAST_RETRY)
            await first.initialize()
            await first.write(b"claims the slot")
            await first.force()
            await first.close()

            # Immediately: the slot is still warm, the new stream is
            # refused exactly like a sticky quota would refuse it.
            # Few, fast retries — a long retry schedule would outlive
            # the TTL and be legitimately admitted mid-backoff.
            second = AsyncReplicatedLog(
                "acme/b", cluster.addresses(), CONFIG,
                retry_policy=RetryPolicy(base_delay_s=0.02,
                                         cap_delay_s=0.05, max_attempts=2))
            await second.initialize()
            await second.write(b"too soon")
            with pytest.raises(TenantQuotaExceeded):
                await second.force()
            await second.close()

            # Past the TTL the idle slot is swept and the same stream
            # id is admitted.
            await asyncio.sleep(0.6)
            third = AsyncReplicatedLog("acme/b", cluster.addresses(),
                                       CONFIG, retry_policy=FAST_RETRY)
            await third.initialize()
            await third.write(b"admitted after ttl")
            high = await third.force()
            assert (await third.read(high)).data == b"admitted after ttl"
            await third.close()

    asyncio.run(main())


def test_loadgen_tolerates_permanent_throttle(tmp_path):
    """A stream the quota never admits reports zero transactions and
    its throttles, without failing the whole multi-client run."""
    async def main():
        quotas = {"t1": TenantQuota(max_streams=1)}
        async with QuotaCluster(tmp_path, quotas) as cluster:
            # Claim the tenant's one stream slot for lg-1 up front, so
            # the concurrent run below refuses lg-2 deterministically
            # (admission is first-come-first-served per server).
            claim = AsyncReplicatedLog("t1/lg-1", cluster.addresses(),
                                       CONFIG, retry_policy=FAST_RETRY)
            await claim.initialize()
            await claim.write(b"claim")
            await claim.force()
            await claim.close()
            multi = await run_multi_loadgen(
                cluster.addresses(), CONFIG, clients=2, tenants=1,
                base_seed=7, duration_s=1.2, max_txns=3,
            )
            by_id = {r.client_id: r for r in multi.per_client}
            admitted = by_id["t1/lg-1"]
            refused = by_id["t1/lg-2"]
            assert admitted.transactions == 3
            assert refused.transactions == 0
            assert refused.quota_throttles >= 1

    asyncio.run(main())

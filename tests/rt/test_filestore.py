"""Durable-store tests: reopen, torn tails, the persisted forest index."""

from __future__ import annotations

import struct

import pytest

from repro.core.errors import ProtocolError
from repro.core.records import StoredRecord
from repro.rt.filestore import ENTRY_MAGIC, FileLogStore, FilePageStore
from repro.storage.append_forest import AppendForest


def rec(lsn, epoch=1, data=None, present=True, kind="data"):
    if data is None:
        data = f"r{lsn}".encode() if present else b""
    return StoredRecord(lsn=lsn, epoch=epoch, present=present,
                        data=data if present else b"", kind=kind)


def test_reopen_recovers_records(tmp_path):
    store = FileLogStore(tmp_path, "s1")
    for i in range(1, 11):
        store.append_record("c", rec(i), fsync=False)
    store.sync()
    store.close()

    again = FileLogStore(tmp_path, "s1")
    assert again.recovered_entries == 10
    assert again.truncated_bytes == 0
    assert again.stored_lsns("c") == list(range(1, 11))
    for i in range(1, 11):
        assert again.read_record("c", i).data == f"r{i}".encode()
    assert [(iv.epoch, iv.lo, iv.hi) for iv in again.interval_list("c")] \
        == [(1, 1, 10)]
    again.close()


def test_reopen_truncates_torn_tail(tmp_path):
    store = FileLogStore(tmp_path, "s1")
    for i in range(1, 6):
        store.append_record("c", rec(i), fsync=False)
    store.sync()
    store.close()

    # Simulate a crash mid-append: chop bytes out of the final entry.
    log = tmp_path / "log.dat"
    intact = log.stat().st_size
    log.write_bytes(log.read_bytes() + b"\x00\x01garbage")

    again = FileLogStore(tmp_path, "s1")
    assert again.stored_lsns("c") == [1, 2, 3, 4, 5]
    assert again.truncated_bytes > 0
    assert log.stat().st_size == intact  # tail removed, prefix kept
    # The stream accepts appends after the truncation.
    again.append_record("c", rec(6), fsync=True)
    again.close()
    final = FileLogStore(tmp_path, "s1")
    assert final.stored_lsns("c") == [1, 2, 3, 4, 5, 6]
    final.close()


def test_corrupt_record_data_ends_valid_prefix(tmp_path):
    store = FileLogStore(tmp_path, "s1")
    store.append_record("c", rec(1, data=b"aaaa"), fsync=False)
    store.append_record("c", rec(2, data=b"bbbb"), fsync=False)
    store.sync()
    store.close()

    log = tmp_path / "log.dat"
    raw = bytearray(log.read_bytes())
    raw[-1] ^= 0xFF  # flip a byte of record 2's data: CRC must catch it
    log.write_bytes(bytes(raw))

    again = FileLogStore(tmp_path, "s1")
    assert again.stored_lsns("c") == [1]
    again.close()


def test_duplicate_append_is_dropped_conflict_rejected(tmp_path):
    store = FileLogStore(tmp_path, "s1")
    store.append_record("c", rec(1), fsync=True)
    size = (tmp_path / "log.dat").stat().st_size
    store.append_record("c", rec(1), fsync=True)  # identical: no new bytes
    assert (tmp_path / "log.dat").stat().st_size == size
    with pytest.raises(ProtocolError):
        store.append_record("c", rec(1, data=b"different"), fsync=True)
    assert (tmp_path / "log.dat").stat().st_size == size
    store.close()


def test_copy_install_cycle_survives_reopen(tmp_path):
    store = FileLogStore(tmp_path, "s1")
    for i in range(1, 4):
        store.append_record("c", rec(i), fsync=False)
    store.sync()
    store.stage_copy("c", rec(3, epoch=2, data=b"rewrite"))
    store.stage_copy("c", rec(4, epoch=2, present=False, kind="guard"))
    store.install_copies("c", 2)
    store.close()

    again = FileLogStore(tmp_path, "s1")
    assert again.read_record("c", 3).epoch == 2
    assert again.read_record("c", 3).data == b"rewrite"
    assert again.read_record("c", 4).present is False
    again.close()


def test_staged_but_uninstalled_copies_stay_invisible(tmp_path):
    store = FileLogStore(tmp_path, "s1")
    store.append_record("c", rec(1), fsync=True)
    store.stage_copy("c", rec(1, epoch=2, data=b"rewrite"))
    store.close()  # crash before InstallCopies

    again = FileLogStore(tmp_path, "s1")
    assert again.read_record("c", 1).epoch == 1  # install never happened
    again.close()


def test_generator_value_is_durable_and_monotone(tmp_path):
    store = FileLogStore(tmp_path, "s1")
    store.generator_write(7)
    store.generator_write(3)  # lower: ignored
    assert store.generator_value == 7
    store.close()
    again = FileLogStore(tmp_path, "s1")
    assert again.generator_value == 7
    again.close()


def test_forest_index_serves_point_reads(tmp_path):
    store = FileLogStore(tmp_path, "s1")
    for i in range(1, 201):
        store.append_record("c", rec(i), fsync=False)
    store.sync()
    forest = store.forest("c")
    assert forest is not None and forest.high_key == 200
    forest.check_invariants()
    for lsn in (1, 37, 200):
        via = store.read_via_index("c", lsn)
        assert via is not None and via.data == f"r{lsn}".encode()
    assert store.read_via_index("c", 999) is None
    store.close()


def test_forest_rebuilt_after_losing_index_file(tmp_path):
    """The log stream is authoritative; the index is reconstructable."""
    store = FileLogStore(tmp_path, "s1")
    for i in range(1, 51):
        store.append_record("c", rec(i), fsync=False)
    store.sync()
    store.close()
    for idx in tmp_path.glob("forest-*.idx"):
        idx.unlink()  # lose the whole buffered index

    again = FileLogStore(tmp_path, "s1")
    forest = again.forest("c")
    assert forest is not None and forest.high_key == 50
    forest.check_invariants()
    assert again.read_via_index("c", 25).data == b"r25"
    again.close()


def test_filepagestore_drops_torn_final_page(tmp_path):
    path = tmp_path / "pages.idx"
    forest = AppendForest(FilePageStore(path))
    for key in range(1, 9):
        forest.append_key(key, key * 10)
    forest.store.close()
    raw = path.read_bytes()
    path.write_bytes(raw[:-3])  # tear the final page

    reopened = AppendForest(FilePageStore(path))
    reopened.rebuild_from_store()
    assert reopened.high_key is not None and reopened.high_key < 8
    reopened.check_invariants()
    reopened.store.close()


def test_fence_is_durable_and_monotone(tmp_path):
    store = FileLogStore(tmp_path, "s1")
    assert store.fence_epoch("c") == 0
    assert store.fence_write("c", 5) == 5
    assert store.fence_write("c", 3) == 5   # lower: refused, standing wins
    assert store.fence_write("c", 5) == 5   # equal: idempotent
    assert store.fence_write("c", 9) == 9
    store.close()

    again = FileLogStore(tmp_path, "s1")
    assert again.fence_epoch("c") == 9
    assert again.fence_epoch("other") == 0  # per-stream, not per-server
    again.close()


def test_fence_survives_compaction(tmp_path):
    store = FileLogStore(tmp_path, "s1")
    for i in range(1, 9):
        store.append_record("c", rec(i), fsync=False)
    store.sync()
    store.fence_write("c", 4)
    store.truncate_below("c", 6)  # triggers _compact: fences re-emitted
    assert store.fence_epoch("c") == 4
    store.close()

    again = FileLogStore(tmp_path, "s1")
    assert again.fence_epoch("c") == 4
    assert again.stored_lsns("c") == [6, 7, 8]
    again.close()


def test_torn_fence_tail_reverts_to_prior_fence(tmp_path):
    """A fence is installed exactly when its fsync'd entry is intact."""
    store = FileLogStore(tmp_path, "s1")
    store.append_record("c", rec(1), fsync=True)
    store.fence_write("c", 2)
    intact = (tmp_path / "log.dat").stat().st_size
    store.fence_write("c", 7)
    store.close()

    log = tmp_path / "log.dat"
    log.write_bytes(log.read_bytes()[:intact + 3])  # tear the epoch-7 entry

    again = FileLogStore(tmp_path, "s1")
    assert again.fence_epoch("c") == 2
    assert again.stored_lsns("c") == [1]
    again.close()


def test_entry_magic_mismatch_ends_prefix(tmp_path):
    store = FileLogStore(tmp_path, "s1")
    store.append_record("c", rec(1), fsync=True)
    store.close()
    log = tmp_path / "log.dat"
    raw = log.read_bytes()
    assert struct.unpack_from("!H", raw, 0)[0] == ENTRY_MAGIC
    log.write_bytes(raw + struct.pack("!H", 0xDEAD) + b"\x00" * 20)
    again = FileLogStore(tmp_path, "s1")
    assert again.stored_lsns("c") == [1]
    again.close()

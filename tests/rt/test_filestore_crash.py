"""Crash the store process mid-append; assert recovery of the fsync'd prefix.

A child process appends records one at a time, fsync'ing each, and
prints the LSN only after the fsync returns.  The parent SIGKILLs it
mid-stream — no atexit, no flush, no goodbye — then reopens the data
directory and checks:

* every acknowledged record (LSN printed after its fsync) is recovered
  with its exact bytes, kind, and present flag;
* the recovered set is a contiguous LSN prefix — recovery never
  surfaces a record whose predecessor was lost;
* at most one record beyond the acknowledged set appears (the append
  that was in flight when the process died, if its write happened to
  reach the disk in full).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[2] / "src")

CHILD = textwrap.dedent("""
    import sys
    from repro.core.records import StoredRecord
    from repro.rt.filestore import FileLogStore

    data_dir = sys.argv[1]
    store = FileLogStore(data_dir, "s1")
    for lsn in range(1, 10_000):
        present = lsn % 5 != 0          # every 5th record is a guard
        record = StoredRecord(
            lsn=lsn, epoch=1, present=present,
            data=(b"payload-%d-" % lsn) * 8 if present else b"",
            kind="update" if present else "guard",
        )
        store.append_record("c", record, fsync=True)
        print(lsn, flush=True)          # acknowledged: fsync returned
""")


def expected_record(lsn: int) -> tuple[bool, bytes, str]:
    present = lsn % 5 != 0
    data = (b"payload-%d-" % lsn) * 8 if present else b""
    return present, data, "update" if present else "guard"


def test_sigkill_mid_append_recovers_fsynced_prefix(tmp_path):
    env = dict(os.environ, PYTHONPATH=SRC)
    child = subprocess.Popen(
        [sys.executable, "-c", CHILD, str(tmp_path)],
        stdout=subprocess.PIPE, env=env,
    )
    acked = 0
    try:
        # Let a decent stream build up, then kill without warning.
        while acked < 120:
            line = child.stdout.readline()
            assert line, "child exited before killing point"
            acked = int(line)
    finally:
        child.send_signal(signal.SIGKILL)
        child.wait()

    from repro.rt.filestore import FileLogStore

    store = FileLogStore(tmp_path, "s1")
    recovered = store.stored_lsns("c")

    # Contiguous prefix, covering at least everything acknowledged and
    # at most the single in-flight append beyond it.
    assert recovered == list(range(1, len(recovered) + 1))
    assert len(recovered) >= acked
    assert len(recovered) <= acked + 1

    for lsn in recovered:
        present, data, kind = expected_record(lsn)
        rec = store.read_record("c", lsn)
        assert rec.present is present
        assert rec.data == data
        assert rec.kind == kind

    # The recovered store keeps working: the next append continues the
    # interval, and the whole log reads back through the reopened state.
    from repro.core.records import StoredRecord

    next_lsn = len(recovered) + 1
    store.append_record(
        "c", StoredRecord(lsn=next_lsn, epoch=1, data=b"after-crash"),
        fsync=True,
    )
    assert [(iv.epoch, iv.lo, iv.hi) for iv in store.interval_list("c")] \
        == [(1, 1, next_lsn)]
    store.close()

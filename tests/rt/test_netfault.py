"""Frame scanning and the network fault grammar.

Unit-level coverage for the pieces under the network crash sweep: the
incremental :class:`~repro.net.codec.FrameScanner`, the
``net.<kind>.<dir>:<idx>:<action>`` plan grammar, and the per-frame
fault actions applied by a :class:`~repro.rt.chaosproxy.ChaosProxy`
against an in-process echo peer speaking real frames.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.net import codec
from repro.net.codec import (
    FRAME_PREFIX_BYTES,
    NAME_TYPES,
    RECORD_BEARING_KINDS,
    TYPE_NAMES,
    FrameScanner,
    WireCodecError,
    frame,
)
from repro.core.records import StoredRecord
from repro.net.messages import (
    ForceLogMsg,
    IntervalListCall,
    NewHighLSNMsg,
    WriteLogMsg,
)
from repro.rt.chaosproxy import (
    NET_ACTIONS,
    ChaosProxy,
    NetFaultPlan,
    parse_net_plans,
)
from repro.rt.faultfs import FaultSpecError


def _record(lsn: int, data: bytes = b"payload") -> StoredRecord:
    return StoredRecord(lsn=lsn, epoch=1, present=True, data=data,
                        kind="data")


def _frames():
    return [
        frame(IntervalListCall("c1")),
        frame(WriteLogMsg("c1", epoch=1, records=(_record(1),))),
        frame(ForceLogMsg("c1", epoch=1, records=(_record(2),))),
        frame(NewHighLSNMsg("s1", new_high_lsn=2)),
    ]


# -- FrameScanner ------------------------------------------------------------


def test_scanner_splits_arbitrary_chunking():
    wire = b"".join(_frames())
    bulk = FrameScanner()
    got_bulk = bulk.feed(wire)
    assert [f.kind for f in got_bulk] == [
        "intervallistcall", "writelog", "forcelog", "newhighlsn"]
    # Byte-at-a-time must produce the identical frame images.
    trickle = FrameScanner()
    got_trickle = []
    for i in range(len(wire)):
        got_trickle.extend(trickle.feed(wire[i:i + 1]))
    assert [f.data for f in got_trickle] == [f.data for f in got_bulk]
    assert trickle.pending_bytes == 0
    assert trickle.frames_scanned == 4


def test_scanner_rejects_bad_magic_and_keeps_bytes():
    wire = bytearray(frame(IntervalListCall("c1")))
    wire[FRAME_PREFIX_BYTES] ^= 0xFF
    scanner = FrameScanner()
    with pytest.raises(WireCodecError):
        scanner.feed(bytes(wire))
    # Nothing is lost: the raw-passthrough fallback can drain it all.
    assert scanner.take_buffer() == bytes(wire)
    assert scanner.pending_bytes == 0


def test_scanner_rejects_absurd_length():
    bad = (codec._FRAME_PREFIX.pack(codec.MAX_FRAME_BYTES + 1)
           + b"\x00" * 40)
    with pytest.raises(WireCodecError):
        FrameScanner().feed(bad)


def test_type_name_tables_are_a_bijection():
    codes = {value for name, value in vars(codec).items()
             if name.startswith("T_") and isinstance(value, int)}
    assert set(TYPE_NAMES) == codes
    assert {NAME_TYPES[n] for n in NAME_TYPES} == codes
    assert RECORD_BEARING_KINDS <= set(NAME_TYPES)


# -- the plan grammar --------------------------------------------------------


def test_net_plan_parse_round_trips():
    for spec in ("net.writelog.c2s:0:drop",
                 "net.newhighlsn.s2c:3:partition-after",
                 "s2@net.forcelog.c2s:1:corrupt-payload"):
        plan = NetFaultPlan.parse(spec)
        assert plan.spec == spec
        assert plan.action in NET_ACTIONS


@pytest.mark.parametrize("bad", [
    "net.writelog.c2s",                      # no index/action
    "net.nosuchkind.c2s:0:drop",             # unknown message kind
    "net.writelog.sideways:0:drop",          # bad direction
    "net.writelog.c2s:-1:drop",              # negative index
    "net.writelog.c2s:0:explode",            # unknown action
    "log.fsync:0:drop",                      # storage site, not net
    "@net.writelog.c2s:0:drop",              # empty server id
    "net.writelog.c2s:x:drop",               # non-integer index
])
def test_net_plan_rejects_malformed(bad):
    with pytest.raises(FaultSpecError):
        NetFaultPlan.parse(bad)


def test_parse_net_plans_rejects_duplicates():
    plans = parse_net_plans(
        "net.writelog.c2s:0:drop,s2@net.writelog.c2s:0:drop")
    assert len(plans) == 2  # same point, different servers: legal
    with pytest.raises(FaultSpecError):
        parse_net_plans("net.writelog.c2s:0:drop,net.writelog.c2s:0:delay")


# -- frame actions through a live proxy --------------------------------------


async def _frame_echo_server():
    """An upstream that echoes complete *frames* (never partials)."""

    async def handle(reader, writer):
        scanner = FrameScanner()
        try:
            while True:
                chunk = await reader.read(4096)
                if not chunk:
                    break
                for f in scanner.feed(chunk):
                    writer.write(f.data)
                    await writer.drain()
        except (ConnectionError, OSError, WireCodecError):
            pass
        finally:
            writer.close()

    return await asyncio.start_server(handle, "127.0.0.1", 0)


async def _run_through_proxy(plans, send_frames, *, read_timeout=0.5):
    """Send frames through an armed proxy; return echoed frame kinds."""
    upstream = await _frame_echo_server()
    port = upstream.sockets[0].getsockname()[1]
    proxy = ChaosProxy("127.0.0.1", port, plans=plans)
    await proxy.start()
    reader, writer = await asyncio.open_connection("127.0.0.1", proxy.port)
    scanner = FrameScanner()
    got = []
    try:
        for data in send_frames:
            writer.write(data)
            await writer.drain()
            # Keep frames in separate chunks so a mid-stream teardown
            # (corrupt-header, truncate) cannot retroactively eat
            # earlier frames coalesced into the same TCP segment.
            await asyncio.sleep(0.05)
        while True:
            try:
                chunk = await asyncio.wait_for(reader.read(4096),
                                               timeout=read_timeout)
            except asyncio.TimeoutError:
                break
            if not chunk:
                break
            got.extend(f.kind for f in scanner.feed(chunk))
    finally:
        writer.close()
        await proxy.close()
        upstream.close()
        await upstream.wait_closed()
    return got, proxy


def test_drop_swallows_only_the_armed_frame():
    async def main():
        got, proxy = await _run_through_proxy(
            parse_net_plans("net.writelog.c2s:0:drop"), _frames())
        assert got == ["intervallistcall", "forcelog", "newhighlsn"]
        assert proxy.frames_dropped == 1
        assert proxy.dropped_by_direction["c2s"] == 1
        assert proxy.tripped == "net.writelog.c2s:0:drop"

    asyncio.run(main())


def test_duplicate_forwards_twice():
    async def main():
        got, proxy = await _run_through_proxy(
            parse_net_plans("net.forcelog.c2s:0:duplicate"), _frames())
        assert got.count("forcelog") == 2
        assert proxy.frames_duplicated == 1

    asyncio.run(main())


def test_corrupt_header_breaks_only_that_frame_boundary():
    async def main():
        # The echo upstream's scanner rejects the corrupted frame and
        # drops the connection — earlier frames made it through intact.
        got, proxy = await _run_through_proxy(
            parse_net_plans("net.forcelog.c2s:0:corrupt-header"),
            _frames())
        assert "intervallistcall" in got and "writelog" in got
        assert "forcelog" not in got
        assert proxy.frames_corrupted == 1

    asyncio.run(main())


def test_truncate_mid_frame_kills_the_connection():
    async def main():
        got, proxy = await _run_through_proxy(
            parse_net_plans("net.writelog.c2s:1:truncate-mid-frame"),
            _frames() + [frame(WriteLogMsg("c1", epoch=1,
                                           records=(_record(3),)))])
        assert proxy.frames_truncated == 1
        assert proxy.connections_killed == 1
        assert got.count("writelog") <= 1

    asyncio.run(main())


def test_partition_after_blocks_the_rest_of_the_direction():
    async def main():
        got, proxy = await _run_through_proxy(
            parse_net_plans("net.intervallistcall.c2s:0:partition-after"),
            _frames())
        # The armed frame itself is forwarded; everything after it in
        # c2s is silently dropped.
        assert got == ["intervallistcall"]
        assert proxy.dropped_by_direction["c2s"] >= 1

    asyncio.run(main())


def test_frame_indices_are_per_site():
    async def main():
        got, proxy = await _run_through_proxy(
            parse_net_plans("net.writelog.c2s:1:drop"),
            [frame(WriteLogMsg("c1", epoch=1, records=(_record(n),)))
             for n in range(1, 4)]
            + [frame(ForceLogMsg("c1", epoch=1,
                                 records=(_record(4),)))])
        # Index 1 is the *second* writelog; forcelog never shifts it.
        assert got.count("writelog") == 2
        assert got.count("forcelog") == 1

    asyncio.run(main())

"""Unit tests for the one-fsync-per-group commit path.

The group-commit contract, checked here at the unit level (the
crash-level version is ``repro crashsweep``'s ``log.group-fsync``
cases):

* concurrent ForceLogs parked on one sync generation share a single
  fsync, and every parked client is acknowledged only *after* that
  fsync returns;
* a failing group fsync fans out a typed ErrorReply to every parked
  client — no ack is fabricated for anyone;
* ``--no-group-commit`` restores the inline append+fsync+ack path;
* the client's :class:`AdaptiveDelta` walks its force trigger down
  under light load and doubles it back under pressure, inside
  ``[min_delta, config.delta]``.
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.core.config import ReplicationConfig
from repro.core.errors import ProtocolError
from repro.core.records import StoredRecord
from repro.core.store import LogServerStore
from repro.net.codec import decode
from repro.net.messages import ERR_STORAGE, ErrorReply, ForceLogMsg, NewHighLSNMsg
from repro.rt.client import AdaptiveDelta, AsyncReplicatedLog
from repro.rt.faultfs import FaultInjector, FaultPlan
from repro.rt.filestore import FileLogStore
from repro.rt.server import LogServerDaemon


# -- AdaptiveDelta -------------------------------------------------------


def test_adaptive_delta_starts_at_the_protocol_ceiling():
    ad = AdaptiveDelta(8)
    assert ad.effective == 8
    assert ad.min_delta == 1


def test_adaptive_delta_shrinks_under_sustained_light_load():
    ad = AdaptiveDelta(8, shrink_patience=4)
    for _ in range(100):
        ad.observe_force(0.0005, window_records=1, queue_depth=0)
    # One-record windows settle at 2: a window that reaches the trigger
    # itself counts as load, so the controller hovers just above it.
    assert ad.effective <= 2
    assert ad.shrinks >= 6


def test_adaptive_delta_needs_patience_to_shrink():
    ad = AdaptiveDelta(8, shrink_patience=4)
    for _ in range(3):
        ad.observe_force(0.0005, window_records=1, queue_depth=0)
    assert ad.effective == 8  # three light forces are not yet a trend


def test_adaptive_delta_grows_back_on_queue_depth():
    ad = AdaptiveDelta(8, shrink_patience=1)
    for _ in range(50):
        ad.observe_force(0.0005, window_records=0, queue_depth=0)
    assert ad.effective == 1
    ad.observe_force(0.0005, window_records=1, queue_depth=3)
    assert ad.effective == 2  # growth doubles
    ad.observe_force(0.0005, window_records=2, queue_depth=3)
    ad.observe_force(0.0005, window_records=4, queue_depth=3)
    assert ad.effective == 8  # back at the ceiling in a few forces
    ad.observe_force(0.0005, window_records=8, queue_depth=3)
    assert ad.effective == 8  # never above config.delta


def test_adaptive_delta_slow_acks_keep_the_window_wide():
    ad = AdaptiveDelta(8, target_latency_s=0.002, shrink_patience=2)
    for _ in range(50):
        ad.observe_force(0.010, window_records=1, queue_depth=0)
    assert ad.effective == 8  # latency EWMA says loaded: no shrink


# -- server_write_record's newly-stored contract -------------------------


def test_server_write_record_reports_newly_stored():
    store = LogServerStore("s1")
    rec = StoredRecord(lsn=1, epoch=1, present=True, data=b"a", kind="data")
    assert store.server_write_record("c", rec) is True
    # Identical retransmission: dropped, not an error.
    assert store.server_write_record("c", rec) is False
    # Late retransmission of a reclaimed record: dropped.
    rec2 = StoredRecord(lsn=2, epoch=1, present=True, data=b"b", kind="data")
    assert store.server_write_record("c", rec2) is True
    store.truncate_below("c", 2)
    assert store.server_write_record("c", rec) is False
    # Conflicting rewrite is still a protocol error.
    bad = StoredRecord(lsn=2, epoch=1, present=True, data=b"X", kind="data")
    with pytest.raises(ProtocolError):
        store.server_write_record("c", bad)


# -- the parked sync generation ------------------------------------------


class FakeWriter:
    """Collects the frames the daemon fans out to one connection."""

    def __init__(self):
        self.bufs: list[bytes] = []

    def is_closing(self) -> bool:
        return False

    def writelines(self, bufs) -> None:
        self.bufs.extend(bufs)

    def decoded(self):
        return [decode(buf[4:]) for buf in self.bufs]


def _force_msg(cid: str, lsns: range) -> ForceLogMsg:
    records = tuple(
        StoredRecord(lsn=lsn, epoch=1, present=True,
                     data=f"{cid}.{lsn}".encode(), kind="data")
        for lsn in lsns
    )
    return ForceLogMsg(cid, 1, records)


def test_parked_forces_share_one_fsync_and_ack_after(tmp_path):
    async def main():
        store = FileLogStore(os.path.join(tmp_path, "s1"), "s1")
        daemon = LogServerDaemon(store)
        writers = [FakeWriter() for _ in range(3)]
        before = store.fsyncs
        for i, writer in enumerate(writers):
            out = daemon._park_force(
                _force_msg(f"c{i}", range(1, 4)), writer)
            assert out == []  # the ack is never inline
        assert all(not w.bufs for w in writers)  # nothing acked yet
        while daemon.forces_acked < 3:
            await asyncio.sleep(0)
        assert store.fsyncs - before == 1  # one fsync covered all three
        assert daemon.forces_coalesced == 2
        assert daemon.group_syncs == 1
        for i, writer in enumerate(writers):
            assert writer.decoded() == [NewHighLSNMsg(f"c{i}", 3)]
        await daemon.close()
        # Durability behind the acks is real.
        reopened = FileLogStore(os.path.join(tmp_path, "s1"), "s1")
        for i in range(3):
            assert reopened.client_high_lsn(f"c{i}") == 3
        reopened.close()

    asyncio.run(main())


def test_failed_group_fsync_errors_every_parked_force(tmp_path):
    async def main():
        plan = FaultPlan(site="log.group-fsync", index=0, action="eio")
        store = FileLogStore(os.path.join(tmp_path, "s1"), "s1",
                             io=FaultInjector(plan, mode="raise"))
        daemon = LogServerDaemon(store)
        writers = [FakeWriter() for _ in range(2)]
        for i, writer in enumerate(writers):
            daemon._park_force(_force_msg(f"c{i}", range(1, 3)), writer)
        while not all(w.bufs for w in writers):
            await asyncio.sleep(0)
        for writer in writers:
            (reply,) = writer.decoded()
            assert isinstance(reply, ErrorReply)
            assert reply.code == ERR_STORAGE
        assert daemon.forces_acked == 0  # no ack was fabricated
        assert daemon.group_syncs == 0
        await daemon.close()

    asyncio.run(main())


def test_concurrent_client_forces_coalesce_over_the_wire(tmp_path):
    """K real clients' forces share fsyncs through one live daemon."""
    config = ReplicationConfig(total_servers=1, copies=1, delta=8)

    async def one_client(addresses, cid):
        log = AsyncReplicatedLog(cid, addresses, config)
        await log.initialize()
        try:
            for i in range(10):
                await log.write(f"{cid}.{i}".encode())
                await log.force()
        finally:
            await log.close()

    async def main():
        store = FileLogStore(os.path.join(tmp_path, "s1"), "s1")
        daemon = LogServerDaemon(store)
        await daemon.start()
        addresses = {"s1": (daemon.host, daemon.port)}
        try:
            await asyncio.gather(*(
                one_client(addresses, f"c{i}") for i in range(4)))
        finally:
            await daemon.close()
        assert daemon.forces_acked == 40
        # Every shared generation is one fsync for the whole batch.
        assert daemon.forces_coalesced > 0
        assert store.fsyncs < daemon.forces_acked

    asyncio.run(main())


def test_no_group_commit_daemon_acks_inline(tmp_path):
    config = ReplicationConfig(total_servers=1, copies=1, delta=8)

    async def main():
        store = FileLogStore(os.path.join(tmp_path, "s1"), "s1")
        daemon = LogServerDaemon(store, group_commit=False)
        await daemon.start()
        try:
            log = AsyncReplicatedLog(
                "c1", {"s1": (daemon.host, daemon.port)}, config)
            await log.initialize()
            for i in range(5):
                await log.write(f"r{i}".encode())
                assert await log.force() > 0
            await log.close()
        finally:
            await daemon.close()
        assert daemon.forces_acked == 5
        assert daemon.forces_coalesced == 0
        assert daemon.group_syncs == 0

    asyncio.run(main())

"""Section 5.3 log space management, filestore-level and end-to-end.

A client that has checkpointed promises that records below its
truncation point "will never be read again"; servers are then free to
recycle the space.  These tests pin the whole contract:

* ``FileLogStore.truncate_below`` shrinks both the in-memory store and
  the on-disk append stream (compaction), and a daemon restart replays
  only the retained suffix — with present flags intact;
* a late retransmission of a reclaimed LSN is ignored, not treated as
  a protocol violation;
* the size-watermark fallback bounds the log of a client that never
  truncates explicitly;
* the client's ``truncate`` fans the call out to every reachable
  server and prunes its own read-routing map;
* a wedged store (disk full / IO error) degrades to read-only with a
  typed ErrorReply instead of a dropped connection.
"""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.core.config import ReplicationConfig
from repro.core.errors import (
    LSNNotWritten,
    ServerUnavailable,
    StorageError,
)
from repro.core.records import StoredRecord
from repro.net.codec import frame, read_message
from repro.net.messages import (
    ERR_STORAGE,
    ErrorReply,
    ForceLogMsg,
    StatsCall,
)
from repro.rt.client import AsyncReplicatedLog
from repro.rt.filestore import FileLogStore
from repro.rt.server import LogServerDaemon

CONFIG = ReplicationConfig(total_servers=3, copies=2, delta=8)


def _records(lo, hi, *, epoch=1, present=True, size=64):
    return tuple(
        StoredRecord(lsn=i, epoch=epoch, present=present,
                     data=(f"r{i}".encode().ljust(size, b".")
                           if present else b""),
                     kind="data" if present else "guard")
        for i in range(lo, hi + 1)
    )


# -- filestore level ------------------------------------------------------


def test_truncate_compacts_disk_and_restart_replays_suffix(tmp_path):
    store = FileLogStore(tmp_path, "s1")
    store.append_records("c1", _records(1, 60), fsync=True)
    # A not-present guard inside the retained suffix: its flag must
    # survive compaction and replay.
    store.append_records("c1", _records(61, 61, present=False), fsync=True)
    size_before = os.path.getsize(os.path.join(tmp_path, "log.dat"))

    dropped = store.truncate_below("c1", 41)
    assert dropped == 40
    size_after = os.path.getsize(os.path.join(tmp_path, "log.dat"))
    assert size_after < size_before / 2
    assert store.stored_lsns("c1") == list(range(41, 62))
    assert store.record_count() == 21
    store.close()

    # Restart: replay sees only the retained suffix, flags intact.
    reopened = FileLogStore(tmp_path, "s1")
    assert reopened.stored_lsns("c1") == list(range(41, 62))
    assert reopened.truncated_lsn("c1") == 41
    assert reopened.read_record("c1", 41).data.startswith(b"r41")
    assert reopened.read_record("c1", 61).present is False
    with pytest.raises(ServerUnavailable):
        reopened.read_record("c1", 40)
    reopened.close()


def test_late_retransmission_below_mark_is_ignored(tmp_path):
    store = FileLogStore(tmp_path, "s1")
    store.append_records("c1", _records(1, 20), fsync=True)
    store.truncate_below("c1", 11)
    # A straggler WriteLog re-sends reclaimed records (e.g. a window
    # replay raced the truncation): silently dropped, no error, and
    # the records stay gone.
    store.append_records("c1", _records(5, 12), fsync=True)
    assert store.stored_lsns("c1") == list(range(11, 21))
    store.close()


def test_watermark_compaction_bounds_log_size(tmp_path):
    store = FileLogStore(tmp_path, "s1", compact_watermark_bytes=8_000)
    hi = 0
    for round_no in range(8):
        lo = hi + 1
        hi = lo + 19
        store.append_records("c1", _records(lo, hi), fsync=True)
        # The client keeps only the last δ records interesting.
        store.truncate_below("c1", max(1, hi - CONFIG.delta))
    assert store.compactions >= 1
    # Live state is ~δ records; the on-disk log must be bounded by the
    # watermark region, not by the 160 records ever appended.
    assert store.log_size_bytes < 3 * 8_000
    assert store.record_count() == CONFIG.delta + 1
    store.close()


def test_io_error_wedges_store_but_keeps_reads(tmp_path):
    store = FileLogStore(tmp_path, "s1")
    store.append_records("c1", _records(1, 10), fsync=True)

    class ExplodingFile:
        def __init__(self, inner):
            self._inner = inner

        def write(self, data):
            raise OSError(28, "No space left on device")

        def __getattr__(self, name):
            return getattr(self._inner, name)

    store._file = ExplodingFile(store._file)
    with pytest.raises(StorageError):
        store.append_records("c1", _records(11, 11), fsync=True)
    assert store.storage_errors == 1
    assert store.io_error is not None
    # Reads still served; further appends stay refused.
    assert store.read_record("c1", 10).lsn == 10
    with pytest.raises(StorageError):
        store.append_records("c1", _records(12, 12), fsync=True)
    store.close()


# -- daemon + client level ------------------------------------------------


class Cluster:
    def __init__(self, tmp_path, m=3):
        self.tmp_path = tmp_path
        self.m = m
        self.daemons: dict[str, LogServerDaemon] = {}

    async def __aenter__(self):
        for i in range(self.m):
            sid = f"s{i + 1}"
            data_dir = os.path.join(self.tmp_path, sid)
            daemon = LogServerDaemon(FileLogStore(data_dir, sid))
            await daemon.start()
            self.daemons[sid] = daemon
        return self

    def addresses(self):
        return {sid: (d.host, d.port) for sid, d in self.daemons.items()}

    async def __aexit__(self, *exc):
        for daemon in self.daemons.values():
            try:
                await daemon.close()
            except Exception:
                pass


def test_client_truncate_shrinks_servers_and_prunes_map(tmp_path):
    async def main():
        async with Cluster(tmp_path) as cluster:
            log = AsyncReplicatedLog("c1", cluster.addresses(), CONFIG,
                                     keepalive_interval=0.0)
            await log.initialize()
            lsns = [await log.write(f"rec{i}".encode()) for i in range(30)]
            await log.force()
            low_water = lsns[-1] - CONFIG.delta

            before = {sid: d.store.record_count()
                      for sid, d in cluster.daemons.items()}
            dropped = await log.truncate(low_water)
            assert dropped > 0
            for sid, daemon in cluster.daemons.items():
                if before[sid]:
                    assert daemon.store.record_count() < before[sid]
                    assert daemon.store.truncated_lsn("c1") in (0, low_water)

            # The client's own map forgot the reclaimed prefix …
            with pytest.raises(LSNNotWritten):
                await log.read(lsns[0])
            # … but retained records still read fine, and the log is
            # still writable end to end.
            rec = await log.read(lsns[-1])
            assert rec.data == b"rec29"
            assert log.end_of_log() == lsns[-1]
            lsn = await log.write(b"after-truncate")
            await log.force()
            assert (await log.read(lsn)).data == b"after-truncate"
            await log.close()

    asyncio.run(main())


def test_storage_error_reply_is_typed_and_client_routes_around(tmp_path):
    async def main():
        async with Cluster(tmp_path) as cluster:
            log = AsyncReplicatedLog("c1", cluster.addresses(), CONFIG,
                                     keepalive_interval=0.0)
            await log.initialize()
            await log.write(b"durable-before")
            await log.force()

            victim_sid = log.write_set[0]
            victim = cluster.daemons[victim_sid]

            class ExplodingFile:
                def __init__(self, inner):
                    self._inner = inner

                def write(self, data):
                    raise OSError(28, "No space left on device")

                def __getattr__(self, name):
                    return getattr(self._inner, name)

            victim.store._file = ExplodingFile(victim.store._file)

            # Wire-level: the daemon answers a force with a typed
            # storage ErrorReply — the connection survives.
            reader, writer = await asyncio.open_connection(
                victim.host, victim.port)
            probe = ForceLogMsg("probe", 1, (
                StoredRecord(lsn=1, epoch=1, data=b"x"),))
            writer.write(frame(probe))
            await writer.drain()
            reply = await asyncio.wait_for(read_message(reader), 5)
            assert isinstance(reply, ErrorReply)
            assert reply.code == ERR_STORAGE
            # Same connection still answers queries afterwards.
            writer.write(frame(StatsCall("probe")))
            await writer.drain()
            stats = await asyncio.wait_for(read_message(reader), 5)
            assert stats.as_dict()["storage_errors"] >= 1
            writer.close()
            await writer.wait_closed()

            # Client-level: the write set routes around the wedged
            # server and the record lands on N healthy servers.
            lsn = await log.write(b"after-disk-full")
            await log.force()
            assert victim_sid not in log.write_set
            assert (await log.read(lsn)).data == b"after-disk-full"
            await log.close()

    asyncio.run(main())

"""Process-level gray failures: SIGSTOP, truncation across restart.

``test_cluster_failover.py`` covers clean crashes (SIGKILL).  Here a
server *process* is SIGSTOP'd mid-run — it keeps its sockets, the
kernel keeps ACKing bytes into its buffers, and nothing errors — and
the client must still finish its run on the spare, losing nothing it
acknowledged, with no batch stalled longer than the keep-alive budget.
Also covers Section 5.3 across a real daemon restart, and the
``repro stats`` CLI as a subprocess.
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.core.config import ReplicationConfig
from repro.rt.client import AsyncReplicatedLog
from repro.rt.cluster import LoopbackCluster
from repro.workload.et1 import Et1Params, et1_log_pattern

SRC = str(Path(__file__).resolve().parents[2] / "src")
CONFIG = ReplicationConfig(total_servers=3, copies=2, delta=8)

KEEPALIVE = 0.3
MISSES = 2
TIMEOUT = 4.0
# Detection budget: misses + 1 silent probe intervals, one interval of
# observation slack, plus the replacement round trip.
DETECT_BUDGET_S = KEEPALIVE * (MISSES + 2) + 1.5


def test_sigstop_mid_run_completes_with_zero_lost_acks(tmp_path):
    async def main(cluster):
        written: dict[int, bytes] = {}
        acked_high = 0
        force_latencies: list[float] = []
        log = AsyncReplicatedLog(
            "c1", cluster.addresses(), CONFIG, timeout=TIMEOUT,
            keepalive_interval=KEEPALIVE, keepalive_misses=MISSES,
        )
        await log.initialize()

        async def run_txns(start_seq, count):
            nonlocal acked_high
            for seq in range(start_seq, start_seq + count):
                for data, kind, forced in et1_log_pattern(Et1Params(), seq):
                    lsn = await log.write(data, kind=kind)
                    written[lsn] = data
                    if forced:
                        t0 = time.monotonic()
                        acked_high = await log.force()
                        force_latencies.append(time.monotonic() - t0)

        await run_txns(0, 5)
        victim = log.write_set[0]
        cluster.suspend(victim)  # gray failure: hung, not dead

        post_stall = len(force_latencies)
        await run_txns(5, 15)
        assert victim not in log.write_set
        assert log.server_switches >= 1

        # No batch waited longer than the keep-alive detection budget
        # (in particular: nobody burned the full 4 s call timeout).
        worst = max(force_latencies[post_stall:])
        assert worst < DETECT_BUDGET_S, \
            f"a force stalled {worst:.2f}s, budget {DETECT_BUDGET_S:.2f}s"

        # Zero lost acknowledged records: every LSN up to the last
        # acked force reads back with its exact bytes, with the victim
        # still frozen.
        for lsn, data in sorted(written.items()):
            if lsn <= acked_high:
                assert (await log.read(lsn)).data == data
        await log.close()
        return victim

    with LoopbackCluster(tmp_path, num_servers=3) as cluster:
        victim = asyncio.run(main(cluster))
        cluster.resume(victim)  # let stop() terminate it cleanly


def test_truncate_survives_daemon_restart(tmp_path):
    async def write_and_truncate(cluster):
        log = AsyncReplicatedLog("c1", cluster.addresses(), CONFIG,
                                 keepalive_interval=0.0)
        await log.initialize()
        lsns = [await log.write(f"rec{i}".encode()) for i in range(40)]
        await log.force()
        low_water = lsns[-1] - CONFIG.delta
        dropped = await log.truncate(low_water)
        assert dropped > 0
        await log.close()
        return lsns, low_water

    async def read_back(cluster, lsns):
        log = AsyncReplicatedLog("c1", cluster.addresses(), CONFIG,
                                 keepalive_interval=0.0)
        await log.initialize()
        rec = await log.read(lsns[-1])
        assert rec.data == b"rec39"
        lsn = await log.write(b"post-restart")
        await log.force()
        assert (await log.read(lsn)).data == b"post-restart"
        await log.close()

    with LoopbackCluster(tmp_path, num_servers=3) as cluster:
        lsns, low_water = asyncio.run(write_and_truncate(cluster))

        sizes_before = {}
        for sid in cluster.servers:
            path = os.path.join(tmp_path, sid, "log.dat")
            sizes_before[sid] = os.path.getsize(path)

        # Restart every daemon: replay must see only the retained
        # suffix, and the truncation mark must persist.
        for sid in list(cluster.servers):
            cluster.restart(sid)

        for sid, (host, port) in cluster.addresses().items():
            out = subprocess.run(
                [sys.executable, "-m", "repro", "stats",
                 f"{host}:{port}", "--client-id", "c1", "--json"],
                env=dict(os.environ, PYTHONPATH=SRC),
                capture_output=True, text=True, timeout=60)
            assert out.returncode == 0, out.stderr
            stats = json.loads(out.stdout)
            if stats["store_records"]:
                # Only retained records were replayed: the store holds
                # at most the δ-window + guards, never the 40-record
                # history, and remembers the truncation point.
                assert stats["truncated_lsn"] == low_water
                assert stats["store_records"] <= 2 * CONFIG.delta + 2
                assert stats["log_bytes"] <= sizes_before[sid]

        asyncio.run(read_back(cluster, lsns))


def test_stats_cli_reports_live_counters(tmp_path):
    with LoopbackCluster(tmp_path, num_servers=3) as cluster:
        env = dict(os.environ, PYTHONPATH=SRC)
        args = [sys.executable, "-m", "repro", "loadgen",
                "--copies", "2", "--duration", "20", "--max-txns", "4",
                "--clients", "2", "--truncate-every", "2", "--json"]
        for sid, (host, port) in cluster.addresses().items():
            args += ["--server", f"{sid}={host}:{port}"]
        out = subprocess.run(args, env=env, capture_output=True, text=True,
                             timeout=120)
        assert out.returncode == 0, out.stderr
        report = json.loads(out.stdout)
        assert report["clients"] == 2
        assert report["transactions"] == 8
        assert all(c["truncations"] >= 1 for c in report["per_client"])

        host, port = next(iter(cluster.addresses().values()))
        out = subprocess.run(
            [sys.executable, "-m", "repro", "stats", f"{host}:{port}",
             "--json"],
            env=env, capture_output=True, text=True, timeout=60)
        assert out.returncode == 0, out.stderr
        stats = json.loads(out.stdout)
        assert stats["messages_handled"] > 0
        assert stats["forces_acked"] >= 1
        assert stats["truncations"] >= 1
        assert stats["bytes_appended"] > 0

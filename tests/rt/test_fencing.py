"""Ownership fencing: linearizable handoff between live writers.

The paper restricts each log to one client; these tests cover what
makes *changing* that client safe.  A second process draws a higher
epoch from the Appendix-I generator quorum, installs it as a durable
fence on ≥ M−N+1 servers, and recovers per Section 5.4 — after which
every write set the old writer can reach intersects the fence quorum,
so the old writer is refused (``LogFenced``) before a byte is
appended.

The property test drives a random schedule of ownership events
(plain Section 5.4 restarts, fenced takeovers, daemon bounces) and
checks the two monotonicity invariants everything above rests on:

* the ownership epoch observed by successive owners strictly
  increases, and
* no server's standing fence ever moves backwards — not across
  takeovers, not across a daemon crash/restart.
"""

from __future__ import annotations

import asyncio
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ReplicationConfig
from repro.core.errors import LogFenced
from repro.rt.client import AsyncReplicatedLog
from repro.rt.filestore import FileLogStore
from repro.rt.server import LogServerDaemon

CONFIG = ReplicationConfig(total_servers=3, copies=2, delta=8)


class Cluster:
    """M in-process daemons over file stores in a directory."""

    def __init__(self, root, m=3):
        self.root = root
        self.m = m
        self.daemons: dict[str, LogServerDaemon] = {}

    async def __aenter__(self):
        for i in range(self.m):
            await self.start(f"s{i + 1}")
        return self

    async def start(self, sid, port=0):
        data_dir = os.path.join(self.root, sid)
        daemon = LogServerDaemon(FileLogStore(data_dir, sid), port=port)
        await daemon.start()
        self.daemons[sid] = daemon
        return daemon

    async def bounce(self, sid):
        """Crash/restart one daemon on the same port; its durable
        files survive, its memory does not."""
        port = self.daemons[sid].port
        await self.daemons[sid].close()
        await self.start(sid, port=port)

    def addresses(self):
        return {sid: (d.host, d.port) for sid, d in self.daemons.items()}

    def fences(self, client_id) -> dict[str, int]:
        return {sid: d.store.fence_epoch(client_id)
                for sid, d in self.daemons.items()}

    async def __aexit__(self, *exc):
        for daemon in self.daemons.values():
            try:
                await daemon.close()
            except Exception:
                pass


def test_takeover_fences_live_writer(tmp_path):
    """A second client seizes the stream; the first, still connected,
    is refused terminally — and the handoff loses nothing."""
    async def main():
        async with Cluster(tmp_path) as cluster:
            old = AsyncReplicatedLog("c", cluster.addresses(), CONFIG)
            await old.initialize()
            kept = [await old.write(f"old{i}".encode()) for i in range(4)]
            await old.force()
            old_epoch = old.current_epoch

            new = AsyncReplicatedLog("c", cluster.addresses(), CONFIG)
            await new.takeover()
            assert new.current_epoch > old_epoch
            assert new.takeovers_performed == 1
            assert new.fences_installed >= CONFIG.init_quorum

            # The old writer is refused before anything is appended,
            # with the terminal error — not a retryable switch.
            await old.write(b"stale")
            with pytest.raises(LogFenced):
                await old.force()
            assert old.server_switches == 0

            # The new owner still reads every pre-handoff record and
            # keeps the stream live.
            for i, lsn in enumerate(kept):
                assert (await new.read(lsn)).data == f"old{i}".encode()
            lsn = await new.write(b"post-handoff")
            await new.force()
            assert (await new.read(lsn)).data == b"post-handoff"
            await old.close()
            await new.close()

    asyncio.run(main())


def test_fence_survives_daemon_crash(tmp_path):
    """A fenced server that crashes and recovers still refuses the old
    writer — the fence is in the durable log, not daemon memory."""
    async def main():
        async with Cluster(tmp_path) as cluster:
            old = AsyncReplicatedLog("c", cluster.addresses(), CONFIG)
            await old.initialize()
            await old.write(b"pre")
            await old.force()

            new = AsyncReplicatedLog("c", cluster.addresses(), CONFIG)
            await new.takeover()
            await new.close()

            for sid in list(cluster.daemons):
                await cluster.bounce(sid)
            assert min(cluster.fences("c").values()) >= new.current_epoch

            # The old writer reconnects to the recovered daemons (same
            # ports, fresh memory) — and is still refused: the fence
            # came back with the durable log.
            await old.write(b"stale")
            with pytest.raises(LogFenced):
                await old.force()
            await old.close()

    asyncio.run(main())


@settings(max_examples=8, deadline=None)
@given(ops=st.lists(st.sampled_from(["restart", "takeover", "bounce"]),
                    min_size=1, max_size=5))
def test_epochs_strictly_monotone_across_ownership_events(ops, tmp_path_factory):
    """Ownership epochs strictly increase and no server's fence ever
    regresses, under any schedule of restarts/takeovers/bounces."""
    root = tmp_path_factory.mktemp("fence-prop")

    async def main():
        async with Cluster(root) as cluster:
            epochs = []
            fences = cluster.fences("c")

            async def check(log):
                assert not epochs or log.current_epoch > epochs[-1], \
                    (ops, epochs, log.current_epoch)
                epochs.append(log.current_epoch)
                now = cluster.fences("c")
                for sid, fence in now.items():
                    assert fence >= fences[sid], (ops, sid, fences, now)
                fences.update(now)
                # A takeover's fence never exceeds the owner it blessed.
                assert max(now.values()) <= log.current_epoch

            log = AsyncReplicatedLog("c", cluster.addresses(), CONFIG)
            await log.initialize()
            await check(log)
            bounced = 0
            for op in ops:
                if op == "bounce":
                    await cluster.bounce(f"s{bounced % cluster.m + 1}")
                    bounced += 1
                    continue
                await log.write(b"payload")
                await log.force()
                await log.close()
                log = AsyncReplicatedLog("c", cluster.addresses(), CONFIG)
                if op == "takeover":
                    await log.takeover()
                else:
                    await log.initialize()
                await check(log)
            await log.close()

    asyncio.run(main())

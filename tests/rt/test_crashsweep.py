"""The crash-point sweep harness (in-process phases only — the daemon
phase spawns real subprocesses and runs in CI as ``repro crashsweep
--quick``)."""

from __future__ import annotations

from repro.harness.crashsweep import SweepConfig, run_crashsweep


def test_quick_sweep_passes_all_invariants(tmp_path):
    report = run_crashsweep(SweepConfig(
        root_dir=str(tmp_path), quick=True, daemon=False,
    ))
    # The acceptance floor: the workload must expose a rich crash
    # surface, not a token handful of points.
    assert report.points_enumerated >= 30
    assert {"log.write.record", "log.fsync", "compact.rename",
            "compact.dirsync", "forest.write", "log.write.install",
            "log.write.truncate", "dir.create-sync"} <= set(report.sites)
    assert report.cases_run > 0
    assert report.failures == [], [c.as_dict() for c in report.failures]


def test_single_point_replay(tmp_path):
    report = run_crashsweep(SweepConfig(
        root_dir=str(tmp_path), daemon=False,
        point="log.fsync:1:short-write",
    ))
    assert len(report.cases) == 1
    case = report.cases[0]
    assert case.spec == "log.fsync:1:short-write"
    assert case.ok, case.errors


def test_seed_changes_payloads_not_points(tmp_path):
    reports = [
        run_crashsweep(SweepConfig(
            root_dir=str(tmp_path / str(seed)), seed=seed,
            point="log.write.record:0",  # enumerate + one case, cheap
            daemon=False,
        ))
        for seed in (0, 1)
    ]
    assert reports[0].points_enumerated == reports[1].points_enumerated
    assert reports[0].sites == reports[1].sites
    assert all(c.ok for r in reports for c in r.cases)


def test_report_as_dict_is_json_shaped(tmp_path):
    import json

    report = run_crashsweep(SweepConfig(
        root_dir=str(tmp_path), daemon=False, point="log.open:0",
    ))
    payload = json.loads(json.dumps(report.as_dict()))
    assert payload["points_enumerated"] == report.points_enumerated
    assert payload["failures"] == []

"""Back-pressure and hung-server handling, in one process.

A *hung* server is worse than a dead one: TCP connects still succeed
and small sends still land in kernel buffers, so nothing errors — the
replies just stop.  These tests interpose the stallable
:class:`~repro.rt.chaosproxy.ChaosProxy` between the client and one
daemon to create exactly that gray failure and assert the three
defenses added for it:

* the bounded send queue + writer task keep a stalled peer from ever
  blocking the batch path (``try_send`` reports, never waits);
* consecutive queue-full strikes demote a slow server from the write
  set the same way a crash would (Section 5.4's server switch);
* keep-alive probes abort a silent connection after ~2 probe
  intervals, failing pending futures immediately instead of letting
  each caller wait out a full timeout — and the abort path cancels
  the connection's tasks (the reader-task leak regression).
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.core.config import ReplicationConfig
from repro.core.errors import ServerUnavailable
from repro.net.messages import IntervalListCall
from repro.rt.chaosproxy import ProxiedCluster
from repro.rt.client import AsyncReplicatedLog, ServerConnection

CONFIG = ReplicationConfig(total_servers=3, copies=2, delta=8)


def test_call_timeout_tears_down_connection(tmp_path):
    """A timed-out call aborts the connection and cancels its tasks.

    Regression for the reader-task leak: the old path failed the
    pending futures but left the reader task running, so a late reply
    could resolve a future belonging to a different (failed) call.
    """

    async def main():
        async with ProxiedCluster(tmp_path) as cluster:
            conn = ServerConnection("s1", "127.0.0.1", cluster.proxy.port,
                                    timeout=0.3, client_id="c1")
            await conn.connect()
            reader_task = conn._reader_task
            writer_task = conn._writer_task
            cluster.proxy.stall()
            with pytest.raises(ServerUnavailable):
                await conn.call(IntervalListCall("c1"))
            assert not conn.alive
            assert not conn._pending and not conn._force_waiters
            await asyncio.sleep(0)  # let cancellations propagate
            assert reader_task.done()
            assert writer_task.done()
            await conn.close()

    asyncio.run(main())


def test_queue_full_strikes_demote_slow_server_without_blocking(tmp_path):
    """A slow server's full queue never blocks writes; it gets demoted.

    δ is large and forces are avoided, so the only pressure valve is
    the WriteLog path itself.  One write-set member's transport stops
    draining (the asyncio-level face of a peer whose TCP window is
    closed); with a 2-frame send queue the third consecutive
    queue-full flush must switch the write set — and every write call
    must return promptly, bounded by the event loop, not by the
    stalled peer.
    """
    config = ReplicationConfig(total_servers=3, copies=2, delta=512)

    async def main():
        async with ProxiedCluster(tmp_path) as cluster:
            log = AsyncReplicatedLog(
                "c1", cluster.addresses(), config,
                timeout=2.0, batch_bytes=1,  # flush every record
                send_queue_limit=2, slow_strike_limit=3,
                keepalive_interval=0.0,  # isolate the strike policy
            )
            await log.initialize()
            if "s1" not in log.write_set:
                # make the proxied server a write-set member
                log._write_set[0] = "s1"
            # Stop s1's transport from draining: frames pile up in its
            # bounded queue exactly as they would behind a zero TCP
            # window, without having to fill real kernel buffers.
            stalled = asyncio.Event()

            async def blocked_drain():
                await stalled.wait()

            log._conns["s1"]._writer.drain = blocked_drain
            t0 = time.monotonic()
            for i in range(40):
                await log.write(f"r{i}".encode())
            elapsed = time.monotonic() - t0
            assert "s1" not in log.write_set
            assert log.slow_strikes >= 3
            assert log.server_switches >= 1
            # 40 writes against a stalled member finished in well under
            # the 2s timeout: nothing waited on the stalled socket.
            assert elapsed < 1.5
            high = await log.force()
            assert high == log.end_of_log()
            await log.close()
            stalled.set()

    asyncio.run(main())


def test_keepalive_demotes_hung_server(tmp_path):
    """A hung server is detected by pings and routed around quickly.

    After the stall, the keep-alive task needs ``keepalive_misses + 1``
    silent intervals to abort the connection; the next force must then
    complete on a spare without waiting out the 2 s call timeout.
    """

    async def main():
        async with ProxiedCluster(tmp_path) as cluster:
            log = AsyncReplicatedLog(
                "c1", cluster.addresses(), CONFIG,
                timeout=2.0,
                keepalive_interval=0.15, keepalive_misses=2,
            )
            await log.initialize()
            if "s1" not in log.write_set:
                log._write_set[0] = "s1"
            for i in range(4):
                await log.write(f"warm{i}".encode())
            await log.force()

            cluster.proxy.stall()
            # Idle period: only the keep-alive probes are talking.
            # Abort needs keepalive_misses + 1 probe intervals of
            # silence (plus one wake to observe the last pre-stall
            # pong); leave slack for event-loop jitter.
            await asyncio.sleep(0.15 * 8)
            conn = log._conns["s1"]
            assert not conn.alive, "keep-alive should have aborted s1"
            assert conn.keepalive_aborts == 1

            t0 = time.monotonic()
            await log.write(b"after-hang")
            high = await log.force()
            force_latency = time.monotonic() - t0
            assert "s1" not in log.write_set
            assert log.server_switches >= 1
            # The hung server was pre-declared dead, so the force never
            # waited on it — far under the 2 s timeout.
            assert force_latency < 1.0
            assert high == log.end_of_log()
            rec = await log.read(high)
            assert rec.data == b"after-hang"
            await log.close()

    asyncio.run(main())


def test_quarantine_blocks_immediate_readoption(tmp_path):
    """A keep-alive-aborted server is not instantly reconnected.

    Reconnects to a SIGSTOP'd process *succeed* at the TCP level, so
    without a quarantine the replacement scan would re-adopt the hung
    server and stall for a full timeout.
    """

    async def main():
        async with ProxiedCluster(tmp_path) as cluster:
            conn = ServerConnection("s1", "127.0.0.1", cluster.proxy.port,
                                    timeout=2.0, client_id="c1",
                                    keepalive_interval=0.1,
                                    keepalive_misses=2)
            await conn.connect()
            cluster.proxy.stall()
            deadline = asyncio.get_running_loop().time() + 3.0
            while conn.alive:
                assert asyncio.get_running_loop().time() < deadline, \
                    "keep-alive never aborted the stalled connection"
                await asyncio.sleep(0.02)
            assert conn.quarantined_until > asyncio.get_running_loop().time()
            with pytest.raises(ServerUnavailable, match="quarantined"):
                await conn.connect()
            await conn.close()

    asyncio.run(main())

"""The injectable I/O backend, and the bugs the crash sweep pinned.

Each regression test below names the ``site:index`` crash point that
first exposed its bug (``repro crashsweep --point SITE:IDX[:ACTION]``
replays it standalone).
"""

from __future__ import annotations

import pytest

from repro.core.errors import StorageError
from repro.core.records import StoredRecord
from repro.net.codec import WireCodecError, decode_stored_record, \
    encode_stored_record
from repro.rt.faultfs import FaultInjector, FaultPlan, FaultSpecError, \
    PassthroughIO, PowerLoss, parse_fault_plans
from repro.rt.filestore import FileLogStore


def rec(lsn, epoch=1, data=None):
    return StoredRecord(lsn=lsn, epoch=epoch, present=True,
                        data=data if data is not None else f"r{lsn}".encode(),
                        kind="data")


# -- FaultPlan ------------------------------------------------------------


def test_fault_plan_parse_roundtrip():
    plan = FaultPlan.parse("log.write.record:7:power-loss")
    assert (plan.site, plan.index, plan.action) \
        == ("log.write.record", 7, "power-loss")
    assert plan.point == "log.write.record:7"
    assert FaultPlan.parse(plan.spec) == plan


@pytest.mark.parametrize("spec,bad_token", [
    ("log.fsync", "log.fsync"),             # no index/action
    ("log.fsync:x:power-loss", "x"),        # non-int index
    ("log.fsync:-1:power-loss", "-1"),      # negative index
    ("log.fsync:1:meteor-strike", "meteor-strike"),  # unknown action
    (":1:power-loss", ""),                  # empty site
])
def test_fault_plan_rejects_bad_specs(spec, bad_token):
    with pytest.raises(FaultSpecError) as excinfo:
        FaultPlan.parse(spec)
    assert excinfo.value.token == bad_token
    assert excinfo.value.spec == spec
    assert isinstance(excinfo.value, ValueError)  # old except clauses hold


def test_parse_fault_plans_multi():
    plans = parse_fault_plans(
        "compact.write:1:torn, compact.rename:0:power-loss"
    )
    assert [p.spec for p in plans] \
        == ["compact.write:1:torn", "compact.rename:0:power-loss"]
    # Single-spec strings parse to a one-plan tuple.
    assert parse_fault_plans("log.fsync:2:eio") \
        == (FaultPlan.parse("log.fsync:2:eio"),)


@pytest.mark.parametrize("spec,bad_token", [
    ("", ""),                                        # empty plan
    ("log.fsync:1:eio,,log.open:0:eio", ""),         # empty middle token
    ("log.fsync:1:eio,log.fsync:1:enospc", "log.fsync:1"),  # dup point
    ("log.fsync:1:eio,log.open:zz:eio", "zz"),       # bad token named
])
def test_parse_fault_plans_rejects_bad_strings(spec, bad_token):
    with pytest.raises(FaultSpecError) as excinfo:
        parse_fault_plans(spec)
    assert excinfo.value.token == bad_token


# -- deterministic enumeration --------------------------------------------


def _run_store_script(tmp_path, io):
    store = FileLogStore(tmp_path, "s1", io=io)
    store.append_records("c", (rec(1), rec(2)), fsync=True)
    store.generator_write(5)
    store.close()


def test_trace_is_deterministic(tmp_path):
    traces = []
    for sub in ("a", "b"):
        inj = FaultInjector()
        _run_store_script(tmp_path / sub, inj)
        inj.close_all()
        traces.append(inj.trace)
    assert traces[0] == traces[1]
    assert "log.open:0" in traces[0]
    assert "dir.create-sync:0" in traces[0]


# -- crash shapes ---------------------------------------------------------


def test_power_loss_reverts_to_fsync_barrier(tmp_path):
    inj = FaultInjector(FaultPlan.parse("log.fsync:2:power-loss"))
    store = FileLogStore(tmp_path, "s1", io=inj)
    store.append_record("c", rec(1), fsync=True)   # log.fsync:0
    store.append_record("c", rec(2), fsync=True)   # log.fsync:1
    with pytest.raises(PowerLoss):
        store.append_record("c", rec(3), fsync=True)  # crash before fsync:2
    inj.close_all()
    again = FileLogStore(tmp_path, "s1")
    assert again.stored_lsns("c") == [1, 2]  # unsynced r3 gone
    again.close()


def test_short_write_keeps_torn_prefix(tmp_path):
    inj = FaultInjector(FaultPlan.parse("log.write.record:1:short-write"))
    store = FileLogStore(tmp_path, "s1", io=inj)
    store.append_record("c", rec(1), fsync=True)
    with pytest.raises(PowerLoss):
        store.append_record("c", rec(2), fsync=True)
    inj.close_all()
    again = FileLogStore(tmp_path, "s1")
    # The torn half-entry is recovery's problem: prefix survives,
    # the tail is truncated away.
    assert again.stored_lsns("c") == [1]
    assert again.truncated_bytes > 0
    again.close()


def test_torn_write_keeps_running(tmp_path):
    """``torn`` is the lying disk: a half write with no crash."""
    inj = FaultInjector(FaultPlan.parse("log.write.record:1:torn"))
    store = FileLogStore(tmp_path, "s1", io=inj)
    store.append_record("c", rec(1), fsync=True)
    store.append_record("c", rec(2), fsync=True)   # torn, but "succeeds"
    store.append_record("c", rec(3), fsync=True)
    assert inj.faults_injected == 1
    assert inj.tripped is None
    store.close()
    inj.close_all()
    # Reopen sees the corruption: replay stops at the torn entry.
    again = FileLogStore(tmp_path, "s1")
    assert again.stored_lsns("c") == [1]
    again.close()


def test_torn_compact_write_plus_rename_power_loss(tmp_path):
    """Combined plan ``compact.write:2:torn,compact.rename:0:power-loss``.

    The compaction writes a torn record into ``log.dat.tmp`` and the
    machine dies just before the rename installs it.  The old stream
    must stay authoritative — the torn tmp bytes can never surface —
    and a daemon restart replays the retained suffix and can finish
    the truncation cleanly.
    """
    plans = parse_fault_plans(
        "compact.write:2:torn,compact.rename:0:power-loss"
    )
    inj = FaultInjector(plans)
    store = FileLogStore(tmp_path, "s1", io=inj)
    store.append_records("c", tuple(rec(i) for i in range(1, 9)),
                         fsync=True)
    with pytest.raises(PowerLoss):
        store.truncate_below("c", 5)
    assert inj.faults_injected == 2  # the torn write and the crash
    inj.close_all()
    again = FileLogStore(tmp_path, "s1")
    # Rename never happened: the pre-compaction stream is intact and
    # the torn tmp file was rolled back with its directory entry.
    assert again.stored_lsns("c") == list(range(1, 9))
    assert not (tmp_path / "log.dat.tmp").exists()
    assert again.read_record("c", 5).data == b"r5"
    # The retried truncation completes on the clean store.
    assert again.truncate_below("c", 5) == 4
    assert again.stored_lsns("c") == [5, 6, 7, 8]
    again.close()


def test_errno_action_is_transient_and_wedges_the_store(tmp_path):
    inj = FaultInjector(FaultPlan.parse("log.write.record:1:enospc"))
    store = FileLogStore(tmp_path, "s1", io=inj)
    store.append_record("c", rec(1), fsync=True)
    with pytest.raises(StorageError):
        store.append_record("c", rec(2), fsync=True)
    # Wedged for writes, alive for reads (daemon degrades to read-only).
    assert store.read_record("c", 1).data == b"r1"
    with pytest.raises(StorageError):
        store.append_record("c", rec(3), fsync=True)
    assert inj.faults_injected == 1
    assert inj.tripped is None  # errno faults do not kill the "machine"
    store.close()
    inj.close_all()


def test_post_crash_io_raises_power_loss(tmp_path):
    inj = FaultInjector(FaultPlan.parse("log.fsync:0:power-loss"))
    store = FileLogStore(tmp_path, "s1", io=inj)
    with pytest.raises(PowerLoss):
        store.append_record("c", rec(1), fsync=True)
    with pytest.raises(PowerLoss):  # the disk is dead; no finalizer writes
        inj.fsync_dir(tmp_path, "dir.create-sync")


# -- pinned sweep regressions ---------------------------------------------


def test_created_log_survives_power_loss_after_ack(tmp_path):
    """Crash point ``log.fsync:1:power-loss`` (Bug A).

    Without the ``dir.create-sync`` barrier after creating ``log.dat``,
    the file's directory entry was still uncommitted when the crash
    rolled back pending directory ops — the whole log vanished, taking
    the already-*acknowledged* record 1 with it.
    """
    inj = FaultInjector(FaultPlan.parse("log.fsync:1:power-loss"))
    store = FileLogStore(tmp_path, "s1", io=inj)
    store.append_record("c", rec(1), fsync=True)   # acked
    with pytest.raises(PowerLoss):
        store.append_record("c", rec(2), fsync=True)
    inj.close_all()
    assert (tmp_path / "log.dat").exists()
    again = FileLogStore(tmp_path, "s1")
    assert again.stored_lsns("c") == [1]
    assert again.read_record("c", 1).data == b"r1"
    again.close()


def test_stale_forest_detected_after_compaction_crash(tmp_path):
    """Crash point ``forest.unlink:0:power-loss`` (Bug B).

    The crash lands after the compacted stream is durably installed
    (rename + dir fsync) but before the forest index files are
    rebuilt: every forest on disk maps LSNs to byte offsets in the
    *old* stream.  The generation header ties an index file to the
    stream it was built against, so the reopen discards and rebuilds
    instead of silently reading garbage offsets.
    """
    inj = FaultInjector(FaultPlan.parse("forest.unlink:0:power-loss"))
    store = FileLogStore(tmp_path, "s1", io=inj)
    store.append_records("c", tuple(rec(i) for i in range(1, 9)),
                         fsync=True)
    store.flush()  # persist the (soon stale) forest pages
    with pytest.raises(PowerLoss):
        store.truncate_below("c", 5)  # compacts, crashes at the rebuild
    inj.close_all()
    again = FileLogStore(tmp_path, "s1")
    assert again.log_generation == 1
    for lsn in (5, 6, 7, 8):
        assert again.read_record("c", lsn).data == f"r{lsn}".encode()
        via = again.read_via_index("c", lsn)
        if via is not None:
            assert via.data == f"r{lsn}".encode()
    again.close()


def test_failed_compaction_reopen_keeps_store_usable(tmp_path):
    """Crash point ``compact.reopen:0:eio`` (Bug C).

    The old append handle is already closed when the post-rename
    reopen fails; the store used to keep the closed handle and every
    later read died on ``ValueError: I/O operation on closed file``
    instead of the storage error.  The rescue path re-opens the
    installed stream so the daemon can keep serving reads.
    """
    inj = FaultInjector(FaultPlan.parse("compact.reopen:0:eio"))
    store = FileLogStore(tmp_path, "s1", io=inj)
    store.append_records("c", tuple(rec(i) for i in range(1, 9)),
                         fsync=True)
    with pytest.raises(StorageError):
        store.truncate_below("c", 5)
    # Wedged for writes, but reads must keep working.
    assert store.read_record("c", 6).data == b"r6"
    with pytest.raises(StorageError):
        store.append_record("c", rec(9), fsync=True)
    store.close()
    inj.close_all()


def test_record_header_corruption_is_crc_detected(tmp_path):
    """Crash point ``compact.write:3:bit-flip``.

    The record CRC originally covered only the data bytes; a flipped
    bit in the header's epoch field decoded cleanly and replayed as a
    *higher*-epoch rewrite — a fabricated record (or, flipping the
    other way, a fatal "epoch went backwards" that killed the whole
    restart).  The CRC now spans header + data.
    """
    encoded = bytearray(encode_stored_record(rec(3)))
    encoded[5] ^= 0x10  # low half of the u32 epoch field
    with pytest.raises(WireCodecError, match="CRC"):
        decode_stored_record(bytes(encoded), 0)

    # End to end: flip the same header byte inside log.dat; recovery
    # must reject the entry (counted) and keep the valid prefix.
    store = FileLogStore(tmp_path, "s1")
    store.append_record("c", rec(1), fsync=True)
    offset_2 = store.log_size_bytes
    store.append_record("c", rec(2), fsync=True)
    store.close()
    log = tmp_path / "log.dat"
    raw = bytearray(log.read_bytes())
    raw[offset_2 + 19 + 5] ^= 0x10  # entry header is 19 bytes
    log.write_bytes(bytes(raw))
    again = FileLogStore(tmp_path, "s1")
    assert again.stored_lsns("c") == [1]
    assert again.crc_rejections == 1
    again.close()


def test_read_via_index_refuses_stale_entry_after_install(tmp_path):
    """Crash point ``log.write.record:25`` (any restart after install).

    InstallCopies replaces a record in place in the replayed state,
    but the append-only forest still maps the LSN to the original
    append — ``read_via_index`` served the superseded pre-install
    record.  A forest hit whose epoch disagrees with the replayed
    state is stale and must not be returned.
    """
    store = FileLogStore(tmp_path, "s1")
    store.append_records("c", (rec(1), rec(2)), fsync=True)
    store.stage_copy("c", rec(1, epoch=2, data=b"rewritten"))
    store.install_copies("c", 2)
    for s in (store, None):
        if s is None:
            store.close()
            s = FileLogStore(tmp_path, "s1")  # and again after recovery
        assert s.read_record("c", 1).epoch == 2
        via = s.read_via_index("c", 1)
        assert via is None or via.epoch == 2
        via2 = s.read_via_index("c", 2)
        assert via2 is not None and via2.epoch == 1  # untouched entry
    s.close()


def test_passthrough_is_faultless(tmp_path):
    io = PassthroughIO()
    assert io.faults_injected == 0
    fh = io.open(tmp_path / "f", "ab", "log.open")
    io.write(fh, b"abc", "log.write.record")
    io.fsync(fh, "log.fsync")
    fh.close()
    assert (tmp_path / "f").read_bytes() == b"abc"

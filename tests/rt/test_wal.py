"""Transactions over the real runtime: the AsyncWalBackend bridge and
the Section 5.3 checkpoint → TruncateLog wiring."""

from __future__ import annotations

import asyncio

from repro.client.recovery_manager import Database, RecoveryManager
from repro.core.config import ReplicationConfig
from repro.rt.client import AsyncReplicatedLog
from repro.rt.filestore import FileLogStore
from repro.rt.server import LogServerDaemon
from repro.rt.wal import AsyncWalBackend, drive

CONFIG = ReplicationConfig(total_servers=3, copies=2, delta=8)


class DaemonTrio:
    """Three in-process daemons over real sockets and durable stores."""

    def __init__(self, tmp_path):
        self.tmp_path = tmp_path
        self.daemons = {}

    async def __aenter__(self):
        for i in range(3):
            sid = f"s{i + 1}"
            daemon = LogServerDaemon(
                FileLogStore(self.tmp_path / sid, sid))
            await daemon.start()
            self.daemons[sid] = daemon
        return self

    def addresses(self):
        return {sid: (d.host, d.port) for sid, d in self.daemons.items()}

    async def __aexit__(self, *exc):
        for daemon in self.daemons.values():
            await daemon.close()
            daemon.store.close()


def test_transactions_commit_over_real_sockets(tmp_path):
    async def main():
        async with DaemonTrio(tmp_path) as trio:
            log = AsyncReplicatedLog("c1", trio.addresses(), CONFIG,
                                     timeout=5.0)
            await log.initialize()
            rm = RecoveryManager(AsyncWalBackend(log), Database())
            for i in range(3):
                txn = await drive(rm.begin())
                await drive(rm.update(txn, "a", str(i)))
                await drive(rm.commit(txn))
            assert rm.db.read("a") == "2"
            assert rm.records_logged == 9  # (begin, update, commit) x 3
            # An abort reads its undo values back over the wire.
            txn = await drive(rm.begin())
            await drive(rm.update(txn, "a", "dirty"))
            await drive(rm.abort(txn))
            assert rm.db.read("a") == "2"
            assert rm.remote_abort_reads == 1
            await log.close()

    asyncio.run(main())


def test_checkpoint_truncates_servers_at_low_water(tmp_path):
    """The §5.3 wiring: a checkpoint's low-water mark really reaches
    the log servers as a TruncateLog round."""

    async def main():
        async with DaemonTrio(tmp_path) as trio:
            log = AsyncReplicatedLog("c1", trio.addresses(), CONFIG,
                                     timeout=5.0)
            await log.initialize()
            rm = RecoveryManager(
                AsyncWalBackend(log), Database(),
                checkpoint_every=2, truncate_on_checkpoint=True,
            )
            for i in range(4):
                txn = await drive(rm.begin())
                await drive(rm.update(txn, f"k{i}", str(i)))
                await drive(rm.commit(txn))
                await drive(rm.clean_all())  # nothing dirty holds the floor
            assert rm.truncations_requested >= 1
            # No active transactions and no dirty pages at checkpoint
            # time: the floor is the checkpoint record itself.
            assert rm.checkpoint_low_water > 1
            marks = [d.store.truncated_lsn("c1")
                     for d in trio.daemons.values()]
            assert max(marks) == rm.checkpoint_low_water
            # Records at/above the mark stay readable.
            record = await log.read(rm.checkpoint_low_water)
            assert record is not None
            await log.close()

    asyncio.run(main())


def test_dirty_pages_hold_the_low_water_floor(tmp_path):
    """An uncleaned page pins the mark at its first dirtying update."""

    async def main():
        async with DaemonTrio(tmp_path) as trio:
            log = AsyncReplicatedLog("c1", trio.addresses(), CONFIG,
                                     timeout=5.0)
            await log.initialize()
            rm = RecoveryManager(AsyncWalBackend(log), Database(),
                                 truncate_on_checkpoint=True)
            txn = await drive(rm.begin())
            first_update = await drive(rm.update(txn, "hot", "v1"))
            await drive(rm.commit(txn))
            for i in range(3):
                txn = await drive(rm.begin())
                await drive(rm.update(txn, f"cold{i}", "x"))
                await drive(rm.commit(txn))
            await drive(rm.checkpoint())
            # "hot" was never cleaned: redo needs its first update.
            assert rm.checkpoint_low_water == first_update
            await drive(rm.clean_all())
            ckpt_lsn = await drive(rm.checkpoint())
            assert rm.checkpoint_low_water == ckpt_lsn
            assert rm.truncations_requested == 2
            await log.close()

    asyncio.run(main())

"""Property tests for the binary wire codec.

Two invariants for every message type:

1. ``decode(encode(msg)) == msg`` — lossless round trip;
2. ``len(encode(msg)) == msg.wire_size`` — the bytes on the socket are
   exactly the bytes the Section 4.1 capacity analysis charges
   (``MESSAGE_HEADER_BYTES`` + ``RECORD_HEADER_BYTES``-per-record +
   data, or 12 bytes per interval).
"""

from __future__ import annotations

import asyncio
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import Interval
from repro.core.records import StoredRecord
from repro.net.codec import (
    KIND_CODES,
    MAX_CLIENT_ID_BYTES,
    MAX_RECORD_DATA,
    BufferPool,
    FrameReader,
    WireCodecError,
    decode,
    decode_stored_record,
    encode,
    encode_into,
    encode_iov,
    encode_stored_record,
    frame,
    frame_into,
    frame_iov,
    frame_new_high_lsn,
)
from repro.net.messages import (
    MESSAGE_HEADER_BYTES,
    RECORD_HEADER_BYTES,
    AckReply,
    CopyLogCall,
    ErrorReply,
    FenceLogCall,
    FenceReply,
    ForceLogMsg,
    GeneratorReadCall,
    GeneratorReadReply,
    GeneratorWriteCall,
    InstallCopiesCall,
    IntervalListCall,
    IntervalListReply,
    MissingIntervalMsg,
    NewHighLSNMsg,
    NewIntervalMsg,
    PingMsg,
    PongMsg,
    ReadLogBackwardCall,
    ReadLogForwardCall,
    ReadLogReply,
    STATS_COUNTERS,
    StatsCall,
    StatsReply,
    TruncateLogCall,
    TruncateReply,
    WriteLogMsg,
)

# -- strategies -----------------------------------------------------------

client_ids = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1, max_size=MAX_CLIENT_ID_BYTES,
)
lsns = st.integers(min_value=1, max_value=2**32 - 1)
epochs = st.integers(min_value=1, max_value=2**32 - 1)
kinds = st.sampled_from(sorted(KIND_CODES))
payloads = st.binary(max_size=300)


@st.composite
def record_batches(draw, epoch=None, min_size=1):
    """Consecutive-LSN records sharing one epoch (a legal batch)."""
    ep = draw(epochs) if epoch is None else epoch
    start = draw(st.integers(min_value=1, max_value=2**31))
    count = draw(st.integers(min_value=min_size, max_value=6))
    records = []
    for i in range(count):
        present = draw(st.booleans())
        records.append(StoredRecord(
            lsn=start + i, epoch=ep, present=present,
            data=draw(payloads) if present else b"",
            kind=draw(kinds),
        ))
    return ep, tuple(records)


@st.composite
def interval_tuples(draw):
    count = draw(st.integers(min_value=0, max_value=8))
    out = []
    for _ in range(count):
        lo = draw(lsns)
        hi = draw(st.integers(min_value=lo, max_value=2**32 - 1))
        out.append(Interval(epoch=draw(epochs), lo=lo, hi=hi))
    return tuple(out)


@st.composite
def messages(draw):
    cid = draw(client_ids)
    which = draw(st.integers(min_value=0, max_value=21))
    if which == 14:
        return PingMsg(cid, token=draw(st.integers(0, 2**32 - 1)))
    if which == 15:
        return PongMsg(cid, token=draw(st.integers(0, 2**32 - 1)))
    if which == 16:
        return TruncateLogCall(cid, low_water_lsn=draw(lsns),
                               epoch=draw(st.integers(0, 2**32 - 1)))
    if which == 20:
        return FenceLogCall(cid, epoch=draw(epochs))
    if which == 21:
        return FenceReply(cid, epoch=draw(st.integers(0, 2**32 - 1)))
    if which == 17:
        return TruncateReply(cid, low_water_lsn=draw(lsns),
                             records_dropped=draw(st.integers(0, 2**32 - 1)))
    if which == 18:
        return StatsCall(cid)
    if which == 19:
        counters = draw(st.lists(st.integers(0, 2**64 - 1),
                                 min_size=0, max_size=len(STATS_COUNTERS)))
        return StatsReply(cid, tuple(counters))
    if which == 0:
        ep, recs = draw(record_batches())
        return WriteLogMsg(cid, ep, recs)
    if which == 1:
        ep, recs = draw(record_batches())
        return ForceLogMsg(cid, ep, recs)
    if which == 2:
        return NewIntervalMsg(cid, draw(epochs), starting_lsn=draw(lsns))
    if which == 3:
        return NewHighLSNMsg(cid, new_high_lsn=draw(lsns))
    if which == 4:
        lo = draw(lsns)
        return MissingIntervalMsg(
            cid, lo=lo, hi=draw(st.integers(min_value=lo,
                                            max_value=2**32 - 1)))
    if which == 5:
        return IntervalListCall(cid)
    if which == 6:
        return IntervalListReply(cid, draw(interval_tuples()))
    if which == 7:
        return ReadLogForwardCall(cid, lsn=draw(lsns))
    if which == 8:
        return ReadLogBackwardCall(cid, lsn=draw(lsns))
    if which == 9:
        ep, recs = draw(record_batches(min_size=0))
        return ReadLogReply(cid, recs)
    if which == 10:
        ep, recs = draw(record_batches())
        return CopyLogCall(cid, ep, recs)
    if which == 11:
        return InstallCopiesCall(cid, draw(epochs))
    if which == 12:
        return AckReply(cid, ok=draw(st.booleans()))
    return ErrorReply(cid, draw(st.text(max_size=80)))


@st.composite
def generator_messages(draw):
    cid = draw(client_ids)
    which = draw(st.integers(min_value=0, max_value=2))
    value = draw(st.integers(min_value=0, max_value=2**64 - 1))
    if which == 0:
        return GeneratorReadCall(cid)
    if which == 1:
        return GeneratorReadReply(cid, value=value)
    return GeneratorWriteCall(cid, value=value)


# -- the two invariants ---------------------------------------------------


@settings(max_examples=300, deadline=None)
@given(messages())
def test_round_trip(msg):
    assert decode(encode(msg)) == msg


@settings(max_examples=300, deadline=None)
@given(messages())
def test_encoded_length_is_wire_size(msg):
    encoded = encode(msg)
    assert len(encoded) == msg.wire_size
    assert msg.wire_size >= MESSAGE_HEADER_BYTES


@settings(max_examples=100, deadline=None)
@given(generator_messages())
def test_generator_messages_round_trip(msg):
    assert decode(encode(msg)) == msg
    assert len(encode(msg)) == msg.wire_size


@settings(max_examples=200, deadline=None)
@given(record_batches())
def test_stored_record_round_trip(batch):
    _, records = batch
    for record in records:
        buf = encode_stored_record(record)
        assert len(buf) == RECORD_HEADER_BYTES + len(record.data)
        decoded, consumed = decode_stored_record(buf, 0)
        assert decoded == record
        assert consumed == len(buf)


@settings(max_examples=200, deadline=None)
@given(messages())
def test_frame_is_length_prefixed(msg):
    buf = frame(msg)
    (length,) = struct.unpack_from("!I", buf, 0)
    assert length == len(buf) - 4 == msg.wire_size


def test_wire_size_constants_match_issue_accounting():
    """The codec's fixed costs are the message-accounting constants."""
    assert MESSAGE_HEADER_BYTES == 32
    assert RECORD_HEADER_BYTES == 16
    rec = StoredRecord(lsn=1, epoch=1, data=b"x" * 100)
    msg = WriteLogMsg("c", 1, (rec,))
    assert len(encode(msg)) == 32 + 16 + 100
    reply = IntervalListReply("c", (Interval(1, 1, 9),))
    assert len(encode(reply)) == 32 + 12


# -- corruption and limits ------------------------------------------------


def test_decode_rejects_bad_magic():
    buf = bytearray(encode(IntervalListCall("c")))
    buf[0] ^= 0xFF
    with pytest.raises(WireCodecError):
        decode(bytes(buf))


def test_decode_rejects_truncated_header():
    buf = encode(IntervalListCall("c"))
    with pytest.raises(WireCodecError):
        decode(buf[: MESSAGE_HEADER_BYTES - 1])


def test_decode_rejects_corrupt_record_data():
    msg = WriteLogMsg("c", 1, (StoredRecord(lsn=1, epoch=1, data=b"abcd"),))
    buf = bytearray(encode(msg))
    buf[-1] ^= 0xFF  # flip a data byte: CRC must catch it
    with pytest.raises(WireCodecError):
        decode(bytes(buf))


def test_encode_rejects_oversized_client_id():
    with pytest.raises(WireCodecError):
        encode(IntervalListCall("x" * (MAX_CLIENT_ID_BYTES + 1)))


def test_encode_rejects_oversized_record_data():
    rec = StoredRecord(lsn=1, epoch=1, data=b"x" * (MAX_RECORD_DATA + 1))
    with pytest.raises(WireCodecError):
        encode(WriteLogMsg("c", 1, (rec,)))


def test_encode_rejects_unknown_kind():
    rec = StoredRecord(lsn=1, epoch=1, data=b"x", kind="mystery")
    with pytest.raises(WireCodecError):
        encode(WriteLogMsg("c", 1, (rec,)))


def test_error_reply_wire_size_counts_reason_bytes():
    msg = ErrorReply("c", "déjà vu")
    assert msg.wire_size == MESSAGE_HEADER_BYTES + len("déjà vu".encode())
    assert len(encode(msg)) == msg.wire_size


def test_error_reply_code_round_trips():
    from repro.net.messages import ERR_STORAGE

    msg = ErrorReply("c", "disk full", code=ERR_STORAGE)
    decoded = decode(encode(msg))
    assert decoded == msg
    assert decoded.code == ERR_STORAGE


def test_stats_reply_names_match_wire_order():
    counters = tuple(range(len(STATS_COUNTERS)))
    msg = StatsReply("c", counters)
    decoded = decode(encode(msg))
    assert decoded.as_dict() == dict(zip(STATS_COUNTERS, counters))
    assert msg.wire_size == MESSAGE_HEADER_BYTES + 8 * len(counters)


# -- zero-copy encode/frame variants --------------------------------------
#
# The scatter-gather senders (``encode_iov``/``frame_iov``), the
# append-into-scratch senders (``encode_into``/``frame_into``), and the
# fused group-commit ack (``frame_new_high_lsn``) must be *byte
# identical* to the reference ``encode``/``frame`` for every message
# kind — they are transport optimizations, never wire-format changes.


@settings(max_examples=300, deadline=None)
@given(st.one_of(messages(), generator_messages()))
def test_encode_iov_matches_encode(msg):
    assert b"".join(encode_iov(msg)) == encode(msg)


@settings(max_examples=300, deadline=None)
@given(st.one_of(messages(), generator_messages()))
def test_encode_into_appends_encode(msg):
    buf = bytearray(b"prefix")
    n = encode_into(msg, buf)
    assert bytes(buf) == b"prefix" + encode(msg)
    assert n == msg.wire_size


@settings(max_examples=300, deadline=None)
@given(st.one_of(messages(), generator_messages()))
def test_frame_iov_matches_frame(msg):
    assert b"".join(frame_iov(msg)) == frame(msg)


@settings(max_examples=300, deadline=None)
@given(st.one_of(messages(), generator_messages()))
def test_frame_into_appends_frame(msg):
    buf = bytearray(b"xy")
    n = frame_into(msg, buf)
    assert bytes(buf) == b"xy" + frame(msg)
    assert n == len(frame(msg))


@settings(max_examples=200, deadline=None)
@given(record_batches(), st.booleans())
def test_encode_iov_accepts_preencoded_record_images(batch, force):
    ep, records = batch
    cls = ForceLogMsg if force else WriteLogMsg
    msg = cls("c", ep, records)
    images = [encode_stored_record(r) for r in records]
    assert b"".join(encode_iov(msg, images)) == encode(msg)
    assert b"".join(frame_iov(msg, images)) == frame(msg)


@settings(max_examples=200, deadline=None)
@given(client_ids, lsns)
def test_frame_new_high_lsn_matches_generic_frame(cid, lsn):
    assert frame_new_high_lsn(cid, lsn) == frame(NewHighLSNMsg(cid, lsn))


@settings(max_examples=200, deadline=None)
@given(messages())
def test_decode_accepts_memoryview(msg):
    buf = encode(msg)
    with memoryview(buf) as view:
        assert decode(view) == msg


@settings(max_examples=200, deadline=None)
@given(record_batches(), st.booleans())
def test_decode_collects_raw_record_images(batch, force):
    """``record_images`` gets each record's exact on-disk wire image."""
    ep, records = batch
    cls = ForceLogMsg if force else WriteLogMsg
    msg = cls("c", ep, records)
    images: list[bytes] = []
    assert decode(encode(msg), images) == msg
    assert images == [encode_stored_record(r) for r in records]


# -- FrameReader: persistent receive buffer -------------------------------


def _stream_reader(data: bytes, chunks: list[int]):
    """A fed-and-closed StreamReader delivering ``data`` in pieces."""
    reader = asyncio.StreamReader()
    pos = 0
    for size in chunks:
        reader.feed_data(data[pos:pos + size])
        pos += size
    reader.feed_data(data[pos:])
    reader.feed_eof()
    return reader


@settings(max_examples=150, deadline=None)
@given(st.lists(messages(), min_size=1, max_size=6), st.data())
def test_frame_reader_round_trips_chunked_stream(msgs, data):
    stream = b"".join(frame(m) for m in msgs)
    cuts = data.draw(st.lists(
        st.integers(min_value=0, max_value=max(len(stream) - 1, 0)),
        max_size=5))

    async def main():
        chunks = []
        pos = 0
        for cut in sorted(cuts):
            chunks.append(cut - pos)
            pos = cut
        reader = FrameReader(_stream_reader(stream, chunks))
        out = []
        while True:
            msg = await reader.read_message()
            if msg is None:
                break
            out.append(msg)
        reader.close()
        return out

    assert asyncio.run(main()) == msgs


def test_frame_reader_rejects_mid_frame_eof():
    msg = WriteLogMsg("c", 1, (StoredRecord(lsn=1, epoch=1, data=b"abc"),))
    stream = frame(msg)[:-1]

    async def main():
        reader = FrameReader(_stream_reader(stream, []))
        with pytest.raises(WireCodecError):
            await reader.read_message()
        reader.close()

    asyncio.run(main())


def test_buffer_pool_recycles_buffers():
    pool = BufferPool(max_buffers=2)
    a = pool.acquire()
    a += b"scratch"
    pool.release(a)
    b = pool.acquire()
    assert b is a and len(b) == 0  # recycled, cleared

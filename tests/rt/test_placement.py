"""Properties of the consistent-hash placement layer.

The placement contract has three legs the paper's Section 5.4 write-set
assignment never needed (it was by hand) but a shared fleet does:

1. **Balance** — at ≥100 vnodes the busiest server carries at most a
   small constant multiple of the idlest one's streams;
2. **Minimal movement** — removing or adding one of M servers remaps
   only ~1/M of single-successor keys, and only clients whose write
   set contained the removed server move at all;
3. **Determinism** — the ring is a pure function of the roster, so two
   processes (here: this test process and a ``repro ring --json``
   subprocess) compute byte-identical assignments.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.rt.placement import (
    ClusterSpec,
    HashRing,
    PlacementDirectory,
    TenantQuota,
    derive_client_seed,
    load_cluster_spec,
    loadgen_client_ids,
    qualified_client_id,
    tenant_of,
)

# -- strategies -------------------------------------------------------------

server_rosters = st.integers(min_value=3, max_value=12).map(
    lambda m: [f"s{i + 1}" for i in range(m)]
)


def _keys(count: int) -> list[str]:
    return [f"t{i % 7}/c{i}" for i in range(count)]


# -- balance ----------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(roster=server_rosters)
def test_ring_balance_within_constant_factor(roster):
    """At 128 vnodes the busiest/idlest stream ratio stays small."""
    ring = HashRing(roster, vnodes=128)
    keys = _keys(200 * len(roster))
    per_server = {sid: 0 for sid in roster}
    for key in keys:
        per_server[ring.successors(key, 1)[0]] += 1
    busiest = max(per_server.values())
    idlest = min(per_server.values())
    assert idlest > 0, "a server got no streams at all"
    assert busiest <= 3 * idlest, per_server


@settings(max_examples=10, deadline=None)
@given(roster=server_rosters)
def test_weighted_ring_balance_at_two_to_one(roster):
    """A server declared capacity 2.0 carries ~2x a unit peer's streams."""
    big = roster[0]
    ring = HashRing(roster, vnodes=128, capacities={big: 2.0})
    keys = _keys(250 * len(roster))
    per_server = {sid: 0 for sid in roster}
    for key in keys:
        per_server[ring.successors(key, 1)[0]] += 1
    assert min(per_server.values()) > 0
    others = [v for sid, v in per_server.items() if sid != big]
    ratio = per_server[big] / (sum(others) / len(others))
    assert 1.3 <= ratio <= 3.0, per_server


def test_capacity_weights_scale_vnodes_only():
    plain = HashRing(["s1", "s2", "s3"], vnodes=64)
    unweighted = HashRing(["s1", "s2", "s3"], vnodes=64, capacities={})
    assert plain._hashes == unweighted._hashes  # empty map: same ring
    ring = HashRing(["s1", "s2", "s3"], vnodes=64, capacities={"s2": 2.0})
    assert ring.vnode_count("s2") == 128
    assert ring.vnode_count("s1") == 64
    with pytest.raises(ConfigurationError):
        HashRing(["s1"], capacities={"s1": 0.0})


# -- minimal movement -------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(roster=server_rosters)
def test_ring_minimal_movement_on_remove(roster):
    """Dropping one of M servers remaps ~1/M of single-successor keys."""
    ring = HashRing(roster)
    smaller = ring.without_server(roster[0])
    keys = _keys(100 * len(roster))
    moved = sum(
        1 for key in keys
        if ring.successors(key, 1) != smaller.successors(key, 1)
    )
    # Expectation is len(keys)/M; allow 2x plus slack for small samples.
    bound = 2 * len(keys) // len(roster) + 10
    assert moved <= bound, (moved, bound)
    # And every key that moved was on the removed server before.
    for key in keys:
        if ring.successors(key, 1) != smaller.successors(key, 1):
            assert ring.successors(key, 1) == [roster[0]]


@settings(max_examples=20, deadline=None)
@given(roster=server_rosters)
def test_ring_add_is_inverse_of_remove(roster):
    ring = HashRing(roster)
    assert ring.without_server(roster[-1]).with_server(
        roster[-1]).server_ids == ring.server_ids


@settings(max_examples=15, deadline=None)
@given(roster=server_rosters)
def test_directory_moves_only_affected_write_sets(roster):
    """A one-server roster change moves ≈ K·N/M clients — exactly
    those whose write set contained the removed server."""
    addrs = {sid: ("127.0.0.1", 4000 + i)
             for i, sid in enumerate(roster)}
    directory = PlacementDirectory(ClusterSpec(servers=addrs, copies=2))
    changed = directory.without_server(roster[0])
    keys = _keys(40 * len(roster))
    moved = directory.moved_clients(changed, keys)
    for cid in keys:
        if cid in moved:
            assert roster[0] in directory.write_set(cid)
        else:
            assert set(directory.write_set(cid)) == \
                set(changed.write_set(cid))
    # E[moved] = K * N / M; bound at 2x plus slack.
    bound = 2 * len(keys) * 2 // len(roster) + 10
    assert len(moved) <= bound, (len(moved), bound)


# -- write-set shape --------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(roster=server_rosters, copies=st.integers(min_value=1, max_value=3))
def test_write_sets_are_distinct_and_sized(roster, copies):
    directory = PlacementDirectory(ClusterSpec(
        servers={sid: ("127.0.0.1", 4000 + i)
                 for i, sid in enumerate(roster)},
        copies=copies,
    ))
    for cid in _keys(50):
        ws = directory.write_set(cid)
        assert len(ws) == copies
        assert len(set(ws)) == copies
        pref = directory.preference(cid)
        assert pref[:copies] == ws
        assert sorted(pref) == sorted(roster)


def test_ring_rejects_impossible_requests():
    ring = HashRing(["s1", "s2"])
    with pytest.raises(ConfigurationError):
        ring.successors("k", 3)
    with pytest.raises(ConfigurationError):
        HashRing([])
    with pytest.raises(ConfigurationError):
        HashRing(["s1"], vnodes=0)


# -- determinism ------------------------------------------------------------


def test_ring_is_deterministic_across_instances():
    a = HashRing(["s1", "s2", "s3"])
    b = HashRing(["s3", "s2", "s1"])  # roster order must not matter
    for key in _keys(64):
        assert a.preference(key) == b.preference(key)
    assert a._hashes == b._hashes


def test_directory_digest_tracks_roster_only():
    addrs = {f"s{i}": ("127.0.0.1", 4000 + i) for i in range(4)}
    a = PlacementDirectory(ClusterSpec(servers=dict(addrs), copies=2))
    b = PlacementDirectory(ClusterSpec(servers=dict(addrs), copies=2))
    assert a.digest() == b.digest()
    assert a.digest() != a.without_server("s0").digest()


def test_cross_process_assignments_match(tmp_path: Path):
    """``repro ring --json`` in a subprocess computes the identical
    directory this process computes — the coordinator-free contract.
    PYTHONHASHSEED differs between the processes, so any reliance on
    the salted builtin ``hash`` would fail here."""
    spec = ClusterSpec(
        servers={f"s{i + 1}": ("127.0.0.1", 4100 + i) for i in range(5)},
        copies=2,
    )
    path = spec.save(str(tmp_path / "placements.json"))
    out = subprocess.run(
        [sys.executable, "-m", "repro", "ring",
         "--cluster-spec", path, "--clients", "24", "--tenants", "3",
         "--json"],
        capture_output=True, text=True, check=True,
        env={"PYTHONPATH": str(Path(__file__).resolve().parents[2] / "src"),
             "PYTHONHASHSEED": "12345", "PATH": "/usr/bin:/bin"},
    )
    remote = json.loads(out.stdout)
    directory = PlacementDirectory(spec)
    ids = loadgen_client_ids(24, tenants=3)
    assert remote["digest"] == directory.digest()
    assert remote["assignments"] == directory.assignments(ids)


# -- spec file round trip ---------------------------------------------------


def test_cluster_spec_round_trip(tmp_path: Path):
    spec = ClusterSpec(
        servers={"s1": ("127.0.0.1", 4001), "s2": ("10.0.0.2", 4002)},
        copies=2, delta=16, vnodes=64,
        quotas={"acme": TenantQuota(max_streams=4,
                                    max_records_per_s=2000.0,
                                    burst_s=0.5),
                "*": TenantQuota(max_streams=100)},
    )
    path = spec.save(str(tmp_path / "placements.json"))
    loaded = load_cluster_spec(path)
    assert loaded.servers == spec.servers
    assert (loaded.copies, loaded.delta, loaded.vnodes) == (2, 16, 64)
    assert loaded.quotas == spec.quotas
    cfg = loaded.config()
    assert (cfg.total_servers, cfg.copies, cfg.delta) == (2, 2, 16)


def test_cluster_spec_round_trips_capacities_and_idle_ttl(tmp_path: Path):
    spec = ClusterSpec(
        servers={"s1": ("127.0.0.1", 4001), "s2": ("10.0.0.2", 4002)},
        copies=2, capacities={"s1": 2.0},
        quotas={"acme": TenantQuota(max_streams=2, idle_ttl_s=30.0)},
    )
    loaded = load_cluster_spec(spec.save(str(tmp_path / "placements.json")))
    assert loaded.capacities == {"s1": 2.0}
    assert loaded.quotas["acme"].idle_ttl_s == 30.0
    # Capacities reshape write sets, so they must be in the digest.
    weighted = PlacementDirectory(loaded)
    assert weighted.digest() == PlacementDirectory(spec).digest()
    plain = PlacementDirectory(ClusterSpec(servers=dict(spec.servers),
                                           copies=2))
    assert weighted.digest() != plain.digest()


def test_cluster_spec_rejects_bad_shapes(tmp_path: Path):
    with pytest.raises(ConfigurationError):
        ClusterSpec(servers={"s1": ("h", 1)}, copies=2)
    with pytest.raises(ConfigurationError):
        ClusterSpec.from_dict({"servers": {"s1": "4001"}})  # no host


# -- tenancy and seeds ------------------------------------------------------


def test_tenant_encoding():
    assert tenant_of("acme/stream-1") == "acme"
    assert tenant_of("plain") == "plain"
    assert qualified_client_id("acme", "s1") == "acme/s1"
    with pytest.raises(ValueError):
        qualified_client_id("a/b", "s1")


def test_loadgen_client_ids_shapes():
    assert loadgen_client_ids(3) == ["lg-1", "lg-2", "lg-3"]
    assert loadgen_client_ids(4, tenants=2) == [
        "t1/lg-1", "t2/lg-2", "t1/lg-3", "t2/lg-4"]


def test_derive_client_seed_deterministic_and_distinct():
    seeds = [derive_client_seed(42, i) for i in range(64)]
    assert seeds == [derive_client_seed(42, i) for i in range(64)]
    assert len(set(seeds)) == 64
    # and not trivially related to neighbouring bases
    assert derive_client_seed(43, 0) not in seeds

"""The network crash-sweep phase (:mod:`repro.harness.netsweep`).

Grammar-level coverage runs in-process; the replay tests drive real
``repro serve`` daemons through a proxy fleet via the public
:func:`~repro.harness.crashsweep.run_crashsweep` entry point, exactly
as ``repro crashsweep --point net...`` / ``--plan ...`` would.
"""

from __future__ import annotations

import random

import pytest

from repro.harness.crashsweep import SweepConfig, run_crashsweep
from repro.harness.netsweep import (
    draw_fuzz_plan,
    parse_composite_plan,
)
from repro.rt.faultfs import FaultSpecError

SITES = {"net.writelog.c2s": 3, "net.forcelog.c2s": 3,
         "net.newhighlsn.s2c": 3, "net.ack.s2c": 3,
         "net.copylog.c2s": 1}


# -- composite plan grammar --------------------------------------------------


def test_composite_plan_routes_all_three_families():
    plan = parse_composite_plan(
        "net.writelog.c2s:1:drop,"
        "s2@log.fsync:2:power-loss,"
        "log.write.record:0:eio,"
        "client.force.ack:0:raise")
    assert [p.spec for p in plan.net] == ["net.writelog.c2s:1:drop"]
    assert [(sid, p.spec) for sid, p in plan.storage] == [
        ("s2", "log.fsync:2:power-loss"),
        ("s1", "log.write.record:0:eio"),  # storage defaults to s1
    ]
    assert [p.spec for p in plan.client] == ["client.force.ack:0:raise"]
    # The spec property round-trips through the parser.
    assert parse_composite_plan(plan.spec).spec == plan.spec


@pytest.mark.parametrize("bad", [
    "",
    "net.writelog.c2s:0:drop,",                    # trailing empty token
    "s1@client.force.ack:0:raise",                 # client fault routed
    "net.writelog.c2s:0:drop,net.writelog.c2s:0:delay",  # dup point
    "@log.fsync:0:power-loss",                     # empty server id
    "net.writelog.c2s:0:power-loss",               # storage action on net
])
def test_composite_plan_rejects_malformed(bad):
    with pytest.raises(FaultSpecError):
        parse_composite_plan(bad)


def test_fuzz_plans_are_seed_deterministic():
    for seed in range(5):
        a = draw_fuzz_plan(random.Random(seed), SITES)
        b = draw_fuzz_plan(random.Random(seed), SITES)
        assert a.spec == b.spec
        total = len(a.net) + len(a.storage) + len(a.client)
        assert 2 <= total <= 4
        # Every drawn plan replays through the parser unchanged.
        assert parse_composite_plan(a.spec).spec == a.spec


# -- replay paths against real daemons ---------------------------------------


def test_replay_single_net_case(tmp_path):
    report = run_crashsweep(SweepConfig(
        root_dir=str(tmp_path), point="net.forcelog.c2s:0:drop"))
    assert len(report.net_cases) == 1
    case = report.net_cases[0]
    assert case.hit, "the armed frame point never fired"
    assert case.ok, case.errors
    assert report.failures == []


def test_replay_partition_switch_case(tmp_path):
    report = run_crashsweep(SweepConfig(
        root_dir=str(tmp_path),
        point="net.newhighlsn.s2c:0:partition-after"))
    assert len(report.net_cases) == 1
    case = report.net_cases[0]
    assert case.hit and case.ok, case.errors


def test_replay_composite_plan(tmp_path):
    report = run_crashsweep(SweepConfig(
        root_dir=str(tmp_path),
        plan="net.writelog.c2s:0:drop,client.force.ack:0:raise"))
    assert len(report.fuzz_cases) == 1
    assert report.fuzz_cases[0].ok, report.fuzz_cases[0].errors


def test_fuzz_smoke_is_green_and_counted(tmp_path):
    report = run_crashsweep(SweepConfig(
        root_dir=str(tmp_path), net_only=True, fuzz=2, seed=0))
    assert len(report.fuzz_cases) == 2
    assert report.failures == []
    assert report.cases_run == 2
    # The net sweep itself was not requested, only fuzz.
    assert report.net_cases == []

"""Tests for the server's append-forest LSN index."""

import random

from repro.core.records import StoredRecord
from repro.server.index import ClientLogIndex, ServerLogIndex
from repro.storage import DiskLogStream, StreamEntry


def entry(client, lsn, epoch=1, data=b"x" * 40):
    return StreamEntry("write", client,
                       StoredRecord(lsn=lsn, epoch=epoch, data=data))


class TestClientLogIndex:
    def test_consecutive_runs_become_range_nodes(self):
        index = ClientLogIndex("c1")
        index.note_records(0, [1, 2, 3, 4])
        index.note_records(1, [5, 6, 7])
        assert len(index.forest) == 2  # one node per track
        for lsn in range(1, 5):
            assert index.locate(lsn) == 0
        for lsn in range(5, 8):
            assert index.locate(lsn) == 1

    def test_gaps_split_runs(self):
        index = ClientLogIndex("c1")
        index.note_records(0, [1, 2, 10, 11])  # NewInterval jump
        assert index.locate(2) == 0
        assert index.locate(10) == 0
        assert index.locate(5) is None

    def test_rewritten_lsn_goes_to_overlay(self):
        index = ClientLogIndex("c1")
        index.note_records(0, [1, 2, 3])
        index.note_records(1, [3, 4])  # recovery copy of 3 + guard 4
        assert index.locate(3) == 1  # overlay wins
        assert index.locate(4) == 1
        assert index.locate(2) == 0
        index.forest.check_invariants()

    def test_unknown_lsn_is_none(self):
        index = ClientLogIndex("c1")
        assert index.locate(99) is None


class TestServerLogIndex:
    def test_on_seal_indexes_all_clients(self):
        index = ServerLogIndex()
        index.on_seal(7, (entry("a", 1), entry("b", 10), entry("a", 2)))
        assert index.locate("a", 1) == 7
        assert index.locate("a", 2) == 7
        assert index.locate("b", 10) == 7
        assert index.locate("ghost", 1) is None
        assert index.tracks_indexed == 1

    def test_install_markers_skipped(self):
        index = ServerLogIndex()
        index.on_seal(0, (
            entry("a", 1),
            StreamEntry("install", "a", None, 2),
        ))
        assert index.locate("a", 1) == 0

    def test_copy_entries_indexed(self):
        index = ServerLogIndex()
        index.on_seal(0, (entry("a", 1),))
        copy = StreamEntry("copy", "a", StoredRecord(lsn=1, epoch=2, data=b"c"))
        index.on_seal(1, (copy,))
        assert index.locate("a", 1) == 1  # the re-copied bytes

    def test_rebuild_matches_live_index(self):
        stream = DiskLogStream(track_bytes=200)
        live = ServerLogIndex()
        stream.on_seal = live.on_seal
        rng = random.Random(0)
        lsn = {"a": 0, "b": 0}
        for _ in range(60):
            client = rng.choice(["a", "b"])
            lsn[client] += 1
            stream.append(entry(client, lsn[client]))
        stream.seal_track()
        rebuilt = ServerLogIndex()
        rebuilt.rebuild(stream)
        for client, high in lsn.items():
            for q in range(1, high + 1):
                assert rebuilt.locate(client, q) == live.locate(client, q)
        assert rebuilt.tracks_indexed == live.tracks_indexed


class TestIndexOnStream:
    def test_seal_callback_fires(self):
        stream = DiskLogStream(track_bytes=150)
        seals = []
        stream.on_seal = lambda addr, entries: seals.append(
            (addr, len(entries)))
        for lsn in range(1, 7):
            stream.append(entry("c", lsn))
        stream.seal_track()
        assert len(seals) >= 2
        assert seals[0][0] == 0

"""Tests for shedding and assignment strategies."""

import random

from repro.server import (
    LeastLoadedAssignment,
    NeverShed,
    NvramBackpressure,
    RandomAssignment,
    StickyAssignment,
)
from repro.sim import Simulator
from repro.storage import NvramBuffer


class TestShedding:
    def test_nvram_backpressure(self):
        nvram = NvramBuffer(Simulator(), capacity_bytes=8 * 1024,
                            reserved_for_intervals=1024)
        policy = NvramBackpressure(nvram)
        assert not policy.should_shed(1000)
        nvram.append(nvram.data_capacity - 500)
        assert policy.should_shed(1000)
        assert not policy.should_shed(400)

    def test_headroom(self):
        nvram = NvramBuffer(Simulator(), capacity_bytes=8 * 1024,
                            reserved_for_intervals=1024)
        policy = NvramBackpressure(nvram, headroom_bytes=2000)
        nvram.append(nvram.data_capacity - 2500)
        assert policy.should_shed(1000)

    def test_never_shed(self):
        assert not NeverShed().should_shed(10**9)


class TestAssignment:
    SERVERS = ["s0", "s1", "s2", "s3"]

    def test_sticky_prefers_given_order(self):
        strategy = StickyAssignment(["s2", "s0"])
        assert strategy.choose(self.SERVERS, 2, {}) == ["s2", "s0"]

    def test_sticky_falls_back_sorted(self):
        strategy = StickyAssignment(["s9"])  # not in pool
        assert strategy.choose(self.SERVERS, 2, {}) == ["s0", "s1"]

    def test_random_respects_n(self):
        strategy = RandomAssignment(random.Random(0))
        chosen = strategy.choose(self.SERVERS, 2, {})
        assert len(chosen) == 2
        assert set(chosen) <= set(self.SERVERS)

    def test_random_varies(self):
        strategy = RandomAssignment(random.Random(0))
        picks = {tuple(strategy.choose(self.SERVERS, 2, {}))
                 for _ in range(20)}
        assert len(picks) > 1

    def test_least_loaded_sorts_by_load(self):
        strategy = LeastLoadedAssignment()
        loads = {"s0": 9.0, "s1": 1.0, "s2": 5.0}
        assert strategy.choose(self.SERVERS, 2, loads) == ["s3", "s1"]

    def test_least_loaded_ties_break_by_name(self):
        strategy = LeastLoadedAssignment()
        assert strategy.choose(self.SERVERS, 3, {}) == ["s0", "s1", "s2"]

"""Tests for the simulated log-server node."""

import random

import pytest

from repro.core.records import StoredRecord
from repro.net import (
    Endpoint,
    ForceLogMsg,
    Lan,
    MissingIntervalMsg,
    NewHighLSNMsg,
    NewIntervalMsg,
    RpcClient,
    RpcReply,
    WriteLogMsg,
)
from repro.net.messages import (
    AckReply,
    CopyLogCall,
    InstallCopiesCall,
    IntervalListCall,
    IntervalListReply,
    ReadLogBackwardCall,
    ReadLogForwardCall,
    ReadLogReply,
)
from repro.server import SimLogServer
from repro.sim import Simulator


class Harness:
    """A raw protocol client talking to one SimLogServer."""

    def __init__(self, loss_prob=0.0, **server_kw):
        self.sim = Simulator()
        self.lan = Lan(self.sim, loss_prob=loss_prob, rng=random.Random(0))
        self.server = SimLogServer(self.sim, self.lan, "srv", **server_kw)
        self.endpoint = Endpoint(self.sim, self.lan, "cli")
        self.conn = None
        self.rpc = None
        self.acks: list[NewHighLSNMsg] = []
        self.missing: list[MissingIntervalMsg] = []

    def connect(self):
        self.conn = yield from self.endpoint.connect("srv")
        self.rpc = RpcClient(self.sim, self.conn)

        def pump():
            while True:
                message = yield self.conn.inbox.get()
                if isinstance(message, RpcReply):
                    self.rpc.dispatch(message)
                elif isinstance(message, NewHighLSNMsg):
                    self.acks.append(message)
                elif isinstance(message, MissingIntervalMsg):
                    self.missing.append(message)

        self.sim.spawn(pump())

    def records(self, lsns, epoch=1, size=50):
        return tuple(
            StoredRecord(lsn=l, epoch=epoch, data=b"d" * size) for l in lsns
        )

    def run(self, until=30):
        self.sim.run(until=until)


class TestWritesAndAcks:
    def test_force_is_acknowledged(self):
        h = Harness()

        def main():
            yield from h.connect()
            yield from h.conn.send(ForceLogMsg(
                client_id="c1", epoch=1, records=h.records([1, 2, 3])))

        h.sim.spawn(main())
        h.run()
        assert [a.new_high_lsn for a in h.acks] == [3]
        assert h.server.store.client_state("c1").high_lsn == 3

    def test_buffered_write_not_acknowledged(self):
        h = Harness()

        def main():
            yield from h.connect()
            yield from h.conn.send(WriteLogMsg(
                client_id="c1", epoch=1, records=h.records([1, 2])))

        h.sim.spawn(main())
        h.run()
        assert h.acks == []
        assert h.server.store.client_state("c1").high_lsn == 2

    def test_cumulative_ack_covers_buffered_prefix(self):
        h = Harness()

        def main():
            yield from h.connect()
            yield from h.conn.send(WriteLogMsg(
                client_id="c1", epoch=1, records=h.records([1, 2])))
            yield from h.conn.send(ForceLogMsg(
                client_id="c1", epoch=1, records=h.records([3])))

        h.sim.spawn(main())
        h.run()
        assert [a.new_high_lsn for a in h.acks] == [3]

    def test_duplicate_force_reacknowledged(self):
        h = Harness()

        def main():
            yield from h.connect()
            msg = ForceLogMsg(client_id="c1", epoch=1,
                              records=h.records([1, 2]))
            yield from h.conn.send(msg)
            yield h.sim.timeout(0.1)
            yield from h.conn.send(ForceLogMsg(
                client_id="c1", epoch=1, records=h.records([1, 2])))

        h.sim.spawn(main())
        h.run()
        assert [a.new_high_lsn for a in h.acks] == [2, 2]
        # no double storage
        assert len(h.server.store.client_state("c1").records) == 2

    def test_gap_triggers_missing_interval(self):
        h = Harness()

        def main():
            yield from h.connect()
            yield from h.conn.send(ForceLogMsg(
                client_id="c1", epoch=1, records=h.records([1, 2])))
            yield from h.conn.send(ForceLogMsg(
                client_id="c1", epoch=1, records=h.records([5, 6])))

        h.sim.spawn(main())
        h.run()
        assert len(h.missing) == 1
        assert (h.missing[0].lo, h.missing[0].hi) == (3, 4)
        # the gapped records were not stored
        assert h.server.store.client_state("c1").high_lsn == 2

    def test_new_interval_then_write_accepted(self):
        h = Harness()

        def main():
            yield from h.connect()
            yield from h.conn.send(ForceLogMsg(
                client_id="c1", epoch=1, records=h.records([1, 2])))
            yield from h.conn.send(NewIntervalMsg(
                client_id="c1", epoch=1, starting_lsn=10))
            yield from h.conn.send(ForceLogMsg(
                client_id="c1", epoch=1, records=h.records([10, 11])))

        h.sim.spawn(main())
        h.run()
        assert h.missing == []
        intervals = h.server.store.client_state("c1").intervals()
        assert [(iv.lo, iv.hi) for iv in intervals] == [(1, 2), (10, 11)]

    def test_overlap_trimmed(self):
        h = Harness()

        def main():
            yield from h.connect()
            yield from h.conn.send(ForceLogMsg(
                client_id="c1", epoch=1, records=h.records([1, 2, 3])))
            # retransmit 2..4: only 4 is new
            yield from h.conn.send(ForceLogMsg(
                client_id="c1", epoch=1, records=h.records([2, 3, 4])))

        h.sim.spawn(main())
        h.run()
        assert h.server.store.client_state("c1").high_lsn == 4
        assert len(h.server.store.client_state("c1").records) == 4


class TestSyncCalls:
    def test_interval_list(self):
        h = Harness()
        result = {}

        def main():
            yield from h.connect()
            yield from h.conn.send(ForceLogMsg(
                client_id="c1", epoch=1, records=h.records([1, 2, 3])))
            reply = yield from h.rpc.call(IntervalListCall(client_id="c1"))
            result["reply"] = reply

        h.sim.spawn(main())
        h.run()
        reply = result["reply"]
        assert isinstance(reply, IntervalListReply)
        assert [(iv.epoch, iv.lo, iv.hi) for iv in reply.intervals] == [(1, 1, 3)]

    def test_read_forward_fills_packet(self):
        h = Harness()
        result = {}

        def main():
            yield from h.connect()
            yield from h.conn.send(ForceLogMsg(
                client_id="c1", epoch=1, records=h.records(range(1, 8))))
            reply = yield from h.rpc.call(
                ReadLogForwardCall(client_id="c1", lsn=3))
            result["reply"] = reply

        h.sim.spawn(main())
        h.run()
        lsns = [r.lsn for r in result["reply"].records]
        assert lsns == [3, 4, 5, 6, 7]

    def test_read_backward_returns_ascending_tail(self):
        h = Harness()
        result = {}

        def main():
            yield from h.connect()
            yield from h.conn.send(ForceLogMsg(
                client_id="c1", epoch=1, records=h.records(range(1, 6))))
            reply = yield from h.rpc.call(
                ReadLogBackwardCall(client_id="c1", lsn=4))
            result["reply"] = reply

        h.sim.spawn(main())
        h.run()
        lsns = [r.lsn for r in result["reply"].records]
        assert lsns == [1, 2, 3, 4]

    def test_read_unknown_returns_empty(self):
        h = Harness()
        result = {}

        def main():
            yield from h.connect()
            reply = yield from h.rpc.call(
                ReadLogForwardCall(client_id="nobody", lsn=1))
            result["reply"] = reply

        h.sim.spawn(main())
        h.run()
        assert isinstance(result["reply"], ReadLogReply)
        assert result["reply"].records == ()

    def test_copy_and_install(self):
        h = Harness()
        result = {}

        def main():
            yield from h.connect()
            yield from h.conn.send(ForceLogMsg(
                client_id="c1", epoch=1, records=h.records([1, 2])))
            copies = (
                StoredRecord(lsn=2, epoch=2, data=b"d" * 50),
                StoredRecord(lsn=3, epoch=2, present=False),
            )
            r1 = yield from h.rpc.call(CopyLogCall(
                client_id="c1", epoch=2, records=copies))
            r2 = yield from h.rpc.call(InstallCopiesCall(
                client_id="c1", epoch=2))
            result["acks"] = (r1, r2)
            # and a write continuing after the install must be accepted
            yield from h.conn.send(ForceLogMsg(
                client_id="c1", epoch=2,
                records=(StoredRecord(lsn=4, epoch=2, data=b"x"),)))

        h.sim.spawn(main())
        h.run()
        assert all(isinstance(a, AckReply) for a in result["acks"])
        table = h.server.store.dump_table("c1")
        assert table == [
            (1, 1, "yes"), (2, 1, "yes"),
            (2, 2, "yes"), (3, 2, "no"), (4, 2, "yes"),
        ]


class TestDurability:
    def test_flusher_writes_tracks(self):
        h = Harness()

        def main():
            yield from h.connect()
            for batch_start in range(1, 200, 7):
                yield from h.conn.send(ForceLogMsg(
                    client_id="c1", epoch=1,
                    records=h.records(range(batch_start, batch_start + 7),
                                      size=100)))

        h.sim.spawn(main())
        h.run(until=60)
        assert h.server.disk.tracks_written > 0
        assert h.server.nvram.total_appended > 0

    def test_crash_restart_preserves_records(self):
        h = Harness()
        result = {}

        def main():
            yield from h.connect()
            yield from h.conn.send(ForceLogMsg(
                client_id="c1", epoch=1, records=h.records([1, 2, 3])))
            yield h.sim.timeout(1.0)
            h.server.crash()
            h.server.restart(lose_nvram=False)
            # reconnect (old connection died with the server)
            yield from h.connect()
            reply = yield from h.rpc.call(IntervalListCall(client_id="c1"))
            result["intervals"] = reply.intervals

        h.sim.spawn(main())
        h.run(until=60)
        assert [(iv.lo, iv.hi) for iv in result["intervals"]] == [(1, 3)]

    def test_crash_without_nvram_loses_unsealed_tail(self):
        h = Harness(nvram_enabled=True)
        result = {}

        def main():
            yield from h.connect()
            # a small write that stays in the open (unsealed) track
            yield from h.conn.send(ForceLogMsg(
                client_id="c1", epoch=1, records=h.records([1, 2])))
            yield h.sim.timeout(0.05)
            h.server.crash()
            h.server.restart(lose_nvram=True)
            yield from h.connect()
            reply = yield from h.rpc.call(IntervalListCall(client_id="c1"))
            result["intervals"] = reply.intervals

        h.sim.spawn(main())
        h.run(until=60)
        # the acknowledged records are GONE: exactly why the paper's
        # footnote demands non-volatile buffering.
        assert result["intervals"] == ()

    def test_force_latency_much_higher_without_nvram(self):
        def force_time(nvram_enabled):
            h = Harness(nvram_enabled=nvram_enabled)
            marks = {}

            def main():
                yield from h.connect()
                start = h.sim.now
                yield from h.conn.send(ForceLogMsg(
                    client_id="c1", epoch=1, records=h.records([1])))
                while not h.acks:
                    yield h.sim.timeout(0.001)
                marks["t"] = h.sim.now - start

            h.sim.spawn(main())
            h.run(until=30)
            return marks["t"]

        assert force_time(False) > 5 * force_time(True)


class TestLoadShedding:
    def test_full_nvram_sheds_messages(self):
        h = Harness(nvram_capacity=8 * 1024)
        h.server.nvram.append(h.server.nvram.data_capacity - 100)

        def main():
            yield from h.connect()
            yield from h.conn.send(ForceLogMsg(
                client_id="c1", epoch=1, records=h.records([1, 2], size=200)))

        h.sim.spawn(main())
        h.run(until=5)
        assert h.server.messages_shed == 1
        assert h.acks == []

"""Tests for per-client gap detection on the server."""

from repro.server import ClientProtocolState


class TestClassifyBatch:
    def test_fresh_client_accepts_anything(self):
        state = ClientProtocolState("c1")
        assert state.classify_batch(5, 9, 1) == "contiguous"

    def test_contiguous_extension(self):
        state = ClientProtocolState("c1")
        state.note_stored(3, 1)
        assert state.classify_batch(4, 6, 1) == "contiguous"

    def test_gap_detected(self):
        state = ClientProtocolState("c1")
        state.note_stored(3, 1)
        assert state.classify_batch(6, 8, 1) == "gap"

    def test_duplicate_detected(self):
        state = ClientProtocolState("c1")
        state.note_stored(5, 1)
        assert state.classify_batch(2, 4, 1) == "duplicate"
        assert state.classify_batch(5, 5, 1) == "duplicate"

    def test_overlap_detected(self):
        state = ClientProtocolState("c1")
        state.note_stored(5, 1)
        assert state.classify_batch(4, 8, 1) == "overlap"

    def test_new_epoch_always_contiguous(self):
        # recovery installs a new epoch wherever it lands
        state = ClientProtocolState("c1")
        state.note_stored(5, 1)
        assert state.classify_batch(3, 4, 2) == "contiguous"

    def test_note_stored_advances(self):
        state = ClientProtocolState("c1")
        state.note_stored(7, 2)
        assert state.expected_lsn == 8
        assert state.current_epoch == 2
        assert state.acked_high == 7

    def test_acked_high_monotone(self):
        state = ClientProtocolState("c1")
        state.note_stored(7, 1)
        state.note_stored(5, 1)  # out-of-order bookkeeping call
        assert state.acked_high == 7

    def test_new_interval_resets_position(self):
        state = ClientProtocolState("c1")
        state.note_stored(3, 1)
        state.start_new_interval(10, 1)
        assert state.classify_batch(10, 12, 1) == "contiguous"
        assert state.classify_batch(8, 9, 1) == "duplicate"

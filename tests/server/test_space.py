"""Tests for log space management (Section 5.3)."""

import pytest

from repro.core.records import StoredRecord
from repro.server import SpaceManager, TruncationPoint
from repro.storage import DiskLogStream, StreamEntry


def write_entry(client, lsn, epoch=1, data=b"x" * 40):
    return StreamEntry(
        "write", client,
        StoredRecord(lsn=lsn, epoch=epoch, data=data),
    )


def build_stream(per_client=20, clients=("c1", "c2"), track_bytes=200):
    stream = DiskLogStream(track_bytes=track_bytes)
    for lsn in range(1, per_client + 1):
        for client in clients:
            stream.append(write_entry(client, lsn))
    stream.seal_track()
    return stream


class TestTruncationPoint:
    def test_invariant(self):
        with pytest.raises(ValueError):
            TruncationPoint(node_recovery_lsn=5, media_recovery_lsn=9)

    def test_declarations_monotone(self):
        manager = SpaceManager(DiskLogStream())
        manager.declare("c1", TruncationPoint(10, 5))
        manager.declare("c1", TruncationPoint(8, 3))  # older info
        point = manager.point_for("c1")
        assert point.node_recovery_lsn == 10
        assert point.media_recovery_lsn == 5

    def test_unknown_client_needs_everything(self):
        manager = SpaceManager(DiskLogStream())
        assert manager.point_for("ghost") == TruncationPoint(1, 1)


class TestSpooling:
    def test_spools_tracks_below_node_recovery_point(self):
        stream = build_stream()
        manager = SpaceManager(stream)
        manager.declare("c1", TruncationPoint(15, 1))
        manager.declare("c2", TruncationPoint(15, 1))
        report = manager.spool_to_offline()
        assert report.spooled_tracks > 0
        assert report.online_tracks + report.spooled_tracks == len(stream.pages)
        # spooled data is preserved in offline storage
        assert sum(len(t) for t in manager.offline_store.values()) > 0

    def test_nothing_spooled_without_declarations(self):
        stream = build_stream()
        manager = SpaceManager(stream)
        report = manager.spool_to_offline()
        assert report.spooled_tracks == 0

    def test_mixed_track_kept_online(self):
        """A track with one still-needed record stays online."""
        stream = DiskLogStream(track_bytes=10_000)
        for lsn in range(1, 5):
            stream.append(write_entry("c1", lsn))
        stream.seal_track()
        manager = SpaceManager(stream)
        manager.declare("c1", TruncationPoint(4, 1))  # record 4 needed
        report = manager.spool_to_offline()
        assert report.spooled_tracks == 0
        assert report.online_tracks == 1

    def test_spooled_still_counts_for_media_recovery(self):
        stream = build_stream()
        manager = SpaceManager(stream)
        manager.declare("c1", TruncationPoint(21, 1))
        manager.declare("c2", TruncationPoint(21, 1))
        manager.spool_to_offline()
        # node recovery reads nothing online; media reads everything
        assert manager.online_entries_for_node_recovery("c1") == 0
        assert manager.entries_for_media_recovery("c1") == 20


class TestDiscarding:
    def test_discards_below_media_point(self):
        stream = build_stream()
        manager = SpaceManager(stream)
        manager.declare("c1", TruncationPoint(21, 21))
        manager.declare("c2", TruncationPoint(21, 21))
        report = manager.discard_unneeded()
        assert report.discarded_tracks == len(stream.pages)
        assert report.online_tracks == 0

    def test_discard_respects_most_conservative_client(self):
        stream = build_stream()
        manager = SpaceManager(stream)
        manager.declare("c1", TruncationPoint(21, 21))
        manager.declare("c2", TruncationPoint(5, 1))  # needs everything
        report = manager.discard_unneeded()
        # every track interleaves both clients, so nothing can go
        assert report.discarded_tracks == 0

    def test_states_reported(self):
        stream = build_stream()
        manager = SpaceManager(stream)
        manager.declare("c1", TruncationPoint(10, 10))
        manager.declare("c2", TruncationPoint(10, 10))
        manager.discard_unneeded()
        states = manager.track_states()
        assert set(states.values()) <= {"online", "offline", "discarded"}
        assert "discarded" in states.values()
        assert "online" in states.values()


class TestCompression:
    def test_counts_superseded_records(self):
        stream = DiskLogStream(track_bytes=10_000)
        stream.append(write_entry("c1", 1, epoch=1))
        stream.append(write_entry("c1", 2, epoch=1))
        # recovery copies record 2 under epoch 3
        stream.append(write_entry("c1", 2, epoch=3))
        manager = SpaceManager(stream)
        assert manager.compress_superseded() == 1
        assert manager.report.compressed_bytes > 0

    def test_no_duplicates_nothing_to_compress(self):
        stream = build_stream()
        manager = SpaceManager(stream)
        assert manager.compress_superseded() == 0


class TestRecoveryCosts:
    def test_dump_bounds_media_recovery_reads(self):
        """The paper's point: dumps limit total log for media recovery."""
        stream = build_stream(per_client=30)
        manager = SpaceManager(stream)
        before = manager.entries_for_media_recovery("c1")
        manager.declare("c1", TruncationPoint(21, 21))  # dump at LSN 20
        after = manager.entries_for_media_recovery("c1")
        assert before == 30
        assert after == 10

    def test_checkpoint_bounds_node_recovery_reads(self):
        stream = build_stream(per_client=30)
        manager = SpaceManager(stream)
        manager.declare("c1", TruncationPoint(26, 1))
        assert manager.online_entries_for_node_recovery("c1") == 5

"""Workloads: ET1/DebitCredit and long design transactions (Section 2)."""

from .et1 import Et1Driver, Et1Params, et1_log_pattern, et1_transaction
from .generators import (
    LongTransactionDriver,
    LongTxnParams,
    PoissonArrivals,
    transactional_mix,
)

__all__ = [
    "Et1Driver",
    "Et1Params",
    "LongTransactionDriver",
    "LongTxnParams",
    "PoissonArrivals",
    "et1_log_pattern",
    "et1_transaction",
    "transactional_mix",
]

"""Workload generators beyond ET1 (Section 2).

"Workstation nodes might execute longer transactions on design or
office automation databases.  These long running transactions are
likely to contain many subtransactions or to use frequent save
points."  The generators here provide that long-transaction shape —
many update records, periodic savepoints, occasional aborts — plus
generic open-loop arrival processes, for the splitting and streaming
ablations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..sim.kernel import Simulator
from ..sim.stats import MetricSet


@dataclass(frozen=True, slots=True)
class LongTxnParams:
    """Shape of a long design-database transaction."""

    updates_min: int = 20
    updates_max: int = 200
    bytes_per_record: int = 300
    savepoint_every: int = 25
    abort_probability: float = 0.05
    keys: int = 5000


class LongTransactionDriver:
    """Long transactions over a log backend (a sim process).

    Each transaction writes many buffered records; a savepoint forces
    the log every ``savepoint_every`` updates (the paper's "frequent
    save points").  A fraction of transactions abort at a random point.
    """

    def __init__(
        self,
        sim: Simulator,
        backend,
        rng: random.Random,
        metrics: MetricSet,
        name: str = "long",
        params: LongTxnParams = LongTxnParams(),
    ):
        self.sim = sim
        self.backend = backend
        self.rng = rng
        self.metrics = metrics
        self.name = name
        self.params = params
        self.completed = 0
        self.aborted = 0

    def run(self, transactions: int):
        for seq in range(transactions):
            start = self.sim.now
            aborted = yield from self.run_one(seq)
            label = "abort" if aborted else "txn"
            self.metrics.latency(f"{self.name}.{label}").observe(
                self.sim.now - start
            )
            if aborted:
                self.aborted += 1
            else:
                self.completed += 1
        return self.completed

    def run_one(self, seq: int):
        p = self.params
        n_updates = self.rng.randint(p.updates_min, p.updates_max)
        will_abort = self.rng.random() < p.abort_probability
        abort_at = self.rng.randint(1, n_updates) if will_abort else -1
        for i in range(n_updates):
            if i == abort_at:
                data = f"long:{seq}:abort:".encode()
                yield from self.backend.log(data, "abort")
                return True
            data = f"long:{seq}:{i}:".encode()
            data += b"d" * max(0, p.bytes_per_record - len(data))
            yield from self.backend.log(data, "update")
            if p.savepoint_every and (i + 1) % p.savepoint_every == 0:
                sp = f"long:{seq}:savepoint:{i}".encode()
                yield from self.backend.log(sp, "savepoint")
                yield from self.backend.force()
        yield from self.backend.log(f"long:{seq}:commit".encode(), "commit")
        yield from self.backend.force()
        return False


def transactional_mix(node, rng: random.Random, params: LongTxnParams):
    """One long transaction over the recovery manager; may abort.

    Used by the splitting ablation: long transactions hold undo
    components in the cache across many updates, which is where
    splitting's savings and limits both show (Section 5.2).
    ``yield from`` me; returns ``True`` if the transaction aborted.
    """
    p = params
    n_updates = rng.randint(p.updates_min, p.updates_max)
    will_abort = rng.random() < p.abort_probability
    abort_at = rng.randint(1, n_updates) if will_abort else -1
    txn = yield from node.rm.begin()
    for i in range(n_updates):
        if i == abort_at:
            yield from node.rm.abort(txn)
            return True
        key = f"obj:{rng.randrange(p.keys)}"
        value = f"v{txn.txid}.{i}"
        yield from node.rm.update(txn, key, value)
    yield from node.rm.commit(txn)
    return False


class PoissonArrivals:
    """Open-loop arrivals: spawn ``job()`` at exponential intervals."""

    def __init__(self, sim: Simulator, rate_per_s: float, rng: random.Random):
        if rate_per_s <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.rate = rate_per_s
        self.rng = rng
        self.spawned = 0

    def run(self, job_factory, duration_s: float):
        """Spawn ``job_factory()`` processes for ``duration_s``."""
        t_end = self.sim.now + duration_s
        while True:
            gap = self.rng.expovariate(self.rate)
            if self.sim.now + gap >= t_end:
                break
            yield self.sim.timeout(gap)
            self.sim.spawn(job_factory(), name=f"arrival-{self.spawned}")
            self.spawned += 1
        return self.spawned

"""The ET1 (DebitCredit) workload with the TABS logging profile.

Section 4.1: "Each ET1 transaction in the TABS prototype writes 700
bytes of log data in seven log records.  Only the final commit record
written by a local ET1 transaction must be forced to disk, preceding
records are buffered in virtual memory until a force occurs or the
buffer fills."

Two drivers are provided:

* :func:`et1_log_pattern` / :class:`Et1Driver` — the raw logging
  profile (six buffered records + one forced commit, 100 bytes each),
  which is what the capacity experiments measure; and
* :func:`et1_transaction` — a *transactional* ET1 over the recovery
  manager (account/teller/branch updates + history insert), used by the
  end-to-end examples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..analysis.constants import (
    ET1_BYTES_PER_RECORD,
    ET1_BYTES_PER_TXN,
    ET1_RECORDS_PER_TXN,
)
from ..sim.kernel import Simulator
from ..sim.stats import MetricSet


@dataclass(frozen=True, slots=True)
class Et1Params:
    """Shape of the ET1 logging profile."""

    records_per_txn: int = ET1_RECORDS_PER_TXN
    bytes_per_record: int = ET1_BYTES_PER_RECORD
    #: branches/tellers/accounts for the transactional variant.
    branches: int = 10
    tellers_per_branch: int = 10
    accounts_per_branch: int = 1000

    @property
    def bytes_per_txn(self) -> int:
        return self.records_per_txn * self.bytes_per_record


def et1_log_pattern(
    params: Et1Params = Et1Params(), txn_seq: int = 0
) -> list[tuple[bytes, str, bool]]:
    """The raw log records of one ET1 transaction.

    Returns ``(data, kind, forced)`` triples: ``records_per_txn − 1``
    buffered update records followed by one forced commit record.
    """
    records: list[tuple[bytes, str, bool]] = []
    for i in range(params.records_per_txn - 1):
        payload = f"et1:{txn_seq}:{i}:".encode()
        payload += b"u" * max(0, params.bytes_per_record - len(payload))
        records.append((payload, "update", False))
    commit = f"et1:{txn_seq}:commit:".encode()
    commit += b"c" * max(0, params.bytes_per_record - len(commit))
    records.append((commit, "commit", True))
    return records


class Et1Driver:
    """Closed-loop ET1 load from one client node (a sim process).

    Runs transactions back to back, pacing arrivals so the long-run
    rate approaches ``tps`` (exponential think time between
    transactions, reduced by each transaction's own service time).
    Observes per-transaction latency in ``<client>.txn`` and counts
    completed transactions.
    """

    def __init__(
        self,
        sim: Simulator,
        backend,
        tps: float,
        rng: random.Random,
        metrics: MetricSet,
        name: str = "et1",
        params: Et1Params = Et1Params(),
    ):
        if tps <= 0:
            raise ValueError("tps must be positive")
        self.sim = sim
        self.backend = backend
        self.tps = tps
        self.rng = rng
        self.metrics = metrics
        self.name = name
        self.params = params
        self.completed = 0
        self.failed = 0
        self._txn_latency = metrics.latency(f"{name}.txn")

    def run(self, duration_s: float):
        """Drive transactions until the clock passes ``duration_s``."""
        t_end = self.sim.now + duration_s
        seq = 0
        while self.sim.now < t_end:
            think = self.rng.expovariate(self.tps)
            yield self.sim.timeout(think)
            if self.sim.now >= t_end:
                break
            start = self.sim.now
            try:
                # run_one() inlined: its frame would ride along on
                # every resumption of the whole logging call tree.
                for data, kind, forced in et1_log_pattern(self.params, seq):
                    yield from self.backend.log(data, kind)
                    if forced:
                        yield from self.backend.force()
            except Exception:
                self.failed += 1
                return
            self.completed += 1
            self._txn_latency.observe(self.sim.now - start)
            seq += 1
        return self.completed

    def run_one(self, seq: int):
        """One ET1 transaction's logging: buffered updates + forced commit."""
        for data, kind, forced in et1_log_pattern(self.params, seq):
            yield from self.backend.log(data, kind)
            if forced:
                yield from self.backend.force()


def et1_transaction(node, params: Et1Params, rng: random.Random):
    """One transactional ET1 over a :class:`~repro.client.node.ClientNode`.

    Debits an account, updates its teller and branch totals, and
    appends a history row — the classic DebitCredit shape.
    ``yield from`` me; returns the committed Transaction.
    """
    branch = rng.randrange(params.branches)
    teller = rng.randrange(params.tellers_per_branch)
    account = rng.randrange(params.accounts_per_branch)
    amount = rng.randrange(-999, 1000)

    def bump(current: str) -> str:
        return str(int(current or "0") + amount)

    rm = node.rm
    txn = yield from rm.begin()
    acct_key = f"account:{branch}:{account}"
    yield from rm.update(txn, acct_key, bump(node.read(acct_key)))
    teller_key = f"teller:{branch}:{teller}"
    yield from rm.update(txn, teller_key, bump(node.read(teller_key)))
    branch_key = f"branch:{branch}"
    yield from rm.update(txn, branch_key, bump(node.read(branch_key)))
    history_key = f"history:{txn.txid}"
    yield from rm.update(txn, history_key, f"{branch} {teller} {account} {amount}")
    yield from rm.commit(txn)
    return txn

"""The transaction-processing client node.

* :mod:`repro.client.log_client` — the network logging process
  (grouping, forces, δ bound, retries, server switching, restart);
* :mod:`repro.client.backends` — one generator interface over the
  direct and simulated logs;
* :mod:`repro.client.recovery_manager` — WAL transactions, page
  cleaning, checkpoints, restart recovery;
* :mod:`repro.client.splitting` — Section 5.2 undo caching;
* :mod:`repro.client.node` — the assembled client node with a
  crash/restart lifecycle.
"""

from .backends import DirectLogBackend, LogBackend, SimLogBackend
from .dumps import Dump, DumpManager
from .epoch_net import NetworkEpochSource
from .log_client import DEFAULT_FORCE_TIMEOUT_S, SimLogClient
from .node import ClientNode
from .recovery_manager import (
    Database,
    RecoveryManager,
    Transaction,
    TransactionAborted,
    TransactionError,
    TxnStatus,
    decode,
    encode_abort,
    encode_begin,
    encode_checkpoint,
    encode_commit,
    encode_redo,
    encode_rollback,
    encode_savepoint,
    encode_undo,
    encode_update,
)
from .splitting import UndoCache, UndoComponent

__all__ = [
    "ClientNode",
    "DEFAULT_FORCE_TIMEOUT_S",
    "Database",
    "Dump",
    "DumpManager",
    "DirectLogBackend",
    "LogBackend",
    "NetworkEpochSource",
    "RecoveryManager",
    "SimLogBackend",
    "SimLogClient",
    "Transaction",
    "TransactionAborted",
    "TransactionError",
    "TxnStatus",
    "UndoCache",
    "UndoComponent",
    "decode",
    "encode_abort",
    "encode_begin",
    "encode_checkpoint",
    "encode_commit",
    "encode_redo",
    "encode_rollback",
    "encode_savepoint",
    "encode_undo",
    "encode_update",
]

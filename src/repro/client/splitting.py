"""Log-record splitting and undo caching (Section 5.2).

"Often, log records written by a recovery manager contain independent
redo and undo components.  The redo component … must be written stably
to the log before transaction commit.  The undo component … does not
need to be written to the log until just before the pages referenced
… are written to non volatile storage.  Frequently transactions commit
before the pages they modify are written."

The :class:`UndoCache` keeps undo components in client virtual memory:

* on **commit**, the transaction's undo components are discarded —
  the log-volume saving splitting exists for;
* on **page clean**, undo components referencing the page are surfaced
  so the recovery manager can log them first (WAL);
* on **abort**, the components are served locally, avoiding log-server
  reads entirely.

A byte budget models the finite cache: when it overflows, the oldest
components are evicted to the log (surfaced via
:meth:`take_overflow`), reproducing the paper's observation that the
saving "depends on the size of the cache, and on the length of
transactions".
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class UndoComponent:
    """One cached undo component: restore ``key`` to ``old``."""

    txid: int
    key: str
    old: str

    @property
    def byte_size(self) -> int:
        # tag + txid + separators, mirroring the encoded "N|…" record
        return 8 + len(self.key) + len(self.old)


class UndoCache:
    """Client-memory cache of undo components, keyed by txn and page."""

    def __init__(self, capacity_bytes: int = 1 << 20):
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._entries: OrderedDict[int, UndoComponent] = OrderedDict()
        self._next_id = 0
        self._by_txn: dict[int, list[int]] = {}
        self._by_key: dict[str, list[int]] = {}
        self.bytes_cached = 0
        # statistics
        self.components_added = 0
        self.components_discarded_on_commit = 0
        self.components_logged_on_clean = 0
        self.components_evicted = 0

    def add(self, txid: int, key: str, old: str) -> None:
        component = UndoComponent(txid, key, old)
        entry_id = self._next_id
        self._next_id += 1
        self._entries[entry_id] = component
        self._by_txn.setdefault(txid, []).append(entry_id)
        self._by_key.setdefault(key, []).append(entry_id)
        self.bytes_cached += component.byte_size
        self.components_added += 1

    # -- removal paths -------------------------------------------------------

    def discard(self, txid: int) -> int:
        """Commit path: drop the transaction's components; return count.

        "When a transaction commits, the undo components of log records
        written by the transaction are flushed from the cache."
        """
        removed = self._remove_ids(self._by_txn.pop(txid, []))
        self.components_discarded_on_commit += len(removed)
        return len(removed)

    def take_for_abort(self, txid: int) -> list[tuple[str, str]]:
        """Abort path: components newest-first, served locally."""
        removed = self._remove_ids(self._by_txn.pop(txid, []))
        removed.sort(key=lambda pair: pair[0], reverse=True)
        return [(c.key, c.old) for _id, c in removed]

    def take_for_clean(self, key: str) -> list[tuple[int, str]]:
        """Clean path: components for ``key`` that must be logged first."""
        removed = self._remove_ids(self._by_key.pop(key, []))
        removed.sort(key=lambda pair: pair[0])
        self.components_logged_on_clean += len(removed)
        return [(c.txid, c.old) for _id, c in removed]

    def take_last(self, txid: int, count: int) -> list[tuple[str, str]]:
        """Partial-rollback path: drop the txn's newest ``count`` components.

        Returns the removed ``(key, old)`` pairs newest-first, matching
        the order a rollback-to-savepoint applies them.
        """
        ids = self._by_txn.get(txid, [])
        removed = self._remove_ids(ids[len(ids) - count:] if count else [])
        removed.sort(key=lambda pair: pair[0], reverse=True)
        return [(c.key, c.old) for _id, c in removed]

    def take_overflow(self) -> list[UndoComponent]:
        """Oldest components past the byte budget (must be logged)."""
        overflow: list[UndoComponent] = []
        while self.bytes_cached > self.capacity_bytes and self._entries:
            entry_id, component = next(iter(self._entries.items()))
            self._remove_ids([entry_id])
            overflow.append(component)
            self.components_evicted += 1
        return overflow

    def _remove_ids(self, ids: list[int]) -> list[tuple[int, UndoComponent]]:
        removed: list[tuple[int, UndoComponent]] = []
        for entry_id in ids:
            component = self._entries.pop(entry_id, None)
            if component is None:
                continue  # already taken via the other index
            self.bytes_cached -= component.byte_size
            removed.append((entry_id, component))
            self._unindex(entry_id, component)
        return removed

    def _unindex(self, entry_id: int, component: UndoComponent) -> None:
        txn_ids = self._by_txn.get(component.txid)
        if txn_ids is not None and entry_id in txn_ids:
            txn_ids.remove(entry_id)
            if not txn_ids:
                del self._by_txn[component.txid]
        key_ids = self._by_key.get(component.key)
        if key_ids is not None and entry_id in key_ids:
            key_ids.remove(entry_id)
            if not key_ids:
                del self._by_key[component.key]

    # -- introspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._by_txn.clear()
        self._by_key.clear()
        self.bytes_cached = 0

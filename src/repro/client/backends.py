"""Log backends: one interface over the direct and simulated logs.

The recovery manager (and everything above it) speaks a tiny
generator-based interface so the same transaction code runs over

* :class:`DirectLogBackend` — the in-process
  :class:`~repro.core.replicated_log.ReplicatedLog` (instant, for unit
  tests and algorithm-level experiments); and
* :class:`SimLogBackend` — the network
  :class:`~repro.client.log_client.SimLogClient` (for the timing
  experiments).

All methods are generators to be driven with ``yield from`` inside a
simulation process; the direct backend simply never yields.
"""

from __future__ import annotations

from typing import Protocol

from ..core.records import LogRecord, LSN
from ..core.replicated_log import ReplicatedLog
from .log_client import SimLogClient


class LogBackend(Protocol):
    """What the recovery manager needs from a log."""

    def log(self, data: bytes, kind: str = "data"): ...
    def force(self): ...
    def read(self, lsn: LSN): ...
    def end_of_log(self) -> LSN: ...
    def iter_backward(self, from_lsn: LSN | None = None): ...


class DirectLogBackend:
    """Adapter: core ReplicatedLog behind the generator interface."""

    def __init__(self, replicated_log: ReplicatedLog):
        self.replicated_log = replicated_log

    def log(self, data: bytes, kind: str = "data"):
        return self.replicated_log.write(data, kind)
        yield  # pragma: no cover - makes this a generator

    def force(self):
        return None
        yield  # pragma: no cover

    def read(self, lsn: LSN):
        return self.replicated_log.read(lsn)
        yield  # pragma: no cover

    def end_of_log(self) -> LSN:
        return self.replicated_log.end_of_log()

    def iter_backward(self, from_lsn: LSN | None = None):
        """Yield (as a plain iterator) present records newest-first."""
        return self.replicated_log.iter_backward(from_lsn)

    def crash(self) -> None:
        self.replicated_log.crash()

    def restart(self):
        self.replicated_log.initialize()
        return None
        yield  # pragma: no cover


class SimLogBackend:
    """Adapter: SimLogClient behind the same interface."""

    def __init__(self, client: SimLogClient):
        self.client = client

    # These return the client's generator directly instead of
    # delegating via ``yield from``: a wrapper frame here would sit on
    # every resumption of every workload process.

    def log(self, data: bytes, kind: str = "data"):
        return self.client.log(data, kind)

    def force(self):
        return self.client.force()

    def read(self, lsn: LSN):
        return self.client.read(lsn)

    def end_of_log(self) -> LSN:
        return self.client.end_of_log()

    def iter_backward(self, from_lsn: LSN | None = None):
        """Generator yielding nothing directly; use scan() instead.

        Backward iteration over the network needs the simulation clock,
        so the recovery manager uses :meth:`scan_backward` for the sim
        backend; provided here for interface completeness.
        """
        raise NotImplementedError(
            "use scan_backward() for the simulated backend"
        )

    def crash(self) -> None:
        self.client.crash()

    def restart(self):
        yield from self.client.restart()

    def scan_backward(self, from_lsn: LSN | None = None):
        """Sim process collecting present records newest-first."""
        from ..core.errors import LSNNotWritten, RecordNotPresent

        records: list[LogRecord] = []
        start = from_lsn if from_lsn is not None else self.client.end_of_log()
        for lsn in range(start, 0, -1):
            try:
                record = yield from self.client.read(lsn)
            except (RecordNotPresent, LSNNotWritten):
                continue
            records.append(record)
        return records

"""Database dumps and media-failure recovery (Section 5.3).

"Periodic dumps can be used to limit the total amount of log data
needed for media failure recovery."

A :class:`Dump` is a consistent copy of the node's *stable* database
tagged with the log position it reflects.  Media recovery after losing
the data disk is: load the newest dump, then replay the log forward
from the dump's LSN (redoing winners, undoing losers), exactly as node
restart recovery does but starting from the dump instead of from an
empty stable store.

The :class:`DumpManager` also computes the truncation points the
server-side :class:`~repro.server.space.SpaceManager` consumes: after
a dump, no log record below the dump LSN is needed for media recovery,
and after a checkpoint with no older active transaction, none below
the checkpoint is needed for node recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.records import LSN
from ..server.space import TruncationPoint
from .recovery_manager import RecoveryManager


@dataclass(frozen=True, slots=True)
class Dump:
    """A consistent snapshot of the stable database.

    ``replay_from`` is the LSN media recovery must replay from — the
    minimum of the position just after the dump and the begin LSN of
    the oldest transaction active when the dump was taken (whose undo
    records must stay readable in case it loses).
    """

    dump_lsn: LSN
    replay_from: LSN
    contents: dict[str, str]

    @property
    def byte_size(self) -> int:
        return sum(len(k) + len(v) for k, v in self.contents.items())


class DumpManager:
    """Takes dumps and drives media recovery for one client node."""

    def __init__(self, rm: RecoveryManager):
        self.rm = rm
        self.dumps: list[Dump] = []

    # -- taking dumps ---------------------------------------------------------

    def take_dump(self):
        """Flush, checkpoint, and snapshot stable storage.

        ``yield from`` me; returns the :class:`Dump`.  The dump is
        consistent because every committed update is first made stable
        (clean_all under WAL) and the checkpoint records the (empty)
        set of relevant in-flight transactions' effects on the
        snapshot: updates from still-active transactions are in the
        cache only, so the stable copy holds committed data plus any
        cleaned-but-uncommitted pages — whose undo records the replay
        will apply, exactly as in node recovery.
        """
        yield from self.rm.clean_all()
        yield from self.rm.checkpoint()
        dump_lsn = self.rm.backend.end_of_log()
        if self.rm.active:
            oldest_active = min(
                txn.begin_lsn for txn in self.rm.active.values()
            )
        else:
            oldest_active = dump_lsn + 1
        dump = Dump(
            dump_lsn=dump_lsn,
            replay_from=min(dump_lsn + 1, oldest_active),
            contents=dict(self.rm.db.stable),
        )
        self.dumps.append(dump)
        return dump

    @property
    def latest(self) -> Dump | None:
        return self.dumps[-1] if self.dumps else None

    # -- media recovery -----------------------------------------------------------

    def media_recovery(self):
        """Recover from a destroyed data disk: dump + forward log replay.

        ``yield from`` me; returns the recovery summary.  Requires at
        least one dump.
        """
        dump = self.latest
        if dump is None:
            raise RuntimeError("media recovery requires a prior dump")
        self.rm.db.stable = dict(dump.contents)
        self.rm.db.cache.clear()
        summary = yield from self.rm.restart_recovery(
            from_lsn=dump.replay_from)
        summary["replayed_from_lsn"] = dump.replay_from
        return summary

    # -- truncation points -----------------------------------------------------------

    def truncation_point(self) -> TruncationPoint:
        """What this node still needs from its replicated log.

        Node recovery needs records from the oldest LSN an active
        transaction wrote (or the end of the log if idle); media
        recovery needs records from the latest dump onward.  With no
        dump, everything is needed.
        """
        if self.rm.active:
            node_lsn = min(txn.begin_lsn for txn in self.rm.active.values())
        else:
            node_lsn = self.rm.backend.end_of_log() + 1
        media_lsn = self.latest.replay_from if self.latest else 1
        return TruncationPoint(
            node_recovery_lsn=max(node_lsn, media_lsn),
            media_recovery_lsn=media_lsn,
        )

"""The complete transaction-processing client node (Section 2).

A :class:`ClientNode` bundles the pieces a processing node carries: the
volatile database cache over stable storage, the recovery manager, and
a replicated-log backend.  Its crash/restart lifecycle exercises the
whole paper: crash loses the cache and the log's volatile state;
restart runs client initialization (Section 3.1.2) followed by
database restart recovery from the log.
"""

from __future__ import annotations

from typing import Iterable

from ..core import (
    DirectServerPort,
    LogServerStore,
    ReplicatedLog,
    ReplicationConfig,
    make_generator,
)
from .backends import DirectLogBackend, SimLogBackend
from .recovery_manager import Database, RecoveryManager, Transaction
from .splitting import UndoCache


class ClientNode:
    """Database + recovery manager + replicated log, with a lifecycle."""

    def __init__(
        self,
        backend,
        db: Database | None = None,
        undo_cache: UndoCache | None = None,
        checkpoint_every: int = 0,
    ):
        self.backend = backend
        self.db = db if db is not None else Database()
        self.rm = RecoveryManager(
            backend, self.db, undo_cache=undo_cache,
            checkpoint_every=checkpoint_every,
        )
        self.crashes = 0

    # -- builders -----------------------------------------------------------

    @classmethod
    def direct(
        cls,
        m: int = 3,
        n: int = 2,
        delta: int = 1,
        client_id: str = "client-0",
        undo_cache: UndoCache | None = None,
        checkpoint_every: int = 0,
    ) -> tuple["ClientNode", dict[str, LogServerStore]]:
        """An in-process node over ``m`` fresh server stores."""
        stores = {f"server-{i}": LogServerStore(f"server-{i}") for i in range(m)}
        ports = {sid: DirectServerPort(store) for sid, store in stores.items()}
        log = ReplicatedLog(
            client_id=client_id,
            ports=ports,
            config=ReplicationConfig(total_servers=m, copies=n, delta=delta),
            epoch_source=make_generator(3),
        )
        log.initialize()
        node = cls(DirectLogBackend(log), undo_cache=undo_cache,
                   checkpoint_every=checkpoint_every)
        return node, stores

    @classmethod
    def simulated(cls, sim_client, undo_cache: UndoCache | None = None,
                  checkpoint_every: int = 0) -> "ClientNode":
        """A node over an (already running) :class:`SimLogClient`."""
        return cls(SimLogBackend(sim_client), undo_cache=undo_cache,
                   checkpoint_every=checkpoint_every)

    # -- convenience transaction driver ------------------------------------------

    def run_transaction(
        self, updates: Iterable[tuple[str, str]], abort: bool = False
    ):
        """Begin, apply ``updates``, then commit (or abort).

        ``yield from`` me; returns the Transaction.
        """
        txn = yield from self.rm.begin()
        for key, value in updates:
            yield from self.rm.update(txn, key, value)
        if abort:
            yield from self.rm.abort(txn)
        else:
            yield from self.rm.commit(txn)
        return txn

    def read(self, key: str) -> str:
        return self.db.read(key)

    # -- lifecycle ------------------------------------------------------------------

    def crash(self) -> None:
        """Node crash: database cache and log volatile state are lost."""
        self.db.crash()
        self.rm.active.clear()
        if self.rm.undo_cache is not None:
            self.rm.undo_cache.clear()
        self.backend.crash()
        self.crashes += 1

    def restart(self):
        """Log client initialization, then database restart recovery."""
        yield from self.backend.restart()
        summary = yield from self.rm.restart_recovery()
        return summary

"""The replicated identifier generator over the network (Appendix I).

The appendix's footnote places generator-state representatives on log
server nodes, so NewID's quorum Read and Write travel over the same
connections as the log traffic.  :class:`NetworkEpochSource` performs
NewID with RPCs issued through a :class:`~repro.client.SimLogClient`'s
connections: read ``⌈(N+1)/2⌉`` representatives, write a value higher
than any read to ``⌈N/2⌉`` of them.

The source also supports the plain ``new_id()`` interface (raising) so
misconfiguration fails loudly rather than silently skipping the
network.
"""

from __future__ import annotations

from ..core.epoch import read_quorum_size, write_quorum_size
from ..core.errors import NotEnoughServers, ServerUnavailable
from ..net.messages import (
    AckReply,
    GeneratorReadCall,
    GeneratorReadReply,
    GeneratorWriteCall,
)


class NetworkEpochSource:
    """NewID by quorum RPCs against representative-hosting servers."""

    def __init__(self, representative_server_ids: list[str]):
        if not representative_server_ids:
            raise NotEnoughServers("generator needs representatives")
        self.rep_ids = list(representative_server_ids)
        self.new_ids_issued = 0

    @property
    def n_reps(self) -> int:
        return len(self.rep_ids)

    def new_id(self) -> int:
        raise NotImplementedError(
            "NetworkEpochSource issues ids over the network; the client "
            "drives it via new_id_net()"
        )

    def new_id_net(self, client):
        """Perform one NewID through ``client``'s connections.

        ``yield from`` me inside a simulation process.  Raises
        :class:`NotEnoughServers` when either quorum cannot be reached.
        """
        values: list[int] = []
        reachable: list[str] = []
        for server_id in self.rep_ids:
            try:
                yield from client._connect(server_id)
                reply = yield from client._rpcs[server_id].call(
                    GeneratorReadCall(client_id=client.client_id))
            except ServerUnavailable:
                continue
            if isinstance(reply, GeneratorReadReply):
                values.append(reply.value)
                reachable.append(server_id)
        need_read = read_quorum_size(self.n_reps)
        if len(values) < need_read:
            raise NotEnoughServers(
                f"generator read quorum needs {need_read}, "
                f"got {len(values)}")
        new_value = max(values) + 1
        written = 0
        need_write = write_quorum_size(self.n_reps)
        for server_id in reachable:
            if written >= need_write:
                break
            try:
                reply = yield from client._rpcs[server_id].call(
                    GeneratorWriteCall(client_id=client.client_id,
                                       value=new_value))
            except ServerUnavailable:
                continue
            if isinstance(reply, AckReply):
                written += 1
        if written < need_write:
            raise NotEnoughServers(
                f"generator write quorum needs {need_write}, "
                f"wrote {written}")
        self.new_ids_issued += 1
        return new_value

"""A write-ahead-logging recovery manager for the client node.

The paper assumes "most transaction processing systems use logging for
recovery [Gray 78]" and builds its load model from the TABS recovery
manager's behaviour: per-transaction update records buffered in client
memory, one forced commit record, undo/redo components (Section 5.2).
This module supplies that client: a small key-value database with a
volatile page cache, transactions with redo/undo logging, commit
forces, aborts, page cleaning under the WAL rule, checkpoints, and
restart recovery driven from the replicated log.

All mutating operations are generators (``yield from`` them) so the
same code runs over the direct and the simulated log backends.

Log record encoding (pipe-separated text; values must not contain
``|``)::

    B|txid                     transaction begin
    U|txid|key|old|new         combined undo/redo update
    R|txid|key|new             redo component (when splitting)
    N|txid|key|old             undo component (when splitting)
    C|txid                     commit (forced)
    A|txid                     abort
    K|txid,txid,...            checkpoint: transactions active at the time
    S|txid|sp                  savepoint (Section 2's long transactions)
    P|txid|sp                  partial rollback to savepoint ``sp``
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

from ..core.errors import NotEnoughServers, NotInitialized
from ..core.records import LSN
from .splitting import UndoCache


class TxnStatus(Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


class TransactionError(Exception):
    """Illegal transaction-state transition or malformed log record."""


class TransactionAborted(TransactionError):
    """A commit lost its log quorum; the transaction was rolled back.

    Raised only when the manager was built with ``reinitialize``: the
    backend has already been re-established, the transaction's volatile
    updates undone, and the caller may simply run the transaction
    again.
    """


# -- record encoding ----------------------------------------------------------


def encode_begin(txid: int) -> bytes:
    return f"B|{txid}".encode()


def encode_update(txid: int, key: str, old: str, new: str) -> bytes:
    _check_fields(key, old, new)
    return f"U|{txid}|{key}|{old}|{new}".encode()


def encode_redo(txid: int, key: str, new: str) -> bytes:
    _check_fields(key, new)
    return f"R|{txid}|{key}|{new}".encode()


def encode_undo(txid: int, key: str, old: str) -> bytes:
    _check_fields(key, old)
    return f"N|{txid}|{key}|{old}".encode()


def encode_commit(txid: int) -> bytes:
    return f"C|{txid}".encode()


def encode_abort(txid: int) -> bytes:
    return f"A|{txid}".encode()


def encode_checkpoint(active_txids: list[int]) -> bytes:
    return ("K|" + ",".join(str(t) for t in active_txids)).encode()


def encode_savepoint(txid: int, sp: int) -> bytes:
    return f"S|{txid}|{sp}".encode()


def encode_rollback(txid: int, sp: int) -> bytes:
    return f"P|{txid}|{sp}".encode()


def _check_fields(*fields: str) -> None:
    for value in fields:
        if "|" in value:
            raise TransactionError(f"field may not contain '|': {value!r}")


def decode(data: bytes) -> tuple[str, ...]:
    """Split a log record back into its fields."""
    parts = data.decode().split("|")
    if not parts or parts[0] not in "BURNCAKSP":
        raise TransactionError(f"unrecognized log record {data!r}")
    return tuple(parts)


# -- the database --------------------------------------------------------------


class Database:
    """A key-value store with a stable copy and a volatile page cache.

    ``stable`` models the node's data disk; ``cache`` the in-memory
    pages.  :meth:`clean` flushes one key to stable storage — the event
    that, under WAL, requires the key's undo components to be in the
    log first (Section 5.2).  :meth:`crash` drops the cache.
    """

    def __init__(self, initial: dict[str, str] | None = None):
        self.stable: dict[str, str] = dict(initial or {})
        self.cache: dict[str, str] = {}
        self.cleans = 0

    def read(self, key: str) -> str:
        if key in self.cache:
            return self.cache[key]
        return self.stable.get(key, "")

    def write_volatile(self, key: str, value: str) -> None:
        self.cache[key] = value

    def dirty_keys(self) -> list[str]:
        return sorted(self.cache)

    def clean_to_stable(self, key: str) -> None:
        """Move one cached page to stable storage (caller enforces WAL)."""
        if key in self.cache:
            self.stable[key] = self.cache.pop(key)
            self.cleans += 1

    def crash(self) -> None:
        self.cache.clear()


# -- transactions -----------------------------------------------------------------


@dataclass
class Transaction:
    """One transaction's volatile bookkeeping."""

    txid: int
    status: TxnStatus = TxnStatus.ACTIVE
    #: (key, old, new, lsn) per update, in order — the in-memory undo
    #: trail used for aborts when records are *not* split.
    updates: list[tuple[str, str, str, LSN]] = field(default_factory=list)
    begin_lsn: LSN = 0
    records_written: int = 0
    bytes_logged: int = 0
    #: savepoint id -> position in ``updates`` at declaration time.
    savepoints: dict[int, int] = field(default_factory=dict)


class RecoveryManager:
    """Begin/update/commit/abort + restart recovery over a log backend.

    With ``undo_cache`` set, update records are *split* (Section 5.2):
    the redo component goes to the log immediately, the undo component
    stays in the cache until the transaction commits (discarded) or its
    page is cleaned (logged first, WAL).  Without it, combined
    undo/redo records are logged.
    """

    def __init__(
        self,
        backend,
        db: Database,
        undo_cache: UndoCache | None = None,
        checkpoint_every: int = 0,
        reinitialize=None,
        max_log_retries: int = 2,
        truncate_on_checkpoint: bool = False,
    ):
        self._txids = itertools.count(1)
        self.backend = backend
        self.db = db
        self.undo_cache = undo_cache
        self.checkpoint_every = checkpoint_every
        #: optional generator callable re-establishing the log backend
        #: after a transient ``NotEnoughServers`` (typically the
        #: client's ``initialize_with_retry``).  ``None`` keeps the
        #: historical fail-fast behaviour.
        self.reinitialize = reinitialize
        self.max_log_retries = max_log_retries
        #: send the post-checkpoint low-water mark to the log servers
        #: (Section 5.3's TruncateLog) whenever the backend supports it.
        self.truncate_on_checkpoint = truncate_on_checkpoint
        self.active: dict[int, Transaction] = {}
        self._since_checkpoint = 0
        #: no record below this LSN is needed for node recovery: the
        #: floor over the last checkpoint, every active transaction's
        #: begin record, and the first update still dirty in the cache.
        self.checkpoint_low_water: LSN = 1
        #: key -> LSN of the update that first dirtied the page since
        #: its last cleaning (ARIES recLSN; redo must replay from here).
        self._dirty_first_lsn: dict[str, LSN] = {}
        self.truncations_requested = 0
        # statistics for the splitting ablation
        self.records_logged = 0
        self.bytes_logged = 0
        self.undo_records_logged = 0
        self.local_aborts = 0
        self.remote_abort_reads = 0
        #: times the backend was re-established mid-operation.
        self.backend_recoveries = 0

    # -- logging helper ---------------------------------------------------------

    def _log(self, data: bytes, kind: str, txn: Transaction | None = None):
        attempt = 0
        while True:
            try:
                lsn = yield from self.backend.log(data, kind)
                break
            except (NotEnoughServers, NotInitialized):
                # Only safe to retry when no earlier record of this
                # transaction could have been lost with the old quorum
                # (a re-established log starts a fresh epoch; records
                # buffered before the loss are masked by its guards).
                retryable = txn is None or txn.records_written == 0
                if (not retryable or self.reinitialize is None
                        or attempt >= self.max_log_retries):
                    raise
                attempt += 1
                yield from self._recover_backend()
        self.records_logged += 1
        self.bytes_logged += len(data)
        if txn is not None:
            txn.records_written += 1
            txn.bytes_logged += len(data)
        return lsn

    def _recover_backend(self):
        """Re-establish the log after it lost its quorum mid-operation."""
        self.backend_recoveries += 1
        yield from self.reinitialize()

    # -- transaction operations ----------------------------------------------------

    def begin(self):
        """Start a transaction; returns the Transaction."""
        txn = Transaction(txid=next(self._txids))
        lsn = yield from self._log(encode_begin(txn.txid), "begin", txn)
        txn.begin_lsn = lsn
        self.active[txn.txid] = txn
        return txn

    def update(self, txn: Transaction, key: str, value: str):
        """Write ``key = value`` under ``txn``; returns the record LSN."""
        self._check_active(txn)
        old = self.db.read(key)
        if self.undo_cache is not None:
            lsn = yield from self._log(
                encode_redo(txn.txid, key, value), "redo", txn
            )
            self.undo_cache.add(txn.txid, key, old)
        else:
            lsn = yield from self._log(
                encode_update(txn.txid, key, old, value), "update", txn
            )
        txn.updates.append((key, old, value, lsn))
        self.db.write_volatile(key, value)
        self._dirty_first_lsn.setdefault(key, lsn)
        return lsn

    def commit(self, txn: Transaction):
        """Write and force the commit record; returns its LSN.

        "Only the final commit record written by a local ET1
        transaction must be forced to disk."
        """
        self._check_active(txn)
        try:
            lsn = yield from self._log(encode_commit(txn.txid), "commit", txn)
            yield from self.backend.force()
        except (NotEnoughServers, NotInitialized):
            if self.reinitialize is None:
                raise
            # The commit never became durable, and the transaction's
            # buffered records died with the old quorum (the new
            # epoch's guards mask any partial write).  Undo volatile
            # state, re-establish the log, and report a clean abort so
            # the caller can rerun the whole transaction.
            for key, old, _new, _lsn in reversed(txn.updates):
                self.db.write_volatile(key, old)
            if self.undo_cache is not None:
                self.undo_cache.discard(txn.txid)
            txn.status = TxnStatus.ABORTED
            del self.active[txn.txid]
            yield from self._recover_backend()
            raise TransactionAborted(
                f"transaction {txn.txid}: commit force lost its log quorum"
            ) from None
        txn.status = TxnStatus.COMMITTED
        del self.active[txn.txid]
        if self.undo_cache is not None:
            self.undo_cache.discard(txn.txid)
        yield from self._maybe_checkpoint()
        return lsn

    def abort(self, txn: Transaction):
        """Undo the transaction's updates and log the abort record.

        With splitting, undo components come from the local cache —
        "the cached log records will speed up aborts … because log
        reads will go to the caches at the clients".  Without it, undo
        values are read back from the log (a remote read per update),
        modelling the abort path splitting exists to avoid.
        """
        self._check_active(txn)
        if self.undo_cache is not None:
            # Undo from the in-memory trail (applying each update's old
            # value newest-first restores the pre-transaction state even
            # with repeated keys).  Components still in the cache make
            # this free; components already cleaned to the log would
            # need a log-server read each — counted, since that is the
            # cost splitting's cache exists to avoid.
            cached = self.undo_cache.take_for_abort(txn.txid)
            for key, old, _new, _lsn in reversed(txn.updates):
                self.db.write_volatile(key, old)
            self.remote_abort_reads += max(0, len(txn.updates) - len(cached))
            self.local_aborts += 1
        else:
            for key, _old, _new, lsn in reversed(txn.updates):
                record = yield from self.backend.read(lsn)
                fields = decode(record.data)
                self.remote_abort_reads += 1
                self.db.write_volatile(key, fields[3])  # the old value
        yield from self._log(encode_abort(txn.txid), "abort", txn)
        txn.status = TxnStatus.ABORTED
        del self.active[txn.txid]

    def savepoint(self, txn: Transaction):
        """Declare a savepoint and force the log; returns its id.

        Section 2: long design transactions "use frequent save points";
        forcing makes everything up to the savepoint durable, so a
        later partial rollback is itself recoverable.
        """
        self._check_active(txn)
        sp = len(txn.savepoints) + 1
        txn.savepoints[sp] = len(txn.updates)
        yield from self._log(encode_savepoint(txn.txid, sp), "savepoint", txn)
        yield from self.backend.force()
        return sp

    def rollback_to_savepoint(self, txn: Transaction, sp: int):
        """Undo the transaction's updates back to savepoint ``sp``.

        The transaction stays active and may continue updating.  The
        rollback is logged (``P`` record) so restart recovery voids the
        rolled-back updates.
        """
        self._check_active(txn)
        if sp not in txn.savepoints:
            raise TransactionError(
                f"transaction {txn.txid} has no savepoint {sp}")
        position = txn.savepoints[sp]
        rolled_back = txn.updates[position:]
        for key, old, _new, _lsn in reversed(rolled_back):
            self.db.write_volatile(key, old)
        del txn.updates[position:]
        if self.undo_cache is not None:
            self.undo_cache.take_last(txn.txid, len(rolled_back))
        # savepoints declared after sp are gone
        for later in [s for s, pos in txn.savepoints.items() if pos > position]:
            del txn.savepoints[later]
        yield from self._log(encode_rollback(txn.txid, sp), "rollback", txn)
        return len(rolled_back)

    def _check_active(self, txn: Transaction) -> None:
        if txn.status is not TxnStatus.ACTIVE or txn.txid not in self.active:
            raise TransactionError(
                f"transaction {txn.txid} is {txn.status.value}, not active"
            )

    # -- page cleaning (WAL + splitting rule) ----------------------------------------

    def clean_page(self, key: str):
        """Flush one page to stable storage, honouring WAL.

        "If a page referenced by an undo component of a log record in
        the cache is scheduled for cleaning, the undo component must be
        sent to log servers first."
        """
        if self.undo_cache is not None:
            for txid, old in self.undo_cache.take_for_clean(key):
                yield from self._log(encode_undo(txid, key, old), "undo")
                self.undo_records_logged += 1
        yield from self.backend.force()
        self.db.clean_to_stable(key)
        self._dirty_first_lsn.pop(key, None)

    def clean_all(self):
        for key in self.db.dirty_keys():
            yield from self.clean_page(key)

    # -- checkpoints -------------------------------------------------------------------

    def _maybe_checkpoint(self):
        if self.checkpoint_every <= 0:
            return
        self._since_checkpoint += 1
        if self._since_checkpoint >= self.checkpoint_every:
            yield from self.checkpoint()
            self._since_checkpoint = 0

    def checkpoint(self):
        """Log the set of active transactions (a fuzzy checkpoint).

        Returns the checkpoint record's LSN and refreshes
        :attr:`checkpoint_low_water`: restart recovery needs nothing
        below min(checkpoint LSN, oldest active transaction's begin
        record, oldest update still dirty in the page cache).  "Client
        recovery managers can use checkpoints and other mechanisms to
        limit the online log storage required for node recovery"
        (Section 5.3) — with ``truncate_on_checkpoint`` the new floor
        is sent to the log servers as a TruncateLog round.
        """
        record = encode_checkpoint(sorted(self.active))
        lsn = yield from self._log(record, "checkpoint")
        yield from self.backend.force()
        floors = [lsn]
        floors += [t.begin_lsn for t in self.active.values()]
        floors += list(self._dirty_first_lsn.values())
        self.checkpoint_low_water = max(self.checkpoint_low_water,
                                        min(floors))
        if self.truncate_on_checkpoint \
                and hasattr(self.backend, "truncate"):
            yield from self.backend.truncate(self.checkpoint_low_water)
            self.truncations_requested += 1
        return lsn

    # -- restart recovery ----------------------------------------------------------------

    def restart_recovery(self, from_lsn: LSN = 1):
        """Rebuild the stable database from the log after a node crash.

        A forward scan classifies transactions (winners committed,
        losers everything else), replays winners' redo components in
        LSN order onto stable storage, and undoes any loser updates
        that page cleaning had already propagated.  Returns a summary
        dict (winners, losers, records scanned).

        ``from_lsn`` bounds the scan: media recovery replays from the
        dump's position instead of from the beginning (Section 5.3).
        """
        records = yield from self._collect_log_forward(from_lsn)
        winners: set[int] = set()
        losers: set[int] = set()
        for fields in records:
            tag = fields[0]
            if tag == "B":
                losers.add(int(fields[1]))
            elif tag == "C":
                txid = int(fields[1])
                winners.add(txid)
                losers.discard(txid)
            elif tag == "A":
                losers.add(int(fields[1]))
        # One forward pass determines, per key: the last writer, the
        # last *committed* value, and the value the key held before
        # each transaction first touched it.  The final state rule:
        #
        # * last writer is a winner  -> apply its value (redo);
        # * last writer is a loser   -> apply the last committed value
        #   seen in the scan, falling back to the loser's logged
        #   before-image (they agree under serial execution; the
        #   before-image covers media recovery where the committing
        #   update predates the scanned suffix), and if neither exists
        #   the key's stable contents were never contaminated.
        # Resolve partial rollbacks first: an update logged after a
        # savepoint that was later rolled back (P record) is void.
        sp_positions: dict[tuple[int, int], int] = {}
        txn_update_indices: dict[int, list[int]] = {}
        void: set[int] = set()
        for i, fields in enumerate(records):
            tag = fields[0]
            if tag in ("U", "R"):
                txn_update_indices.setdefault(int(fields[1]), []).append(i)
            elif tag == "S":
                txid, sp = int(fields[1]), int(fields[2])
                sp_positions[(txid, sp)] = len(
                    txn_update_indices.get(txid, []))
            elif tag == "P":
                txid, sp = int(fields[1]), int(fields[2])
                position = sp_positions.get((txid, sp), 0)
                indices = txn_update_indices.get(txid, [])
                void.update(indices[position:])
                del indices[position:]

        # last_value[key] = (value, txid, is_void): the key's last
        # update record, whether it survives, and who wrote it.
        last_value: dict[str, tuple[str, int, bool]] = {}
        last_committed: dict[str, str] = {}
        first_old: dict[tuple[int, str], str] = {}
        for i, fields in enumerate(records):
            tag = fields[0]
            if tag == "U":
                txid, key, old, new = (int(fields[1]), fields[2],
                                       fields[3], fields[4])
                first_old.setdefault((txid, key), old)
                last_value[key] = (new, txid, i in void)
            elif tag == "R":
                txid, key, new = int(fields[1]), fields[2], fields[3]
                last_value[key] = (new, txid, i in void)
            elif tag == "N":
                # a split undo component, logged because the page was
                # cleaned while the transaction was active
                txid, key, old = int(fields[1]), fields[2], fields[3]
                first_old.setdefault((txid, key), old)
        for i, fields in enumerate(records):
            if (fields[0] in ("U", "R") and i not in void
                    and int(fields[1]) in winners):
                key = fields[2]
                last_committed[key] = fields[4] if fields[0] == "U" else fields[3]
        for key, (value, txid, is_void) in last_value.items():
            if txid in winners and not is_void:
                self.db.stable[key] = value
                continue
            if key in last_committed:
                self.db.stable[key] = last_committed[key]
                continue
            old = first_old.get((txid, key))
            if old is not None:
                self.db.stable[key] = old
        self.active.clear()
        if self.undo_cache is not None:
            self.undo_cache.clear()
        # never reuse a transaction id that appears in the log: a new
        # transaction colliding with an old committed one would be
        # misclassified by a later recovery.
        seen_txids = {int(f[1]) for f in records if f[0] in "BCA"}
        if seen_txids:
            self._txids = itertools.count(max(seen_txids) + 1)
        return {
            "winners": len(winners),
            "losers": len(losers),
            "records_scanned": len(records),
        }

    def _collect_log_forward(self, from_lsn: LSN = 1):
        """Gather decoded records oldest-first from either backend."""
        if hasattr(self.backend, "scan_backward"):
            raw = yield from self.backend.scan_backward()
            raw.reverse()
            return [decode(r.data) for r in raw
                    if r.lsn >= from_lsn and _is_txn_record(r.data)]
        collected = [
            decode(r.data)
            for r in self.backend.iter_backward()
            if r.lsn >= from_lsn and _is_txn_record(r.data)
        ]
        collected.reverse()
        return collected


def _is_txn_record(data: bytes) -> bool:
    return bool(data) and chr(data[0]) in "BURNCAKSP"

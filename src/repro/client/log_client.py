"""The client node's logging process (Sections 3.1.2 and 4.2).

:class:`SimLogClient` is the network-facing twin of
:class:`~repro.core.replicated_log.ReplicatedLog`: the same replication
algorithm, run over the Figure 4-1 protocol instead of direct calls.

Behaviours taken from the paper:

* **Grouping** — records are "buffered in virtual memory until a force
  occurs or the buffer fills"; a force sends the whole group in as few
  packets as possible, with only the last packet marked ForceLog (one
  acknowledgment per force).
* **The δ bound** — "the client must limit the number of records
  contained in unacknowledged WriteLog and ForceLog messages to ensure
  that no more than δ log records are partially written"; the client
  keeps every unacknowledged record in memory so it can resend.
* **Retry and switch** — a ForceLog without a response is retried "a
  number of times before moving to a different server"; on a switch the
  client sends NewInterval and resends everything not yet durable on
  ``N`` servers.
* **MissingInterval handling** — resend the missing records, or send
  NewInterval when they are already durable elsewhere.
* **Restart** — the client initialization procedure (interval lists
  from ``M − N + 1`` servers, fresh epoch, CopyLog of the last δ
  records plus δ not-present guards, InstallCopies), performed with
  synchronous RPCs.
"""

from __future__ import annotations

import random

from ..analysis.constants import DEFAULT_MIPS, CpuModel
from ..core.config import ReplicationConfig
from ..core.errors import (
    LSNNotWritten,
    NotEnoughServers,
    NotInitialized,
    RecordNotPresent,
    ServerUnavailable,
    StaleEpoch,
)
from ..core.intervals import MergedIntervalMap, ServerIntervals
from ..core.records import Epoch, LogRecord, LSN, StoredRecord
from ..core.retry import RetryPolicy
from ..net.messages import (
    AckReply,
    CopyLogCall,
    ForceLogMsg,
    InstallCopiesCall,
    IntervalListCall,
    IntervalListReply,
    MissingIntervalMsg,
    NewHighLSNMsg,
    NewIntervalMsg,
    ReadLogForwardCall,
    ReadLogReply,
    WriteLogMsg,
)
from ..net.packet import PACKET_PAYLOAD_BYTES
from ..net.rpc import RpcClient, RpcReply
from ..net.transport import Connection, Endpoint
from ..sim.kernel import Simulator
from ..sim.resources import Resource
from ..sim.stats import MetricSet
from ..server.load import StickyAssignment

#: Wire overhead per record inside a write message.
_RECORD_OVERHEAD = 16
#: How long a force waits for acknowledgments before retrying.
DEFAULT_FORCE_TIMEOUT_S = 0.25


class SimLogClient:
    """The single logging process of one transaction-processing node."""

    def __init__(
        self,
        sim: Simulator,
        network,
        client_id: str,
        server_ids: list[str],
        config: ReplicationConfig,
        epoch_source,
        mips: float = DEFAULT_MIPS,
        metrics: MetricSet | None = None,
        assignment=None,
        force_timeout_s: float = DEFAULT_FORCE_TIMEOUT_S,
        rng: random.Random | None = None,
        cpu_model: CpuModel | None = None,
        retry_policy: RetryPolicy | None = None,
        migrate_after_s: float | None = None,
    ):
        if len(server_ids) != config.total_servers:
            raise NotEnoughServers(
                f"config names M={config.total_servers} servers, "
                f"got {len(server_ids)}"
            )
        self.sim = sim
        self.client_id = client_id
        self.server_ids = list(server_ids)
        self.config = config
        self.epoch_source = epoch_source
        self.endpoint = Endpoint(sim, network, client_id)
        self.cpu = Resource(sim, capacity=1, name=f"{client_id}.cpu")
        self.cpu_model = cpu_model if cpu_model is not None else CpuModel(mips)
        self.metrics = metrics if metrics is not None else MetricSet()
        self.assignment = assignment if assignment is not None else StickyAssignment()
        self.force_timeout_s = force_timeout_s
        # a string seed hashes identically across processes (unlike
        # hash(str), which is salted), so default-seeded clients retry
        # with the same jitter in every run.
        self.rng = rng if rng is not None else random.Random(f"{client_id}:log-client")
        #: backoff schedule between force retries and initialization
        #: attempts; jitter draws from ``self.rng`` happen only on
        #: failure paths, so failure-free runs stay bit-identical.
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        #: write-set migration threshold (§5.4): a write-set server
        #: unresponsive for this long is replaced via NewInterval on a
        #: fresh server instead of being retried further.  ``None``
        #: disables the time-based trigger (retry counts still apply).
        self.migrate_after_s = migrate_after_s
        #: server -> sim time of the first unanswered attempt since the
        #: last success; cleared by any acknowledgment.
        self._suspect_since: dict[str, float] = {}

        # connections
        self._conns: dict[str, Connection] = {}
        self._rpcs: dict[str, RpcClient] = {}
        # volatile replication state
        self._merged: MergedIntervalMap | None = None
        self._epoch: Epoch = 0
        self._next_lsn: LSN = 1
        self._write_set: list[str] = []
        self._buffer: list[StoredRecord] = []
        self._unacked: dict[LSN, StoredRecord] = {}
        self._acked: dict[str, LSN] = {}
        self._ack_waiters: dict[str, list[tuple[LSN, object]]] = {}
        self._missing: dict[str, tuple[LSN, LSN]] = {}
        self._sent_high: dict[str, LSN] = {}
        self._server_loads: dict[str, float] = {}
        # statistics
        self.forces = 0
        self.server_switches = 0
        self.recoveries = 0
        # hot-path caches: the per-packet CPU charge is fixed, and the
        # per-send counter / per-force latency lookups otherwise cost a
        # qualified-name f-string plus a dict probe each time.
        self._packet_time = self.cpu_model.packet_time()
        self._msgs_out = self.metrics.counter(f"{client_id}.msgs_out")
        self._force_latency = self.metrics.latency(f"{client_id}.force")
        #: running byte size of ``_buffer`` (records + per-record wire
        #: overhead), maintained incrementally so ``log`` does not
        #: re-sum the buffer on every append.
        self._buffer_bytes = 0

    # -- connection plumbing -------------------------------------------------

    def _connect(self, server_id: str):
        """Ensure a live connection + RPC client to ``server_id``."""
        conn = self._conns.get(server_id)
        if conn is not None and conn.open:
            return conn
        conn = yield from self.endpoint.connect(server_id)
        self._conns[server_id] = conn
        self._rpcs[server_id] = RpcClient(self.sim, conn)
        self.sim.spawn(self._pump(server_id, conn),
                       name=f"{self.client_id}.pump.{server_id}")
        return conn

    def _pump(self, server_id: str, conn: Connection):
        """Dispatch inbound traffic from one server."""
        sim = self.sim
        cpu = self.cpu
        inbox_get = conn.inbox.get
        packet_time = self._packet_time
        while conn.open:
            message = yield inbox_get()
            # cpu.use() inlined — this loop runs once per inbound packet.
            yield cpu.acquire()
            try:
                yield sim.timeout(packet_time)
            finally:
                cpu.release()
                cpu.total_served += 1
            # acks dominate inbound traffic (one per force); RPC
            # replies only flow during initialization and recovery.
            if type(message) is NewHighLSNMsg:
                self._note_ack(server_id, message.new_high_lsn)
            elif isinstance(message, RpcReply):
                rpc = self._rpcs.get(server_id)
                if rpc is not None:
                    rpc.dispatch(message)
            elif isinstance(message, MissingIntervalMsg):
                self._missing[server_id] = (message.lo, message.hi)

    def _note_ack(self, server_id: str, high: LSN) -> None:
        prev = self._acked.get(server_id, 0)
        if high <= prev:
            return
        self._acked[server_id] = high
        if self._suspect_since:
            self._suspect_since.pop(server_id, None)
        waiters = self._ack_waiters.get(server_id, [])
        still = []
        for threshold, event in waiters:
            if high >= threshold and not event.triggered:
                event.succeed(high)
            elif not event.triggered:
                still.append((threshold, event))
        self._ack_waiters[server_id] = still
        self._gc_unacked()

    def durable_through(self) -> LSN:
        """Highest LSN acknowledged by *all* write-set servers."""
        ws = self._write_set
        if not ws:
            return 0
        # plain loop: called once per log/force/ack, and a genexpr-min
        # over a two-element write set costs ~3x as much.
        get = self._acked.get
        low = get(ws[0], 0)
        for i in range(1, len(ws)):
            v = get(ws[i], 0)
            if v < low:
                low = v
        return low

    def _gc_unacked(self) -> None:
        unacked = self._unacked
        if not unacked:
            return
        durable = self.durable_through()
        # records are buffered in LSN order, so the dict's first key is
        # its minimum: nothing to collect unless it is durable now.
        if next(iter(unacked)) > durable:
            return
        for lsn in [l for l in unacked if l <= durable]:
            del unacked[lsn]

    # -- client initialization (restart procedure) ------------------------------

    def initialize(self):
        """Run the restart procedure over the network; ``yield from`` me."""
        # 1. interval lists from every reachable server
        reports: list[ServerIntervals] = []
        for server_id in self.server_ids:
            try:
                yield from self._connect(server_id)
                reply = yield from self._rpcs[server_id].call(
                    IntervalListCall(client_id=self.client_id)
                )
            except ServerUnavailable:
                continue
            if isinstance(reply, IntervalListReply):
                reports.append(ServerIntervals(server_id, reply.intervals))
        if len(reports) < self.config.init_quorum:
            raise NotEnoughServers(
                f"client init needs {self.config.init_quorum} interval "
                f"lists, got {len(reports)}"
            )
        merged = MergedIntervalMap.merge(reports)
        # 2. a fresh epoch — over the network when the generator's
        # representatives live on log-server nodes (Appendix I)
        if hasattr(self.epoch_source, "new_id_net"):
            new_epoch = yield from self.epoch_source.new_id_net(self)
        else:
            new_epoch = self.epoch_source.new_id()
        if new_epoch <= merged.highest_epoch():
            raise StaleEpoch("generator", new_epoch, merged.highest_epoch())
        # 3. read the last δ records
        high = merged.high_lsn() or 0
        copy_lsns = [
            lsn for lsn in range(max(1, high - self.config.delta + 1), high + 1)
            if lsn in merged
        ]
        staged: list[StoredRecord] = []
        for lsn in copy_lsns:
            record = yield from self._read_stored(merged, lsn)
            staged.append(StoredRecord(
                lsn=record.lsn, epoch=new_epoch, present=record.present,
                data=record.data, kind=record.kind,
            ))
        staged += [
            StoredRecord(lsn=high + i, epoch=new_epoch, present=False, kind="guard")
            for i in range(1, self.config.delta + 1)
        ]
        # 4. CopyLog + InstallCopies on N servers
        candidates = self.assignment.choose(
            self.server_ids, len(self.server_ids), self._server_loads
        )
        installed: list[str] = []
        for server_id in candidates:
            if len(installed) >= self.config.copies:
                break
            try:
                yield from self._connect(server_id)
                rpc = self._rpcs[server_id]
                for chunk in _pack_records(staged):
                    reply = yield from rpc.call(CopyLogCall(
                        client_id=self.client_id, epoch=new_epoch, records=chunk,
                    ))
                    if not isinstance(reply, AckReply):
                        raise ServerUnavailable(server_id, "copy rejected")
                reply = yield from rpc.call(InstallCopiesCall(
                    client_id=self.client_id, epoch=new_epoch,
                ))
                if not isinstance(reply, AckReply):
                    raise ServerUnavailable(server_id, "install rejected")
            except ServerUnavailable:
                continue
            installed.append(server_id)
        if len(installed) < self.config.copies:
            raise NotEnoughServers(
                f"recovery installed copies on {len(installed)} servers; "
                f"{self.config.copies} required"
            )
        for record in staged:
            for server_id in installed:
                merged.note(record.lsn, new_epoch, server_id)
        # 5. adopt the new state
        self._merged = merged
        self._epoch = new_epoch
        self._next_lsn = (merged.high_lsn() or 0) + 1
        self._write_set = installed
        guard_high = merged.high_lsn() or 0
        for server_id in installed:
            self._acked[server_id] = guard_high
            self._sent_high[server_id] = guard_high
        self._buffer.clear()
        self._buffer_bytes = 0
        self._unacked.clear()
        self.recoveries += 1

    def _read_stored(self, merged: MergedIntervalMap, lsn: LSN) -> StoredRecord:
        """Fetch one stored record (present flag intact) for recovery."""
        for server_id in merged.servers_for(lsn):
            try:
                yield from self._connect(server_id)
                reply = yield from self._rpcs[server_id].call(
                    ReadLogForwardCall(client_id=self.client_id, lsn=lsn)
                )
            except ServerUnavailable:
                continue
            if isinstance(reply, ReadLogReply) and reply.records:
                first = reply.records[0]
                if first.lsn == lsn:
                    return first
        raise NotEnoughServers(f"no reachable server stores LSN {lsn}")

    # -- logging -------------------------------------------------------------------

    @property
    def initialized(self) -> bool:
        return self._merged is not None

    def log(self, data: bytes, kind: str = "data"):
        """Buffer one record; returns its LSN.  ``yield from`` me.

        Sends nothing unless the buffer has outgrown a packet, in which
        case the full packets are streamed as asynchronous WriteLog
        messages.  Blocks (forces) if the δ bound would be exceeded.
        """
        if self._merged is None:
            raise NotInitialized("client log not initialized")
        while self._next_lsn - self.durable_through() > self.config.delta:
            yield from self.force()
        lsn = self._next_lsn
        self._next_lsn += 1
        record = StoredRecord(lsn=lsn, epoch=self._epoch, present=True,
                              data=data, kind=kind)
        self._buffer.append(record)
        self._buffer_bytes += len(data) + _RECORD_OVERHEAD
        self._unacked[lsn] = record
        if self._buffer_bytes > PACKET_PAYLOAD_BYTES:
            yield from self._stream_buffer()
        return lsn

    def _stream_buffer(self):
        """Send all full packets in the buffer as WriteLog messages."""
        chunks = _pack_records(self._buffer)
        # keep the last (possibly partial) chunk buffered
        to_send, self._buffer = chunks[:-1], list(chunks[-1])
        self._buffer_bytes = _records_size(self._buffer)
        for chunk in to_send:
            for server_id in list(self._write_set):
                yield from self._send_write(server_id, chunk, forced=False)

    def force(self):
        """Flush the buffer and wait until N servers acknowledge.

        This is the latency the transaction layer sees at commit; it is
        recorded in the ``<client>.force`` latency metric.
        """
        if self._merged is None:
            raise NotInitialized("client log not initialized")
        start = self.sim.now
        high = self._next_lsn - 1
        self._buffer.clear()  # records remain in _unacked for resends
        self._buffer_bytes = 0
        if high == 0:
            return
        pending = [s for s in self._write_set
                   if self._acked.get(s, 0) < high]
        if not pending and not self._buffer:
            return
        done = []
        acked_get = self._acked.get
        sim = self.sim
        for server_id in list(self._write_set):
            if acked_get(server_id, 0) >= high:
                done.append(server_id)
                continue
            # _force_one (and its _await_ack) inlined; the methods stay
            # for the server-switch path.  The two delegation frames
            # otherwise tax every yield of every force.
            ok = False
            for _attempt in range(self.config.write_retries + 1):
                low = max(acked_get(server_id, 0),
                          self._sent_high.get(server_id, 0)) + 1
                # On a retry, resend everything unacknowledged.
                if _attempt > 0:
                    low = acked_get(server_id, 0) + 1
                records = [self._unacked[lsn]
                           for lsn in range(low, high + 1)
                           if lsn in self._unacked]
                try:
                    if records:
                        chunks = _pack_records(records)
                        last_i = len(chunks) - 1
                        for i, chunk in enumerate(chunks):
                            yield from self._send_write(server_id, chunk,
                                                        forced=i == last_i)
                    else:
                        # nothing new to send; solicit an ack by
                        # resending the highest record as a ForceLog.
                        probe = self._unacked.get(high)
                        if probe is None:
                            ok = acked_get(server_id, 0) >= high
                            break
                        yield from self._send_write(server_id, (probe,),
                                                    forced=True)
                except ServerUnavailable:
                    self._suspect_since.setdefault(server_id, sim.now)
                    break
                if acked_get(server_id, 0) >= high:
                    ok = True
                else:
                    event = sim.event("ack-wait")
                    entry = (high, event)
                    waiters = self._ack_waiters.setdefault(server_id, [])
                    waiters.append(entry)
                    yield sim.any_of(
                        [event, sim.timeout(self.force_timeout_s)])
                    if event.triggered:
                        # the ack won the race: _note_ack saw the
                        # watermark reach `high`.
                        ok = True
                    else:
                        # the timeout won.  Withdraw the waiter, then
                        # yield once more so an ack already delivered
                        # at this same instant (queued behind the
                        # timeout) is counted before deciding on a
                        # full resend.
                        try:
                            waiters.remove(entry)
                        except ValueError:
                            pass
                        yield sim.timeout(0)
                        ok = acked_get(server_id, 0) >= high
                if ok:
                    self._suspect_since.pop(server_id, None)
                    self._server_loads[server_id] = sim.now  # freshness
                    break
                self._suspect_since.setdefault(server_id, sim.now)
                # handle a MissingInterval the server may have raised
                missing = self._missing.pop(server_id, None)
                if missing is not None:
                    yield from self._handle_missing(server_id, missing)
                if self._past_migration_threshold(server_id):
                    break  # stop retrying a server held down too long
                if _attempt < self.config.write_retries:
                    yield sim.timeout(
                        self.retry_policy.delay(_attempt, self.rng))
            if ok:
                done.append(server_id)
            else:
                replacement = yield from self._switch_server(server_id, high)
                if replacement is not None:
                    done.append(replacement)
        if len(done) < self.config.copies:
            self._merged = None
            raise NotEnoughServers(
                f"force reached only {len(done)} of {self.config.copies} servers"
            )
        self.forces += 1
        self._gc_unacked()
        self._force_latency.observe(self.sim.now - start)

    def _force_one(self, server_id: str, high: LSN) -> bool:
        """Drive one server to acknowledge through ``high``."""
        for _attempt in range(self.config.write_retries + 1):
            low = max(self._acked.get(server_id, 0),
                      self._sent_high.get(server_id, 0)) + 1
            # On a retry, resend everything unacknowledged.
            if _attempt > 0:
                low = self._acked.get(server_id, 0) + 1
            records = [self._unacked[lsn]
                       for lsn in range(low, high + 1) if lsn in self._unacked]
            try:
                if records:
                    chunks = _pack_records(records)
                    last_i = len(chunks) - 1
                    for i, chunk in enumerate(chunks):
                        yield from self._send_write(server_id, chunk,
                                                    forced=i == last_i)
                else:
                    # nothing new to send; solicit an ack by resending
                    # the highest record as a ForceLog (idempotent).
                    probe = self._unacked.get(high)
                    if probe is None:
                        return self._acked.get(server_id, 0) >= high
                    yield from self._send_write(server_id, (probe,), forced=True)
            except ServerUnavailable:
                return False
            ok = yield from self._await_ack(server_id, high)
            if ok:
                self._suspect_since.pop(server_id, None)
                self._server_loads[server_id] = self.sim.now  # freshness signal
                return True
            self._suspect_since.setdefault(server_id, self.sim.now)
            # handle a MissingInterval the server may have raised
            missing = self._missing.pop(server_id, None)
            if missing is not None:
                yield from self._handle_missing(server_id, missing)
            if self._past_migration_threshold(server_id):
                return False
            if _attempt < self.config.write_retries:
                yield self.sim.timeout(
                    self.retry_policy.delay(_attempt, self.rng))
        return False

    def _await_ack(self, server_id: str, high: LSN) -> bool:
        if self._acked.get(server_id, 0) >= high:
            return True
        event = self.sim.event("ack-wait")
        entry = (high, event)
        waiters = self._ack_waiters.setdefault(server_id, [])
        waiters.append(entry)
        yield self.sim.any_of([event, self.sim.timeout(self.force_timeout_s)])
        if event.triggered:
            return True
        # timeout expired first: withdraw the waiter and give an ack
        # delivered at this exact instant one more scheduling step
        # before concluding the force must be resent.
        try:
            waiters.remove(entry)
        except ValueError:
            pass
        yield self.sim.timeout(0)
        return self._acked.get(server_id, 0) >= high

    def _past_migration_threshold(self, server_id: str) -> bool:
        if self.migrate_after_s is None:
            return False
        since = self._suspect_since.get(server_id)
        return since is not None and \
            self.sim.now - since >= self.migrate_after_s

    def _handle_missing(self, server_id: str, missing: tuple[LSN, LSN]):
        """Resend a missing interval, or NewInterval if it is gone.

        "When a client receives a MissingInterval message it will
        either resend the missing log records in a ForceLog message, or
        use the NewInterval message to inform the server that it should
        ignore the missing log records and start a new interval."
        """
        lo, hi = missing
        if all(lsn in self._unacked for lsn in range(lo, hi + 1)):
            records = [self._unacked[lsn] for lsn in range(lo, hi + 1)]
            chunks = _pack_records(records)
            for i, chunk in enumerate(chunks):
                forced = i == len(chunks) - 1
                yield from self._send_write(server_id, chunk, forced=forced)
        else:
            conn = yield from self._connect(server_id)
            yield from self.cpu.use(self.cpu_model.packet_time())
            yield from conn.send(NewIntervalMsg(
                client_id=self.client_id, epoch=self._epoch,
                starting_lsn=hi + 1,
            ))
            self._sent_high[server_id] = hi

    def _switch_server(self, failed: str, high: LSN) -> str | None:
        """Replace a failed write-set member; bring the new one current.

        The replacement receives NewInterval followed by every record
        not yet durable on N servers (all within δ, hence in memory).
        """
        others = [s for s in self.server_ids
                  if s not in self._write_set and s != failed]
        ordered = self.assignment.choose(others, len(others), self._server_loads)
        for candidate in ordered:
            try:
                conn = yield from self._connect(candidate)
            except ServerUnavailable:
                continue
            start_lsn = self.durable_through() + 1
            yield from self.cpu.use(self.cpu_model.packet_time())
            yield from conn.send(NewIntervalMsg(
                client_id=self.client_id, epoch=self._epoch,
                starting_lsn=start_lsn,
            ))
            self._sent_high[candidate] = start_lsn - 1
            self._acked[candidate] = 0
            # swap into the write set before forcing so acks count
            self._write_set = [candidate if s == failed else s
                               for s in self._write_set]
            ok = yield from self._force_one(candidate, high)
            if ok:
                self.server_switches += 1
                if self._merged is not None:
                    for lsn in range(start_lsn, high + 1):
                        self._merged.note(lsn, self._epoch, candidate)
                return candidate
            self._write_set = [failed if s == candidate else s
                               for s in self._write_set]
        return None

    def _send_write(self, server_id: str, chunk: tuple[StoredRecord, ...],
                    forced: bool):
        # cached-connection fast path: skip the _connect generator
        # (one allocation + StopIteration per send) when already live.
        conn = self._conns.get(server_id)
        if conn is None or not conn.open:
            conn = yield from self._connect(server_id)
        cls = ForceLogMsg if forced else WriteLogMsg
        message = cls(client_id=self.client_id, epoch=chunk[0].epoch,
                      records=chunk)
        # cpu.use() inlined — one generator per send instead of two.
        cpu = self.cpu
        yield cpu.acquire()
        try:
            yield self.sim.timeout(self._packet_time)
        finally:
            cpu.release()
            cpu.total_served += 1
        c = self._msgs_out
        c.count += 1
        c.total += 1.0
        yield from conn.send(message)
        self._sent_high[server_id] = max(
            self._sent_high.get(server_id, 0), chunk[-1].lsn
        )
        if self._merged is not None:
            for record in chunk:
                self._merged.note(record.lsn, record.epoch, server_id)

    def rotate_write_set(self):
        """Deliberately move to a (possibly) different set of N servers.

        Used by the load-assignment experiments: frequent switching is
        exactly what Section 5.4 warns about ("clients might change
        servers too frequently resulting in very long interval lists").
        Everything pending is forced first, so the records the old
        servers hold are durable; the new servers are told to start a
        new interval at the next LSN.
        """
        yield from self.force()
        durable = self.durable_through()
        pool = list(self.server_ids)
        new_set = self.assignment.choose(pool, self.config.copies,
                                         self._server_loads)
        for server_id in new_set:
            if server_id in self._write_set:
                continue
            conn = yield from self._connect(server_id)
            yield from self.cpu.use(self.cpu_model.packet_time())
            yield from conn.send(NewIntervalMsg(
                client_id=self.client_id, epoch=self._epoch,
                starting_lsn=durable + 1,
            ))
            self._sent_high[server_id] = durable
            self._acked[server_id] = durable
        if len(new_set) == self.config.copies:
            self._write_set = list(new_set)
            self.server_switches += 1

    # -- reads ------------------------------------------------------------------------

    def read(self, lsn: LSN):
        """ReadLog; ``yield from`` me; returns LogRecord.

        Records still buffered on the client (not yet acknowledged by
        N servers) are served from memory — a transaction aborting
        before its records were forced reads them locally, which is the
        behaviour Section 5.2 generalizes into undo caching.  Everything
        else goes to a single server chosen from the merged map.
        """
        if self._merged is None:
            raise NotInitialized("client log not initialized")
        local = self._unacked.get(lsn)
        if local is not None and local.present:
            return LogRecord(lsn=local.lsn, data=local.data, kind=local.kind)
        entry = self._merged.entry(lsn)
        if entry is None:
            raise LSNNotWritten(lsn)
        for server_id in entry.servers:
            try:
                yield from self._connect(server_id)
                reply = yield from self._rpcs[server_id].call(
                    ReadLogForwardCall(client_id=self.client_id, lsn=lsn)
                )
            except ServerUnavailable:
                continue
            if isinstance(reply, ReadLogReply) and reply.records:
                first = reply.records[0]
                if first.lsn != lsn:
                    continue
                if not first.present:
                    raise RecordNotPresent(lsn)
                return LogRecord(lsn=first.lsn, data=first.data, kind=first.kind)
        raise NotEnoughServers(f"no server holding LSN {lsn} responded")

    def end_of_log(self) -> LSN:
        if self._merged is None:
            raise NotInitialized("client log not initialized")
        return max(self._merged.high_lsn() or 0, self._next_lsn - 1)

    # -- crash lifecycle ------------------------------------------------------------

    def crash(self) -> None:
        """Lose all volatile state (buffer, caches, connections)."""
        self.endpoint.crash()
        self._conns.clear()
        self._rpcs.clear()
        self._merged = None
        self._epoch = 0
        self._next_lsn = 1
        self._buffer.clear()
        self._unacked.clear()
        self._acked.clear()
        self._ack_waiters.clear()
        self._missing.clear()
        self._sent_high.clear()

    def restart(self):
        """Bring the node back and run client initialization."""
        self.endpoint.restart()
        yield from self.initialize()

    def initialize_with_retry(self, deadline_s: float | None = None,
                              policy: RetryPolicy | None = None):
        """Client initialization retried through transient churn.

        Under crash/repair churn the init quorum (``M − N + 1`` interval
        lists, plus the generator's quorums) can be briefly unreachable;
        this retries :meth:`initialize` with capped exponential backoff
        and seeded jitter until it succeeds, the policy's attempts run
        out, or more than ``deadline_s`` simulated seconds would pass.
        ``yield from`` me.
        """
        policy = policy if policy is not None else self.retry_policy
        start = self.sim.now
        attempt = 0
        while True:
            try:
                yield from self.initialize()
                return
            except (NotEnoughServers, ServerUnavailable):
                if attempt >= policy.max_attempts - 1:
                    raise
                delay = policy.delay(attempt, self.rng)
                if (deadline_s is not None
                        and self.sim.now + delay - start > deadline_s):
                    raise
                attempt += 1
                yield self.sim.timeout(delay)

    def restart_with_retry(self, deadline_s: float | None = None,
                           policy: RetryPolicy | None = None):
        """:meth:`restart`, but riding out transient quorum loss."""
        self.endpoint.restart()
        yield from self.initialize_with_retry(deadline_s, policy)

    @property
    def write_set(self) -> tuple[str, ...]:
        return tuple(self._write_set)

    @property
    def current_epoch(self) -> Epoch:
        return self._epoch


def _records_size(records: list[StoredRecord]) -> int:
    return sum(_RECORD_OVERHEAD + len(r.data) for r in records)


def _pack_records(
    records: list[StoredRecord],
) -> list[tuple[StoredRecord, ...]]:
    """Split consecutive records into packet-sized chunks.

    "Client processes and log servers attempt to pack as many log
    records as will fit in a network packet in each call."  A single
    record larger than a packet gets a chunk of its own (the transport
    would fragment it; the model keeps it as one oversized packet).
    """
    chunks: list[tuple[StoredRecord, ...]] = []
    current: list[StoredRecord] = []
    size = 0
    for record in records:
        record_size = _RECORD_OVERHEAD + len(record.data)
        if current and size + record_size > PACKET_PAYLOAD_BYTES:
            chunks.append(tuple(current))
            current, size = [], 0
        current.append(record)
        size += record_size
    if current:
        chunks.append(tuple(current))
    return chunks

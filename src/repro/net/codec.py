"""Binary wire codec for the Figure 4-1 message set.

The simulator charges transmission time from each message's
``wire_size`` property; this module makes those numbers *real*: every
message of :mod:`repro.net.messages` encodes to exactly ``wire_size``
bytes, so the byte counts the capacity analysis of Section 4.1 reasons
about are the byte counts that cross a TCP socket in the real runtime
(:mod:`repro.rt`).

Layout
------

A *frame* on a stream is a 4-byte big-endian length prefix followed by
the encoded message.  The prefix is transport framing (the simulated
LAN charges its own 64-byte packet header instead) and is not counted
by ``wire_size``.

Encoded message = 32-byte header (``MESSAGE_HEADER_BYTES``)::

    !HBB16sIII — magic, type, flags, client_id, epoch, a, b

followed by a type-specific body:

* record-bearing messages (WriteLog, ForceLog, CopyLog, ReadLogReply):
  a sequence of records, each a 16-byte record header
  (``RECORD_HEADER_BYTES``: ``!IIBBHI`` — lsn, epoch, flags, kind,
  data length, CRC-32 of the preceding header fields *and* the data)
  followed by the data bytes;
* IntervalListReply: 12 bytes per interval (``!III`` — epoch, lo, hi),
  "storing one interval requires space for three integers";
* ErrorReply: the UTF-8 reason string.

``a``/``b`` carry the scalar arguments (LSNs, generator values, the
ack flag); unused slots are zero.  LSNs and epochs are 32-bit on the
wire, record payloads at most 64 KiB, client ids at most 16 UTF-8
bytes, and record kinds come from a fixed registry — each limit is
checked at encode time and raises :class:`WireCodecError`.
"""

from __future__ import annotations

import asyncio
import struct
import zlib

from ..core.intervals import Interval
from ..core.records import StoredRecord
from .messages import (
    MESSAGE_HEADER_BYTES,
    RECORD_HEADER_BYTES,
    AckReply,
    CopyLogCall,
    ErrorReply,
    ForceLogMsg,
    GeneratorReadCall,
    GeneratorReadReply,
    GeneratorWriteCall,
    InstallCopiesCall,
    IntervalListCall,
    IntervalListReply,
    Message,
    MissingIntervalMsg,
    NewHighLSNMsg,
    NewIntervalMsg,
    PingMsg,
    PongMsg,
    ReadLogBackwardCall,
    ReadLogForwardCall,
    ReadLogReply,
    StatsCall,
    StatsReply,
    TruncateLogCall,
    TruncateReply,
    WriteLogMsg,
)


class WireCodecError(Exception):
    """A message cannot be encoded, or bytes cannot be decoded."""


#: "LG" — first two bytes of every encoded message.
MESSAGE_MAGIC = 0x4C47
WIRE_VERSION = 1

#: Sanity ceiling on a frame read from an untrusted stream.
MAX_FRAME_BYTES = 4 << 20

_HEADER = struct.Struct("!HBB16sIII")
_RECORD = struct.Struct("!IIBBHI")
#: the CRC-covered fields of ``_RECORD`` (everything before the CRC
#: itself): lsn, epoch, flags, kind, data length.  The record CRC spans
#: header *and* data — a flipped bit in the epoch or LSN must be just as
#: detectable as one in the payload (a header-only flip once fabricated
#: a higher-epoch record on recovery; see ``repro crashsweep``).
_RECORD_PREFIX = struct.Struct("!IIBBH")
_INTERVAL = struct.Struct("!III")
_FRAME_PREFIX = struct.Struct("!I")

assert _HEADER.size == MESSAGE_HEADER_BYTES
assert _RECORD.size == RECORD_HEADER_BYTES

#: Largest value carried in a u32 wire field (LSNs, epochs).
MAX_WIRE_INT = 2**32 - 1
#: Largest record payload (u16 length field).
MAX_RECORD_DATA = 2**16 - 1
#: Largest client id, UTF-8 encoded.
MAX_CLIENT_ID_BYTES = 16

# Message type codes.
T_WRITE_LOG = 1
T_FORCE_LOG = 2
T_NEW_INTERVAL = 3
T_NEW_HIGH_LSN = 4
T_MISSING_INTERVAL = 5
T_INTERVAL_LIST_CALL = 6
T_INTERVAL_LIST_REPLY = 7
T_READ_LOG_FORWARD = 8
T_READ_LOG_BACKWARD = 9
T_READ_LOG_REPLY = 10
T_COPY_LOG = 11
T_INSTALL_COPIES = 12
T_ACK = 13
T_ERROR = 14
T_GENERATOR_READ_CALL = 15
T_GENERATOR_READ_REPLY = 16
T_GENERATOR_WRITE_CALL = 17
T_PING = 18
T_PONG = 19
T_TRUNCATE_LOG = 20
T_TRUNCATE_REPLY = 21
T_STATS_CALL = 22
T_STATS_REPLY = 23

#: Record kinds are a closed registry so one byte suffices on the wire
#: (RECORD_HEADER_BYTES leaves no room for a string).  Every kind the
#: repository writes is here; register new ones before logging them.
KIND_CODES: dict[str, int] = {
    "data": 0,
    "update": 1,
    "commit": 2,
    "guard": 3,
    "begin": 4,
    "redo": 5,
    "undo": 6,
    "abort": 7,
    "savepoint": 8,
    "rollback": 9,
    "checkpoint": 10,
    "ack": 11,
    "syn": 12,
    "synack": 13,
    "force": 14,
}
CODE_KINDS: dict[int, str] = {v: k for k, v in KIND_CODES.items()}

_PRESENT_FLAG = 0x01


def _check_u32(value: int, what: str) -> int:
    if not 0 <= value <= MAX_WIRE_INT:
        raise WireCodecError(f"{what} {value} outside 32-bit wire range")
    return value


def _encode_client_id(client_id: str) -> bytes:
    raw = client_id.encode("utf-8")
    if len(raw) > MAX_CLIENT_ID_BYTES:
        raise WireCodecError(
            f"client id {client_id!r} exceeds {MAX_CLIENT_ID_BYTES} bytes"
        )
    return raw


def _decode_client_id(raw: bytes) -> str:
    try:
        return raw.rstrip(b"\x00").decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireCodecError(f"undecodable client id {raw!r}") from exc


# -- records ----------------------------------------------------------------


def encode_stored_record(record: StoredRecord) -> bytes:
    """Encode one record: 16-byte header + data, CRC-32 protected.

    Shared with the durable file store (:mod:`repro.rt.filestore`), so
    the on-disk and on-wire record images are the same bytes.
    """
    kind_code = KIND_CODES.get(record.kind)
    if kind_code is None:
        raise WireCodecError(f"unregistered record kind {record.kind!r}")
    data = record.data
    if len(data) > MAX_RECORD_DATA:
        raise WireCodecError(f"record data {len(data)} bytes exceeds u16")
    flags = _PRESENT_FLAG if record.present else 0
    prefix = _RECORD_PREFIX.pack(
        _check_u32(record.lsn, "LSN"),
        _check_u32(record.epoch, "epoch"),
        flags, kind_code, len(data),
    )
    crc = zlib.crc32(data, zlib.crc32(prefix))
    return prefix + _FRAME_PREFIX.pack(crc) + data


def decode_stored_record(buf: bytes, offset: int) -> tuple[StoredRecord, int]:
    """Decode one record at ``offset``; return it and the next offset."""
    end = offset + RECORD_HEADER_BYTES
    if end > len(buf):
        raise WireCodecError("truncated record header")
    lsn, epoch, flags, kind_code, dlen, crc = _RECORD.unpack_from(buf, offset)
    data = bytes(buf[end:end + dlen])
    if len(data) != dlen:
        raise WireCodecError("truncated record data")
    prefix_crc = zlib.crc32(buf[offset:offset + _RECORD_PREFIX.size])
    if zlib.crc32(data, prefix_crc) != crc:
        raise WireCodecError(f"record ⟨{lsn},{epoch}⟩ failed CRC check")
    kind = CODE_KINDS.get(kind_code)
    if kind is None:
        raise WireCodecError(f"unknown record kind code {kind_code}")
    try:
        record = StoredRecord(lsn=lsn, epoch=epoch,
                              present=bool(flags & _PRESENT_FLAG),
                              data=data, kind=kind)
    except ValueError as exc:
        raise WireCodecError(str(exc)) from exc
    return record, end + dlen


def _encode_records(records: tuple[StoredRecord, ...]) -> bytes:
    return b"".join(encode_stored_record(r) for r in records)


def _decode_records(buf: bytes, offset: int) -> tuple[StoredRecord, ...]:
    records = []
    while offset < len(buf):
        record, offset = decode_stored_record(buf, offset)
        records.append(record)
    return tuple(records)


# -- messages ---------------------------------------------------------------


def encode(msg: Message) -> bytes:
    """Encode ``msg``; the result is exactly ``msg.wire_size`` bytes."""
    epoch = a = b = 0
    body = b""
    # ForceLogMsg subclasses WriteLogMsg: test it first.
    if isinstance(msg, ForceLogMsg):
        mtype, epoch, body = T_FORCE_LOG, msg.epoch, _encode_records(msg.records)
    elif isinstance(msg, WriteLogMsg):
        mtype, epoch, body = T_WRITE_LOG, msg.epoch, _encode_records(msg.records)
    elif isinstance(msg, NewIntervalMsg):
        mtype, epoch, a = T_NEW_INTERVAL, msg.epoch, msg.starting_lsn
    elif isinstance(msg, NewHighLSNMsg):
        mtype, a = T_NEW_HIGH_LSN, msg.new_high_lsn
    elif isinstance(msg, MissingIntervalMsg):
        mtype, a, b = T_MISSING_INTERVAL, msg.lo, msg.hi
    elif isinstance(msg, IntervalListCall):
        mtype = T_INTERVAL_LIST_CALL
    elif isinstance(msg, IntervalListReply):
        mtype = T_INTERVAL_LIST_REPLY
        body = b"".join(
            _INTERVAL.pack(_check_u32(i.epoch, "epoch"),
                           _check_u32(i.lo, "interval lo"),
                           _check_u32(i.hi, "interval hi"))
            for i in msg.intervals
        )
    elif isinstance(msg, ReadLogForwardCall):
        mtype, a = T_READ_LOG_FORWARD, msg.lsn
    elif isinstance(msg, ReadLogBackwardCall):
        mtype, a = T_READ_LOG_BACKWARD, msg.lsn
    elif isinstance(msg, ReadLogReply):
        mtype, body = T_READ_LOG_REPLY, _encode_records(msg.records)
    elif isinstance(msg, CopyLogCall):
        mtype, epoch, body = T_COPY_LOG, msg.epoch, _encode_records(msg.records)
    elif isinstance(msg, InstallCopiesCall):
        mtype, epoch = T_INSTALL_COPIES, msg.epoch
    elif isinstance(msg, AckReply):
        mtype, a = T_ACK, int(msg.ok)
    elif isinstance(msg, ErrorReply):
        mtype, a, body = T_ERROR, msg.code, msg.reason.encode("utf-8")
    elif isinstance(msg, PingMsg):
        mtype, a = T_PING, msg.token
    elif isinstance(msg, PongMsg):
        mtype, a = T_PONG, msg.token
    elif isinstance(msg, TruncateLogCall):
        mtype, a = T_TRUNCATE_LOG, msg.low_water_lsn
    elif isinstance(msg, TruncateReply):
        mtype, a, b = T_TRUNCATE_REPLY, msg.low_water_lsn, msg.records_dropped
    elif isinstance(msg, StatsCall):
        mtype = T_STATS_CALL
    elif isinstance(msg, StatsReply):
        mtype = T_STATS_REPLY
        body = struct.pack(f"!{len(msg.counters)}Q", *msg.counters)
    elif isinstance(msg, GeneratorReadCall):
        mtype = T_GENERATOR_READ_CALL
    elif isinstance(msg, GeneratorReadReply):
        mtype = T_GENERATOR_READ_REPLY
        a, b = msg.value & 0xFFFFFFFF, msg.value >> 32
        _check_u32(b, "generator value high word")
    elif isinstance(msg, GeneratorWriteCall):
        mtype = T_GENERATOR_WRITE_CALL
        a, b = msg.value & 0xFFFFFFFF, msg.value >> 32
        _check_u32(b, "generator value high word")
    else:
        raise WireCodecError(f"cannot encode {type(msg).__name__}")
    header = _HEADER.pack(
        MESSAGE_MAGIC, mtype, WIRE_VERSION,
        _encode_client_id(msg.client_id),
        _check_u32(epoch, "epoch"), _check_u32(a, "field a"),
        _check_u32(b, "field b"),
    )
    encoded = header + body
    if len(encoded) != msg.wire_size:
        raise WireCodecError(
            f"{type(msg).__name__} encoded to {len(encoded)} bytes but "
            f"declares wire_size {msg.wire_size}"
        )
    return encoded


def decode(buf: bytes) -> Message:
    """Decode one encoded message (the payload of one frame)."""
    if len(buf) < MESSAGE_HEADER_BYTES:
        raise WireCodecError(f"message shorter than header: {len(buf)} bytes")
    magic, mtype, version, cid_raw, epoch, a, b = _HEADER.unpack_from(buf, 0)
    if magic != MESSAGE_MAGIC:
        raise WireCodecError(f"bad magic 0x{magic:04x}")
    if version != WIRE_VERSION:
        raise WireCodecError(f"unsupported wire version {version}")
    client_id = _decode_client_id(cid_raw)
    off = MESSAGE_HEADER_BYTES
    try:
        if mtype == T_WRITE_LOG:
            return WriteLogMsg(client_id, epoch, _decode_records(buf, off))
        if mtype == T_FORCE_LOG:
            return ForceLogMsg(client_id, epoch, _decode_records(buf, off))
        if mtype == T_NEW_INTERVAL:
            return NewIntervalMsg(client_id, epoch, a)
        if mtype == T_NEW_HIGH_LSN:
            return NewHighLSNMsg(client_id, a)
        if mtype == T_MISSING_INTERVAL:
            return MissingIntervalMsg(client_id, a, b)
        if mtype == T_INTERVAL_LIST_CALL:
            return IntervalListCall(client_id)
        if mtype == T_INTERVAL_LIST_REPLY:
            if (len(buf) - off) % _INTERVAL.size:
                raise WireCodecError("interval body not a multiple of 12")
            intervals = tuple(
                Interval(e, lo, hi)
                for e, lo, hi in _INTERVAL.iter_unpack(buf[off:])
            )
            return IntervalListReply(client_id, intervals)
        if mtype == T_READ_LOG_FORWARD:
            return ReadLogForwardCall(client_id, a)
        if mtype == T_READ_LOG_BACKWARD:
            return ReadLogBackwardCall(client_id, a)
        if mtype == T_READ_LOG_REPLY:
            return ReadLogReply(client_id, _decode_records(buf, off))
        if mtype == T_COPY_LOG:
            return CopyLogCall(client_id, epoch, _decode_records(buf, off))
        if mtype == T_INSTALL_COPIES:
            return InstallCopiesCall(client_id, epoch)
        if mtype == T_ACK:
            return AckReply(client_id, bool(a))
        if mtype == T_ERROR:
            return ErrorReply(client_id, buf[off:].decode("utf-8"), code=a)
        if mtype == T_PING:
            return PingMsg(client_id, token=a)
        if mtype == T_PONG:
            return PongMsg(client_id, token=a)
        if mtype == T_TRUNCATE_LOG:
            return TruncateLogCall(client_id, low_water_lsn=a)
        if mtype == T_TRUNCATE_REPLY:
            return TruncateReply(client_id, low_water_lsn=a,
                                 records_dropped=b)
        if mtype == T_STATS_CALL:
            return StatsCall(client_id)
        if mtype == T_STATS_REPLY:
            if (len(buf) - off) % 8:
                raise WireCodecError("stats body not a multiple of 8")
            return StatsReply(client_id, tuple(
                v for (v,) in struct.iter_unpack("!Q", buf[off:])
            ))
        if mtype == T_GENERATOR_READ_CALL:
            return GeneratorReadCall(client_id)
        if mtype == T_GENERATOR_READ_REPLY:
            return GeneratorReadReply(client_id, (b << 32) | a)
        if mtype == T_GENERATOR_WRITE_CALL:
            return GeneratorWriteCall(client_id, (b << 32) | a)
    except ValueError as exc:
        raise WireCodecError(str(exc)) from exc
    raise WireCodecError(f"unknown message type {mtype}")


# -- stream framing ---------------------------------------------------------


def frame(msg: Message) -> bytes:
    """Length-prefixed frame ready for a stream write."""
    payload = encode(msg)
    return _FRAME_PREFIX.pack(len(payload)) + payload


async def read_message(reader: asyncio.StreamReader) -> Message | None:
    """Read one framed message; ``None`` on clean EOF at a frame edge."""
    try:
        prefix = await reader.readexactly(_FRAME_PREFIX.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise WireCodecError("stream ended inside a frame prefix") from exc
    (length,) = _FRAME_PREFIX.unpack(prefix)
    if length < MESSAGE_HEADER_BYTES or length > MAX_FRAME_BYTES:
        raise WireCodecError(f"implausible frame length {length}")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise WireCodecError("stream ended inside a frame") from exc
    return decode(payload)

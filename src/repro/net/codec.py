"""Binary wire codec for the Figure 4-1 message set.

The simulator charges transmission time from each message's
``wire_size`` property; this module makes those numbers *real*: every
message of :mod:`repro.net.messages` encodes to exactly ``wire_size``
bytes, so the byte counts the capacity analysis of Section 4.1 reasons
about are the byte counts that cross a TCP socket in the real runtime
(:mod:`repro.rt`).

Layout
------

A *frame* on a stream is a 4-byte big-endian length prefix followed by
the encoded message.  The prefix is transport framing (the simulated
LAN charges its own 64-byte packet header instead) and is not counted
by ``wire_size``.

Encoded message = 32-byte header (``MESSAGE_HEADER_BYTES``)::

    !HBB16sIII — magic, type, flags, client_id, epoch, a, b

followed by a type-specific body:

* record-bearing messages (WriteLog, ForceLog, CopyLog, ReadLogReply):
  a sequence of records, each a 16-byte record header
  (``RECORD_HEADER_BYTES``: ``!IIBBHI`` — lsn, epoch, flags, kind,
  data length, CRC-32 of the preceding header fields *and* the data)
  followed by the data bytes;
* IntervalListReply: 12 bytes per interval (``!III`` — epoch, lo, hi),
  "storing one interval requires space for three integers";
* ErrorReply: the UTF-8 reason string.

``a``/``b`` carry the scalar arguments (LSNs, generator values, the
ack flag); unused slots are zero.  LSNs and epochs are 32-bit on the
wire, record payloads at most 64 KiB, client ids at most 16 UTF-8
bytes, and record kinds come from a fixed registry — each limit is
checked at encode time and raises :class:`WireCodecError`.
"""

from __future__ import annotations

import asyncio
import struct
import zlib

from ..core.intervals import Interval
from ..core.records import (
    FIRST_EPOCH,
    FIRST_LSN,
    StoredRecord,
    trusted_stored_record,
)
from .messages import (
    MESSAGE_HEADER_BYTES,
    RECORD_HEADER_BYTES,
    AckReply,
    CopyLogCall,
    ErrorReply,
    FenceLogCall,
    FenceReply,
    ForceLogMsg,
    GeneratorReadCall,
    GeneratorReadReply,
    GeneratorWriteCall,
    InstallCopiesCall,
    IntervalListCall,
    IntervalListReply,
    Message,
    MissingIntervalMsg,
    NewHighLSNMsg,
    NewIntervalMsg,
    PingMsg,
    PongMsg,
    ReadLogBackwardCall,
    ReadLogForwardCall,
    ReadLogReply,
    StatsCall,
    StatsReply,
    TruncateLogCall,
    TruncateReply,
    WriteLogMsg,
)


class WireCodecError(Exception):
    """A message cannot be encoded, or bytes cannot be decoded."""


#: "LG" — first two bytes of every encoded message.
MESSAGE_MAGIC = 0x4C47
WIRE_VERSION = 1

#: Sanity ceiling on a frame read from an untrusted stream.
MAX_FRAME_BYTES = 4 << 20

_HEADER = struct.Struct("!HBB16sIII")
_RECORD = struct.Struct("!IIBBHI")
#: the CRC-covered fields of ``_RECORD`` (everything before the CRC
#: itself): lsn, epoch, flags, kind, data length.  The record CRC spans
#: header *and* data — a flipped bit in the epoch or LSN must be just as
#: detectable as one in the payload (a header-only flip once fabricated
#: a higher-epoch record on recovery; see ``repro crashsweep``).
_RECORD_PREFIX = struct.Struct("!IIBBH")
_INTERVAL = struct.Struct("!III")
_FRAME_PREFIX = struct.Struct("!I")

assert _HEADER.size == MESSAGE_HEADER_BYTES
assert _RECORD.size == RECORD_HEADER_BYTES

#: Largest value carried in a u32 wire field (LSNs, epochs).
MAX_WIRE_INT = 2**32 - 1
#: Largest record payload (u16 length field).
MAX_RECORD_DATA = 2**16 - 1
#: Largest client id, UTF-8 encoded.
MAX_CLIENT_ID_BYTES = 16

# Message type codes.
T_WRITE_LOG = 1
T_FORCE_LOG = 2
T_NEW_INTERVAL = 3
T_NEW_HIGH_LSN = 4
T_MISSING_INTERVAL = 5
T_INTERVAL_LIST_CALL = 6
T_INTERVAL_LIST_REPLY = 7
T_READ_LOG_FORWARD = 8
T_READ_LOG_BACKWARD = 9
T_READ_LOG_REPLY = 10
T_COPY_LOG = 11
T_INSTALL_COPIES = 12
T_ACK = 13
T_ERROR = 14
T_GENERATOR_READ_CALL = 15
T_GENERATOR_READ_REPLY = 16
T_GENERATOR_WRITE_CALL = 17
T_PING = 18
T_PONG = 19
T_TRUNCATE_LOG = 20
T_TRUNCATE_REPLY = 21
T_STATS_CALL = 22
T_STATS_REPLY = 23
T_FENCE_LOG = 24
T_FENCE_REPLY = 25

#: Record kinds are a closed registry so one byte suffices on the wire
#: (RECORD_HEADER_BYTES leaves no room for a string).  Every kind the
#: repository writes is here; register new ones before logging them.
KIND_CODES: dict[str, int] = {
    "data": 0,
    "update": 1,
    "commit": 2,
    "guard": 3,
    "begin": 4,
    "redo": 5,
    "undo": 6,
    "abort": 7,
    "savepoint": 8,
    "rollback": 9,
    "checkpoint": 10,
    "ack": 11,
    "syn": 12,
    "synack": 13,
    "force": 14,
}
CODE_KINDS: dict[int, str] = {v: k for k, v in KIND_CODES.items()}

_PRESENT_FLAG = 0x01


def _check_u32(value: int, what: str) -> int:
    if not 0 <= value <= MAX_WIRE_INT:
        raise WireCodecError(f"{what} {value} outside 32-bit wire range")
    return value


#: validated-id cache: every message of a connection's lifetime carries
#: the same few client ids; bounded so a hostile id stream cannot grow
#: it without limit.
_CID_CACHE: dict[str, bytes] = {}
_CID_CACHE_MAX = 4096


def _encode_client_id(client_id: str) -> bytes:
    raw = _CID_CACHE.get(client_id)
    if raw is not None:
        return raw
    raw = client_id.encode("utf-8")
    if len(raw) > MAX_CLIENT_ID_BYTES:
        raise WireCodecError(
            f"client id {client_id!r} exceeds {MAX_CLIENT_ID_BYTES} bytes"
        )
    if len(_CID_CACHE) < _CID_CACHE_MAX:
        _CID_CACHE[client_id] = raw
    return raw


def _decode_client_id(raw: bytes) -> str:
    try:
        return raw.rstrip(b"\x00").decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireCodecError(f"undecodable client id {raw!r}") from exc


# -- records ----------------------------------------------------------------


def encode_stored_record(record: StoredRecord) -> bytes:
    """Encode one record: 16-byte header + data, CRC-32 protected.

    Shared with the durable file store (:mod:`repro.rt.filestore`), so
    the on-disk and on-wire record images are the same bytes.
    """
    kind_code = KIND_CODES.get(record.kind)
    if kind_code is None:
        raise WireCodecError(f"unregistered record kind {record.kind!r}")
    data = record.data
    if len(data) > MAX_RECORD_DATA:
        raise WireCodecError(f"record data {len(data)} bytes exceeds u16")
    flags = _PRESENT_FLAG if record.present else 0
    prefix = _RECORD_PREFIX.pack(
        _check_u32(record.lsn, "LSN"),
        _check_u32(record.epoch, "epoch"),
        flags, kind_code, len(data),
    )
    crc = zlib.crc32(data, zlib.crc32(prefix))
    return prefix + _FRAME_PREFIX.pack(crc) + data


def decode_stored_record(buf: bytes, offset: int) -> tuple[StoredRecord, int]:
    """Decode one record at ``offset``; return it and the next offset.

    Field validation (the :class:`StoredRecord` invariants) is inlined
    and the record built through the trusted constructor: this runs
    once per record on both server receive and recovery replay.
    """
    end = offset + RECORD_HEADER_BYTES
    if end > len(buf):
        raise WireCodecError("truncated record header")
    lsn, epoch, flags, kind_code, dlen, crc = _RECORD.unpack_from(buf, offset)
    data = bytes(buf[end:end + dlen])
    if len(data) != dlen:
        raise WireCodecError("truncated record data")
    prefix_crc = zlib.crc32(buf[offset:offset + _RECORD_PREFIX.size])
    if zlib.crc32(data, prefix_crc) != crc:
        raise WireCodecError(f"record ⟨{lsn},{epoch}⟩ failed CRC check")
    kind = CODE_KINDS.get(kind_code)
    if kind is None:
        raise WireCodecError(f"unknown record kind code {kind_code}")
    present = bool(flags & _PRESENT_FLAG)
    if lsn < FIRST_LSN:
        raise WireCodecError(f"LSN must be >= {FIRST_LSN}, got {lsn}")
    if epoch < FIRST_EPOCH:
        raise WireCodecError(f"epoch must be >= {FIRST_EPOCH}, got {epoch}")
    if not present and data:
        raise WireCodecError("a not-present record must not carry data")
    return trusted_stored_record(lsn, epoch, present, data, kind), end + dlen


def _encode_records(records: tuple[StoredRecord, ...]) -> bytes:
    return b"".join(encode_stored_record(r) for r in records)


def _decode_records(buf: bytes, offset: int,
                    images: list[bytes] | None = None,
                    ) -> tuple[StoredRecord, ...]:
    records = []
    while offset < len(buf):
        record, end = decode_stored_record(buf, offset)
        if images is not None:
            # The CRC-checked wire image, byte-compatible with
            # ``encode_stored_record`` — the server appends these to
            # disk directly instead of re-encoding every record.
            images.append(bytes(buf[offset:end]))
        records.append(record)
        offset = end
    return tuple(records)


# -- messages ---------------------------------------------------------------


def _message_parts(
    msg: Message,
    record_bufs: list[bytes] | None = None,
) -> list[bytes]:
    """Encode ``msg`` as a list of buffers: ``[header, *body_parts]``.

    The concatenation of the parts is exactly ``encode(msg)``.  For
    record-bearing messages each record is its own part (suitable for a
    scatter-gather ``writelines``), and ``record_bufs`` may supply
    already-encoded record images — the encode-once cache the client
    keeps alongside its window — instead of re-encoding ``msg.records``.
    """
    epoch = a = b = 0
    body: list[bytes] = []
    # ForceLogMsg subclasses WriteLogMsg: test it first.
    if isinstance(msg, ForceLogMsg):
        mtype, epoch = T_FORCE_LOG, msg.epoch
        body = record_bufs if record_bufs is not None else [
            encode_stored_record(r) for r in msg.records]
    elif isinstance(msg, WriteLogMsg):
        mtype, epoch = T_WRITE_LOG, msg.epoch
        body = record_bufs if record_bufs is not None else [
            encode_stored_record(r) for r in msg.records]
    elif isinstance(msg, NewIntervalMsg):
        mtype, epoch, a = T_NEW_INTERVAL, msg.epoch, msg.starting_lsn
    elif isinstance(msg, NewHighLSNMsg):
        mtype, a = T_NEW_HIGH_LSN, msg.new_high_lsn
    elif isinstance(msg, MissingIntervalMsg):
        mtype, a, b = T_MISSING_INTERVAL, msg.lo, msg.hi
    elif isinstance(msg, IntervalListCall):
        mtype = T_INTERVAL_LIST_CALL
    elif isinstance(msg, IntervalListReply):
        mtype = T_INTERVAL_LIST_REPLY
        body = [
            _INTERVAL.pack(_check_u32(i.epoch, "epoch"),
                           _check_u32(i.lo, "interval lo"),
                           _check_u32(i.hi, "interval hi"))
            for i in msg.intervals
        ]
    elif isinstance(msg, ReadLogForwardCall):
        mtype, a = T_READ_LOG_FORWARD, msg.lsn
    elif isinstance(msg, ReadLogBackwardCall):
        mtype, a = T_READ_LOG_BACKWARD, msg.lsn
    elif isinstance(msg, ReadLogReply):
        mtype = T_READ_LOG_REPLY
        body = record_bufs if record_bufs is not None else [
            encode_stored_record(r) for r in msg.records]
    elif isinstance(msg, CopyLogCall):
        mtype, epoch = T_COPY_LOG, msg.epoch
        body = record_bufs if record_bufs is not None else [
            encode_stored_record(r) for r in msg.records]
    elif isinstance(msg, InstallCopiesCall):
        mtype, epoch = T_INSTALL_COPIES, msg.epoch
    elif isinstance(msg, AckReply):
        mtype, a = T_ACK, int(msg.ok)
    elif isinstance(msg, ErrorReply):
        mtype, a = T_ERROR, msg.code
        body = [msg.reason.encode("utf-8")]
    elif isinstance(msg, PingMsg):
        mtype, a = T_PING, msg.token
    elif isinstance(msg, PongMsg):
        mtype, a = T_PONG, msg.token
    elif isinstance(msg, TruncateLogCall):
        mtype, epoch, a = T_TRUNCATE_LOG, msg.epoch, msg.low_water_lsn
    elif isinstance(msg, FenceLogCall):
        mtype, epoch = T_FENCE_LOG, msg.epoch
    elif isinstance(msg, FenceReply):
        mtype, epoch = T_FENCE_REPLY, msg.epoch
    elif isinstance(msg, TruncateReply):
        mtype, a, b = T_TRUNCATE_REPLY, msg.low_water_lsn, msg.records_dropped
    elif isinstance(msg, StatsCall):
        mtype = T_STATS_CALL
    elif isinstance(msg, StatsReply):
        mtype = T_STATS_REPLY
        body = [struct.pack(f"!{len(msg.counters)}Q", *msg.counters)]
    elif isinstance(msg, GeneratorReadCall):
        mtype = T_GENERATOR_READ_CALL
    elif isinstance(msg, GeneratorReadReply):
        mtype = T_GENERATOR_READ_REPLY
        a, b = msg.value & 0xFFFFFFFF, msg.value >> 32
        _check_u32(b, "generator value high word")
    elif isinstance(msg, GeneratorWriteCall):
        mtype = T_GENERATOR_WRITE_CALL
        a, b = msg.value & 0xFFFFFFFF, msg.value >> 32
        _check_u32(b, "generator value high word")
    else:
        raise WireCodecError(f"cannot encode {type(msg).__name__}")
    header = _HEADER.pack(
        MESSAGE_MAGIC, mtype, WIRE_VERSION,
        _encode_client_id(msg.client_id),
        _check_u32(epoch, "epoch"), _check_u32(a, "field a"),
        _check_u32(b, "field b"),
    )
    if record_bufs is None:
        # Cross-check freshly encoded parts against the declared size.
        # Caller-supplied record images skip this: ``wire_size``
        # re-walks every record, and the images are the same bytes the
        # encode path produces (the codec property tests pin this).
        total = MESSAGE_HEADER_BYTES + sum(len(part) for part in body)
        if total != msg.wire_size:
            raise WireCodecError(
                f"{type(msg).__name__} encoded to {total} bytes but "
                f"declares wire_size {msg.wire_size}"
            )
    return [header, *body]


def encode(msg: Message) -> bytes:
    """Encode ``msg``; the result is exactly ``msg.wire_size`` bytes."""
    parts = _message_parts(msg)
    if len(parts) == 1:
        return parts[0]
    return b"".join(parts)


def encode_iov(msg: Message,
               record_bufs: list[bytes] | None = None) -> list[bytes]:
    """Encode ``msg`` as an iovec — buffers that concatenate to
    ``encode(msg)`` without an intermediate join.

    ``record_bufs`` optionally supplies pre-encoded record images
    (``encode_stored_record`` output, one per ``msg.records`` entry, in
    order) so a hot sender never encodes a record twice; the total
    length is still validated against ``msg.wire_size``.
    """
    return _message_parts(msg, record_bufs)


def encode_into(msg: Message, buf: bytearray) -> int:
    """Append ``encode(msg)`` to ``buf``; return the bytes appended."""
    before = len(buf)
    for part in _message_parts(msg):
        buf += part
    return len(buf) - before


def decode(buf, record_images: list[bytes] | None = None) -> Message:
    """Decode one encoded message (the payload of one frame).

    Accepts any buffer — ``bytes``, ``bytearray``, or a ``memoryview``
    slice of a persistent receive buffer (:class:`FrameReader`); only
    record payloads and text fields are copied out.

    ``record_images``, when given, collects the raw CRC-checked wire
    image of each record of a WriteLog/ForceLog — byte-compatible with
    :func:`encode_stored_record`, so the server's append path can write
    the wire bytes straight to disk without re-encoding.
    """
    if len(buf) < MESSAGE_HEADER_BYTES:
        raise WireCodecError(f"message shorter than header: {len(buf)} bytes")
    magic, mtype, version, cid_raw, epoch, a, b = _HEADER.unpack_from(buf, 0)
    if magic != MESSAGE_MAGIC:
        raise WireCodecError(f"bad magic 0x{magic:04x}")
    if version != WIRE_VERSION:
        raise WireCodecError(f"unsupported wire version {version}")
    client_id = _decode_client_id(cid_raw)
    off = MESSAGE_HEADER_BYTES
    try:
        if mtype == T_WRITE_LOG:
            return WriteLogMsg(client_id, epoch,
                               _decode_records(buf, off, record_images))
        if mtype == T_FORCE_LOG:
            return ForceLogMsg(client_id, epoch,
                               _decode_records(buf, off, record_images))
        if mtype == T_NEW_INTERVAL:
            return NewIntervalMsg(client_id, epoch, a)
        if mtype == T_NEW_HIGH_LSN:
            return NewHighLSNMsg(client_id, a)
        if mtype == T_MISSING_INTERVAL:
            return MissingIntervalMsg(client_id, a, b)
        if mtype == T_INTERVAL_LIST_CALL:
            return IntervalListCall(client_id)
        if mtype == T_INTERVAL_LIST_REPLY:
            if (len(buf) - off) % _INTERVAL.size:
                raise WireCodecError("interval body not a multiple of 12")
            intervals = tuple(
                Interval(e, lo, hi)
                for e, lo, hi in _INTERVAL.iter_unpack(buf[off:])
            )
            return IntervalListReply(client_id, intervals)
        if mtype == T_READ_LOG_FORWARD:
            return ReadLogForwardCall(client_id, a)
        if mtype == T_READ_LOG_BACKWARD:
            return ReadLogBackwardCall(client_id, a)
        if mtype == T_READ_LOG_REPLY:
            return ReadLogReply(client_id, _decode_records(buf, off))
        if mtype == T_COPY_LOG:
            return CopyLogCall(client_id, epoch, _decode_records(buf, off))
        if mtype == T_INSTALL_COPIES:
            return InstallCopiesCall(client_id, epoch)
        if mtype == T_ACK:
            return AckReply(client_id, bool(a))
        if mtype == T_ERROR:
            return ErrorReply(client_id, bytes(buf[off:]).decode("utf-8"),
                              code=a)
        if mtype == T_PING:
            return PingMsg(client_id, token=a)
        if mtype == T_PONG:
            return PongMsg(client_id, token=a)
        if mtype == T_TRUNCATE_LOG:
            return TruncateLogCall(client_id, low_water_lsn=a, epoch=epoch)
        if mtype == T_FENCE_LOG:
            return FenceLogCall(client_id, epoch=epoch)
        if mtype == T_FENCE_REPLY:
            return FenceReply(client_id, epoch=epoch)
        if mtype == T_TRUNCATE_REPLY:
            return TruncateReply(client_id, low_water_lsn=a,
                                 records_dropped=b)
        if mtype == T_STATS_CALL:
            return StatsCall(client_id)
        if mtype == T_STATS_REPLY:
            if (len(buf) - off) % 8:
                raise WireCodecError("stats body not a multiple of 8")
            return StatsReply(client_id, tuple(
                v for (v,) in struct.iter_unpack("!Q", buf[off:])
            ))
        if mtype == T_GENERATOR_READ_CALL:
            return GeneratorReadCall(client_id)
        if mtype == T_GENERATOR_READ_REPLY:
            return GeneratorReadReply(client_id, (b << 32) | a)
        if mtype == T_GENERATOR_WRITE_CALL:
            return GeneratorWriteCall(client_id, (b << 32) | a)
    except ValueError as exc:
        raise WireCodecError(str(exc)) from exc
    raise WireCodecError(f"unknown message type {mtype}")


# -- stream framing ---------------------------------------------------------


def frame(msg: Message) -> bytes:
    """Length-prefixed frame ready for a stream write."""
    payload = encode(msg)
    return _FRAME_PREFIX.pack(len(payload)) + payload


#: all fixed-size header-only frames are MESSAGE_HEADER_BYTES long.
_HEADER_FRAME_PREFIX = _FRAME_PREFIX.pack(MESSAGE_HEADER_BYTES)


def frame_new_high_lsn(client_id: str, new_high_lsn: int) -> bytes:
    """The NewHighLSN ack, framed, in one pack — the group-commit
    fan-out sends one of these per parked force, so it skips the
    generic ``frame(NewHighLSNMsg(...))`` dispatch.  Byte-identical to
    ``frame(NewHighLSNMsg(client_id, new_high_lsn))``.
    """
    return _HEADER_FRAME_PREFIX + _HEADER.pack(
        MESSAGE_MAGIC, T_NEW_HIGH_LSN, WIRE_VERSION,
        _encode_client_id(client_id), 0,
        _check_u32(new_high_lsn, "new high LSN"), 0,
    )


def frame_iov(msg: Message,
              record_bufs: list[bytes] | None = None) -> list[bytes]:
    """Length-prefixed frame as an iovec for ``writer.writelines``.

    The first buffer is the 4-byte prefix fused with the 32-byte
    message header (they are always sent together); the rest are the
    body parts — per-record images for record-bearing messages, shared
    unchanged across every connection that sends the same frame.
    """
    parts = encode_iov(msg, record_bufs)
    payload_len = sum(len(part) for part in parts)
    return [_FRAME_PREFIX.pack(payload_len) + parts[0], *parts[1:]]


def frame_into(msg: Message, buf: bytearray) -> int:
    """Append ``frame(msg)`` to ``buf``; return the bytes appended."""
    parts = _message_parts(msg)
    payload_len = sum(len(part) for part in parts)
    before = len(buf)
    buf += _FRAME_PREFIX.pack(payload_len)
    for part in parts:
        buf += part
    return len(buf) - before


async def read_message(reader: asyncio.StreamReader) -> Message | None:
    """Read one framed message; ``None`` on clean EOF at a frame edge."""
    try:
        prefix = await reader.readexactly(_FRAME_PREFIX.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise WireCodecError("stream ended inside a frame prefix") from exc
    (length,) = _FRAME_PREFIX.unpack(prefix)
    if length < MESSAGE_HEADER_BYTES or length > MAX_FRAME_BYTES:
        raise WireCodecError(f"implausible frame length {length}")
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise WireCodecError("stream ended inside a frame") from exc
    return decode(payload)


# -- persistent receive buffers ---------------------------------------------

#: Bytes requested per socket read by :class:`FrameReader` — large
#: enough to swallow many back-to-back frames in one syscall.
RECV_CHUNK_BYTES = 256 * 1024
#: Consumed-prefix size beyond which a :class:`FrameReader` compacts
#: its buffer (sooner if the buffer is fully drained, which is free).
_COMPACT_THRESHOLD = 128 * 1024

_NEED_MORE = object()


class BufferPool:
    """A small free-list of ``bytearray`` scratch buffers.

    Receive paths churn through buffers at connection granularity;
    recycling them here keeps long-running daemons from re-growing a
    fresh ``bytearray`` past the high-water mark for every connection.
    """

    def __init__(self, max_buffers: int = 8):
        self.max_buffers = max_buffers
        self._free: list[bytearray] = []

    def acquire(self) -> bytearray:
        if self._free:
            return self._free.pop()
        return bytearray()

    def release(self, buf: bytearray) -> None:
        if len(self._free) >= self.max_buffers:
            return
        try:
            buf.clear()
        except BufferError:
            # A live memoryview export (e.g. held by the traceback of a
            # decode error) pins the buffer; let it go instead of pooling.
            return
        self._free.append(buf)


#: Module-level pool shared by default across FrameReaders in a process.
DEFAULT_POOL = BufferPool()


class FrameReader:
    """Frame parser over a persistent receive buffer.

    One socket read refills the buffer with up to ``RECV_CHUNK_BYTES``;
    every complete frame already buffered is then parsed without
    touching the socket again, each decoded from a ``memoryview`` slice
    so no per-frame payload copy is made.  This replaces the two
    ``readexactly`` calls (and two allocations) per frame of
    :func:`read_message` on the hot paths of ``rt.server`` and
    ``rt.client``.
    """

    def __init__(self, reader: asyncio.StreamReader, *,
                 pool: BufferPool | None = None,
                 max_frame: int = MAX_FRAME_BYTES):
        self._reader = reader
        self._pool = pool if pool is not None else DEFAULT_POOL
        self._buf = self._pool.acquire()
        self._pos = 0
        self._max_frame = max_frame
        self._eof = False
        #: frames parsed since construction (observability / tests)
        self.frames_decoded = 0

    async def read_message(
        self, record_images: list[bytes] | None = None,
    ) -> Message | None:
        """Next framed message; ``None`` on clean EOF at a frame edge.

        ``record_images`` is forwarded to :func:`decode`: the server
        passes a scratch list here to capture each WriteLog/ForceLog
        record's raw wire image for the zero-re-encode append path.
        """
        while True:
            msg = self._parse_one(record_images)
            if msg is not _NEED_MORE:
                return msg
            if self._eof:
                if len(self._buf) - self._pos:
                    raise WireCodecError("stream ended inside a frame")
                return None
            chunk = await self._reader.read(RECV_CHUNK_BYTES)
            if not chunk:
                self._eof = True
            else:
                self._compact()
                self._buf += chunk

    def _parse_one(self, record_images: list[bytes] | None = None):
        buf, pos = self._buf, self._pos
        avail = len(buf) - pos
        if avail < _FRAME_PREFIX.size:
            return _NEED_MORE
        (length,) = _FRAME_PREFIX.unpack_from(buf, pos)
        if length < MESSAGE_HEADER_BYTES or length > self._max_frame:
            raise WireCodecError(f"implausible frame length {length}")
        start = pos + _FRAME_PREFIX.size
        if len(buf) - start < length:
            return _NEED_MORE
        with memoryview(buf) as view:
            msg = decode(view[start:start + length], record_images)
        self._pos = start + length
        self.frames_decoded += 1
        return msg

    def _compact(self) -> None:
        """Drop the consumed prefix once it is worth the memmove."""
        if self._pos and (self._pos >= len(self._buf)
                          or self._pos >= _COMPACT_THRESHOLD):
            del self._buf[:self._pos]
            self._pos = 0

    def close(self) -> None:
        """Return the receive buffer to the pool."""
        self._pool.release(self._buf)
        self._buf = bytearray()
        self._pos = 0


# -- frame scanning (network fault injection) --------------------------------

#: Bytes of the stream-level length prefix preceding each encoded message.
FRAME_PREFIX_BYTES = _FRAME_PREFIX.size

#: type code → short lowercase kind name: the vocabulary of the
#: ``net.<kind>.<dir>`` fault sites of :mod:`repro.rt.chaosproxy`.
TYPE_NAMES: dict[int, str] = {
    T_WRITE_LOG: "writelog",
    T_FORCE_LOG: "forcelog",
    T_NEW_INTERVAL: "newinterval",
    T_NEW_HIGH_LSN: "newhighlsn",
    T_MISSING_INTERVAL: "missinginterval",
    T_INTERVAL_LIST_CALL: "intervallistcall",
    T_INTERVAL_LIST_REPLY: "intervallistreply",
    T_READ_LOG_FORWARD: "readlogforward",
    T_READ_LOG_BACKWARD: "readlogbackward",
    T_READ_LOG_REPLY: "readlogreply",
    T_COPY_LOG: "copylog",
    T_INSTALL_COPIES: "installcopies",
    T_ACK: "ack",
    T_ERROR: "error",
    T_GENERATOR_READ_CALL: "genreadcall",
    T_GENERATOR_READ_REPLY: "genreadreply",
    T_GENERATOR_WRITE_CALL: "genwritecall",
    T_PING: "ping",
    T_PONG: "pong",
    T_TRUNCATE_LOG: "truncatelog",
    T_TRUNCATE_REPLY: "truncatereply",
    T_STATS_CALL: "statscall",
    T_STATS_REPLY: "statsreply",
    T_FENCE_LOG: "fencelog",
    T_FENCE_REPLY: "fencereply",
}
NAME_TYPES: dict[str, int] = {v: k for k, v in TYPE_NAMES.items()}

#: kinds whose body is a CRC-protected record sequence.  Corrupting
#: their payload is always *detectable* — the receiver rejects the
#: record — unlike e.g. an interval list, whose body bytes carry no
#: checksum of their own (TCP's is the model's integrity layer there).
RECORD_BEARING_KINDS = frozenset(
    {"writelog", "forcelog", "copylog", "readlogreply"})

_SCAN_HEAD = struct.Struct("!HB")  # magic + type, at the header's front


class ScannedFrame:
    """One complete frame lifted off a byte stream, undecoded.

    ``data`` is the full wire image — 4-byte length prefix plus the
    encoded message — so forwarding ``data`` unchanged is a perfect
    relay, and mutating it models exactly one damaged message.
    """

    __slots__ = ("data", "mtype")

    def __init__(self, data: bytes, mtype: int):
        self.data = data
        self.mtype = mtype

    @property
    def kind(self) -> str:
        return TYPE_NAMES.get(self.mtype, f"type{self.mtype}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ScannedFrame(kind={self.kind}, bytes={len(self.data)})"


class FrameScanner:
    """Sans-IO incremental frame-boundary scanner over raw wire bytes.

    The fault-injecting proxy (:mod:`repro.rt.chaosproxy`) feeds each
    pump direction's chunks through one of these; partial frames are
    buffered across chunks and every *complete* frame comes back as a
    :class:`ScannedFrame`, so faults can target protocol messages
    rather than arbitrary 4096-byte windows.  Unlike
    :class:`FrameReader` it never decodes bodies — a relay must forward
    byte-exact images, deliberately corrupted ones included.

    A stream that desynchronizes (an implausible length prefix, a bad
    magic) raises :class:`WireCodecError`; the proxy degrades that
    connection to raw passthrough and lets the endpoint's decoder
    tear it down.
    """

    def __init__(self, *, max_frame: int = MAX_FRAME_BYTES):
        self._buf = bytearray()
        self._max_frame = max_frame
        #: complete frames returned since construction.
        self.frames_scanned = 0

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered that do not yet form a complete frame."""
        return len(self._buf)

    def take_buffer(self) -> bytes:
        """Drain and return the partial buffer (passthrough fallback)."""
        data = bytes(self._buf)
        self._buf.clear()
        return data

    def feed(self, chunk: bytes) -> list[ScannedFrame]:
        """Buffer ``chunk``; return every frame now complete, in order."""
        self._buf += chunk
        buf = self._buf
        frames: list[ScannedFrame] = []
        pos = 0
        while len(buf) - pos >= FRAME_PREFIX_BYTES + _SCAN_HEAD.size:
            (length,) = _FRAME_PREFIX.unpack_from(buf, pos)
            if length < MESSAGE_HEADER_BYTES or length > self._max_frame:
                raise WireCodecError(f"implausible frame length {length}")
            magic, mtype = _SCAN_HEAD.unpack_from(
                buf, pos + FRAME_PREFIX_BYTES)
            if magic != MESSAGE_MAGIC:
                raise WireCodecError(f"bad message magic 0x{magic:04x}")
            total = FRAME_PREFIX_BYTES + length
            if len(buf) - pos < total:
                break
            frames.append(ScannedFrame(bytes(buf[pos:pos + total]), mtype))
            pos += total
        del buf[:pos]
        self.frames_scanned += len(frames)
        return frames

"""Simulated LAN and the Figure 4-1 log-server protocol (Section 4.2).

* :mod:`repro.net.lan` — shared-medium networks, dual-network
  redundancy, multicast;
* :mod:`repro.net.packet` — single-packet framing with transport
  headers;
* :mod:`repro.net.transport` — Watson-style connections: three-way
  handshake, permanently unique sequence numbers, moving-window
  allocations;
* :mod:`repro.net.messages` — the WriteLog / ForceLog / NewInterval /
  NewHighLSN / MissingInterval / IntervalList / ReadLogForward /
  ReadLogBackward / CopyLog / InstallCopies message set;
* :mod:`repro.net.rpc` — strict RPCs for the infrequent synchronous
  calls;
* :mod:`repro.net.codec` — the binary wire codec the real runtime
  (:mod:`repro.rt`) uses, encoding each message to exactly its
  ``wire_size`` bytes.
"""

from .codec import WireCodecError, decode, encode, frame, read_message
from .lan import DualLan, Lan
from .messages import (
    AckReply,
    CopyLogCall,
    ErrorReply,
    ForceLogMsg,
    GeneratorReadCall,
    GeneratorReadReply,
    GeneratorWriteCall,
    InstallCopiesCall,
    IntervalListCall,
    IntervalListReply,
    Message,
    MissingIntervalMsg,
    NewHighLSNMsg,
    NewIntervalMsg,
    ReadLogBackwardCall,
    ReadLogForwardCall,
    ReadLogReply,
    WriteLogMsg,
)
from .packet import (
    PACKET_HEADER_BYTES,
    PACKET_MTU_BYTES,
    PACKET_PAYLOAD_BYTES,
    Packet,
    fits_in_packet,
)
from .rpc import RpcClient, RpcReply, RpcRequest, serve_rpc
from .transport import (
    DEFAULT_WINDOW,
    HANDSHAKE_ATTEMPTS,
    HANDSHAKE_TIMEOUT_S,
    OVERRIDE_PAUSE_S,
    Connection,
    Endpoint,
)

__all__ = [
    "AckReply",
    "Connection",
    "CopyLogCall",
    "DEFAULT_WINDOW",
    "DualLan",
    "Endpoint",
    "ErrorReply",
    "ForceLogMsg",
    "GeneratorReadCall",
    "GeneratorReadReply",
    "GeneratorWriteCall",
    "HANDSHAKE_ATTEMPTS",
    "HANDSHAKE_TIMEOUT_S",
    "InstallCopiesCall",
    "IntervalListCall",
    "IntervalListReply",
    "Lan",
    "Message",
    "MissingIntervalMsg",
    "NewHighLSNMsg",
    "NewIntervalMsg",
    "OVERRIDE_PAUSE_S",
    "PACKET_HEADER_BYTES",
    "PACKET_MTU_BYTES",
    "PACKET_PAYLOAD_BYTES",
    "Packet",
    "ReadLogBackwardCall",
    "ReadLogForwardCall",
    "ReadLogReply",
    "RpcClient",
    "RpcReply",
    "RpcRequest",
    "WireCodecError",
    "WriteLogMsg",
    "decode",
    "encode",
    "fits_in_packet",
    "frame",
    "read_message",
    "serve_rpc",
]

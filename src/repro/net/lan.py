"""Simulated local-area network.

Section 2 stipulates a high-speed LAN with multiple physical links per
node ("two complete networks, including two network interfaces in each
processing node"), and Section 4.1 sizes the load at about seven
megabits per second — enough to saturate a 10 Mbit/s network, halved
if multicast is available.

The model:

* a LAN is a shared medium with finite bandwidth — transmissions
  serialize through one :class:`~repro.sim.resources.Resource`, which is
  what makes saturation visible;
* per-packet propagation/interface latency is constant;
* loss and duplication are independent Bernoulli events per packet
  (local networks are inherently reliable, so rates default to 0 and
  tests raise them to exercise recovery);
* multicast delivers one transmission to many receivers, charging the
  medium once — the halving Section 4.1 describes;
* :class:`DualLan` stripes over two networks and fails over when one
  is down.

Every node owns a :class:`~repro.sim.resources.Channel` per network —
its NIC receive queue, able to absorb back-to-back packets.
"""

from __future__ import annotations

import random
from typing import Iterable

from ..sim.kernel import Simulator
from ..sim.resources import Channel, Resource
from ..sim.stats import Counter
from .packet import Packet


class Lan:
    """One shared-medium network."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float = 10e6,
        latency_s: float = 200e-6,
        loss_prob: float = 0.0,
        dup_prob: float = 0.0,
        rng: random.Random | None = None,
        name: str = "lan",
    ):
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth must be positive")
        if not (0 <= loss_prob < 1 and 0 <= dup_prob < 1):
            raise ValueError("loss/dup probabilities must be in [0, 1)")
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.latency_s = latency_s
        self.loss_prob = loss_prob
        self.dup_prob = dup_prob
        self.rng = rng if rng is not None else random.Random(0)
        self.name = name
        self.medium = Resource(sim, capacity=1, name=f"{name}.medium")
        self._nics: dict[str, Channel] = {}
        self.up = True
        # traffic accounting for the Section 4.1 experiment
        self.packets_sent = Counter(f"{name}.packets")
        self.bytes_sent = Counter(f"{name}.bytes")
        self.packets_lost = 0
        self.packets_duplicated = 0

    def attach(self, node_id: str) -> Channel:
        """Register a node; returns its NIC receive queue."""
        if node_id in self._nics:
            return self._nics[node_id]
        nic = Channel(self.sim, name=f"{self.name}.nic.{node_id}")
        self._nics[node_id] = nic
        return nic

    def nic(self, node_id: str) -> Channel:
        return self._nics[node_id]

    def transmission_time(self, packet: Packet) -> float:
        return packet.wire_size * 8 / self.bandwidth_bps

    def send(self, packet: Packet):
        """Transmit ``packet`` to its destination.  ``yield from`` me.

        Holds the medium for the transmission time, then delivers after
        the propagation latency.  Loss and duplication are decided per
        delivery.  Sending on a downed network silently drops (the
        sender's timeout machinery notices).
        """
        return self._transmit(packet, [packet.dst])

    def multicast(self, packet: Packet, destinations: Iterable[str]):
        """One transmission, many receivers (Section 4.1's halving)."""
        return self._transmit(packet, list(destinations))

    def _transmit(self, packet: Packet, destinations: list[str]):
        # medium.use() inlined — this generator runs once per packet on
        # the wire, and the extra delegation layer is measurable.
        medium = self.medium
        yield medium.acquire()
        try:
            yield self.sim.timeout(
                packet.wire_size * 8 / self.bandwidth_bps
            )
        finally:
            medium.release()
            medium.total_served += 1
        # Counter.add inlined (once per transmission).
        c = self.packets_sent
        c.count += 1
        c.total += 1.0
        c = self.bytes_sent
        c.count += 1
        c.total += packet.wire_size
        if not self.up:
            self.packets_lost += len(destinations)
            return
        if self.loss_prob == 0.0 and self.dup_prob == 0.0:
            # Reliable-LAN fast path (the default configuration): no
            # rng draws per delivery.  Each Lan owns its rng, so
            # skipping draws cannot perturb any other random stream.
            for dst in destinations:
                self._deliver(packet, dst)
            return
        for dst in destinations:
            if self.rng.random() < self.loss_prob:
                self.packets_lost += 1
                continue
            copies = 1
            if self.rng.random() < self.dup_prob:
                copies = 2
                self.packets_duplicated += 1
            for _ in range(copies):
                self._deliver(packet, dst)

    def _deliver(self, packet: Packet, dst: str) -> None:
        nic = self._nics.get(dst)
        if nic is None:
            self.packets_lost += 1
            return
        # nic.put is the delivery callback directly — no closure per
        # packet in flight.
        self.sim._schedule_at(self.sim.now + self.latency_s, nic.put, packet)

    # failure injection ------------------------------------------------------

    def crash(self) -> None:
        self.up = False

    def restart(self) -> None:
        self.up = True

    def utilization(self) -> float:
        return self.medium.utilization()


class DualLan:
    """Two redundant networks with a shared address space.

    Traffic is striped across both networks while both are up (halving
    per-network load); if one is down, all traffic uses the other.
    Receivers must drain both NICs — :meth:`attach` returns both
    channels.
    """

    def __init__(self, net_a: Lan, net_b: Lan):
        self.sim = net_a.sim
        self.nets = (net_a, net_b)
        self._stripe = 0

    def attach(self, node_id: str) -> tuple[Channel, Channel]:
        return (self.nets[0].attach(node_id), self.nets[1].attach(node_id))

    def _pick(self) -> Lan:
        up = [n for n in self.nets if n.up]
        if not up:
            # both down: pick one; the send will be dropped and the
            # sender's retry logic takes over.
            return self.nets[0]
        self._stripe += 1
        return up[self._stripe % len(up)]

    def send(self, packet: Packet):
        # returns the picked network's transmit generator directly, so
        # ``yield from`` callers pay one delegation layer, not three.
        return self._pick().send(packet)

    def multicast(self, packet: Packet, destinations: Iterable[str]):
        return self._pick().multicast(packet, destinations)

    @property
    def packets_sent(self) -> int:
        return sum(n.packets_sent.count for n in self.nets)

    @property
    def bytes_sent(self) -> float:
        return sum(n.bytes_sent.total for n in self.nets)

    def utilization(self) -> tuple[float, float]:
        return (self.nets[0].utilization(), self.nets[1].utilization())

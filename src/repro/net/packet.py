"""Packet framing for the simulated LAN.

"Simple, error free RPCs should be performed using only a single packet
for each request and reply" (Section 4.1).  The packet carries one
protocol message plus the transport header Watson-style connections
need: permanently unique sequence numbers and a window allocation
("an allocation inserted in every packet specifies the highest sequence
number the other party is permitted to send without waiting").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

#: Maximum transmission unit of the modelled LAN.
PACKET_MTU_BYTES = 1500
#: Transport + link header: addresses, connection id, sequence number,
#: allocation, checksum.
PACKET_HEADER_BYTES = 64
#: Payload budget for log records and replies.
PACKET_PAYLOAD_BYTES = PACKET_MTU_BYTES - PACKET_HEADER_BYTES

_packet_ids = itertools.count(1)


@dataclass(slots=True)
class Packet:
    """One frame on the wire.

    Not frozen: one packet is built per transmission, and a frozen
    dataclass pays ``object.__setattr__`` per field at construction.
    Treat instances as immutable regardless.
    """

    src: str
    dst: str
    #: connection identifier (unique per handshake instance).
    conn_id: int
    #: per-connection sequence number; with the conn_id it is
    #: permanently unique, so duplicates are detectable across crashes.
    seq: int
    #: flow-control allocation: highest seq the receiver grants the
    #: other party.
    allocation: int
    #: protocol message, or a transport control marker (SYN/SYNACK/ACK).
    payload: Any
    #: kind tag: "data" | "syn" | "synack" | "ack".
    kind: str = "data"
    #: globally unique frame id (diagnostics; re-used by duplicates).
    frame_id: int = field(default_factory=_packet_ids.__next__)
    #: total frame bytes, computed once at construction: the LAN model
    #: reads it several times per transmission, and message payloads
    #: recompute their record sums on every access.
    wire_size: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.wire_size = PACKET_HEADER_BYTES + getattr(self.payload, "wire_size", 0)

    def duplicate(self) -> "Packet":
        """A byte-identical duplicate (same frame id) for dup injection."""
        return self


def fits_in_packet(payload_size: int) -> bool:
    """Whether a payload of ``payload_size`` bytes fits in one packet."""
    return payload_size <= PACKET_PAYLOAD_BYTES

"""Synchronous remote procedure calls over a connection.

"The interface presented here includes strict RPCs for infrequently
used operations, such as for reading log records, and asynchronous
messages for writing and acknowledging log records" (Section 4.2).

The RPC layer is a thin envelope: each request carries an id, the reply
echoes it.  Error recovery is timeout + bounded retry; an exhausted
budget surfaces as :class:`~repro.core.errors.ServerUnavailable`, which
the replication algorithm treats as that server being down.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Generator

from ..core.errors import ServerUnavailable
from ..sim.kernel import Simulator
from .transport import Connection

_rpc_ids = itertools.count(1)

DEFAULT_RPC_TIMEOUT_S = 0.5
DEFAULT_RPC_RETRIES = 2


@dataclass(slots=True)
class RpcRequest:
    rpc_id: int
    body: Any

    @property
    def wire_size(self) -> int:
        return 8 + getattr(self.body, "wire_size", 0)


@dataclass(slots=True)
class RpcReply:
    rpc_id: int
    body: Any

    @property
    def wire_size(self) -> int:
        return 8 + getattr(self.body, "wire_size", 0)


class RpcClient:
    """Issues synchronous calls over one connection.

    The owner must pump :meth:`dispatch` with every inbound message it
    drains that is an :class:`RpcReply` (the client node's receive loop
    handles both RPC replies and asynchronous server messages on the
    same connection, so demux lives with the owner).
    """

    def __init__(self, sim: Simulator, conn: Connection):
        self.sim = sim
        self.conn = conn
        self._pending: dict[int, Any] = {}
        self.calls = 0
        self.retries = 0

    def dispatch(self, reply: RpcReply) -> bool:
        """Route an inbound reply to its waiting caller.

        Returns True if the reply matched a pending call (duplicates
        and stale replies return False and are dropped).
        """
        waiter = self._pending.pop(reply.rpc_id, None)
        if waiter is None or waiter.triggered:
            return False
        waiter.succeed(reply.body)
        return True

    def call(
        self,
        body: Any,
        timeout_s: float = DEFAULT_RPC_TIMEOUT_S,
        retries: int = DEFAULT_RPC_RETRIES,
    ) -> Generator:
        """Perform one synchronous call; ``yield from`` me; returns the reply.

        Retransmits the request on timeout (same rpc_id, so a duplicated
        reply is idempotent), then gives up with ServerUnavailable.
        """
        rpc_id = next(_rpc_ids)
        request = RpcRequest(rpc_id, body)
        self.calls += 1
        for attempt in range(retries + 1):
            waiter = self.sim.event(f"rpc-{rpc_id}")
            self._pending[rpc_id] = waiter
            yield from self.conn.send(request)
            result = yield self.sim.any_of(
                [waiter, self.sim.timeout(timeout_s)]
            )
            if waiter.triggered:
                return result
            self._pending.pop(rpc_id, None)
            if attempt < retries:
                self.retries += 1
        raise ServerUnavailable(self.conn.remote_id, "rpc timed out")


def serve_rpc(
    sim: Simulator,
    conn: Connection,
    handler: Callable[[Any], Generator],
):
    """Serve RPC requests arriving on ``conn``; run as a process.

    ``handler(body)`` is a generator (so it can charge CPU and disk
    time) returning the reply body.  Non-RPC messages are ignored here;
    servers that mix asynchronous traffic run their own loop instead
    and call the handler directly.
    """
    while True:
        message = yield conn.inbox.get()
        if not isinstance(message, RpcRequest):
            continue
        reply_body = yield from handler(message.body)
        yield from conn.send(RpcReply(message.rpc_id, reply_body))

"""Watson-style connections: handshake, sequencing, flow control.

Section 4.2, following Watson's tutorial: "To establish communication
with a log server, a client initiates a three way handshake.  Both
client and server then maintain a small amount of state while the
connection is active.  This allows packets to contain permanently
unique sequence numbers, and permits duplicate packets to be detected
even across a crash of the receiving node.  All calls participate in a
moving window flow control strategy at the packet level."

Design points taken straight from the paper:

* **Permanently unique sequence numbers** — every handshake mints a
  fresh connection id from a global incarnation counter, and sequence
  numbers are per-connection; a (conn_id, seq) pair is never reused, so
  duplicates are detectable even across a crash of the receiver.
* **Moving-window allocations** — every packet carries the highest
  sequence number the sender grants its peer; a sender out of
  allocation waits, unless it has paused ``override_pause_s`` since its
  last packet, in which case it may exceed the allocation (the paper's
  deadlock-prevention rule).
* **No transport-level retransmission of data** — per the end-to-end
  argument, loss recovery belongs to the log protocol itself
  (ForceLog retries, MissingInterval NAKs).  The transport only
  sequences, deduplicates, and flow-controls.
"""

from __future__ import annotations

import itertools
from typing import Any

from ..core.errors import ServerUnavailable
from ..sim.kernel import Event, Interrupt, Simulator
from ..sim.resources import Channel
from .packet import Packet

#: Receive window, in packets, granted to a peer.
DEFAULT_WINDOW = 64
#: Pause after which a sender may exceed its allocation (the paper says
#: "several seconds").
OVERRIDE_PAUSE_S = 3.0
#: Handshake retry interval and attempt budget.
HANDSHAKE_TIMEOUT_S = 0.5
HANDSHAKE_ATTEMPTS = 3

_incarnations = itertools.count(1)


class Connection:
    """One direction-symmetric connection between two endpoints."""

    def __init__(self, endpoint: "Endpoint", local_conn_id: int,
                 remote_id: str, remote_conn_id: int):
        self.endpoint = endpoint
        self.sim = endpoint.sim
        self.conn_id = local_conn_id
        self.remote_id = remote_id
        self.remote_conn_id = remote_conn_id
        self.inbox: Channel = Channel(self.sim, name=f"conn{local_conn_id}.inbox")
        self.inbox.consume_hook = self._on_consumed
        # send side
        self._next_seq = 1
        self._peer_allocation = DEFAULT_WINDOW
        self._last_send_time = -OVERRIDE_PAUSE_S
        self._alloc_waiters: list[Event] = []
        # receive side
        self._delivered_through = 0  # cumulative in-order high mark
        self._seen_out_of_order: set[int] = set()
        self._granted = DEFAULT_WINDOW
        self.open = True
        # stats
        self.sent_packets = 0
        self.received_packets = 0
        self.duplicate_packets = 0
        self.allocation_stalls = 0

    # -- sending ---------------------------------------------------------

    def send(self, message: Any):
        """Send one message; ``yield from`` me.

        Blocks while out of allocation, up to the override pause, then
        proceeds anyway (at most one packet per pause interval), which
        prevents window deadlock after a lost window update.
        """
        while self._next_seq > self._peer_allocation and self.open:
            since_last = self.sim.now - self._last_send_time
            if since_last >= OVERRIDE_PAUSE_S:
                break  # allowed to exceed allocation after the pause
            self.allocation_stalls += 1
            waiter = self.sim.event("alloc-wait")
            self._alloc_waiters.append(waiter)
            timeout = self.sim.timeout(OVERRIDE_PAUSE_S - since_last)
            yield self.sim.any_of([waiter, timeout])
        if not self.open:
            raise ServerUnavailable(self.remote_id, "connection closed")
        # _current_grant() inlined (one call per data packet).
        grant = self.inbox.total_got + DEFAULT_WINDOW
        self._granted = grant
        packet = Packet(
            src=self.endpoint.node_id,
            dst=self.remote_id,
            conn_id=self.remote_conn_id,
            seq=self._next_seq,
            allocation=grant,
            payload=message,
        )
        self._next_seq += 1
        self._last_send_time = self.sim.now
        self.sent_packets += 1
        yield from self.endpoint.network.send(packet)

    def _current_grant(self) -> int:
        """Allocation tracks what the application has *consumed*.

        Granting on consumption (not mere delivery) is what makes the
        window actually exert back-pressure on a sender outpacing the
        receiving process.
        """
        self._granted = self.inbox.total_got + DEFAULT_WINDOW
        return self._granted

    # -- receiving (called by the endpoint's demux loop) --------------------

    def handle(self, packet: Packet) -> None:
        # _note_allocation inlined — handle() runs once per received
        # packet, and fresh allocation rides on nearly all of them.
        allocation = packet.allocation
        if allocation > self._peer_allocation:
            self._peer_allocation = allocation
            if self._alloc_waiters:
                waiters, self._alloc_waiters = self._alloc_waiters, []
                for waiter in waiters:
                    if not waiter.triggered:
                        waiter.succeed()
        if packet.kind != "data":
            return
        seq = packet.seq
        if seq <= self._delivered_through or seq in self._seen_out_of_order:
            self.duplicate_packets += 1
            return
        if seq == self._delivered_through + 1:
            self._delivered_through = seq
            while self._delivered_through + 1 in self._seen_out_of_order:
                self._delivered_through += 1
                self._seen_out_of_order.remove(self._delivered_through)
        else:
            self._seen_out_of_order.add(seq)
        self.received_packets += 1
        self.inbox.put(packet.payload)

    def _note_allocation(self, allocation: int) -> None:
        if allocation > self._peer_allocation:
            self._peer_allocation = allocation
            waiters, self._alloc_waiters = self._alloc_waiters, []
            for waiter in waiters:
                if not waiter.triggered:
                    waiter.succeed()

    def _on_consumed(self) -> None:
        """Grant fresh allocation when half the window has been consumed.

        "Each party attempts to supply the other with unused allocation
        at all times."  Updates piggyback on data packets; this sends a
        bare allocation packet only when the grant is getting stale.
        """
        if not self.open:
            return
        if self.inbox.total_got + DEFAULT_WINDOW - self._granted < DEFAULT_WINDOW // 2:
            return

        def pump():
            packet = Packet(
                src=self.endpoint.node_id,
                dst=self.remote_id,
                conn_id=self.remote_conn_id,
                seq=0,
                allocation=self._current_grant(),
                payload=None,
                kind="ack",
            )
            yield from self.endpoint.network.send(packet)

        self.endpoint.sim.spawn(pump(), name="window-update")

    def close(self) -> None:
        self.open = False
        waiters, self._alloc_waiters = self._alloc_waiters, []
        for waiter in waiters:
            if not waiter.triggered:
                waiter.succeed()


class Endpoint:
    """One node's attachment to the network: demux + handshake engine."""

    def __init__(self, sim: Simulator, network: Any, node_id: str):
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self._nics = self._attach(network, node_id)
        self._connections: dict[int, Connection] = {}
        self._pending_syn: dict[int, Event] = {}
        #: (src, client_conn_id) -> local conn id; lets a retransmitted
        #: SYN re-elicit the same SYNACK instead of minting an orphan
        #: connection nobody accepts.
        self._syn_table: dict[tuple[str, int], int] = {}
        self.accept_queue: Channel = Channel(sim, name=f"{node_id}.accept")
        self.crashed = False
        # Demux runs synchronously in each packet's delivery event:
        # routing a packet never blocks, so a demux *process* would
        # only add a kernel event and a generator resumption per
        # packet between the NIC and the connection inbox.
        for nic in self._nics:
            nic.receiver = self._demux_packet

    @staticmethod
    def _attach(network: Any, node_id: str) -> list[Channel]:
        attached = network.attach(node_id)
        if isinstance(attached, tuple):
            return list(attached)
        return [attached]

    # -- demultiplexing ------------------------------------------------------

    def _demux_packet(self, packet: Packet) -> None:
        if self.crashed:
            return  # a down node receives nothing
        if packet.kind == "syn":
            self._handle_syn(packet)
        elif packet.kind == "synack":
            waiter = self._pending_syn.pop(packet.conn_id, None)
            if waiter is not None and not waiter.triggered:
                waiter.succeed(packet)
        else:
            conn = self._connections.get(packet.conn_id)
            if conn is not None:
                conn.handle(packet)
            # packets for unknown (stale) connections are dropped:
            # this is exactly the cross-crash duplicate rejection the
            # permanently unique connection ids buy us.

    def _handle_syn(self, packet: Packet) -> None:
        remote_conn_id = packet.payload  # client's conn id rides in the SYN
        key = (packet.src, remote_conn_id)
        existing = self._syn_table.get(key)
        if existing is not None:
            local_conn_id = existing  # duplicate SYN: re-acknowledge
        else:
            local_conn_id = next(_incarnations)
            conn = Connection(self, local_conn_id, packet.src, remote_conn_id)
            self._connections[local_conn_id] = conn
            self._syn_table[key] = local_conn_id
            self.accept_queue.put(conn)

        def reply():
            synack = Packet(
                src=self.node_id, dst=packet.src,
                conn_id=remote_conn_id, seq=0,
                allocation=DEFAULT_WINDOW,
                payload=local_conn_id, kind="synack",
            )
            yield from self.network.send(synack)

        self.sim.spawn(reply(), name="synack")

    # -- connecting -----------------------------------------------------------

    def connect(self, remote_id: str):
        """Three-way handshake; ``yield from`` me; returns a Connection.

        Raises :class:`ServerUnavailable` after the attempt budget.
        """
        local_conn_id = next(_incarnations)
        for _attempt in range(HANDSHAKE_ATTEMPTS):
            syn = Packet(
                src=self.node_id, dst=remote_id,
                conn_id=0, seq=0, allocation=DEFAULT_WINDOW,
                payload=local_conn_id, kind="syn",
            )
            waiter = self.sim.event("synack-wait")
            self._pending_syn[local_conn_id] = waiter
            yield from self.network.send(syn)
            result = yield self.sim.any_of(
                [waiter, self.sim.timeout(HANDSHAKE_TIMEOUT_S)]
            )
            if isinstance(result, Packet):
                remote_conn_id = result.payload
                conn = Connection(self, local_conn_id, remote_id, remote_conn_id)
                self._connections[local_conn_id] = conn
                # third leg of the handshake: a bare ack
                ack = Packet(
                    src=self.node_id, dst=remote_id,
                    conn_id=remote_conn_id, seq=0,
                    allocation=DEFAULT_WINDOW, payload=None, kind="ack",
                )
                yield from self.network.send(ack)
                return conn
            self._pending_syn.pop(local_conn_id, None)
        raise ServerUnavailable(remote_id, "handshake timed out")

    def accept(self):
        """Wait for an inbound connection; ``yield from`` me."""
        conn = yield self.accept_queue.get()
        return conn

    # -- crash lifecycle ---------------------------------------------------------

    def crash(self) -> None:
        """Drop all connection state; stop receiving until restart."""
        self.crashed = True
        for conn in self._connections.values():
            conn.close()
        self._connections.clear()
        self._pending_syn.clear()
        self._syn_table.clear()

    def restart(self) -> None:
        self.crashed = False

"""The client ↔ log-server message set of Figure 4-1 (Section 4.2).

Asynchronous messages from client to log server::

    WriteLog(ClientId, EpochNum, LSNs, LogRecords)
    ForceLog(ClientId, EpochNum, LSNs, LogRecords)
    NewInterval(ClientId, EpochNum, StartingLSN)

Asynchronous messages from log server to client::

    NewHighLSN(NewHighLSN)
    MissingInterval(MissingInterval)

Synchronous calls from client to log server::

    IntervalList(ClientId) -> IntervalList
    ReadLogForward(ClientId, LSN) -> LSNs, LogRecords, PresentFlags
    ReadLogBackward(ClientId, LSN) -> LSNs, LogRecords, PresentFlags
    CopyLog(ClientId, EpochNum, LSNs, LogRecords, PresentFlags)
    InstallCopies(ClientId, EpochNum)

All messages are small dataclasses with a ``wire_size`` so the
LAN model can charge transmission time.  Multi-record messages carry
consecutive LSNs ("client processes and log servers attempt to pack as
many log records as will fit in a network packet in each call").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.intervals import Interval
from ..core.records import Epoch, LSN, StoredRecord

#: Per-record wire overhead: LSN, epoch, flags, length.
RECORD_HEADER_BYTES = 16
#: Fixed message overhead: type, client id, epoch, counts.
MESSAGE_HEADER_BYTES = 32


def records_wire_size(records: tuple[StoredRecord, ...]) -> int:
    return sum(RECORD_HEADER_BYTES + len(r.data) for r in records)


@dataclass(slots=True)
class Message:
    """Base for all protocol messages."""

    client_id: str

    @property
    def wire_size(self) -> int:
        return MESSAGE_HEADER_BYTES


def _check_consecutive(records: tuple[StoredRecord, ...], epoch: Epoch) -> None:
    for prev, cur in zip(records, records[1:]):
        if cur.lsn != prev.lsn + 1:
            raise ValueError(
                f"message records must have consecutive LSNs: "
                f"{prev.lsn} then {cur.lsn}"
            )
    for rec in records:
        if rec.epoch != epoch:
            raise ValueError(
                f"record epoch {rec.epoch} differs from message epoch {epoch}"
            )


# -- asynchronous, client -> server ---------------------------------------


@dataclass(slots=True)
class WriteLogMsg(Message):
    """Buffered write: no acknowledgment requested."""

    epoch: Epoch = 0
    records: tuple[StoredRecord, ...] = ()

    def __post_init__(self) -> None:
        if not self.records:
            raise ValueError("WriteLog carries at least one record")
        _check_consecutive(self.records, self.epoch)

    @classmethod
    def trusted(cls, client_id: str, epoch: Epoch,
                records: tuple[StoredRecord, ...]):
        """Build without re-validating ``records``.

        For the client's own send path: it assigns consecutive LSNs
        and a uniform epoch by construction, so the ``__post_init__``
        scan over the batch is pure overhead there.  Anything arriving
        off the wire still goes through the validating constructor.
        """
        msg = cls.__new__(cls)
        msg.client_id = client_id
        msg.epoch = epoch
        msg.records = records
        return msg

    @property
    def wire_size(self) -> int:
        return MESSAGE_HEADER_BYTES + records_wire_size(self.records)

    @property
    def low_lsn(self) -> LSN:
        return self.records[0].lsn

    @property
    def high_lsn(self) -> LSN:
        return self.records[-1].lsn


@dataclass(slots=True)
class ForceLogMsg(WriteLogMsg):
    """Write requiring an immediate NewHighLSN acknowledgment.

    "A client writes log records with the ForceLog message when it
    needs an immediate acknowledgment, and with the WriteLog message
    when it does not."
    """


@dataclass(slots=True)
class NewIntervalMsg(Message):
    """Tell the server to start a new interval at ``starting_lsn``.

    Sent in response to MissingInterval when the missing records were
    already written elsewhere (the client switched servers).
    """

    epoch: Epoch = 0
    starting_lsn: LSN = 1


# -- asynchronous, server -> client ---------------------------------------


@dataclass(slots=True)
class NewHighLSNMsg(Message):
    """Acknowledgment: all records up to ``new_high_lsn`` are durable here.

    ``client_id`` names the client whose log is acknowledged (the
    server serves many clients over one transport endpoint).
    """

    new_high_lsn: LSN = 0


@dataclass(slots=True)
class MissingIntervalMsg(Message):
    """Negative acknowledgment: the server saw a gap ``[lo, hi]``.

    "A server detects lost messages when it receives a ForceLog or
    WriteLog message with log sequence numbers that are not contiguous
    with those it has previously received from the same client."
    """

    lo: LSN = 0
    hi: LSN = 0


# -- synchronous calls -------------------------------------------------------


@dataclass(slots=True)
class IntervalListCall(Message):
    """Request the server's interval list for this client."""


@dataclass(slots=True)
class IntervalListReply(Message):
    intervals: tuple[Interval, ...] = ()

    @property
    def wire_size(self) -> int:
        # three integers per interval, as the paper counts them
        return MESSAGE_HEADER_BYTES + 12 * len(self.intervals)


@dataclass(slots=True)
class ReadLogForwardCall(Message):
    """Read records with LSNs >= ``lsn``, as many as fit in a packet."""

    lsn: LSN = 1


@dataclass(slots=True)
class ReadLogBackwardCall(Message):
    """Read records with LSNs <= ``lsn``, as many as fit in a packet."""

    lsn: LSN = 1


@dataclass(slots=True)
class ReadLogReply(Message):
    """Records with present flags; empty if the server stores none."""

    records: tuple[StoredRecord, ...] = ()

    @property
    def wire_size(self) -> int:
        return MESSAGE_HEADER_BYTES + records_wire_size(self.records)


@dataclass(slots=True)
class CopyLogCall(Message):
    """Stage recovery copies (accepted below the high-water mark)."""

    epoch: Epoch = 0
    records: tuple[StoredRecord, ...] = ()

    def __post_init__(self) -> None:
        if not self.records:
            raise ValueError("CopyLog carries at least one record")
        for rec in self.records:
            if rec.epoch != self.epoch:
                raise ValueError("CopyLog records must carry the call epoch")

    @property
    def wire_size(self) -> int:
        return MESSAGE_HEADER_BYTES + records_wire_size(self.records)


@dataclass(slots=True)
class InstallCopiesCall(Message):
    """Atomically install all records staged under ``epoch``."""

    epoch: Epoch = 0


@dataclass(slots=True)
class AckReply(Message):
    """Generic success reply for CopyLog / InstallCopies."""

    ok: bool = True


#: ErrorReply codes — a closed registry so clients can react to the
#: *class* of failure without parsing the human-readable reason.
ERR_GENERIC = 0
#: The server's durable storage failed (disk full, IO error); the
#: daemon degrades to read-only instead of dropping the connection.
ERR_STORAGE = 1
#: The request violated the protocol (bad epoch, conflicting rewrite).
ERR_PROTOCOL = 2
#: The tenant is over an admission quota (streams or records/s).  A
#: fleet-wide condition, not a per-server one: the client should back
#: off and retry, not switch servers.
ERR_QUOTA = 3
#: The stream was fenced at a higher ownership epoch (a linearizable
#: handoff took the log away from this writer).  Terminal for the old
#: owner: neither retrying nor switching servers can ever succeed.
ERR_FENCED = 4


@dataclass(slots=True)
class ErrorReply(Message):
    """Typed failure reply for synchronous calls.

    ``code`` classifies the failure (``ERR_*``); ``reason`` is the
    human-readable detail.  A storage failure (``ERR_STORAGE``) is a
    per-server condition — the client routes around it exactly like a
    crashed server, but the TCP connection stays up for reads.
    """

    reason: str = ""
    code: int = ERR_GENERIC

    @property
    def wire_size(self) -> int:
        return MESSAGE_HEADER_BYTES + len(self.reason.encode("utf-8"))


# -- keep-alive probes (runtime hardening) ----------------------------------
#
# The paper's availability argument (Section 3.2) assumes a client can
# cheaply abandon a misbehaving server for a spare.  A *hung* server —
# stopped, swapped out, wedged behind a full disk queue — keeps its TCP
# connection "established" indefinitely, so liveness needs an
# application-level probe: the client pings an idle connection and
# demotes the server after a couple of unanswered probes, far faster
# than one full call timeout.


@dataclass(slots=True)
class PingMsg(Message):
    """Client keep-alive probe; the server echoes ``token`` in a Pong."""

    token: int = 0


@dataclass(slots=True)
class PongMsg(Message):
    """Server reply to a Ping, echoing its ``token``."""

    token: int = 0


# -- Section 5.3: log space management ---------------------------------------


@dataclass(slots=True)
class TruncateLogCall(Message):
    """Client-driven truncation: records below ``low_water_lsn`` are no
    longer needed for this client's node or media recovery.

    "Client recovery managers can use checkpoints and other mechanisms
    to limit the online log storage required for node recovery"
    (Section 5.3) — this call carries the resulting low-water mark to a
    log server, which may drop every stored record of this client with
    a lower LSN and compact its append stream.

    ``epoch`` is the caller's ownership epoch, checked against the
    stream's fence.  Epoch 0 marks a legacy/unfenced caller: it passes
    only while no fence has ever been installed for the stream.
    """

    low_water_lsn: LSN = 1
    epoch: Epoch = 0


@dataclass(slots=True)
class TruncateReply(Message):
    """Acknowledges a TruncateLog: the applied mark and records dropped."""

    low_water_lsn: LSN = 1
    records_dropped: int = 0


# -- ownership fencing (linearizable handoff) ---------------------------------
#
# The paper restricts each log to a single client; fencing is what
# makes *changing* that client safe under partitions.  A new owner
# draws a higher epoch from the Appendix-I generator quorum and
# installs it as the stream's fence on at least M−N+1 servers — every
# N-server write set intersects that quorum, so any in-flight
# WriteLog/ForceLog/TruncateLog from the old owner (whose epoch is now
# below the fence) is refused with ``ERR_FENCED`` before a byte is
# appended.  The fence is durable: a server that crashes and recovers
# still refuses the fenced writer.


@dataclass(slots=True)
class FenceLogCall(Message):
    """Install ``epoch`` as the fence for this client's stream.

    Monotone: a fence below the stream's current fence is refused
    (``ERR_FENCED`` carries the standing fence), so two racing
    takeovers linearize on the generator epoch order.
    """

    epoch: Epoch = 0


@dataclass(slots=True)
class FenceReply(Message):
    """Acknowledges a FenceLog: the stream's standing fence epoch."""

    epoch: Epoch = 0


# -- stats (the operator/metrics endpoint) -----------------------------------

#: Counter names carried by :class:`StatsReply`, in wire order.  The
#: tuple is part of the wire contract: both ends index into it.
STATS_COUNTERS: tuple[str, ...] = (
    "messages_handled",
    "missing_intervals_sent",
    "forces_acked",
    "pings_answered",
    "bytes_appended",
    "log_bytes",
    "store_records",
    "truncations",
    "truncated_lsn",       # this client's low-water mark (0 = never)
    "storage_errors",
    "injected_faults",     # faults the I/O backend injected (chaos runs)
    "recovery_replays",    # entries replayed from log.dat at last start
    "crc_rejections",      # complete-but-corrupt entries CRC rejected
    # group-commit observability (appended: old replies simply lack them)
    "fsyncs",              # log-file fsyncs issued, per-entry and grouped
    "records_per_fsync",   # records_appended // fsyncs — the batching win
    "forces_coalesced",    # forces that rode a shared group fsync
    "send_iovecs",         # buffers handed to vectored reply writes
    # multi-tenant admission (appended after the group-commit block)
    "quota_rejections",    # writes/forces refused with ERR_QUOTA
    "tenant_streams",      # distinct client streams admitted, all tenants
    # ownership fencing (appended after the admission block)
    "fence_rejections",    # writes/forces/truncates refused with ERR_FENCED
    "fence_epoch",         # this client's standing fence (0 = unfenced)
)


@dataclass(slots=True)
class StatsCall(Message):
    """Ask a daemon for its counters (``repro stats HOST:PORT``)."""


@dataclass(slots=True)
class StatsReply(Message):
    """Daemon counters, one u64 per :data:`STATS_COUNTERS` entry."""

    counters: tuple[int, ...] = ()

    @property
    def wire_size(self) -> int:
        return MESSAGE_HEADER_BYTES + 8 * len(self.counters)

    def as_dict(self) -> dict[str, int]:
        return dict(zip(STATS_COUNTERS, self.counters))


# -- Appendix I: generator-state representative calls --------------------------
#
# "Representatives of a replicated identifier generator's state will
# normally be implemented on log server nodes" — so the Read and Write
# operations of Appendix I travel over the same connections as the log
# traffic.  ``client_id`` is unused (the generator is a node-level
# service) but kept for the common message shape.


@dataclass(slots=True)
class GeneratorReadCall(Message):
    """Read the representative's stored integer."""


@dataclass(slots=True)
class GeneratorReadReply(Message):
    value: int = 0


@dataclass(slots=True)
class GeneratorWriteCall(Message):
    """Write a (higher) integer to the representative."""

    value: int = 0

"""The client ↔ log-server message set of Figure 4-1 (Section 4.2).

Asynchronous messages from client to log server::

    WriteLog(ClientId, EpochNum, LSNs, LogRecords)
    ForceLog(ClientId, EpochNum, LSNs, LogRecords)
    NewInterval(ClientId, EpochNum, StartingLSN)

Asynchronous messages from log server to client::

    NewHighLSN(NewHighLSN)
    MissingInterval(MissingInterval)

Synchronous calls from client to log server::

    IntervalList(ClientId) -> IntervalList
    ReadLogForward(ClientId, LSN) -> LSNs, LogRecords, PresentFlags
    ReadLogBackward(ClientId, LSN) -> LSNs, LogRecords, PresentFlags
    CopyLog(ClientId, EpochNum, LSNs, LogRecords, PresentFlags)
    InstallCopies(ClientId, EpochNum)

All messages are small dataclasses with a ``wire_size`` so the
LAN model can charge transmission time.  Multi-record messages carry
consecutive LSNs ("client processes and log servers attempt to pack as
many log records as will fit in a network packet in each call").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.intervals import Interval
from ..core.records import Epoch, LSN, StoredRecord

#: Per-record wire overhead: LSN, epoch, flags, length.
RECORD_HEADER_BYTES = 16
#: Fixed message overhead: type, client id, epoch, counts.
MESSAGE_HEADER_BYTES = 32


def records_wire_size(records: tuple[StoredRecord, ...]) -> int:
    return sum(RECORD_HEADER_BYTES + len(r.data) for r in records)


@dataclass(slots=True)
class Message:
    """Base for all protocol messages."""

    client_id: str

    @property
    def wire_size(self) -> int:
        return MESSAGE_HEADER_BYTES


def _check_consecutive(records: tuple[StoredRecord, ...], epoch: Epoch) -> None:
    for prev, cur in zip(records, records[1:]):
        if cur.lsn != prev.lsn + 1:
            raise ValueError(
                f"message records must have consecutive LSNs: "
                f"{prev.lsn} then {cur.lsn}"
            )
    for rec in records:
        if rec.epoch != epoch:
            raise ValueError(
                f"record epoch {rec.epoch} differs from message epoch {epoch}"
            )


# -- asynchronous, client -> server ---------------------------------------


@dataclass(slots=True)
class WriteLogMsg(Message):
    """Buffered write: no acknowledgment requested."""

    epoch: Epoch = 0
    records: tuple[StoredRecord, ...] = ()

    def __post_init__(self) -> None:
        if not self.records:
            raise ValueError("WriteLog carries at least one record")
        _check_consecutive(self.records, self.epoch)

    @property
    def wire_size(self) -> int:
        return MESSAGE_HEADER_BYTES + records_wire_size(self.records)

    @property
    def low_lsn(self) -> LSN:
        return self.records[0].lsn

    @property
    def high_lsn(self) -> LSN:
        return self.records[-1].lsn


@dataclass(slots=True)
class ForceLogMsg(WriteLogMsg):
    """Write requiring an immediate NewHighLSN acknowledgment.

    "A client writes log records with the ForceLog message when it
    needs an immediate acknowledgment, and with the WriteLog message
    when it does not."
    """


@dataclass(slots=True)
class NewIntervalMsg(Message):
    """Tell the server to start a new interval at ``starting_lsn``.

    Sent in response to MissingInterval when the missing records were
    already written elsewhere (the client switched servers).
    """

    epoch: Epoch = 0
    starting_lsn: LSN = 1


# -- asynchronous, server -> client ---------------------------------------


@dataclass(slots=True)
class NewHighLSNMsg(Message):
    """Acknowledgment: all records up to ``new_high_lsn`` are durable here.

    ``client_id`` names the client whose log is acknowledged (the
    server serves many clients over one transport endpoint).
    """

    new_high_lsn: LSN = 0


@dataclass(slots=True)
class MissingIntervalMsg(Message):
    """Negative acknowledgment: the server saw a gap ``[lo, hi]``.

    "A server detects lost messages when it receives a ForceLog or
    WriteLog message with log sequence numbers that are not contiguous
    with those it has previously received from the same client."
    """

    lo: LSN = 0
    hi: LSN = 0


# -- synchronous calls -------------------------------------------------------


@dataclass(slots=True)
class IntervalListCall(Message):
    """Request the server's interval list for this client."""


@dataclass(slots=True)
class IntervalListReply(Message):
    intervals: tuple[Interval, ...] = ()

    @property
    def wire_size(self) -> int:
        # three integers per interval, as the paper counts them
        return MESSAGE_HEADER_BYTES + 12 * len(self.intervals)


@dataclass(slots=True)
class ReadLogForwardCall(Message):
    """Read records with LSNs >= ``lsn``, as many as fit in a packet."""

    lsn: LSN = 1


@dataclass(slots=True)
class ReadLogBackwardCall(Message):
    """Read records with LSNs <= ``lsn``, as many as fit in a packet."""

    lsn: LSN = 1


@dataclass(slots=True)
class ReadLogReply(Message):
    """Records with present flags; empty if the server stores none."""

    records: tuple[StoredRecord, ...] = ()

    @property
    def wire_size(self) -> int:
        return MESSAGE_HEADER_BYTES + records_wire_size(self.records)


@dataclass(slots=True)
class CopyLogCall(Message):
    """Stage recovery copies (accepted below the high-water mark)."""

    epoch: Epoch = 0
    records: tuple[StoredRecord, ...] = ()

    def __post_init__(self) -> None:
        if not self.records:
            raise ValueError("CopyLog carries at least one record")
        for rec in self.records:
            if rec.epoch != self.epoch:
                raise ValueError("CopyLog records must carry the call epoch")

    @property
    def wire_size(self) -> int:
        return MESSAGE_HEADER_BYTES + records_wire_size(self.records)


@dataclass(slots=True)
class InstallCopiesCall(Message):
    """Atomically install all records staged under ``epoch``."""

    epoch: Epoch = 0


@dataclass(slots=True)
class AckReply(Message):
    """Generic success reply for CopyLog / InstallCopies."""

    ok: bool = True


@dataclass(slots=True)
class ErrorReply(Message):
    """Generic failure reply for synchronous calls."""

    reason: str = ""

    @property
    def wire_size(self) -> int:
        return MESSAGE_HEADER_BYTES + len(self.reason.encode("utf-8"))


# -- Appendix I: generator-state representative calls --------------------------
#
# "Representatives of a replicated identifier generator's state will
# normally be implemented on log server nodes" — so the Read and Write
# operations of Appendix I travel over the same connections as the log
# traffic.  ``client_id`` is unused (the generator is a node-level
# service) but kept for the common message shape.


@dataclass(slots=True)
class GeneratorReadCall(Message):
    """Read the representative's stored integer."""


@dataclass(slots=True)
class GeneratorReadReply(Message):
    value: int = 0


@dataclass(slots=True)
class GeneratorWriteCall(Message):
    """Write a (higher) integer to the representative."""

    value: int = 0

"""Deterministic crash-point sweep over the real runtime's durable store.

The paper's durability contract (§3.1) is *per crash point*: every
acked record must survive a restart no matter where the crash lands
between two I/O operations.  This harness checks that literally:

1. **Enumerate** — run a scripted workload (appends + group forces,
   generator writes, §5.3 truncation with and without compaction, a
   CopyLog/InstallCopies cycle, a cross-client group-commit fsync at
   site ``log.group-fsync``) against a :class:`FileLogStore` whose
   I/O backend is a *recording* :class:`~repro.rt.faultfs.FaultInjector`;
   every ``site:index`` pair hit is one crash point.
2. **Sweep** — re-run the same workload once per (point, action) in a
   fresh directory with that point armed: power loss (all files revert
   to their last fsync barrier, pending directory ops roll back),
   short write (the torn half-write survives), EIO/ENOSPC (the wedge
   path), or a payload bit flip (the CRC path).
3. **Verify** — reopen with the passthrough backend and check the
   durability invariants: every durable-acked record is readable with
   exact epoch/present/data/kind (unless reclaimed by an acked
   truncation), nothing not written is ever surfaced, the truncation
   mark is monotone and bounded by what was attempted, InstallCopies
   is all-or-nothing, the generator value never regresses, the
   append-forest agrees with the log, and the reopened store accepts
   and persists further appends.

Bit flips are *silent corruption* — fsync succeeded but the disk lied —
so durability of later acks is unprovable by design; those cases check
the weaker contract that recovery never surfaces corrupt data (the
CRC rejects the entry and ends the valid prefix).  Flips in the
advisory forest index must not weaken anything: the log is
authoritative, so the full invariants still apply there.

The **daemon phase** repeats a subset against a real ``repro serve``
process: the armed daemon dies with exit status 86 mid-workload
(``--fault-plan``), is restarted without the plan, and a fresh client
must read back every wire-acked LSN.  Its combined cases arm
multi-fault plans — e.g. a torn ``compact.write`` whose corruption
must stay invisible because power is lost before the covering
``compact.rename`` installs it.

The **client phase** turns the same idea on the *protocol*: a scripted
ET1-style workload runs in a separate worker process
(:mod:`repro.harness.clientworker`) against three real ``repro serve``
daemons and is killed — exit 86 or SIGKILL — at every enumerated
protocol crash point of :mod:`repro.rt.clientfault`: after a WriteLog
batch is streamed, around ForceLog acknowledgments (including after a
*partial* ack), mid write-set switch, and between each step of the
§5.4 restart.  A **second OS process** then runs the full §5.4 restart
and the harness checks the journals: nothing fabricated, every acked
record durable with its exact payload, the epoch strictly monotone,
and a third process re-running recovery reproducing the identical
final state (window-replay idempotence).  Combined client cases arm a
server storage fault and a client kill in the same run, so recovery
itself executes against a crashing cluster.

Everything is deterministic given ``seed`` (which varies the record
payloads); ``repro crashsweep --seed S --point SITE:IDX[:ACTION]``
replays one failing case.
"""

from __future__ import annotations

import asyncio
import os
import random
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..core.config import ReplicationConfig
from ..core.errors import LogError, StorageError
from ..core.records import StoredRecord
from ..storage.append_forest import AppendForestError
from ..rt import clientfault
from ..rt.cluster import LoopbackCluster
from ..rt.faultfs import (
    CLIENT_ACTIONS,
    FAULT_EXIT_CODE,
    FaultInjector,
    FaultPlan,
    PowerLoss,
)
from ..rt.filestore import FileLogStore

#: sites whose payload can be torn or bit-flipped (the others degrade
#: crash-shaped actions to a plain power loss).
_WRITE_SITES = ("log.write.", "compact.write", "forest.write")


def _is_write_site(site: str) -> bool:
    return site.startswith(_WRITE_SITES)


@dataclass
class CrashCase:
    """One (crash point, action) run and its verdict."""

    point: str           # "site:index"
    action: str
    ok: bool = True
    hit: bool = True     # daemon cases: did the armed point fire?
    errors: list[str] = field(default_factory=list)

    @property
    def spec(self) -> str:
        return f"{self.point}:{self.action}"

    def as_dict(self) -> dict:
        return {"point": self.point, "action": self.action, "ok": self.ok,
                "hit": self.hit, "errors": list(self.errors)}


@dataclass
class SweepReport:
    """What one ``repro crashsweep`` invocation did and found."""

    seed: int = 0
    quick: bool = False
    points_enumerated: int = 0
    sites: dict[str, int] = field(default_factory=dict)
    cases: list[CrashCase] = field(default_factory=list)
    daemon_points_enumerated: int = 0
    daemon_cases: list[CrashCase] = field(default_factory=list)
    client_points_enumerated: int = 0
    client_sites: dict[str, int] = field(default_factory=dict)
    client_cases: list[CrashCase] = field(default_factory=list)
    combined_cases_run: int = 0
    net_points_enumerated: int = 0
    net_sites: dict[str, int] = field(default_factory=dict)
    net_cases: list[CrashCase] = field(default_factory=list)
    net_partition_cases: int = 0
    net_handoff_cases: int = 0
    fuzz_cases: list[CrashCase] = field(default_factory=list)
    duration_s: float = 0.0

    @property
    def failures(self) -> list[CrashCase]:
        return [c for c in self.cases + self.daemon_cases
                + self.client_cases + self.net_cases + self.fuzz_cases
                if not c.ok]

    @property
    def cases_run(self) -> int:
        return (len(self.cases) + len(self.daemon_cases)
                + len(self.client_cases) + len(self.net_cases)
                + len(self.fuzz_cases))

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "quick": self.quick,
            "points_enumerated": self.points_enumerated,
            "sites": dict(sorted(self.sites.items())),
            "cases_run": self.cases_run,
            "daemon_points_enumerated": self.daemon_points_enumerated,
            "daemon_cases": [c.as_dict() for c in self.daemon_cases],
            "client_points_enumerated": self.client_points_enumerated,
            "client_sites": dict(sorted(self.client_sites.items())),
            "client_cases": [c.as_dict() for c in self.client_cases],
            "combined_cases_run": self.combined_cases_run,
            "net_points_enumerated": self.net_points_enumerated,
            "net_sites": dict(sorted(self.net_sites.items())),
            "net_cases": [c.as_dict() for c in self.net_cases],
            "net_partition_cases": self.net_partition_cases,
            "net_handoff_cases": self.net_handoff_cases,
            "fuzz_cases": [c.as_dict() for c in self.fuzz_cases],
            "failures": [c.as_dict() for c in self.failures],
            "duration_s": round(self.duration_s, 3),
        }


@dataclass
class SweepConfig:
    """Knobs for :func:`run_crashsweep`."""

    root_dir: str = ""
    seed: int = 0
    #: sweep a bounded subset of points (first/last index per site)
    #: with power-loss everywhere plus one torn/flip/EIO case per
    #: write site — the CI smoke shape.
    quick: bool = False
    #: replay exactly one case: ``site:index`` or ``site:index:action``
    #: (action defaults to power-loss).
    point: str | None = None
    #: also run the subprocess daemon phase.
    daemon: bool = True
    #: also run the client phase (kill a real client worker process at
    #: each protocol crash point; §5.4 restart from a second process).
    #: Off by default for library callers — the CLI turns it on unless
    #: ``--no-client`` is passed, since it spawns real subprocesses.
    client: bool = False
    #: run *only* the client phase (``repro crashsweep --client``).
    client_only: bool = False
    #: also run the network phase: frame-level faults injected by a
    #: protocol-aware chaos proxy fleet fronting real daemons
    #: (``repro crashsweep --net``).
    net: bool = False
    #: run N seeded multi-fault fuzz cases composing network, storage,
    #: and client faults (``repro crashsweep --fuzz N``).
    fuzz: int = 0
    #: run *only* the network/fuzz phases, skipping storage + daemon
    #: + client.
    net_only: bool = False
    #: replay one composite fuzz plan verbatim
    #: (``repro crashsweep --plan SPEC``).
    plan: str | None = None


# -- the scripted workload ---------------------------------------------------


def _payloads(seed: int) -> dict:
    """Deterministic payload bytes per (client, lsn, epoch)."""
    rng = random.Random(seed)
    table = {}
    for cid, lsns, epoch in (("cw", range(1, 23), 1),
                             ("cr", range(1, 5), 1),
                             ("cr", range(1, 4), 2),
                             ("cw", range(23, 25), 1),
                             ("cr", range(5, 7), 2)):
        for lsn in lsns:
            table[(cid, lsn, epoch)] = (
                f"{cid}.{lsn}.{epoch}.".encode()
                + bytes(rng.randrange(256) for _ in range(rng.randrange(8, 40)))
            )
    return table


def _rec(payloads, cid: str, lsn: int, epoch: int = 1) -> StoredRecord:
    return StoredRecord(lsn=lsn, epoch=epoch, present=True,
                        data=payloads[(cid, lsn, epoch)], kind="data")


def _tup(record: StoredRecord) -> tuple:
    return (record.epoch, record.present, record.data, record.kind)


class _Journal:
    """What the workload was told is durable, and everything it tried."""

    def __init__(self):
        self.attempted: dict[tuple[str, int], set] = {}
        self.durable: dict[tuple[str, int], tuple] = {}
        self.durable_mark: dict[str, int] = {}
        self.attempted_mark: dict[str, int] = {}
        self.durable_gen = 0
        self.attempted_gen = 0
        self.staged_lsns: list[int] = []
        self.install_acked = False

    def attempt(self, cid: str, record: StoredRecord) -> None:
        self.attempted.setdefault((cid, record.lsn), set()).add(_tup(record))

    def ack_records(self, cid: str, records) -> None:
        for record in records:
            self.durable[(cid, record.lsn)] = _tup(record)

    def ack_truncate(self, cid: str, mark: int) -> None:
        self.durable_mark[cid] = max(self.durable_mark.get(cid, 0), mark)
        for (c, lsn) in [k for k in self.durable
                         if k[0] == cid and k[1] < mark]:
            del self.durable[(c, lsn)]


def _store_workload(store: FileLogStore, journal: _Journal,
                    payloads: dict) -> None:
    """The fixed script every sweep case replays.

    The journal is updated only *after* each store call returns — a
    call interrupted by the injected crash was never acknowledged and
    carries no durability promise (its records stay in ``attempted``).
    """
    # Steady appends with group forces (WriteLog ... ForceLog).
    for base in (0, 5, 10):
        batch = tuple(_rec(payloads, "cw", base + i + 1) for i in range(5))
        for record in batch:
            journal.attempt("cw", record)
        store.append_records("cw", batch, fsync=True)
        journal.ack_records("cw", batch)
    # The Appendix I generator representative.
    journal.attempted_gen = 41
    store.generator_write(41)
    journal.durable_gen = 41
    # A second client (the CopyLog/InstallCopies subject).
    batch = tuple(_rec(payloads, "cr", i) for i in range(1, 5))
    for record in batch:
        journal.attempt("cr", record)
    store.append_records("cr", batch, fsync=True)
    journal.ack_records("cr", batch)
    # §5.3 truncation that reclaims records → compaction (tmp + rename
    # + dir fsync + forest rebuild).
    journal.attempted_mark["cw"] = 8
    store.truncate_below("cw", 8)
    journal.ack_truncate("cw", 8)
    # The stream stays appendable after compaction.
    batch = tuple(_rec(payloads, "cw", i) for i in range(16, 21))
    for record in batch:
        journal.attempt("cw", record)
    store.append_records("cw", batch, fsync=True)
    journal.ack_records("cw", batch)
    # Mark-only truncation (nothing left below the mark → E_TRUNCATE).
    store.truncate_below("cw", 8)
    journal.ack_truncate("cw", 8)
    # CopyLog staging + the atomic InstallCopies commit point.
    staged = [_rec(payloads, "cr", lsn, epoch=2) for lsn in range(1, 4)]
    journal.staged_lsns = [r.lsn for r in staged]
    for record in staged:
        journal.attempt("cr", record)
        store.stage_copy("cr", record)
    store.install_copies("cr", 2)
    journal.ack_records("cr", staged)
    journal.install_acked = True
    # Tail appends + a final generator bump.
    batch = tuple(_rec(payloads, "cw", i) for i in (21, 22))
    for record in batch:
        journal.attempt("cw", record)
    store.append_records("cw", batch, fsync=True)
    journal.ack_records("cw", batch)
    journal.attempted_gen = 77
    store.generator_write(77)
    journal.durable_gen = 77
    # Group commit: two clients' force batches ride one shared fsync
    # (site ``log.group-fsync``, the server's one-fsync-per-group
    # path).  Neither ack is issued until the covering sync returns,
    # so a crash inside it must lose both batches without fabricating
    # an ack for either parked client.
    batch_w = tuple(_rec(payloads, "cw", i) for i in (23, 24))
    batch_r = tuple(_rec(payloads, "cr", i, epoch=2) for i in (5, 6))
    for record in batch_w:
        journal.attempt("cw", record)
    for record in batch_r:
        journal.attempt("cr", record)
    store.append_records("cw", batch_w, fsync=False)
    store.append_records("cr", batch_r, fsync=False)
    store.sync(site="log.group-fsync")
    journal.ack_records("cw", batch_w)
    journal.ack_records("cr", batch_r)


# -- verification ------------------------------------------------------------


def _verify(data_dir, journal: _Journal, payloads: dict, *,
            strict: bool) -> list[str]:
    """Reopen ``data_dir`` with real I/O and check the invariants."""
    errors: list[str] = []
    try:
        store = FileLogStore(data_dir, "s1")
    except Exception as exc:  # noqa: BLE001 - any reopen failure is a bug
        return [f"reopen failed: {exc!r}"]
    try:
        clients = set(store.mem.known_clients()) \
            | {cid for cid, _ in journal.durable}
        # No fabrication: everything readable was once written.
        for cid in sorted(clients):
            for lsn in store.stored_lsns(cid):
                got = _tup(store.read_record(cid, lsn))
                allowed = journal.attempted.get((cid, lsn), set())
                if got not in allowed:
                    errors.append(
                        f"fabricated record {cid}/{lsn}: {got!r} "
                        f"not among {len(allowed)} written values"
                    )
        # InstallCopies atomicity: the staged set flips epoch together.
        epochs = set()
        complete = True
        for lsn in journal.staged_lsns:
            try:
                epochs.add(store.read_record("cr", lsn).epoch)
            except (LogError, KeyError):
                complete = False
        if complete and len(epochs) > 1:
            errors.append(f"partial install: staged epochs {sorted(epochs)}")
        if strict:
            # Truncation marks: monotone, never beyond what was asked.
            for cid in set(journal.durable_mark) | set(journal.attempted_mark):
                got = store.truncated_lsn(cid)
                lo = journal.durable_mark.get(cid, 0)
                hi = journal.attempted_mark.get(cid, lo)
                if got < lo:
                    errors.append(f"truncate mark regressed for {cid}: "
                                  f"{got} < acked {lo}")
                if got > hi:
                    errors.append(f"truncate mark overshot for {cid}: "
                                  f"{got} > attempted {hi}")
            # Acked durability (records reclaimed by a recovered,
            # legally-attempted mark are excused).
            for (cid, lsn), want in sorted(journal.durable.items()):
                if lsn < store.truncated_lsn(cid):
                    continue
                try:
                    got = _tup(store.read_record(cid, lsn))
                except LogError as exc:
                    errors.append(f"acked record {cid}/{lsn} lost: {exc}")
                    continue
                if got != want and \
                        got not in journal.attempted.get((cid, lsn), set()):
                    errors.append(f"acked record {cid}/{lsn} wrong: "
                                  f"{got!r} != acked {want!r}")
                # got != want but ∈ attempted: a later (unacked) rewrite
                # of the same LSN landed — e.g. a staged epoch-2 copy
                # installed just before the crash.  Legal.
            if journal.install_acked and journal.staged_lsns:
                for lsn in journal.staged_lsns:
                    got = store.read_record("cr", lsn)
                    if got.epoch != 2:
                        errors.append(f"acked install lost: cr/{lsn} "
                                      f"still epoch {got.epoch}")
            if store.generator_value < journal.durable_gen:
                errors.append(f"generator regressed: {store.generator_value}"
                              f" < acked {journal.durable_gen}")
            if store.generator_value > journal.attempted_gen:
                errors.append(f"generator overshot: {store.generator_value}"
                              f" > attempted {journal.attempted_gen}")
            # Forest ↔ log consistency.
            for cid in sorted(clients):
                forest = store.forest(cid)
                if forest is not None:
                    try:
                        forest.check_invariants()
                    except AppendForestError as exc:
                        errors.append(f"forest invariants broken for "
                                      f"{cid}: {exc}")
                for lsn in store.stored_lsns(cid):
                    via = store.read_via_index(cid, lsn)
                    if via is not None \
                            and _tup(via) != _tup(store.read_record(cid, lsn)):
                        errors.append(
                            f"forest disagrees with log at {cid}/{lsn}"
                        )
            # Continuation: the recovered store accepts appends and
            # persists them across another reopen.
            high = store.client_high_lsn("cw") or 0
            cont = StoredRecord(lsn=high + 1, epoch=9, present=True,
                                data=b"continue", kind="data")
            store.append_record("cw", cont, fsync=True)
    except Exception as exc:  # noqa: BLE001 - surface, don't crash the sweep
        errors.append(f"verification crashed: {exc!r}")
    finally:
        store.close()
    if strict and not errors:
        again = FileLogStore(data_dir, "s1")
        try:
            high = again.client_high_lsn("cw") or 0
            if high < 1 or again.read_record("cw", high).data != b"continue":
                errors.append("continuation append did not survive reopen")
        except LogError as exc:
            errors.append(f"continuation reopen failed: {exc}")
        finally:
            again.close()
    return errors


# -- the in-process sweep ----------------------------------------------------


def _enumerate_points(base_dir: Path, payloads: dict) -> list[str]:
    """Run the workload once under a recording injector."""
    injector = FaultInjector()
    store = FileLogStore(base_dir / "enumerate", "s1", io=injector)
    journal = _Journal()
    _store_workload(store, journal, payloads)
    store.close()
    injector.close_all()
    return list(injector.trace)


def _run_case(data_dir: Path, plan: FaultPlan, payloads: dict) -> CrashCase:
    case = CrashCase(point=plan.point, action=plan.action)
    injector = FaultInjector(plan, mode="raise")
    journal = _Journal()
    store = None
    try:
        store = FileLogStore(data_dir, "s1", io=injector)
        _store_workload(store, journal, payloads)
    except PowerLoss:
        store = None  # the disk froze; the object is dead
    except (StorageError, OSError):
        pass  # wedged (or failed to open): acks stop here
    finally:
        if store is not None and injector.tripped is None:
            try:
                store.close()
            except (StorageError, OSError):
                pass
        injector.close_all()
    # Silent log corruption voids later acks by design; corruption of
    # the advisory forest index must not (the log is authoritative).
    strict = plan.action != "bit-flip" or plan.site.startswith("forest.")
    case.errors = _verify(data_dir, journal, payloads, strict=strict)
    case.ok = not case.errors
    return case


def _select_points(trace: list[str], *, quick: bool) -> list[str]:
    if not quick:
        return list(trace)
    by_site: dict[str, list[str]] = {}
    for point in trace:
        site = point.rsplit(":", 1)[0]
        by_site.setdefault(site, []).append(point)
    picked = []
    for site in sorted(by_site):
        points = by_site[site]
        picked.append(points[0])
        if len(points) > 1:
            picked.append(points[-1])
    return picked


def _actions_for(site: str, *, quick: bool, first: bool) -> list[str]:
    actions = ["power-loss"]
    if _is_write_site(site):
        if not quick or first:
            actions += ["short-write", "bit-flip"]
    if not quick or first:
        actions.append("eio")
    if site in ("log.fsync", "log.group-fsync") and first:
        actions.append("enospc")
    return actions


# -- the daemon phase --------------------------------------------------------

_DAEMON_CONFIG = ReplicationConfig(total_servers=1, copies=1, delta=4)


async def _daemon_workload(addresses: dict) -> dict:
    """Two client generations against one daemon; returns wire acks.

    Generation one appends with periodic forces; generation two
    re-initializes the same client id (epoch bump → CopyLog/Install
    over the wire), appends more, and truncates.  Every step journals
    only after its awaited call returns.
    """
    from ..rt.client import AsyncReplicatedLog

    # The daemon dies mid-call by design; in-flight futures that never
    # get retrieved are expected noise, not a harness bug.
    asyncio.get_running_loop().set_exception_handler(lambda loop, ctx: None)
    acked: dict[int, bytes] = {}
    state = {"acked": acked, "mark": 0, "epoch": 0}

    async def generation(n_writes: int, start_index: int) -> None:
        log = AsyncReplicatedLog("cd", addresses, _DAEMON_CONFIG,
                                 timeout=3.0)
        await log.initialize()
        state["epoch"] = log.current_epoch
        pending: dict[int, bytes] = {}
        try:
            for i in range(start_index, start_index + n_writes):
                data = f"d{i}".encode()
                lsn = await log.write(data)
                pending[lsn] = data
                if (i + 1) % 3 == 0:
                    high = await log.force()
                    for ack_lsn in [p for p in pending if p <= high]:
                        acked[ack_lsn] = pending.pop(ack_lsn)
            if start_index:
                await log.truncate(6)
                state["mark"] = max(state["mark"], 6)
                for lsn in [p for p in acked if p < 6]:
                    del acked[lsn]
        finally:
            await log.close()

    try:
        await generation(9, 0)
        await generation(9, 9)
    except (LogError, OSError, asyncio.TimeoutError):
        pass  # the daemon died at the armed point; acks stop here
    return state


async def _daemon_verify(addresses: dict, state: dict) -> list[str]:
    from ..rt.client import AsyncReplicatedLog

    errors: list[str] = []
    log = AsyncReplicatedLog("cd", addresses, _DAEMON_CONFIG, timeout=5.0)
    try:
        await log.initialize()
        mark = state["mark"]
        for lsn, data in sorted(state["acked"].items()):
            if lsn < mark:
                continue
            try:
                record = await log.read(lsn)
            except LogError as exc:
                errors.append(f"acked lsn {lsn} lost after restart: {exc}")
                continue
            # read() raises RecordNotPresent (a LogError, caught above)
            # for masked records; a returned LogRecord is always present.
            if record.data != data:
                errors.append(f"acked lsn {lsn} wrong after restart: "
                              f"{record.data!r} != {data!r}")
        if state["acked"] and log.end_of_log() < max(state["acked"]):
            errors.append(f"end_of_log {log.end_of_log()} below acked "
                          f"high {max(state['acked'])}")
    except LogError as exc:
        errors.append(f"client restart failed: {exc}")
    finally:
        await log.close()
    return errors


def _daemon_enumerate(root: Path) -> list[str]:
    trace_path = root / "daemon-trace.txt"
    cluster = LoopbackCluster(
        str(root / "enum"), num_servers=1,
        server_args=["--fault-trace", str(trace_path)],
    )
    with cluster:
        asyncio.run(_daemon_workload(cluster.addresses()))
    if not trace_path.exists():
        return []
    return [ln.strip() for ln in trace_path.read_text().splitlines()
            if ln.strip()]


#: Multi-fault daemon plans: a torn ``compact.write`` (the lying disk
#: keeps running) combined with power loss at a later point *before*
#: the rename barrier commits the torn stream — the old log must stay
#: authoritative and every wire-acked record must survive the restart.
_DAEMON_COMBINED_PLANS = (
    "compact.write:2:torn,compact.rename:0:power-loss",
    "compact.write:2:torn,compact.fsync:0:power-loss",
)


def _daemon_case(root: Path, index, point: str,
                 action: str = "power-loss",
                 plan: str | None = None) -> CrashCase:
    case = CrashCase(point=point, action=action)
    cluster = LoopbackCluster(str(root / f"case-{index}"), num_servers=1)
    try:
        state = {"acked": {}, "mark": 0, "epoch": 0}
        started = True
        try:
            cluster.start_server(
                "s1", extra_args=["--fault-plan",
                                  plan or f"{point}:{action}"])
        except RuntimeError:
            entry = cluster.servers["s1"]
            if entry.process is None \
                    or entry.process.returncode != FAULT_EXIT_CODE:
                raise
            # The armed point fired during startup recovery (e.g.
            # dir.create-sync:0), before the banner.  Nothing was
            # acked; the plain restart below must still come up clean.
            started = False
        if started:
            state = asyncio.run(_daemon_workload(cluster.addresses()))
            if cluster.servers["s1"].alive:
                # The workload finished without reaching the armed
                # point (can happen for late indices): nothing to
                # verify.
                case.hit = False
                return case
            code = cluster.wait("s1", timeout=10.0)
            if code != FAULT_EXIT_CODE:
                case.errors.append(f"daemon exited {code}, expected "
                                   f"{FAULT_EXIT_CODE} (injected crash)")
        cluster.restart("s1")  # no plan: clean recovery
        errors = asyncio.run(_daemon_verify(cluster.addresses(), state))
        case.errors.extend(errors)
    finally:
        cluster.stop()
        case.ok = not case.errors
    return case


def _select_daemon_points(trace: list[str], *, quick: bool) -> list[str]:
    """First hit of each interesting site, bounded for the CI smoke."""
    wanted = ("dir.create-sync", "log.write.record", "log.fsync",
              "log.group-fsync", "log.write.generator",
              "log.write.staged", "log.write.install",
              "log.write.truncate")
    first: dict[str, str] = {}
    for point in trace:
        site = point.rsplit(":", 1)[0]
        if site in wanted and site not in first:
            first[site] = point
    points = [first[site] for site in wanted if site in first]
    return points[:3] if quick else points


# -- the client phase --------------------------------------------------------

#: clientworker arguments every phase run shares (3 servers, N=2,
#: δ=4, four 5-record transactions, §5.3 truncation every second one).
_CLIENT_WORKER_ARGS = ("--m", "3", "--n", "2", "--delta", "4",
                       "--txns", "4", "--records-per-txn", "5",
                       "--truncate-every", "2")

#: combined client+server fault cases: (client point, client action,
#: armed server, server fault plan).  The storage fault kills a
#: write-set daemon mid-workload, which routes the client through its
#: §5.4 write-set switch — and the client is then killed inside it.
_CLIENT_COMBINED = (
    ("client.switch.begin:0", "exit", "s1",
     "log.group-fsync:2:power-loss"),
    ("client.switch.feed:0", "exit", "s1",
     "log.group-fsync:2:power-loss"),
    ("client.switch.done:0", "sigkill", "s1",
     "log.group-fsync:2:power-loss"),
    ("client.force.ack:0", "exit", "s1",
     "log.group-fsync:1:power-loss"),
    ("client.flush.sent:2", "sigkill", "s1",
     "log.write.record:10:power-loss"),
)

#: the bounded CI smoke subset: one early restart-step point, one
#: streamed-batch point, one partial-ack point, one mid-recovery
#: point, and one partial-fence-install point (killed between the
#: first fence landing and the handoff's recovery).
_CLIENT_QUICK_POINTS = ("client.epoch.written:0", "client.flush.sent:0",
                        "client.force.ack:0", "client.recovery.copylog:0",
                        "client.handoff.fence.ack:0")


def _worker_env(plan: str | None = None,
                trace: str | None = None) -> dict:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.pop(clientfault.PLAN_ENV, None)
    env.pop(clientfault.TRACE_ENV, None)
    if plan is not None:
        env[clientfault.PLAN_ENV] = plan
    if trace is not None:
        env[clientfault.TRACE_ENV] = trace
    return env


def _run_worker(addresses: dict, journal: Path, *, mode: str = "run",
                plan: str | None = None, trace: str | None = None,
                timeout: float = 120.0) -> int:
    """Run one clientworker OS process to completion (or injected death)."""
    servers = ",".join(f"{sid}={host}:{port}"
                       for sid, (host, port) in sorted(addresses.items()))
    cmd = [sys.executable, "-m", "repro.harness.clientworker",
           "--servers", servers, "--journal", str(journal),
           "--mode", mode, *_CLIENT_WORKER_ARGS]
    proc = subprocess.run(cmd, env=_worker_env(plan, trace),
                          stdout=subprocess.DEVNULL,
                          stderr=subprocess.DEVNULL, timeout=timeout)
    return proc.returncode


@dataclass
class _WorkerJournal:
    """Parsed view of one clientworker journal file."""

    epoch: int = 0
    attempts: dict[int, bytes] = field(default_factory=dict)  # seq → data
    lsn_of: dict[int, int] = field(default_factory=dict)      # seq → lsn
    acked_high: int = 0
    trunc_mark: int = 0    # highest *acknowledged* truncation
    trunc_req: int = 0     # highest *requested* truncation (intent)
    rec_epoch: int = 0
    rec_high: int = 0
    #: lsn → ("1", data) present / ("0", None) guard / ("-", None) gone
    finals: dict[int, tuple[str, bytes | None]] = field(default_factory=dict)
    posts: dict[int, bytes] = field(default_factory=dict)
    postack: int = 0
    done: bool = False


def _parse_worker_journal(path: Path) -> _WorkerJournal:
    j = _WorkerJournal()
    if not path.exists():
        return j
    for line in path.read_text().splitlines():
        parts = line.split()
        if not parts:
            continue
        tag = parts[0]
        if tag == "EPOCH":
            j.epoch = int(parts[1])
        elif tag == "ATTEMPT":
            j.attempts[int(parts[1])] = bytes.fromhex(parts[2])
        elif tag == "LSN":
            j.lsn_of[int(parts[1])] = int(parts[2])
        elif tag == "ACK":
            j.acked_high = max(j.acked_high, int(parts[1]))
        elif tag == "TRUNC":
            j.trunc_mark = max(j.trunc_mark, int(parts[1]))
        elif tag == "TRUNCREQ":
            j.trunc_req = max(j.trunc_req, int(parts[1]))
        elif tag == "RECOVERED":
            j.rec_epoch, j.rec_high = int(parts[1]), int(parts[2])
        elif tag == "FINAL":
            lsn, state = int(parts[1]), parts[2]
            j.finals[lsn] = (
                state, bytes.fromhex(parts[3]) if state == "1" else None
            )
        elif tag == "POST":
            j.posts[int(parts[1])] = bytes.fromhex(parts[2])
        elif tag == "POSTACK":
            j.postack = int(parts[1])
        elif tag == "DONE":
            j.done = True
    return j


def _client_verify(run: _WorkerJournal, rec1: _WorkerJournal,
                   rec2: _WorkerJournal) -> list[str]:
    """The client-phase invariants, checked against three journals.

    ``run`` is the killed client; ``rec1`` and ``rec2`` are the two
    successive §5.4 restarts from fresh OS processes.  An ack journaled
    by ``run`` is a durability promise; an attempt without an ack is
    not — it may appear (the kill landed after the send) or not (before
    it), but only with the exact attempted payload.
    """
    errors: list[str] = []
    if not rec1.done:
        errors.append("first recovery worker did not finish")
    if not rec2.done:
        errors.append("second recovery worker did not finish")
    data_of_lsn = {lsn: run.attempts[seq]
                   for seq, lsn in run.lsn_of.items()}
    attempted = set(run.attempts.values())
    # Epoch strictly monotone across every client generation.
    if run.epoch and rec1.rec_epoch <= run.epoch:
        errors.append(f"epoch not monotone: restart drew "
                      f"{rec1.rec_epoch} after the killed client ran "
                      f"at {run.epoch}")
    if rec1.rec_epoch and rec2.rec_epoch <= rec1.rec_epoch:
        errors.append(f"epoch not monotone across restarts: "
                      f"{rec2.rec_epoch} <= {rec1.rec_epoch}")
    # Acked-durable exact: every journaled-acked record reads back
    # with its exact payload (unless legally truncated).  A truncation
    # *requested* but killed before its ack may or may not have been
    # applied — like an unacked write, either outcome is legal, so the
    # durability floor is the highest requested mark, and records in
    # [acked mark, requested mark) that *do* survive still go through
    # the no-fabrication payload check below.
    trunc_floor = max(run.trunc_mark, run.trunc_req)
    for seq, lsn in sorted(run.lsn_of.items()):
        if lsn > run.acked_high or lsn < trunc_floor:
            continue
        state, data = rec1.finals.get(lsn, ("missing", None))
        if state != "1":
            errors.append(f"acked lsn {lsn} lost after client kill "
                          f"(state {state})")
        elif data != run.attempts[seq]:
            errors.append(f"acked lsn {lsn} has the wrong payload "
                          f"after restart")
    # No fabrication: every present record carries a payload some
    # client generation actually attempted, at the LSN it was assigned.
    for label, rec, extra in (("first", rec1, {}),
                              ("second", rec2, rec1.posts)):
        allowed = attempted | set(extra.values())
        for lsn, (state, data) in sorted(rec.finals.items()):
            if state != "1":
                continue
            want = extra.get(lsn, data_of_lsn.get(lsn))
            if want is not None:
                if data != want:
                    errors.append(f"{label} restart: lsn {lsn} does not "
                                  f"match the write assigned to it")
            elif data not in allowed:
                errors.append(f"{label} restart fabricated lsn {lsn}")
    # Window-replay idempotence: restarting again (which re-copies the
    # last δ records and re-stages guards) reproduces the exact state.
    for lsn in range(1, rec1.rec_high + 1):
        if rec1.finals.get(lsn) != rec2.finals.get(lsn):
            errors.append(
                f"recovery not idempotent at lsn {lsn}: "
                f"{rec1.finals.get(lsn)!r} then {rec2.finals.get(lsn)!r}"
            )
    # Post-recovery liveness: the first restart's acked transaction is
    # durable for the second.
    if rec1.done and not rec1.posts:
        errors.append("first recovery journaled no post-recovery writes")
    for lsn, data in sorted(rec1.posts.items()):
        if lsn > rec1.postack:
            continue
        state, got = rec2.finals.get(lsn, ("missing", None))
        if state != "1" or got != data:
            errors.append(f"post-recovery acked lsn {lsn} not durable")
    return errors


def _client_enumerate(root: Path) -> list[str]:
    """One fault-free worker run under a recording injector."""
    trace_path = root / "client-trace.txt"
    cluster = LoopbackCluster(str(root / "enum"), num_servers=3)
    with cluster:
        rc = _run_worker(cluster.addresses(), root / "enum.journal",
                         trace=str(trace_path))
    if rc != 0:
        raise RuntimeError(f"client enumeration worker exited {rc}")
    if not trace_path.exists():
        return []
    return [ln.strip() for ln in trace_path.read_text().splitlines()
            if ln.strip()]


def _select_client_points(trace: list[str], *, quick: bool) -> list[str]:
    if quick:
        return [p for p in _CLIENT_QUICK_POINTS if p in trace]
    # Full mode: first and last index of every site — the window-open
    # and window-deep shape of each protocol seam.
    return _select_points(trace, quick=True)


def _client_case(root: Path, index: int, point: str, action: str,
                 server_fault: tuple[str, str] | None = None) -> CrashCase:
    """Kill a real client worker at ``point``; restart and verify.

    ``server_fault`` additionally arms ``(server_id, fault_plan)`` on
    one daemon — the combined-fault shape where the cluster is crashing
    while the client is being killed and recovered.
    """
    label = point if server_fault is None \
        else f"{point}+{server_fault[0]}:{server_fault[1]}"
    case = CrashCase(point=label, action=action)
    case_root = root / f"case-{index}"
    case_root.mkdir(parents=True, exist_ok=True)
    cluster = LoopbackCluster(str(case_root / "cluster"), num_servers=3)
    try:
        if server_fault is not None:
            cluster.start_server(
                server_fault[0],
                extra_args=["--fault-plan", server_fault[1]])
        cluster.start()
        run_journal = case_root / "run.journal"
        rc = _run_worker(cluster.addresses(), run_journal,
                         plan=f"{point}:{action}")
        run = _parse_worker_journal(run_journal)
        if rc == 0 and run.done:
            # The workload finished without reaching the armed point.
            case.hit = False
            return case
        expected = -signal.SIGKILL if action == "sigkill" \
            else FAULT_EXIT_CODE
        if rc != expected:
            case.errors.append(f"run worker exited {rc}, expected "
                               f"{expected} (injected kill)")
        recoveries: list[_WorkerJournal] = []
        for n in (1, 2):
            journal = case_root / f"recover{n}.journal"
            rc = _run_worker(cluster.addresses(), journal, mode="recover")
            if rc != 0:
                case.errors.append(f"recovery worker {n} exited {rc}")
            recoveries.append(_parse_worker_journal(journal))
        case.errors.extend(
            _client_verify(run, recoveries[0], recoveries[1]))
    finally:
        cluster.stop()
        case.ok = not case.errors
    return case


# -- entry point -------------------------------------------------------------


def run_crashsweep(config: SweepConfig, progress=None) -> SweepReport:
    """Run the sweep; ``progress(str)`` receives human-readable lines."""
    say = progress if progress is not None else (lambda line: None)
    root = Path(config.root_dir)
    root.mkdir(parents=True, exist_ok=True)
    payloads = _payloads(config.seed)
    report = SweepReport(seed=config.seed, quick=config.quick)
    say(f"crashsweep seed={config.seed} quick={config.quick}")
    start = time.monotonic()

    if config.plan is not None or (
            config.point is not None
            and config.point.startswith("net.")):
        # Replay one network or composite case against real daemons.
        from .netsweep import run_net_phase
        net = run_net_phase(root / "net", quick=config.quick,
                            sweep=False, seed=config.seed, say=say,
                            point=config.point, plan=config.plan)
        report.net_cases.extend(net.cases)
        report.fuzz_cases.extend(net.fuzz_cases)
        report.duration_s = time.monotonic() - start
        return report

    if config.point is not None and config.point.startswith("client."):
        # Replay one client-phase case: SITE:IDX[:ACTION], exit default.
        plan = FaultPlan.parse(config.point, actions=CLIENT_ACTIONS,
                               default_action="exit")
        point = f"{plan.site}:{plan.index}"
        action = plan.action
        say(f"replaying single client case {point}:{action}")
        case = _client_case(root / "client-replay", 0, point, action)
        report.client_cases.append(case)
        report.duration_s = time.monotonic() - start
        return report

    if not config.client_only and not config.net_only:
        trace = _enumerate_points(root, payloads)
        report.points_enumerated = len(trace)
        for point in trace:
            site = point.rsplit(":", 1)[0]
            report.sites[site] = report.sites.get(site, 0) + 1
        say(f"enumerated {len(trace)} crash points across "
            f"{len(report.sites)} sites")

        if config.point is not None:
            parts = config.point.split(":")
            plan = FaultPlan.parse(config.point) if len(parts) >= 3 \
                else FaultPlan.parse(config.point + ":power-loss")
            say(f"replaying single case {plan.spec}")
            case = _run_case(root / "replay", plan, payloads)
            report.cases.append(case)
            report.duration_s = time.monotonic() - start
            return report

        seen_first: set[str] = set()
        for n, point in enumerate(
                _select_points(trace, quick=config.quick)):
            site = point.rsplit(":", 1)[0]
            first = site not in seen_first
            seen_first.add(site)
            if first:
                say(f"sweeping site {site} "
                    f"({report.sites[site]} points enumerated)")
            for action in _actions_for(site, quick=config.quick,
                                       first=first):
                index = int(point.rsplit(":", 1)[1])
                plan = FaultPlan(site=site, index=index, action=action)
                case = _run_case(root / f"case-{n}-{action}", plan,
                                 payloads)
                report.cases.append(case)
                if not case.ok:
                    say(f"FAIL {case.spec}: {'; '.join(case.errors)}")

        if config.daemon:
            daemon_root = root / "daemon"
            daemon_trace = _daemon_enumerate(daemon_root)
            report.daemon_points_enumerated = len(daemon_trace)
            points = _select_daemon_points(daemon_trace,
                                           quick=config.quick)
            say(f"daemon phase: {len(daemon_trace)} points enumerated, "
                f"crashing a real daemon at {len(points)} of them")
            for i, point in enumerate(points):
                case = _daemon_case(daemon_root, i, point)
                report.daemon_cases.append(case)
                if not case.ok:
                    say(f"FAIL daemon {case.spec}: "
                        f"{'; '.join(case.errors)}")
            combined = _DAEMON_COMBINED_PLANS[:1] if config.quick \
                else _DAEMON_COMBINED_PLANS
            for i, plan_spec in enumerate(combined):
                case = _daemon_case(daemon_root, f"combined-{i}",
                                    plan_spec, action="combined",
                                    plan=plan_spec)
                report.daemon_cases.append(case)
                report.combined_cases_run += 1
                if not case.ok:
                    say(f"FAIL daemon combined {case.point}: "
                        f"{'; '.join(case.errors)}")

    if (config.client or config.client_only) and not config.net_only:
        client_root = root / "client"
        client_trace = _client_enumerate(client_root)
        report.client_points_enumerated = len(client_trace)
        for point in client_trace:
            site = point.rsplit(":", 1)[0]
            report.client_sites[site] = \
                report.client_sites.get(site, 0) + 1
        points = _select_client_points(client_trace, quick=config.quick)
        say(f"client phase: {len(client_trace)} protocol points across "
            f"{len(report.client_sites)} sites, killing a real client "
            f"worker at {len(points)} of them")
        case_n = 0
        seen_sites: set[str] = set()
        for point in points:
            site = point.rsplit(":", 1)[0]
            first = site not in seen_sites
            seen_sites.add(site)
            actions = ["exit"]
            # The hardest kill on the seams that route replies: a
            # SIGKILL mid-stream / mid-partial-ack, full mode only.
            if not config.quick and first and site in (
                    "client.flush.sent", "client.force.ack"):
                actions.append("sigkill")
            for action in actions:
                case = _client_case(client_root, case_n, point, action)
                case_n += 1
                report.client_cases.append(case)
                if not case.hit:
                    say(f"client {point}:{action}: point not reached "
                        f"(workload completed)")
                elif not case.ok:
                    say(f"FAIL client {case.spec}: "
                        f"{'; '.join(case.errors)}")
        combined = _CLIENT_COMBINED[:1] if config.quick \
            else _CLIENT_COMBINED
        say(f"client combined phase: {len(combined)} client-kill + "
            f"server-fault cases")
        for point, action, sid, splan in combined:
            case = _client_case(client_root, case_n, point, action,
                                server_fault=(sid, splan))
            case_n += 1
            report.client_cases.append(case)
            report.combined_cases_run += 1
            if not case.hit:
                say(f"client combined {case.point}: point not reached")
            elif not case.ok:
                say(f"FAIL client combined {case.point}: "
                    f"{'; '.join(case.errors)}")

    if config.net or config.fuzz:
        from .netsweep import run_net_phase
        net = run_net_phase(root / "net", quick=config.quick,
                            sweep=config.net, fuzz=config.fuzz,
                            seed=config.seed, say=say)
        report.net_points_enumerated = net.points_enumerated
        report.net_sites = dict(net.sites)
        report.net_cases.extend(net.cases)
        report.net_partition_cases = net.partition_cases_run
        report.net_handoff_cases = net.handoff_cases_run
        report.fuzz_cases.extend(net.fuzz_cases)

    report.duration_s = time.monotonic() - start
    say(f"{report.cases_run} cases, {len(report.failures)} failures, "
        f"{report.duration_s:.1f}s")
    return report

"""Network phase of ``repro crashsweep``: frame faults + multi-fault fuzz.

The storage and client phases prove durability across crashes of the
*endpoints*; this phase proves it across misbehavior of the *network*
between them — the paper's actual failure model for server switching
(§5.4) and N-of-M write-set availability.  Three real ``repro serve``
daemons run behind per-server :class:`~repro.rt.chaosproxy.ChaosProxy`
instances (a :class:`~repro.rt.chaosproxy.ProxyFleet`), and a scripted
client workload runs through them:

1. **Enumerate** — one clean traced run; every frame crossing the
   target server's proxy is a point ``net.<kind>.<dir>:<index>``
   (keep-alive ping/pong excluded: their timing is not deterministic).
2. **Sweep** — re-run the workload once per (point, action) with that
   single :class:`~repro.rt.chaosproxy.NetFaultPlan` armed, including
   curated ``partition-after`` cases where the §5.4 switch must
   complete off a server that is *alive and reachable in one
   direction* within :data:`SWITCH_BUDGET_S`.
3. **Verify** — heal (drop the proxies), confirm no daemon died, then
   re-run the §5.4 restart with the same client id *directly* against
   the daemons and check the standing invariants: epoch monotone, every
   acked record readable with its exact payload (above the truncation
   floor), nothing fabricated, and post-heal liveness (a fresh
   transaction acks and reads back).

The **fuzz phase** (``repro crashsweep --fuzz N --seed S``) composes
2–4 faults per case drawn across all three injector families — network
frame plans, storage fault plans armed on a daemon via ``--fault-plan``
(power-loss/EIO only: silent storage corruption voids acked-durability
by design and belongs to the storage phase), and in-process client
protocol crashes (:mod:`repro.rt.clientfault`, action ``raise``).  A
case's composite plan string round-trips through
:func:`parse_composite_plan`, so any failure is replayable with
``repro crashsweep --plan SPEC``.  The workload may legally abort
mid-case (e.g. two faulted servers leave no write quorum); the
invariants are checked regardless, after the fleet is revived.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from pathlib import Path

from ..core.config import ReplicationConfig
from ..core.errors import LogError, LogFenced
from ..core.retry import RetryPolicy
from ..net.codec import RECORD_BEARING_KINDS
from ..rt import clientfault
from ..rt.chaosproxy import NetFaultPlan, ProxyFleet
from ..rt.client import AsyncReplicatedLog
from ..rt.clientfault import ClientCrash, ClientFaultInjector
from ..rt.cluster import LoopbackCluster
from ..rt.faultfs import CLIENT_ACTIONS, FaultPlan, FaultSpecError
from .crashsweep import CrashCase

#: the case workload's replication shape (M=3, N=2, δ=8 — δ larger
#: than a transaction so only explicit forces hit the wire, keeping
#: frame enumeration deterministic).
_NET_CONFIG = ReplicationConfig(total_servers=3, copies=2, delta=8)
_TIMEOUT = 1.0
_KA_INTERVAL = 0.25
_KA_MISSES = 2

#: §5.4 detection + switch budget for a *partitioned* (not killed)
#: server: the slower detector — the force-ack timeout (a ``c2s``
#: partition starves acks) vs the keep-alive miss budget (an ``s2c``
#: partition starves all inbound bytes) — plus generous single-core CI
#: slack for the switch's NewInterval + window re-feed round.
SWITCH_BUDGET_S = max(_TIMEOUT, _KA_INTERVAL * (_KA_MISSES + 1)) + 4.0

#: curated §5.4-under-partition cases: the old server stays alive and
#: reachable in one direction; the switch must complete within budget
#: with zero acked-record loss.  ``c2s`` partitions surface as force
#: timeouts, ``s2c`` partitions as keep-alive quarantines.
PARTITION_CASES = (
    "net.writelog.c2s:1:partition-after",
    "net.forcelog.c2s:1:partition-after",
    "net.newhighlsn.s2c:0:partition-after",
    "net.ack.s2c:2:partition-after",
)

#: storage faults the fuzzer draws (crash/wedge only — no silent
#: corruption, which voids acked-durability and is the storage
#: phase's own subject).  ``log.write.fence`` is the durable fence
#: append of the workload's handoff tail.
_FUZZ_STORAGE_SITES = ("log.write.record", "log.fsync", "log.group-fsync",
                       "log.write.fence")
_FUZZ_STORAGE_ACTIONS = ("power-loss", "eio")

#: client protocol sites the fuzzer crashes in-process (action
#: ``raise``; exit/sigkill would kill the harness itself).  The
#: ``client.handoff.*`` sites are the takeover seams: after the epoch
#: bump but before the fence, and after a partial fence install.
_FUZZ_CLIENT_SITES = ("client.flush.sent", "client.force.ack",
                      "client.switch.begin", "client.recovery.copylog",
                      "client.init.lists", "client.handoff.epoch",
                      "client.handoff.fence.ack")

#: payload prefix of every record the *fenced* old writer attempts
#: after a handoff: the durable-file check greps for it, so it must
#: never appear in any daemon's log.
_STALE_PREFIX = b"stale."


# -- the scripted workload ---------------------------------------------------


@dataclass
class NetJournal:
    """What the case workload promised (acks) and attempted."""

    epoch: int = 0
    #: every payload handed to ``write()``, recorded *before* the call
    #: (a record can reach a server even if the call never returns).
    intents: list[bytes] = field(default_factory=list)
    #: lsn → payload, recorded after ``write()`` returned.
    attempts: dict[int, bytes] = field(default_factory=dict)
    acked_high: int = 0
    trunc_req: int = 0
    trunc_ack: int = 0
    max_force_s: float = 0.0
    switches: int = 0
    completed: bool = False
    aborted: str = ""
    crashed_at: str = ""


def _make_client(addresses: dict, client_id: str) -> AsyncReplicatedLog:
    log = AsyncReplicatedLog(
        client_id, addresses, _NET_CONFIG,
        timeout=_TIMEOUT, batch_bytes=256,
        keepalive_interval=_KA_INTERVAL, keepalive_misses=_KA_MISSES,
        retry_policy=RetryPolicy(cap_delay_s=0.25, max_attempts=5),
    )
    # Pin δ so the implicit-force trigger cannot adapt mid-sweep and
    # shift frame counts between enumeration and the armed runs.
    log.delta_controller.min_delta = log.delta_controller.max_delta
    return log


async def _run_workload(addresses: dict, client_id: str,
                        journal: NetJournal, *, seed: int = 0) -> None:
    """Three 4-record transactions with explicit forces and one §5.3
    truncation, then a fenced ownership handoff (a second instance
    seizes the stream and commits one more transaction — putting the
    fencelog frames and the ``client.handoff.*`` sites on the traced
    protocol surface the sweep and fuzzer enumerate).  The journal is
    updated only after each awaited call returns (an interrupted call
    carries no durability promise)."""
    loop = asyncio.get_running_loop()
    # Injected faults abort in-flight futures by design; unretrieved
    # exceptions are expected noise, not harness bugs.
    loop.set_exception_handler(lambda lp, ctx: None)
    log = _make_client(addresses, client_id)
    taker: AsyncReplicatedLog | None = None
    try:
        await log.initialize()
        journal.epoch = log.current_epoch
        for txn in range(3):
            for i in range(4):
                payload = (f"{client_id}.{txn}.{i}.".encode()
                           + bytes((seed + 16 * txn + 4 * i + j) % 256
                                   for j in range(64)))
                journal.intents.append(payload)
                lsn = await log.write(payload)
                journal.attempts[lsn] = payload
            t0 = loop.time()
            high = await log.force()
            journal.max_force_s = max(journal.max_force_s,
                                      loop.time() - t0)
            journal.acked_high = max(journal.acked_high, high)
            if txn == 1:
                low = log.end_of_log() - _NET_CONFIG.delta
                if low > 1:
                    journal.trunc_req = max(journal.trunc_req, low)
                    await log.truncate(low)
                    journal.trunc_ack = max(journal.trunc_ack, low)
        taker = _make_client(addresses, client_id)
        await taker.takeover()
        journal.epoch = taker.current_epoch
        for i in range(4):
            payload = (f"{client_id}.t.{i}.".encode()
                       + bytes((seed + 128 + 4 * i + j) % 256
                               for j in range(64)))
            journal.intents.append(payload)
            lsn = await taker.write(payload)
            journal.attempts[lsn] = payload
        t0 = loop.time()
        high = await taker.force()
        journal.max_force_s = max(journal.max_force_s, loop.time() - t0)
        journal.acked_high = max(journal.acked_high, high)
        journal.completed = True
    finally:
        journal.switches = max(journal.switches, log.server_switches)
        if taker is not None:
            journal.switches = max(journal.switches,
                                   taker.server_switches)
            await taker.close()
        await log.close()


# -- verification ------------------------------------------------------------


async def _verify_case(addresses: dict, client_id: str,
                       journal: NetJournal) -> list[str]:
    """§5.4 restart directly against the daemons; check the invariants."""
    errors: list[str] = []
    asyncio.get_running_loop().set_exception_handler(lambda lp, ctx: None)
    log = AsyncReplicatedLog(client_id, addresses, _NET_CONFIG,
                             timeout=5.0)
    try:
        await log.initialize()
        if journal.epoch and log.current_epoch <= journal.epoch:
            errors.append(
                f"epoch not monotone: recovery drew {log.current_epoch} "
                f"after the workload ran at {journal.epoch}")
        floor = max(journal.trunc_ack, journal.trunc_req)
        end = log.end_of_log()
        if journal.acked_high and end < journal.acked_high:
            errors.append(f"end_of_log {end} below acked high "
                          f"{journal.acked_high}")
        allowed = set(journal.intents)
        for lsn in range(1, end + 1):
            acked = (lsn in journal.attempts
                     and lsn <= journal.acked_high and lsn >= floor)
            try:
                record = await log.read(lsn)
            except LogError as exc:
                # Guard, truncated, or never-landed unacked write: all
                # legal — unless the record was acked.
                if acked:
                    errors.append(f"acked lsn {lsn} lost after heal: "
                                  f"{exc}")
                continue
            want = journal.attempts.get(lsn)
            if want is not None:
                if record.data != want:
                    errors.append(f"lsn {lsn} does not match the write "
                                  f"assigned to it")
            elif record.data not in allowed:
                errors.append(f"fabricated record at lsn {lsn}")
        # Post-heal liveness: a fresh transaction acks and reads back.
        post: list[tuple[int, bytes]] = []
        for i in range(2):
            data = f"post.{client_id}.{i}".encode()
            post.append((await log.write(data), data))
        await log.force()
        for lsn, data in post:
            record = await log.read(lsn)
            if record.data != data:
                errors.append(f"post-heal write at lsn {lsn} not "
                              f"readable")
    except LogError as exc:
        errors.append(f"post-heal recovery failed: {exc!r}")
    finally:
        await log.close()
    return errors


# -- enumeration and case selection ------------------------------------------


def enumerate_net_points(cluster: LoopbackCluster, *,
                         target: str = "s1") -> list[str]:
    """Frame points seen by ``target``'s proxy during one clean run."""

    async def run() -> list[str]:
        fleet = ProxyFleet(cluster.addresses(), record_server=target)
        await fleet.start()
        try:
            journal = NetJournal()
            await _run_workload(fleet.addresses(), "net-e", journal)
            if not journal.completed:
                raise RuntimeError(
                    "net enumeration workload did not complete")
            return list(fleet.proxies[target].trace)
        finally:
            await fleet.close()

    trace = asyncio.run(run())
    return [p for p in trace
            if ".ping." not in p and ".pong." not in p]


def select_net_cases(trace: list[str], *,
                     quick: bool) -> list[tuple[str, str]]:
    """(point, action) pairs to sweep, from an enumerated trace."""
    by_site: dict[str, list[str]] = {}
    for point in trace:
        by_site.setdefault(point.rsplit(":", 1)[0], []).append(point)
    cases: list[tuple[str, str]] = []
    if quick:
        wanted = ("net.intervallistcall.c2s", "net.writelog.c2s",
                  "net.forcelog.c2s", "net.newhighlsn.s2c")
        for site in wanted:
            if site not in by_site:
                continue
            first = by_site[site][0]
            cases.append((first, "drop"))
            cases.append((first, "kill-connection-after"))
        if "net.forcelog.c2s" in by_site:
            cases.append((by_site["net.forcelog.c2s"][0],
                          "corrupt-payload"))
        if "net.newhighlsn.s2c" in by_site:
            cases.append((by_site["net.newhighlsn.s2c"][0],
                          "corrupt-header"))
        return cases
    for site in sorted(by_site):
        points = by_site[site]
        kind = site.split(".")[1]
        first, last = points[0], points[-1]
        cases.append((first, "drop"))
        cases.append((first, "kill-connection-after"))
        cases.append((first, "duplicate"))
        cases.append((first, "corrupt-header"))
        if last != first:
            cases.append((last, "drop"))
        if kind in RECORD_BEARING_KINDS:
            cases.append((first, "corrupt-payload"))
            cases.append((first, "truncate-mid-frame"))
    for site in ("net.forcelog.c2s", "net.newhighlsn.s2c"):
        if site in by_site:
            cases.append((by_site[site][0], "delay"))
    return cases


# -- single-fault net cases --------------------------------------------------


def run_net_case(cluster: LoopbackCluster, index, spec: str, *,
                 partition_expected: bool = False) -> CrashCase:
    """One armed frame fault against the shared daemon cluster."""
    plan = NetFaultPlan.parse(spec)
    case = CrashCase(point=plan.point, action=plan.action)
    target = plan.server or "s1"
    client_id = f"n{index}"
    journal = NetJournal()

    async def run() -> int:
        fleet = ProxyFleet(cluster.addresses(), plans=(plan,),
                           default_target=target)
        await fleet.start()
        try:
            try:
                await asyncio.wait_for(
                    _run_workload(fleet.addresses(), client_id, journal),
                    timeout=60.0)
            except (LogError, OSError, asyncio.TimeoutError) as exc:
                journal.aborted = repr(exc)
            return fleet.faults_injected
        finally:
            await fleet.close()

    case.hit = asyncio.run(run()) > 0
    if partition_expected:
        if not cluster.servers[target].alive:
            case.errors.append(
                f"partitioned daemon {target} died during the case")
        if not journal.switches:
            case.errors.append(
                "partition did not drive a §5.4 write-set switch")
        if not journal.completed:
            case.errors.append(
                f"workload did not complete off the partitioned server "
                f"({journal.aborted or 'incomplete'})")
        if journal.max_force_s > SWITCH_BUDGET_S:
            case.errors.append(
                f"switch took {journal.max_force_s:.2f}s, over the "
                f"{SWITCH_BUDGET_S:.2f}s detection budget")
    # Heal == the proxies are gone.  A network-only fault must never
    # kill a daemon; restart any casualty so one bad case cannot
    # cascade, but record it as the failure it is.
    for sid, entry in cluster.servers.items():
        if not entry.alive:
            case.errors.append(
                f"daemon {sid} died during a network-only case")
            cluster.restart(sid)
    case.errors.extend(
        asyncio.run(_verify_case(cluster.addresses(), client_id,
                                 journal)))
    case.ok = not case.errors
    return case


# -- the curated linearizable-handoff case -----------------------------------


def run_handoff_case(cluster: LoopbackCluster, index) -> CrashCase:
    """Writer takeover with the *old owner alive and half-reachable*.

    The adversarial shape §5.4 recovery alone cannot survive: the old
    writer is partitioned ``s2c`` on every link — deaf, but its frames
    still *reach* every daemon — while a second client seizes the
    stream via :meth:`~repro.rt.client.AsyncReplicatedLog.takeover`.
    The old writer then keeps forcing records (prefix
    :data:`_STALE_PREFIX`); only the durable fence stands between them
    and the log.  After healing, the case proves:

    * the old writer observes the terminal :class:`LogFenced` (not an
      endless retry loop) once it can hear replies again;
    * **zero** stale records are durable — checked against each healed
      daemon's on-disk files, reopened directly, not just through the
      read path;
    * the fence epoch itself is durable on at least ``M − N + 1``
      servers, so every possible write set stays poisoned;
    * the new owner's log is live throughout, and a final §5.4 restart
      sees a monotone epoch and every acked record.
    """
    case = CrashCase(point="handoff.partition", action="takeover")
    client_id = f"h{index}"
    config = _NET_CONFIG
    old_acked: dict[int, bytes] = {}
    new_acked: dict[int, bytes] = {}
    outcome: dict[str, object] = {"takeover_epoch": 0, "fenced": ""}

    async def run() -> None:
        loop = asyncio.get_running_loop()
        loop.set_exception_handler(lambda lp, ctx: None)
        fleet = ProxyFleet(cluster.addresses())
        await fleet.start()
        old = _make_client(fleet.addresses(), client_id)
        new = AsyncReplicatedLog(client_id, cluster.addresses(), config,
                                 timeout=2.0)
        try:
            await old.initialize()
            for txn in range(2):
                for i in range(4):
                    payload = f"{client_id}.pre.{txn}.{i}".encode()
                    lsn = await old.write(payload)
                    old_acked[lsn] = payload
                await old.force()
            # Half-partition the old writer: every proxy drops
            # server→client, so it hears nothing — but its own frames
            # still land on every daemon.
            for proxy in fleet.proxies.values():
                proxy.partition("s2c")
            # The second process seizes the stream over its own links.
            await new.takeover()
            outcome["takeover_epoch"] = new.current_epoch
            # The deaf old writer keeps forcing.  These frames reach
            # the daemons; the fence must refuse them *before* any
            # append, even though the refusals cannot be delivered.
            for i in range(4):
                payload = _STALE_PREFIX + f"{client_id}.{i}".encode()
                await old.write(payload)
            try:
                await asyncio.wait_for(old.force(),
                                       timeout=SWITCH_BUDGET_S)
                outcome["fenced"] = "acked while deaf"
            except LogFenced:
                outcome["fenced"] = "fenced"
            except (LogError, asyncio.TimeoutError):
                pass  # expected: no acks can arrive through the block
            # Heal: the old writer can hear again.  It keeps retrying
            # exactly as a real writer would — riding out transient
            # NotEnoughServers while its quarantined connections come
            # back — and must observe the *terminal* refusal within
            # the detection budget, never an ack.
            fleet.heal()
            deadline = loop.time() + 2 * SWITCH_BUDGET_S
            while not outcome["fenced"]:
                try:
                    await asyncio.wait_for(old.force(),
                                           timeout=SWITCH_BUDGET_S)
                    outcome["fenced"] = "acked after heal"
                except LogFenced:
                    outcome["fenced"] = "fenced"
                except (LogError, asyncio.TimeoutError) as exc:
                    if loop.time() > deadline:
                        outcome["fenced"] = f"not observed: {exc!r}"
                    else:
                        await asyncio.sleep(0.25)
            # The new owner's log was live through all of it.
            for i in range(4):
                payload = f"{client_id}.post.{i}".encode()
                lsn = await new.write(payload)
                new_acked[lsn] = payload
            await new.force()
        finally:
            await old.close()
            await new.close()
            await fleet.close()

    try:
        asyncio.run(run())
    except (LogError, OSError, asyncio.TimeoutError) as exc:
        case.errors.append(f"handoff case aborted: {exc!r}")
    case.hit = True
    if outcome["fenced"] != "fenced":
        case.errors.append(
            f"old writer was not terminally fenced: "
            f"{outcome['fenced'] or 'no refusal observed'}")
    # Durable-file check, per daemon: kill it, reopen its store the
    # way a restart would, and look for leaked stale records and the
    # standing fence.  The daemons come back healed afterwards.
    from ..rt.filestore import FileLogStore
    fence_holders = 0
    for sid, entry in sorted(cluster.servers.items()):
        if not entry.alive:
            case.errors.append(f"daemon {sid} died during the handoff "
                               f"case")
            continue
        cluster.kill(sid)
        store = FileLogStore(entry.data_dir, sid)
        try:
            if store.fence_epoch(client_id) >= int(
                    outcome["takeover_epoch"] or 1):
                fence_holders += 1
            for lsn in store.stored_lsns(client_id):
                if store.read_record(client_id, lsn).data.startswith(
                        _STALE_PREFIX):
                    case.errors.append(
                        f"stale record committed past the fence: "
                        f"{sid} lsn {lsn}")
        finally:
            store.close()
        cluster.start_server(sid)
    if fence_holders < config.init_quorum:
        case.errors.append(
            f"fence durable on only {fence_holders} servers; "
            f"{config.init_quorum} needed to poison every write set")
    # Final §5.4 restart over the healed daemons: epoch monotone, all
    # acked records (old pre-handoff + new post-handoff) durable, and
    # nothing stale readable anywhere.
    journal = NetJournal(epoch=int(outcome["takeover_epoch"] or 0),
                         acked_high=max([*old_acked, *new_acked],
                                        default=0))
    journal.attempts = {**old_acked, **new_acked}
    journal.intents = list(journal.attempts.values())
    case.errors.extend(
        asyncio.run(_verify_case(cluster.addresses(), client_id,
                                 journal)))
    case.ok = not case.errors
    return case


# -- composite (fuzz) plans --------------------------------------------------


@dataclass(frozen=True)
class CompositePlan:
    """2–4 faults across the three injector families, one case."""

    net: tuple[NetFaultPlan, ...] = ()
    storage: tuple[tuple[str, FaultPlan], ...] = ()  # (server id, plan)
    client: tuple[FaultPlan, ...] = ()

    @property
    def spec(self) -> str:
        tokens = [p.spec for p in self.net]
        tokens += [f"{sid}@{p.spec}" for sid, p in self.storage]
        tokens += [p.spec for p in self.client]
        return ",".join(tokens)


def parse_composite_plan(spec: str) -> CompositePlan:
    """Parse a comma-separated plan mixing all three fault families.

    Family is recognized per token: ``[sid@]net.<kind>.<dir>:…`` is a
    network frame fault, ``client.<site>:…`` a client protocol crash,
    anything else ``[sid@]<storage-site>:…`` (server default ``s1``).
    Malformed or duplicate-point input raises :class:`FaultSpecError`.
    """
    tokens = [token.strip() for token in spec.split(",")]
    if tokens == [""]:
        raise FaultSpecError(spec, spec, "is an empty fault plan")
    net: list[NetFaultPlan] = []
    storage: list[tuple[str, FaultPlan]] = []
    client: list[FaultPlan] = []
    for token in tokens:
        if not token:
            raise FaultSpecError(spec, token,
                                 "is an empty token between commas")
        body = token.split("@", 1)[-1]
        if body.startswith("net."):
            net.append(NetFaultPlan.parse(token))
        elif body.startswith("client."):
            if "@" in token:
                raise FaultSpecError(
                    spec, token,
                    "routes a client fault to a server (client faults "
                    "run in the client process)")
            client.append(FaultPlan.parse(body, actions=CLIENT_ACTIONS))
        else:
            sid, sep, rest = token.partition("@")
            if not sep:
                sid, rest = "s1", token
            elif not sid:
                raise FaultSpecError(spec, token,
                                     "has an empty server id before '@'")
            storage.append((sid, FaultPlan.parse(rest)))
    keys = ([("net", p.server or "s1", p.point) for p in net]
            + [("storage", sid, p.point) for sid, p in storage]
            + [("client", "", p.point) for p in client])
    for key in keys:
        if keys.count(key) > 1:
            raise FaultSpecError(spec, key[2],
                                 "is armed twice in one plan")
    return CompositePlan(tuple(net), tuple(storage), tuple(client))


def draw_fuzz_plan(rng: random.Random,
                   sites: dict[str, int]) -> CompositePlan:
    """One seeded composite plan over the enumerated net site menu."""
    n_faults = rng.randint(2, 4)
    net: list[NetFaultPlan] = []
    storage: list[tuple[str, FaultPlan]] = []
    client: list[FaultPlan] = []
    seen: set[tuple] = set()
    tries = 0
    while len(net) + len(storage) + len(client) < n_faults and tries < 64:
        tries += 1
        family = rng.choices(("net", "storage", "client"),
                             weights=(3, 1, 1))[0]
        if family == "net":
            site = rng.choice(sorted(sites))
            index = rng.randrange(min(sites[site], 3))
            _, kind, direction = site.split(".")
            actions = ["drop", "delay", "duplicate", "corrupt-header",
                       "truncate-mid-frame", "partition-after",
                       "kill-connection-after"]
            if kind in RECORD_BEARING_KINDS:
                actions.append("corrupt-payload")
            sid = rng.choice(("s1", "s1", "s2", "s3"))
            key = ("net", sid, site, index)
            if key in seen:
                continue
            seen.add(key)
            net.append(NetFaultPlan(kind=kind, direction=direction,
                                    index=index,
                                    action=rng.choice(actions),
                                    server=sid))
        elif family == "storage":
            sid = rng.choice(("s1", "s2"))
            site = rng.choice(_FUZZ_STORAGE_SITES)
            index = rng.randrange(6)
            key = ("storage", sid, site, index)
            if key in seen:
                continue
            seen.add(key)
            storage.append((sid, FaultPlan(
                site=site, index=index,
                action=rng.choice(_FUZZ_STORAGE_ACTIONS))))
        else:
            site = rng.choice(_FUZZ_CLIENT_SITES)
            index = rng.randrange(2)
            key = ("client", "", site, index)
            if key in seen:
                continue
            seen.add(key)
            client.append(FaultPlan(site=site, index=index,
                                    action="raise"))
    return CompositePlan(tuple(net), tuple(storage), tuple(client))


def run_fuzz_case(cluster: LoopbackCluster, index,
                  plan: CompositePlan) -> CrashCase:
    """One composed multi-fault case; revive the fleet, then verify."""
    case = CrashCase(point=plan.spec, action="fuzz")
    bad = [p.spec for p in plan.client if p.action != "raise"]
    if bad:
        case.errors.append(
            f"fuzz cases only support in-process client faults "
            f"(action 'raise'); got {', '.join(bad)}")
        case.ok = False
        return case
    client_id = f"f{index}"
    journal = NetJournal()
    by_server: dict[str, list[FaultPlan]] = {}
    for sid, fplan in plan.storage:
        by_server.setdefault(sid, []).append(fplan)
    for sid in sorted(by_server):
        cluster.restart(sid, extra_args=[
            "--fault-plan",
            ",".join(p.spec for p in by_server[sid])])

    async def run() -> int:
        fleet = ProxyFleet(cluster.addresses(), plans=plan.net,
                           seed=index if isinstance(index, int) else 0)
        await fleet.start()
        injector = ClientFaultInjector(plan.client)
        clientfault.install(injector)
        try:
            try:
                await asyncio.wait_for(
                    _run_workload(fleet.addresses(), client_id, journal),
                    timeout=60.0)
            except ClientCrash as crash:
                journal.crashed_at = crash.point
            except (LogError, OSError, asyncio.TimeoutError) as exc:
                journal.aborted = repr(exc)
            return fleet.faults_injected + injector.crashes
        finally:
            clientfault.install(None)
            await fleet.close()

    try:
        fired = asyncio.run(run())
    finally:
        cluster.revive(sorted(by_server))
    case.hit = fired > 0 or any(not cluster.servers[sid].alive
                                for sid in by_server)
    case.errors.extend(
        asyncio.run(_verify_case(cluster.addresses(), client_id,
                                 journal)))
    case.ok = not case.errors
    return case


# -- phase entry point -------------------------------------------------------


@dataclass
class NetPhaseResult:
    """What the network phases did, for the sweep report."""

    points_enumerated: int = 0
    sites: dict[str, int] = field(default_factory=dict)
    cases: list[CrashCase] = field(default_factory=list)
    partition_cases_run: int = 0
    handoff_cases_run: int = 0
    fuzz_cases: list[CrashCase] = field(default_factory=list)


def run_net_phase(root: Path, *, quick: bool = False, sweep: bool = True,
                  fuzz: int = 0, seed: int = 0, say=lambda line: None,
                  point: str | None = None,
                  plan: str | None = None) -> NetPhaseResult:
    """Run the network sweep and/or fuzz phases on one shared cluster.

    Network faults never corrupt durable state, so one 3-daemon
    cluster serves every case; each case gets a fresh client id and a
    fresh proxy fleet (fuzz cases additionally restart the daemons
    they arm storage faults on).
    """
    result = NetPhaseResult()
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    with LoopbackCluster(str(root / "cluster"), num_servers=3) as cluster:
        if plan is not None:
            composite = parse_composite_plan(plan)
            say(f"replaying composite fuzz case {composite.spec}")
            case = run_fuzz_case(cluster, "replay", composite)
            result.fuzz_cases.append(case)
            if not case.ok:
                say(f"FAIL fuzz replay [{case.point}]: "
                    f"{'; '.join(case.errors)}")
            return result
        if point is not None:
            spec = point if point.count(":") >= 2 else f"{point}:drop"
            netplan = NetFaultPlan.parse(spec)
            say(f"replaying single network case {netplan.spec}")
            case = run_net_case(
                cluster, "replay", spec,
                partition_expected=netplan.action == "partition-after")
            result.cases.append(case)
            if not case.ok:
                say(f"FAIL net {case.spec}: {'; '.join(case.errors)}")
            return result
        trace = enumerate_net_points(cluster)
        result.points_enumerated = len(trace)
        for p in trace:
            site = p.rsplit(":", 1)[0]
            result.sites[site] = result.sites.get(site, 0) + 1
        if sweep:
            selected = select_net_cases(trace, quick=quick)
            partitions = PARTITION_CASES[:1] if quick else PARTITION_CASES
            say(f"network phase: {len(trace)} frame points across "
                f"{len(result.sites)} sites, {len(selected)} fault "
                f"cases + {len(partitions)} partition-switch cases")
            for n, (p, action) in enumerate(selected):
                case = run_net_case(cluster, n, f"{p}:{action}")
                result.cases.append(case)
                if not case.ok:
                    say(f"FAIL net {case.spec}: "
                        f"{'; '.join(case.errors)}")
            for n, spec in enumerate(partitions):
                case = run_net_case(cluster, f"p{n}", spec,
                                    partition_expected=True)
                result.cases.append(case)
                result.partition_cases_run += 1
                if not case.ok:
                    say(f"FAIL net partition {case.spec}: "
                        f"{'; '.join(case.errors)}")
            say("handoff phase: fenced takeover with the old writer "
                "alive and half-partitioned")
            case = run_handoff_case(cluster, "x0")
            result.cases.append(case)
            result.handoff_cases_run += 1
            if not case.ok:
                say(f"FAIL handoff {case.point}: "
                    f"{'; '.join(case.errors)}")
        if fuzz:
            say(f"fuzz phase: {fuzz} composed multi-fault cases, "
                f"seed {seed}")
            for i in range(fuzz):
                rng = random.Random(seed * 1_000_003 + i)
                composite = draw_fuzz_plan(rng, result.sites)
                case = run_fuzz_case(cluster, i, composite)
                result.fuzz_cases.append(case)
                if not case.ok:
                    say(f"FAIL fuzz case {i} [{composite.spec}]: "
                        f"{'; '.join(case.errors)} — replay with: "
                        f"repro crashsweep --plan '{composite.spec}'")
    return result

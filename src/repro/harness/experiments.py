"""Experiment runners: one function per paper figure/claim.

Each runner assembles the full simulated system (or the direct
algorithm layer, where timing is irrelevant), executes the workload,
and returns a small result dataclass that the benchmarks print and the
integration tests assert on.  All runs are deterministic given their
seed.

Index (see DESIGN.md §4):

* :func:`run_availability_monte_carlo` — E2, validates the Figure 3-4
  closed forms against the real algorithm under random outages;
* :func:`run_generator_monte_carlo` — E8, same for Appendix I;
* :func:`run_target_load` — E4, the 50-client / 6-server / 500-TPS
  configuration of Section 4.1, measured rather than derived;
* :func:`run_prototype_comparison` — E5, the Section 5.6 measurement
  (remote logging to two servers vs local single-disk logging);
* :func:`run_paper_figure_states` — E6, the Figure 3-1/3-2/3-3 worked
  example;
* :func:`run_nvram_ablation` — A2;
* :func:`run_assignment_ablation` — A4;
* :func:`run_splitting_ablation` — A3.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from ..analysis.constants import DEFAULT_MIPS, CpuModel
from ..baselines.local_log import LocalDiskLog
from ..client.log_client import SimLogClient
from ..client.backends import SimLogBackend
from ..client.node import ClientNode
from ..client.splitting import UndoCache
from ..core import (
    DirectServerPort,
    LogServerStore,
    NotEnoughServers,
    ReplicatedLog,
    ReplicationConfig,
    ServerUnavailable,
    make_generator,
)
from ..core.epoch import LocalIdGenerator, make_generator as make_id_generator
from ..net.lan import DualLan, Lan
from ..server.load import RandomAssignment, StickyAssignment
from ..server.log_server import SimLogServer
from ..sim.failures import bernoulli_outage_sample, restore_all
from ..sim.kernel import Simulator
from ..sim.stats import MetricSet
from ..storage.disk import SLOW_1987_DISK, DiskParams, SimDisk
from ..workload.et1 import Et1Driver, Et1Params, et1_log_pattern
from ..workload.generators import LongTxnParams, transactional_mix


def _drain(gen):
    """Run a no-yield generator to completion, returning its value."""
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value


# ---------------------------------------------------------------------------
# E2 / A5: Monte-Carlo availability of the real algorithm
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class AvailabilityMeasurement:
    m: int
    n: int
    p: float
    trials: int
    write_available: float
    init_available: float
    read_available: float


def run_availability_monte_carlo(
    m: int, n: int, p: float, trials: int = 2000, seed: int = 0,
) -> AvailabilityMeasurement:
    """Measure operation availability by injecting random outages.

    Uses the direct algorithm layer: ``m`` stores, one client.  For
    each trial, every server is independently down with probability
    ``p``; the trial then attempts a WriteLog, a ReadLog of a known
    record, and a full client initialization, counting successes.
    This validates the Section 3.2 closed forms against the actual
    implementation rather than against algebra.
    """
    rng = random.Random(seed)

    def fresh_system():
        stores = {f"s{i}": LogServerStore(f"s{i}") for i in range(m)}
        ports = {sid: DirectServerPort(st) for sid, st in stores.items()}
        generator = make_generator(2 * n + 1)
        log = ReplicatedLog("mc-client", ports,
                            ReplicationConfig(m, n, delta=1), generator)
        log.initialize()
        return stores, log

    stores, log = fresh_system()
    probe_lsn = log.write(b"probe")

    write_ok = read_ok = init_ok = 0
    for _trial in range(trials):
        # Every recovery appends copies and guards, so long runs make
        # the stores (and merge costs) grow; restart from a fresh
        # system periodically — the statistics are per-trial and
        # unaffected.
        if _trial % 50 == 0 and _trial > 0:
            stores, log = fresh_system()
            probe_lsn = log.write(b"probe")
        bernoulli_outage_sample(list(stores.values()), p, rng)
        # ReadLog of the probe record
        try:
            log.read(probe_lsn)
            read_ok += 1
        except (ServerUnavailable, NotEnoughServers):
            pass
        # WriteLog
        try:
            log.write(b"w")
            write_ok += 1
        except NotEnoughServers:
            pass
        # Client initialization (generator representatives stay up —
        # the paper's footnote: they do not limit availability).
        try:
            log.crash()
            log.initialize()
            init_ok += 1
        except NotEnoughServers:
            pass
        restore_all(list(stores.values()))
        if not log.initialized:
            log.initialize()
        probe_lsn = log.write(b"probe")
    return AvailabilityMeasurement(
        m=m, n=n, p=p, trials=trials,
        write_available=write_ok / trials,
        init_available=init_ok / trials,
        read_available=read_ok / trials,
    )


@dataclass(frozen=True, slots=True)
class GeneratorMeasurement:
    n_reps: int
    p: float
    trials: int
    available: float
    monotone: bool


def run_generator_monte_carlo(
    n_reps: int, p: float, trials: int = 2000, seed: int = 0,
) -> GeneratorMeasurement:
    """Appendix I: measured NewID availability plus monotonicity check."""
    rng = random.Random(seed)
    generator = make_id_generator(n_reps)
    ok = 0
    last = 0
    monotone = True
    for _trial in range(trials):
        bernoulli_outage_sample(generator.representatives, p, rng)
        try:
            value = generator.new_id()
        except NotEnoughServers:
            pass
        else:
            ok += 1
            if value <= last:
                monotone = False
            last = value
        restore_all(generator.representatives)
    return GeneratorMeasurement(
        n_reps=n_reps, p=p, trials=trials,
        available=ok / trials, monotone=monotone,
    )


# ---------------------------------------------------------------------------
# E4: the Section 4.1 target load, measured in the full simulator
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class TargetLoadConfig:
    clients: int = 50
    servers: int = 6
    copies: int = 2
    tps_per_client: float = 10.0
    duration_s: float = 5.0
    seed: int = 0
    mips: float = DEFAULT_MIPS
    disk: DiskParams = SLOW_1987_DISK
    delta: int = 32
    dual_network: bool = True
    bandwidth_bps: float = 10e6
    et1: Et1Params = Et1Params()


@dataclass(slots=True)
class TargetLoadResult:
    config: TargetLoadConfig
    completed_txns: int
    achieved_tps: float
    force_mean_ms: float
    force_p95_ms: float
    rpcs_per_server_s: float
    packets_per_server_s: float
    server_cpu_utilization: float
    server_disk_utilization: float
    network_mbits_s: float
    per_network_utilization: tuple[float, ...]
    bytes_per_server_s: float
    messages_shed: int
    failed_drivers: int
    #: wall-clock cost of the whole run (setup + simulation), and the
    #: kernel's own work accounting — process resumptions executed and
    #: simulated seconds covered — so benchmarks can report events/sec
    #: and the sim-time/wall-time ratio without re-instrumenting.
    kernel_events: int = 0
    wall_seconds: float = 0.0
    sim_seconds: float = 0.0

    @property
    def events_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.kernel_events / self.wall_seconds

    @property
    def sim_time_ratio(self) -> float:
        """Simulated seconds advanced per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.sim_seconds / self.wall_seconds

    def rows(self) -> list[tuple[str, str, str]]:
        """Measured values next to expectations derived from the config.

        Expectations come from the Section 4.1 arithmetic applied to
        the *achieved* TPS and this run's M/N/client counts, so the
        table stays meaningful for non-default configurations.
        """
        cfg = self.config
        tps = self.achieved_tps
        target_tps = cfg.clients * cfg.tps_per_client
        exp_rpcs = tps * cfg.copies / cfg.servers
        exp_bytes = tps * cfg.et1.bytes_per_txn * cfg.copies / cfg.servers
        # one ~970-byte force packet + one ~96-byte ack per copy
        exp_bits = tps * cfg.copies * (970 + 96) * 8
        return [
            ("achieved TPS", f"{tps:.0f}", f"{target_tps:.0f} target"),
            ("force msgs/server/s (≈RPCs)",
             f"{self.rpcs_per_server_s:.0f}", f"~{exp_rpcs:.0f}"),
            ("network load (Mbit/s)",
             f"{self.network_mbits_s:.1f}", f"~{exp_bits / 1e6:.1f}"),
            ("server CPU utilization (%)",
             f"{self.server_cpu_utilization * 100:.1f}", "<20-30"),
            ("server disk utilization (%)",
             f"{self.server_disk_utilization * 100:.1f}",
             "~50 at the 500-TPS target (slow disks)"),
            ("force latency mean (ms)",
             f"{self.force_mean_ms:.2f}", "low (NVRAM, no disk wait)"),
            ("log bytes/server/s",
             f"{self.bytes_per_server_s:,.0f}", f"~{exp_bytes:,.0f}"),
        ]


def run_target_load(config: TargetLoadConfig = TargetLoadConfig()) -> TargetLoadResult:
    """Simulate the paper's 500-TPS configuration end to end."""
    wall_start = time.perf_counter()
    sim = Simulator()
    metrics = MetricSet()
    rng = random.Random(config.seed)
    net_a = Lan(sim, bandwidth_bps=config.bandwidth_bps,
                rng=random.Random(config.seed + 1), name="lan-a")
    net_b = Lan(sim, bandwidth_bps=config.bandwidth_bps,
                rng=random.Random(config.seed + 2), name="lan-b")
    network = DualLan(net_a, net_b) if config.dual_network else net_a

    server_ids = [f"s{i}" for i in range(config.servers)]
    servers = {
        sid: SimLogServer(sim, network, sid, disk_params=config.disk,
                          mips=config.mips, metrics=metrics)
        for sid in server_ids
    }
    generator = make_generator(3)

    clients: list[SimLogClient] = []
    drivers: list[Et1Driver] = []
    for i in range(config.clients):
        preferred = [
            server_ids[i % config.servers],
            server_ids[(i + 1) % config.servers],
        ]
        client = SimLogClient(
            sim, network, f"c{i}", server_ids,
            ReplicationConfig(config.servers, config.copies, delta=config.delta),
            generator, mips=config.mips, metrics=metrics,
            assignment=StickyAssignment(preferred),
            rng=random.Random(config.seed + 100 + i),
        )
        clients.append(client)
        drivers.append(Et1Driver(
            sim, SimLogBackend(client), config.tps_per_client,
            random.Random(config.seed + 1000 + i), metrics,
            name=f"c{i}", params=config.et1,
        ))

    marks = {"start": 0.0, "end": 0.0}
    snapshots: dict[str, tuple[float, float]] = {}

    def snapshot() -> dict[str, tuple[float, float]]:
        return {
            sid: (srv.cpu.busy_integral(), srv.disk.arm.busy_integral())
            for sid, srv in servers.items()
        }

    def main():
        for client in clients:
            yield from client.initialize()
        marks["start"] = sim.now
        start_busy = snapshot()
        procs = [
            sim.spawn(driver.run(config.duration_s), name=driver.name)
            for driver in drivers
        ]
        yield sim.all_of(procs)
        marks["end"] = sim.now
        end_busy = snapshot()
        snapshots["cpu"] = sum(
            end_busy[sid][0] - start_busy[sid][0] for sid in servers
        )
        snapshots["disk"] = sum(
            end_busy[sid][1] - start_busy[sid][1] for sid in servers
        )

    sim.spawn(main(), name="target-load")
    sim.run(until=warm_deadline(config))

    if marks["end"] <= marks["start"]:
        raise RuntimeError("target-load drivers did not finish; raise the deadline")
    elapsed = marks["end"] - marks["start"]
    completed = sum(d.completed for d in drivers)
    failed = sum(d.failed for d in drivers)

    # aggregate per-server counters
    def total(counter_suffix: str) -> float:
        return sum(
            metrics.counter(f"{sid}.{counter_suffix}").total
            for sid in server_ids
        )

    rpcs = total("force_msgs") / config.servers / elapsed
    packets = (total("packets_in") + total("packets_out")) / config.servers / elapsed
    bytes_stored = total("bytes_stored") / config.servers / elapsed
    window = elapsed * config.servers
    cpu = snapshots["cpu"] / window
    disk = snapshots["disk"] / window
    if config.dual_network:
        net_bits = (net_a.bytes_sent.total + net_b.bytes_sent.total) * 8 / elapsed
        n_nets = 2
    else:
        net_bits = net_a.bytes_sent.total * 8 / elapsed
        n_nets = 1
    # mean fraction of each network's bandwidth consumed by the load
    per_net = tuple(
        net_bits / n_nets / config.bandwidth_bps for _ in range(n_nets)
    )

    forces = [metrics.latency(f"c{i}.force") for i in range(config.clients)]
    all_forces = [v for lat in forces for v in lat._values]
    force_mean = sum(all_forces) / len(all_forces) if all_forces else 0.0
    all_forces.sort()
    p95 = all_forces[int(0.95 * (len(all_forces) - 1))] if all_forces else 0.0

    return TargetLoadResult(
        config=config,
        completed_txns=completed,
        achieved_tps=completed / elapsed,
        force_mean_ms=force_mean * 1000,
        force_p95_ms=p95 * 1000,
        rpcs_per_server_s=rpcs,
        packets_per_server_s=packets,
        server_cpu_utilization=cpu,
        server_disk_utilization=disk,
        network_mbits_s=net_bits / 1e6,
        per_network_utilization=per_net,
        bytes_per_server_s=bytes_stored,
        messages_shed=sum(s.messages_shed for s in servers.values()),
        failed_drivers=failed,
        kernel_events=sim.events_processed,
        wall_seconds=time.perf_counter() - wall_start,
        sim_seconds=sim.now,
    )


def warm_deadline(config: TargetLoadConfig) -> float:
    """Generous wall for the run: init + workload + drain."""
    return config.duration_s + 30.0


# ---------------------------------------------------------------------------
# E5: the Section 5.6 prototype comparison
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class PrototypeComparison:
    transactions: int
    remote_elapsed_s: float
    local_elapsed_s: float

    @property
    def ratio(self) -> float:
        return self.remote_elapsed_s / self.local_elapsed_s


def run_prototype_comparison(
    transactions: int = 200,
    accent_instructions_per_packet: int = 3200,
    mips: float = 1.0,
    disk: DiskParams = SLOW_1987_DISK,
    seed: int = 0,
) -> PrototypeComparison:
    """Section 5.6: remote logging to two servers vs one local disk.

    The April-1986 prototype logged "to virtual memory on two remote
    servers" over Accent IPC, which the paper itself notes "is not as
    low level or efficient as Section 4.1 suggests is necessary".  The
    remote side therefore runs with an Accent-like per-packet cost
    (``accent_instructions_per_packet`` at ``mips``); the local side is
    classic group-commit logging to a single disk.  The paper's result:
    remote took *less than twice* the local elapsed time.
    """
    et1 = Et1Params()

    # --- remote: 1 client, 2 servers, N=2, expensive IPC, VM storage ----
    sim_r = Simulator()
    lan = Lan(sim_r, rng=random.Random(seed))
    metrics_r = MetricSet()
    accent = CpuModel(mips=mips,
                      instructions_per_packet=accent_instructions_per_packet)
    for sid in ("r0", "r1"):
        SimLogServer(sim_r, lan, sid, metrics=metrics_r, cpu_model=accent)
    client = SimLogClient(
        sim_r, lan, "proto-client", ["r0", "r1"],
        ReplicationConfig(2, 2, delta=32), LocalIdGenerator(),
        metrics=metrics_r, cpu_model=accent,
        force_timeout_s=5.0,
    )
    driver_r = Et1Driver(sim_r, SimLogBackend(client), tps=1e9,
                         rng=random.Random(seed), metrics=metrics_r,
                         name="remote", params=et1)
    elapsed_remote = {}

    def remote_main():
        yield from client.initialize()
        start = sim_r.now
        for seq in range(transactions):
            yield from driver_r.run_one(seq)
        elapsed_remote["t"] = sim_r.now - start

    sim_r.spawn(remote_main())
    sim_r.run(until=3600)

    # --- local: one disk on the processing node -------------------------------
    sim_l = Simulator()
    metrics_l = MetricSet()
    local_disk = SimDisk(sim_l, disk, name="local.disk")
    local_log = LocalDiskLog(sim_l, local_disk, metrics=metrics_l)
    driver_l = Et1Driver(sim_l, local_log, tps=1e9,
                         rng=random.Random(seed), metrics=metrics_l,
                         name="local", params=et1)
    elapsed_local = {}

    def local_main():
        start = sim_l.now
        for seq in range(transactions):
            yield from driver_l.run_one(seq)
        elapsed_local["t"] = sim_l.now - start

    sim_l.spawn(local_main())
    sim_l.run(until=3600)

    return PrototypeComparison(
        transactions=transactions,
        remote_elapsed_s=elapsed_remote["t"],
        local_elapsed_s=elapsed_local["t"],
    )


# ---------------------------------------------------------------------------
# E6: the Figure 3-1 / 3-2 / 3-3 worked example
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class PaperFigureStates:
    """Server tables after each step of the Figures 3-1..3-3 scenario."""

    figure_3_2: dict[str, list[tuple[int, int, str]]] = field(default_factory=dict)
    figure_3_3: dict[str, list[tuple[int, int, str]]] = field(default_factory=dict)
    replicated_log_contents: list[int] = field(default_factory=list)


def run_paper_figure_states() -> PaperFigureStates:
    """Recreate the exact server states of Figures 3-1, 3-2 and 3-3.

    History implied by the figures and footnote 2:

    * epoch 1: records 1–3 written to Servers 1 and 2;
    * crash; restart uses Servers 1 and 3 (epoch 3 after the identifier
      generator burned epoch 2): record 3 copied, guard 4 written —
      hence record 4 "only appears as marked not present";
    * epoch 3: records 5–9 written (Server 1 always, spread of 3/2 over
      Servers 2 and 3 per the figure);
    * record 10 written to Server 3 only — the partial write of
      Figure 3-2;
    * crash; restart uses Servers 1 and 2 (epoch 4): record 9 copied,
      guard 10 written — Figure 3-3.
    """
    stores = {
        "Server 1": LogServerStore("Server 1"),
        "Server 2": LogServerStore("Server 2"),
        "Server 3": LogServerStore("Server 3"),
    }
    ports = {sid: DirectServerPort(st) for sid, st in stores.items()}
    config = ReplicationConfig(total_servers=3, copies=2, delta=1)
    client = "C"

    # epoch 1: records 1..3 on servers 1 and 2
    for lsn in range(1, 4):
        for sid in ("Server 1", "Server 2"):
            ports[sid].server_write_log(client, lsn, 1, True, b"r%d" % lsn)

    # first restart, using servers 1 and 3, with epoch 3
    from ..core.recovery import perform_recovery

    lists = [ports[s].interval_list(client) for s in ("Server 1", "Server 3")]
    perform_recovery(client, ports, lists, new_epoch=3,
                     copies=2, delta=1,
                     preferred_servers=("Server 1", "Server 3"))

    # epoch 3: records 5..9; server 1 takes all, servers 2/3 split per figure
    placement = {5: "Server 3", 6: "Server 2", 7: "Server 2",
                 8: "Server 3", 9: "Server 3"}
    for lsn in range(5, 10):
        ports["Server 1"].server_write_log(client, lsn, 3, True, b"r%d" % lsn)
        ports[placement[lsn]].server_write_log(client, lsn, 3, True, b"r%d" % lsn)

    # record 10 partially written: reaches Server 3 only (Figure 3-2)
    ports["Server 3"].server_write_log(client, 10, 3, True, b"r10")
    fig_3_2 = {sid: st.dump_table(client) for sid, st in stores.items()}

    # second restart with Servers 1 and 2 (Server 3 unavailable), epoch 4
    stores["Server 3"].crash()
    lists = [ports[s].interval_list(client) for s in ("Server 1", "Server 2")]
    result = perform_recovery(client, ports, lists, new_epoch=4,
                              copies=2, delta=1,
                              preferred_servers=("Server 1", "Server 2"))
    stores["Server 3"].restart()
    fig_3_3 = {sid: st.dump_table(client) for sid, st in stores.items()}

    # the replicated log's visible contents after recovery
    log = ReplicatedLog(client, ports, config, LocalIdGenerator(start=4))
    log.initialize()
    visible = [record.lsn for record in log.iter_forward()]

    return PaperFigureStates(
        figure_3_2=fig_3_2,
        figure_3_3=fig_3_3,
        replicated_log_contents=visible,
    )


# ---------------------------------------------------------------------------
# A2: NVRAM ablation
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class NvramAblationResult:
    with_nvram_force_ms: float
    without_nvram_force_ms: float
    with_nvram_disk_util: float
    without_nvram_disk_util: float

    @property
    def latency_ratio(self) -> float:
        return self.without_nvram_force_ms / max(self.with_nvram_force_ms, 1e-9)


def run_nvram_ablation(
    transactions: int = 300, seed: int = 0,
    disk: DiskParams = SLOW_1987_DISK,
) -> NvramAblationResult:
    """Force latency and disk utilization with and without NVRAM.

    Without the low-latency non-volatile buffer every force waits for a
    disk write — the rotational-latency wall Section 4.1 identifies.
    """
    results = {}
    for nvram_enabled in (True, False):
        sim = Simulator()
        lan = Lan(sim, rng=random.Random(seed))
        metrics = MetricSet()
        servers = [
            SimLogServer(sim, lan, f"n{i}", disk_params=disk,
                         metrics=metrics, nvram_enabled=nvram_enabled)
            for i in range(2)
        ]
        client = SimLogClient(
            sim, lan, "ablate", ["n0", "n1"],
            ReplicationConfig(2, 2, delta=32), LocalIdGenerator(),
            metrics=metrics, force_timeout_s=2.0,
        )
        driver = Et1Driver(sim, SimLogBackend(client), tps=1e9,
                           rng=random.Random(seed), metrics=metrics,
                           name="ablate")
        window = {}

        def main():
            yield from client.initialize()
            start_busy = sum(s.disk.arm.busy_integral() for s in servers)
            start = sim.now
            for seq in range(transactions):
                yield from driver.run_one(seq)
            window["busy"] = (
                sum(s.disk.arm.busy_integral() for s in servers) - start_busy
            )
            window["elapsed"] = sim.now - start

        sim.spawn(main())
        sim.run(until=3600)
        force = metrics.latency("ablate.force")
        disk_util = window["busy"] / (window["elapsed"] * len(servers))
        results[nvram_enabled] = (force.mean() * 1000, disk_util)
    return NvramAblationResult(
        with_nvram_force_ms=results[True][0],
        without_nvram_force_ms=results[False][0],
        with_nvram_disk_util=results[True][1],
        without_nvram_disk_util=results[False][1],
    )


# ---------------------------------------------------------------------------
# A4: load-assignment ablation
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class AssignmentAblationRow:
    strategy: str
    mean_force_ms: float
    p95_force_ms: float
    max_interval_list_len: int
    server_switches: int


def run_assignment_ablation(
    clients: int = 12,
    servers: int = 4,
    duration_s: float = 3.0,
    seed: int = 0,
) -> list[AssignmentAblationRow]:
    """Compare sticky vs random server assignment (Section 5.4).

    Sticky assignment keeps interval lists short; a client that rotates
    its write set after every transaction fragments intervals — the
    trade-off the paper flags ("clients might change servers too
    frequently resulting in very long interval lists").
    """
    rows = []
    for strategy_name in ("sticky", "rotate-often"):
        sim = Simulator()
        lan = Lan(sim, rng=random.Random(seed))
        metrics = MetricSet()
        server_ids = [f"s{i}" for i in range(servers)]
        server_objs = {
            sid: SimLogServer(sim, lan, sid, metrics=metrics)
            for sid in server_ids
        }
        generator = make_generator(3)
        client_objs = []
        drivers = []
        for i in range(clients):
            if strategy_name == "sticky":
                assignment = StickyAssignment([
                    server_ids[i % servers], server_ids[(i + 1) % servers],
                ])
            else:
                assignment = RandomAssignment(random.Random(seed + i))
            client = SimLogClient(
                sim, lan, f"c{i}", server_ids,
                ReplicationConfig(servers, 2, delta=32), generator,
                metrics=metrics, assignment=assignment,
            )
            client_objs.append(client)
            drivers.append(Et1Driver(
                sim, SimLogBackend(client), tps=10,
                rng=random.Random(seed + 50 + i), metrics=metrics,
                name=f"c{i}",
            ))

        def run_client(client: SimLogClient, driver: Et1Driver):
            t_end = sim.now + duration_s
            seq = 0
            while sim.now < t_end:
                yield sim.timeout(driver.rng.expovariate(driver.tps))
                if sim.now >= t_end:
                    break
                start = sim.now
                yield from driver.run_one(seq)
                driver.completed += 1
                metrics.latency(f"{driver.name}.txn").observe(sim.now - start)
                if strategy_name == "rotate-often":
                    yield from client.rotate_write_set()
                seq += 1

        def main():
            for client in client_objs:
                yield from client.initialize()
            procs = [
                sim.spawn(run_client(c, d))
                for c, d in zip(client_objs, drivers)
            ]
            yield sim.all_of(procs)

        sim.spawn(main())
        sim.run(until=duration_s + 30)

        all_forces = []
        for i in range(clients):
            all_forces.extend(metrics.latency(f"c{i}.force")._values)
        all_forces.sort()
        mean = sum(all_forces) / len(all_forces) if all_forces else 0.0
        p95 = all_forces[int(0.95 * (len(all_forces) - 1))] if all_forces else 0.0
        max_intervals = 0
        for server in server_objs.values():
            for cid in server.store.known_clients():
                max_intervals = max(
                    max_intervals,
                    len(server.store.client_state(cid).intervals()),
                )
        rows.append(AssignmentAblationRow(
            strategy=strategy_name,
            mean_force_ms=mean * 1000,
            p95_force_ms=p95 * 1000,
            max_interval_list_len=max_intervals,
            server_switches=sum(c.server_switches for c in client_objs),
        ))
    return rows


# ---------------------------------------------------------------------------
# A3: splitting ablation
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SplittingAblationRow:
    mode: str
    transactions: int
    bytes_logged: int
    records_logged: int
    undo_records_logged: int
    remote_abort_reads: int
    local_aborts: int


# ---------------------------------------------------------------------------
# E9: degraded-mode operation (Section 3.2's qualitative claim)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class DegradedModeRow:
    servers_down: int
    servers_up: int
    completed_txns: int
    failed_drivers: int
    mean_force_ms: float
    p95_force_ms: float
    survivor_cpu_utilization: float


def run_degraded_mode(
    clients: int = 12,
    servers: int = 4,
    down_counts: tuple[int, ...] = (0, 1, 2),
    duration_s: float = 2.0,
    tps_per_client: float = 10.0,
    seed: int = 0,
) -> list[DegradedModeRow]:
    """Measure WriteLog service as servers fail (Section 3.2).

    "Response to WriteLog operations may degrade, as fewer servers
    remain to carry the load, but such failures will hardly ever
    render WriteLog operations unavailable."  Each row runs the same
    closed-loop ET1 load with ``down`` servers crashed before the
    clients initialize, so the surviving servers carry everything.
    """
    rows = []
    for down in down_counts:
        if servers - down < 2:
            raise ValueError("need at least N=2 servers up")
        sim = Simulator()
        lan = Lan(sim, rng=random.Random(seed))
        metrics = MetricSet()
        server_ids = [f"d{i}" for i in range(servers)]
        server_objs = {
            sid: SimLogServer(sim, lan, sid, metrics=metrics)
            for sid in server_ids
        }
        generator = make_generator(3)
        up_ids = server_ids[down:]
        client_objs = []
        drivers = []
        for i in range(clients):
            client = SimLogClient(
                sim, lan, f"c{i}", server_ids,
                ReplicationConfig(servers, 2, delta=32), generator,
                metrics=metrics,
                assignment=StickyAssignment([
                    up_ids[i % len(up_ids)],
                    up_ids[(i + 1) % len(up_ids)],
                ]),
            )
            client_objs.append(client)
            drivers.append(Et1Driver(
                sim, SimLogBackend(client), tps_per_client,
                random.Random(seed + i), metrics, name=f"c{i}",
            ))

        window = {}

        def main():
            # clients initialize while everything is up (client restart
            # has its own, stricter availability — Figure 3-4)…
            for client in client_objs:
                yield from client.initialize()
            # …then the outage hits, and WriteLog must carry on.
            for sid in server_ids[:down]:
                server_objs[sid].crash()
            start_busy = sum(
                server_objs[sid].cpu.busy_integral() for sid in up_ids)
            start = sim.now
            procs = [sim.spawn(d.run(duration_s)) for d in drivers]
            yield sim.all_of(procs)
            window["elapsed"] = sim.now - start
            window["busy"] = sum(
                server_objs[sid].cpu.busy_integral() for sid in up_ids
            ) - start_busy

        sim.spawn(main())
        sim.run(until=duration_s + 60)

        forces = []
        for i in range(clients):
            forces.extend(metrics.latency(f"c{i}.force")._values)
        forces.sort()
        mean = sum(forces) / len(forces) if forces else 0.0
        p95 = forces[int(0.95 * (len(forces) - 1))] if forces else 0.0
        rows.append(DegradedModeRow(
            servers_down=down,
            servers_up=len(up_ids),
            completed_txns=sum(d.completed for d in drivers),
            failed_drivers=sum(d.failed for d in drivers),
            mean_force_ms=mean * 1000,
            p95_force_ms=p95 * 1000,
            survivor_cpu_utilization=(
                window["busy"] / (window["elapsed"] * len(up_ids))
                if window.get("elapsed") else 0.0
            ),
        ))
    return rows


# ---------------------------------------------------------------------------
# E10: client restart latency
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class RestartLatencyRow:
    m: int
    intervals_merged: int
    mean_restart_ms: float
    max_restart_ms: float


def run_restart_latency(
    m_values: tuple[int, ...] = (2, 4, 6, 8),
    records: int = 150,
    restarts: int = 5,
    delta: int = 8,
    seed: int = 0,
) -> list[RestartLatencyRow]:
    """Measure client-initialization time over the network vs M.

    The paper stops at availability ("predicting the expected time for
    client process initialization to complete requires a more
    complicated model"); the simulator simply measures it.  Cost
    components: M sequential IntervalList RPCs, reading the last δ
    records (a disk read per sealed track touched), and CopyLog +
    InstallCopies on N servers.
    """
    rows = []
    for m in m_values:
        sim = Simulator()
        lan = Lan(sim, rng=random.Random(seed))
        metrics = MetricSet()
        server_ids = [f"r{i}" for i in range(m)]
        servers = {sid: SimLogServer(sim, lan, sid, metrics=metrics)
                   for sid in server_ids}
        client = SimLogClient(
            sim, lan, "c", server_ids,
            ReplicationConfig(m, 2, delta=delta), make_generator(3),
            metrics=metrics,
        )
        samples: list[float] = []
        state = {"intervals": 0}

        def main():
            yield from client.initialize()
            for i in range(records):
                yield from client.log(b"r%d" % i)
                if i % 10 == 9:
                    yield from client.force()
            yield from client.force()
            # let the servers flush so restarts read from disk
            yield sim.timeout(1.0)
            for _round in range(restarts):
                client.crash()
                start = sim.now
                yield from client.restart()
                samples.append(sim.now - start)
            state["intervals"] = sum(
                len(server.store.client_state("c").intervals())
                for server in servers.values()
                if "c" in server.store.known_clients()
            )

        sim.spawn(main())
        sim.run(until=600)
        rows.append(RestartLatencyRow(
            m=m,
            intervals_merged=state["intervals"],
            mean_restart_ms=sum(samples) / len(samples) * 1000,
            max_restart_ms=max(samples) * 1000,
        ))
    return rows


# ---------------------------------------------------------------------------
# A9: offered-load saturation sweep
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class LoadSweepRow:
    tps_per_client: float
    achieved_tps: float
    mean_force_ms: float
    p95_force_ms: float
    disk_utilization: float
    cpu_utilization: float
    messages_shed: int


def run_load_sweep(
    multipliers: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0),
    clients: int = 10,
    servers: int = 2,
    base_tps: float = 10.0,
    duration_s: float = 2.0,
    seed: int = 0,
) -> list[LoadSweepRow]:
    """Force latency and utilization as offered load scales up.

    Exposes the saturation behaviour behind Section 4.1's sizing: at
    the nominal per-server load forces are NVRAM-fast; as load grows
    the disk (then NVRAM back-pressure, i.e. shedding) takes over.
    """
    rows = []
    for multiplier in multipliers:
        config = TargetLoadConfig(
            clients=clients, servers=servers,
            tps_per_client=base_tps * multiplier,
            duration_s=duration_s, seed=seed,
        )
        result = run_target_load(config)
        rows.append(LoadSweepRow(
            tps_per_client=base_tps * multiplier,
            achieved_tps=result.achieved_tps,
            mean_force_ms=result.force_mean_ms,
            p95_force_ms=result.force_p95_ms,
            disk_utilization=result.server_disk_utilization,
            cpu_utilization=result.server_cpu_utilization,
            messages_shed=result.messages_shed,
        ))
    return rows


# ---------------------------------------------------------------------------
# A7: multicast (Section 4.1)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class MulticastAblationResult:
    unicast_mbits: float
    multicast_mbits: float
    unicast_medium_busy_s: float
    multicast_medium_busy_s: float

    @property
    def traffic_ratio(self) -> float:
        return self.multicast_mbits / self.unicast_mbits


def run_multicast_ablation(
    clients: int = 20,
    copies: int = 2,
    forces_per_client: int = 50,
    seed: int = 0,
) -> MulticastAblationResult:
    """Section 4.1: "With the use of multicast, this amount would be
    approximately halved."

    Streams identical ET1-force-shaped packets from ``clients`` senders
    to ``copies`` receivers each, once with per-server unicast and once
    with one multicast per force, and measures total bits on the wire
    and medium busy time.
    """
    from ..net.packet import Packet

    results = {}
    for multicast in (False, True):
        sim = Simulator()
        lan = Lan(sim, rng=random.Random(seed))
        receivers = [f"srv{i}" for i in range(copies)]
        for sid in receivers:
            lan.attach(sid)

        def sender(name: str):
            lan.attach(name)
            for seq in range(forces_per_client):
                payload_size = 700 + 7 * 16 + 32  # the ET1 force message
                packet = Packet(
                    src=name, dst=receivers[0], conn_id=1, seq=seq + 1,
                    allocation=64,
                    payload=type("P", (), {"wire_size": payload_size})(),
                )
                if multicast:
                    yield from lan.multicast(packet, receivers)
                else:
                    for dst in receivers:
                        yield from lan.send(Packet(
                            src=name, dst=dst, conn_id=1, seq=seq + 1,
                            allocation=64, payload=packet.payload,
                        ))
                yield sim.timeout(0.01)

        for i in range(clients):
            sim.spawn(sender(f"cl{i}"))
        sim.run(until=600)
        results[multicast] = (
            lan.bytes_sent.total * 8 / 1e6,
            lan.medium.busy_integral(),
        )
    return MulticastAblationResult(
        unicast_mbits=results[False][0],
        multicast_mbits=results[True][0],
        unicast_medium_busy_s=results[False][1],
        multicast_medium_busy_s=results[True][1],
    )


# ---------------------------------------------------------------------------
# A6: log space management (Section 5.3)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SpaceManagementRow:
    strategy: str
    total_bytes_logged: int
    online_bytes: int
    offline_bytes: int
    node_recovery_entries: int
    media_recovery_entries: int
    superseded_records: int


def run_space_management(
    transactions: int = 120,
    dump_every: int = 30,
    seed: int = 0,
) -> list[SpaceManagementRow]:
    """Compare the Section 5.3 space-management strategies.

    The same transaction history runs under three server-side
    strategies: *accumulate* (the paper's simple daily-dump strategy —
    keep everything online), *spool* (move log data below the node-
    recovery point to offline storage), and *dump+discard* (drop data
    below the media-recovery point after each dump).  The rows report
    online/offline bytes and how many log entries each recovery class
    would read.
    """
    from ..client.dumps import DumpManager
    from ..server.space import SpaceManager

    rows = []
    for strategy in ("accumulate", "spool", "dump+discard"):
        sim = Simulator()
        lan = Lan(sim, rng=random.Random(seed))
        metrics = MetricSet()
        servers = [
            SimLogServer(sim, lan, f"sp{i}", metrics=metrics)
            for i in range(2)
        ]
        client = SimLogClient(
            sim, lan, "c1", ["sp0", "sp1"],
            ReplicationConfig(2, 2, delta=16), LocalIdGenerator(),
            metrics=metrics,
        )
        node = ClientNode.simulated(client)
        dumps = DumpManager(node.rm)
        managers = [SpaceManager(s.stream) for s in servers]
        rng = random.Random(seed)

        def main():
            yield from client.initialize()
            for seq in range(transactions):
                key = f"row:{rng.randrange(50)}"
                yield from node.run_transaction([(key, f"v{seq}")])
                if (seq + 1) % dump_every == 0:
                    dump_point = None
                    if strategy != "accumulate":
                        yield from dumps.take_dump()
                        dump_point = dumps.truncation_point()
                    for server, manager in zip(servers, managers):
                        server.stream.seal_track()
                        if dump_point is not None:
                            manager.declare("c1", dump_point)
                        if strategy == "spool":
                            manager.spool_to_offline()
                        elif strategy == "dump+discard":
                            manager.discard_unneeded()

        sim.spawn(main())
        sim.run(until=600)

        total = sum(s.stream.bytes_appended for s in servers)
        online = offline = node_entries = media_entries = superseded = 0
        for manager in managers:
            manager._refresh_online()
            online += manager.report.online_bytes
            offline += manager.report.spooled_bytes
            node_entries += manager.online_entries_for_node_recovery("c1")
            media_entries += manager.entries_for_media_recovery("c1")
            superseded += manager.compress_superseded()
        rows.append(SpaceManagementRow(
            strategy=strategy,
            total_bytes_logged=total,
            online_bytes=online,
            offline_bytes=offline,
            node_recovery_entries=node_entries,
            media_recovery_entries=media_entries,
            superseded_records=superseded,
        ))
    return rows


def _mix_with_midstream_cleans(node, rng, params: LongTxnParams):
    """One long transaction; occasionally cleans a dirty page mid-flight.

    Mirrors :func:`~repro.workload.generators.transactional_mix` but
    with a small per-update probability of the buffer manager cleaning
    a dirty page while the transaction is still active — the event that
    forces a cached undo component into the log (Section 5.2).
    """
    p = params
    n_updates = rng.randint(p.updates_min, p.updates_max)
    will_abort = rng.random() < p.abort_probability
    abort_at = rng.randint(1, n_updates) if will_abort else -1
    txn = yield from node.rm.begin()
    for i in range(n_updates):
        if i == abort_at:
            yield from node.rm.abort(txn)
            return True
        key = f"obj:{rng.randrange(p.keys)}"
        yield from node.rm.update(txn, key, f"v{txn.txid}.{i}")
        if rng.random() < 0.05:
            dirty = node.db.dirty_keys()
            if dirty:
                yield from node.rm.clean_page(rng.choice(dirty))
    yield from node.rm.commit(txn)
    return False


def run_splitting_ablation(
    transactions: int = 60,
    seed: int = 0,
    params: LongTxnParams = LongTxnParams(
        updates_min=10, updates_max=40, abort_probability=0.15, keys=500,
    ),
    clean_every: int = 10,
) -> list[SplittingAblationRow]:
    """Log volume and abort locality with and without record splitting.

    Runs the same long-transaction mix (same seed) through a node with
    combined records and a node with split records + undo cache, and
    compares bytes logged, undo components that ever reached the log,
    and the abort read traffic (Section 5.2).  Page cleaning runs both
    between transactions (the common case, where splitting saves the
    undo volume entirely) and occasionally *during* a transaction (the
    WAL case, where the undo component must be logged first).
    """
    rows = []
    for mode in ("combined", "split"):
        undo_cache = UndoCache() if mode == "split" else None
        node, _stores = ClientNode.direct(m=3, n=2, delta=1,
                                          undo_cache=undo_cache)
        rng = random.Random(seed)
        for seq in range(transactions):
            _drain(_mix_with_midstream_cleans(node, rng, params))
            if (seq + 1) % clean_every == 0:
                _drain(node.rm.clean_all())
        rows.append(SplittingAblationRow(
            mode=mode,
            transactions=transactions,
            bytes_logged=node.rm.bytes_logged,
            records_logged=node.rm.records_logged,
            undo_records_logged=node.rm.undo_records_logged,
            remote_abort_reads=node.rm.remote_abort_reads,
            local_aborts=node.rm.local_aborts,
        ))
    return rows

"""E11 — measured availability under crash/repair *churn* (§3.2).

The Monte-Carlo validation (E2) checks the Figure 3-4 closed forms
against instantaneous Bernoulli outage snapshots of the direct
algorithm layer.  This experiment is the missing dynamic half: the
full networked stack — clients, servers, LAN, RPC, NVRAM — runs the
ET1 workload while :class:`~repro.sim.failures.ClusterChurn` drives
every log server (and, optionally, generator-state representatives
and the LAN itself) through independent exponential crash/repair
cycles tuned so each server's long-run unavailability equals the
paper's ``p``.

Two kinds of availability come out:

* **state-based** — exact time integrals of the §3.2 predicates over
  the churn schedule: WriteLog is available while at most ``M − N``
  servers are down, client initialization while at most ``N − 1`` are
  down, and ReadLog of a given record while at least one of its ``N``
  holders is up.  Over a long horizon these converge to the binomial
  closed forms of :mod:`repro.core.availability` (each server is an
  alternating renewal process, so its stationary down probability is
  ``mttr/(mtbf+mttr) = p``, and the schedules are independent);
  finite-horizon runs deviate by O(1/sqrt(cycles)).
* **operation-level** — what the workload actually experienced:
  transactions committed and failed, client re-initializations, and
  write-set migrations (§5.4) performed when a write-set server stayed
  down past the migration threshold.

Everything is a deterministic function of ``ChurnConfig.seed``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from ..analysis.constants import DEFAULT_MIPS
from ..client.epoch_net import NetworkEpochSource
from ..client.log_client import SimLogClient
from ..core.availability import (
    init_availability,
    read_availability,
    write_availability,
)
from ..core.config import ReplicationConfig
from ..core.errors import (
    NotEnoughServers,
    NotInitialized,
    ServerUnavailable,
    StaleEpoch,
)
from ..core.retry import RetryPolicy
from ..net.lan import Lan
from ..server.load import StickyAssignment
from ..server.log_server import SimLogServer
from ..sim.failures import (
    ClusterChurn,
    LinkDegrader,
    UpDownProcess,
    mttr_for_unavailability,
)
from ..sim.kernel import Simulator
from ..sim.stats import MetricSet
from ..workload.et1 import Et1Params, et1_log_pattern


@dataclass(frozen=True, slots=True)
class ChurnConfig:
    """Parameters of the churn experiment (defaults match §3.2's p)."""

    servers: int = 6
    copies: int = 2
    clients: int = 3
    #: per-server long-run unavailability; mttr is derived from it.
    p: float = 0.05
    mtbf_s: float = 30.0
    duration_s: float = 120.0
    tps_per_client: float = 10.0
    delta: int = 32
    seed: int = 0
    mips: float = DEFAULT_MIPS
    #: long-run unavailability of the LAN itself (0 = no link churn);
    #: a "down" link loses ``link_loss`` of its packets.
    link_p: float = 0.0
    link_mtbf_s: float = 60.0
    link_loss: float = 0.25
    #: long-run unavailability of each generator-state representative
    #: (0 = reps only fail with their hosting server's endpoint).
    generator_p: float = 0.0
    #: write-set migration threshold handed to every client.
    migrate_after_s: float = 1.0
    force_timeout_s: float = 0.15
    et1: Et1Params = Et1Params()


@dataclass(slots=True)
class ChurnResult:
    config: ChurnConfig
    # state-based availability (time integrals) vs the closed forms
    write_available_measured: float
    write_available_closed: float
    init_available_measured: float
    init_available_closed: float
    read_available_measured: float
    read_available_closed: float
    # churn actually injected
    server_crashes: int
    server_down_histogram: dict[int, float]
    mttr_s: float
    link_crashes: int
    generator_crashes: int
    # what the workload experienced
    committed_txns: int
    failed_txns: int
    client_reinits: int
    server_switches: int
    forces: int
    kernel_events: int = 0
    wall_seconds: float = 0.0
    sim_seconds: float = 0.0

    def rows(self) -> list[tuple[str, str, str]]:
        return [
            ("WriteLog availability",
             f"{self.write_available_measured:.6f}",
             f"{self.write_available_closed:.6f}"),
            ("client-init availability",
             f"{self.init_available_measured:.6f}",
             f"{self.init_available_closed:.6f}"),
            ("ReadLog availability",
             f"{self.read_available_measured:.6f}",
             f"{self.read_available_closed:.6f}"),
        ]


class _AvailabilityIntegrator:
    """Exact time integrals of the §3.2 availability predicates.

    Fed by the server churn's transition callbacks; between callbacks
    the down-set is constant, so integrating at each transition (and
    once at the horizon) is exact, not sampled.
    """

    def __init__(self, sim: Simulator, m: int, n: int,
                 read_holders: tuple[str, ...]):
        self.sim = sim
        self.m = m
        self.n = n
        #: the reference replica set for ReadLog: a record stored on
        #: these N servers is readable while any one of them is up.
        self.read_holders = frozenset(read_holders)
        self.down: set[str] = set()
        self._last = sim.now
        self._start = sim.now
        self.write_time = 0.0
        self.init_time = 0.0
        self.read_time = 0.0

    def _flush(self) -> None:
        now = self.sim.now
        dt = now - self._last
        if dt > 0:
            d = len(self.down)
            if d <= self.m - self.n:
                self.write_time += dt
            if d <= self.n - 1:
                self.init_time += dt
            if not self.read_holders <= self.down:
                self.read_time += dt
        self._last = now

    def on_change(self, target_id: str, up: bool) -> None:
        self._flush()
        if up:
            self.down.discard(target_id)
        else:
            self.down.add(target_id)

    def fractions(self) -> tuple[float, float, float]:
        self._flush()
        elapsed = self.sim.now - self._start
        if elapsed <= 0:
            return 1.0, 1.0, 1.0
        return (self.write_time / elapsed, self.init_time / elapsed,
                self.read_time / elapsed)


@dataclass(slots=True)
class _ClientStats:
    committed: int = 0
    failed: int = 0
    reinits: int = 0


def _client_loop(sim: Simulator, client: SimLogClient, config: ChurnConfig,
                 rng: random.Random, stats: _ClientStats, t_end: float):
    """Closed-loop ET1 that survives churn instead of giving up.

    Every quorum loss crashes the client node (volatile state gone, as
    §3.1.2 requires) and re-initializes with retry; each transaction
    is one attempt — its commit either forces through or counts as
    failed.
    """
    seq = 0
    while sim.now < t_end:
        if not client.initialized:
            try:
                yield from client.restart_with_retry(deadline_s=5.0)
                stats.reinits += 1
            except (NotEnoughServers, ServerUnavailable, StaleEpoch):
                yield sim.timeout(0.5)
                continue
        yield sim.timeout(rng.expovariate(config.tps_per_client))
        if sim.now >= t_end:
            break
        try:
            for data, kind, forced in et1_log_pattern(config.et1, seq):
                yield from client.log(data, kind)
                if forced:
                    yield from client.force()
            stats.committed += 1
        except (NotEnoughServers, ServerUnavailable, NotInitialized):
            stats.failed += 1
            client.crash()
        seq += 1


def run_availability_churn(config: ChurnConfig = ChurnConfig()) -> ChurnResult:
    """Run ET1 under (mtbf, mttr) churn and measure §3.2 availability."""
    wall_start = time.perf_counter()
    sim = Simulator()
    metrics = MetricSet()
    mttr = mttr_for_unavailability(config.mtbf_s, config.p)

    lan = Lan(sim, rng=random.Random(config.seed + 1), name="lan")
    server_ids = [f"s{i}" for i in range(config.servers)]
    servers = {
        sid: SimLogServer(sim, lan, sid, mips=config.mips, metrics=metrics)
        for sid in server_ids
    }
    #: generator-state representatives live on the first three servers
    #: (Appendix I footnote); clients reach them over their own log
    #: connections.
    rep_ids = server_ids[: min(3, len(server_ids))]

    retry_policy = RetryPolicy(base_delay_s=0.05, cap_delay_s=0.5,
                               jitter=0.5, max_attempts=6)
    clients: list[SimLogClient] = []
    stats: list[_ClientStats] = []
    for i in range(config.clients):
        preferred = [
            server_ids[i % config.servers],
            server_ids[(i + 1) % config.servers],
        ]
        client = SimLogClient(
            sim, lan, f"c{i}", server_ids,
            ReplicationConfig(config.servers, config.copies,
                              delta=config.delta),
            NetworkEpochSource(rep_ids),
            mips=config.mips, metrics=metrics,
            assignment=StickyAssignment(preferred),
            force_timeout_s=config.force_timeout_s,
            rng=random.Random(config.seed + 100 + i),
            retry_policy=retry_policy,
            migrate_after_s=config.migrate_after_s,
        )
        clients.append(client)
        stats.append(_ClientStats())

    # the reference ReadLog replica set: the first client's initial
    # write set would do, but the first N server ids are deterministic
    # before the run even starts.
    integrator = _AvailabilityIntegrator(
        sim, config.servers, config.copies,
        tuple(server_ids[: config.copies]),
    )
    server_churn = ClusterChurn(
        sim, servers, mtbf=config.mtbf_s, mttr=mttr,
        seed=config.seed, name="server-churn",
        on_change=integrator.on_change,
    )
    generator_churn = None
    if config.generator_p > 0:
        generator_churn = ClusterChurn(
            sim,
            {f"{sid}.genrep": servers[sid].generator_rep for sid in rep_ids},
            mtbf=config.mtbf_s,
            mttr=mttr_for_unavailability(config.mtbf_s, config.generator_p),
            seed=config.seed + 1, name="generator-churn",
        )
    link_injector = None
    link_target = None
    if config.link_p > 0:
        link_target = LinkDegrader(lan, degraded_loss=config.link_loss)
        link_injector = UpDownProcess.for_unavailability(
            sim, link_target, config.link_mtbf_s, config.link_p,
            rng=random.Random(config.seed + 2),
        )

    for i, client in enumerate(clients):
        sim.spawn(
            _client_loop(sim, client, config,
                         random.Random(config.seed + 1000 + i),
                         stats[i], config.duration_s),
            name=f"{client.client_id}.churn-loop",
        )

    sim.run(until=config.duration_s)
    write_meas, init_meas, read_meas = integrator.fractions()
    histogram = server_churn.down_histogram()
    server_crashes = server_churn.crashes()
    generator_crashes = generator_churn.crashes() if generator_churn else 0
    link_crashes = link_injector.crashes if link_injector else 0

    # stop the injectors and let the interrupted schedules settle
    server_churn.stop()
    if generator_churn is not None:
        generator_churn.stop()
    if link_injector is not None:
        link_injector.stop()
    sim.run(until=config.duration_s + 10.0)

    return ChurnResult(
        config=config,
        write_available_measured=write_meas,
        write_available_closed=write_availability(
            config.servers, config.copies, config.p),
        init_available_measured=init_meas,
        init_available_closed=init_availability(
            config.servers, config.copies, config.p),
        read_available_measured=read_meas,
        read_available_closed=read_availability(config.copies, config.p),
        server_crashes=server_crashes,
        server_down_histogram=histogram,
        mttr_s=mttr,
        link_crashes=link_crashes,
        generator_crashes=generator_crashes,
        committed_txns=sum(s.committed for s in stats),
        failed_txns=sum(s.failed for s in stats),
        client_reinits=sum(s.reinits for s in stats),
        server_switches=sum(c.server_switches for c in clients),
        forces=sum(c.forces for c in clients),
        kernel_events=sim.events_processed,
        wall_seconds=time.perf_counter() - wall_start,
        sim_seconds=sim.now,
    )

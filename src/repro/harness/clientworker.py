"""The killable client process of the crash sweep's client phase.

``python -m repro.harness.clientworker`` runs one
:class:`~repro.rt.client.AsyncReplicatedLog` against real ``repro
serve`` daemons and journals every protocol step to a line-buffered
file, so the harness knows exactly what the client *believed* at the
instant it was killed.  Two modes:

``--mode run``
    ET1-shaped workload (Section 4.1: several buffered WriteLogs, then
    one forced commit per transaction), with optional Section 5.3
    truncation rounds, ending with a fenced ownership handoff (a
    second client instance seizes the stream via ``takeover()`` and
    commits one more transaction — putting the ``client.handoff.*``
    sites on the enumerable protocol trace).  An injected crash plan
    (:mod:`repro.rt.clientfault`, environment variables
    ``REPRO_CLIENT_FAULT_PLAN`` / ``REPRO_CLIENT_FAULT_TRACE``) kills
    the process at an exact protocol point.

``--mode recover``
    The *second* OS process: runs the full Section 5.4 restart
    (interval-list merge, epoch bump, copy, guard, install), dumps
    every LSN's final state, then proves the log is still live with a
    post-recovery transaction.

``--mode takeover``
    Like ``recover``, but via
    :meth:`~repro.rt.client.AsyncReplicatedLog.takeover` — the
    linearizable handoff that installs a durable fence before
    recovering, so it works even while the *first* process is still
    alive (merely partitioned) and writing.  The first process, once
    fenced, journals ``FENCED`` and exits with status 3.

Journal grammar (one record per line, hex-encoded payloads)::

    EPOCH <epoch>            initialize() finished with this epoch
    ATTEMPT <seq> <hex>      about to write payload (no promise)
    LSN <seq> <lsn>          the write was assigned this LSN
    ACK <high>               an explicit force acked through <high>
    TRUNCREQ <low>           about to request truncation (no promise)
    TRUNC <low>              a truncation below <low> was acknowledged
    FENCED                   a server refused us: ownership moved on
    RECOVERED <epoch> <high> (recover) restart done
    TAKEOVER <epoch> <high>  (takeover) fenced handoff done
    FINAL <lsn> 1 <hex>      (recover) present record
    FINAL <lsn> 0            (recover) not-present (guard) record
    FINAL <lsn> -            (recover) unreadable / truncated away
    POST <lsn> <hex>         (recover) post-recovery write
    POSTACK <high>           (recover) post-recovery force acked
    DONE                     the workload ran to completion

The journal is written with ``buffering=1`` and every promise line is
emitted only *after* the awaited call returned, so a SIGKILL can never
leave a journaled ack that the server side did not issue.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from ..core.config import ReplicationConfig
from ..core.errors import LogError, LogFenced, RecordNotPresent
from ..rt import clientfault
from ..rt.client import AsyncReplicatedLog

#: exit status of a worker stopped by a fence (ownership handoff) —
#: distinct from crash-plan exits and from genuine failures.
EXIT_FENCED = 3


def parse_servers(spec: str) -> dict[str, tuple[str, int]]:
    """``"s1=127.0.0.1:7001,s2=127.0.0.1:7002"`` → address map."""
    servers: dict[str, tuple[str, int]] = {}
    for token in spec.split(","):
        sid, _, addr = token.strip().partition("=")
        host, _, port = addr.rpartition(":")
        servers[sid] = (host, int(port))
    return servers


def _payload(client_id: str, txn: int, i: int) -> bytes:
    """Unique, self-describing ~100-byte record (the ET1 record size)."""
    tag = f"{client_id}.{txn}.{i}.".encode()
    return tag + b"x" * max(0, 100 - len(tag))


async def _run_workload(args, say) -> None:
    servers = parse_servers(args.servers)
    config = ReplicationConfig(total_servers=args.m, copies=args.n,
                               delta=args.delta)
    # A server deliberately killed mid-case leaves in-flight futures
    # nobody retrieves; that is the scenario, not a worker bug.
    asyncio.get_running_loop().set_exception_handler(lambda loop, ctx: None)
    # batch_bytes small enough that WriteLog streaming (site
    # client.flush.sent) actually triggers between forces; the adaptive
    # force trigger is pinned at the ceiling so run N's protocol trace
    # is a prefix of run N+1's — crash points must be deterministic.
    log = AsyncReplicatedLog(args.client_id, servers, config,
                             timeout=args.timeout, batch_bytes=256)
    log.delta_controller.min_delta = log.delta_controller.max_delta
    await log.initialize()
    say(f"EPOCH {log.current_epoch}")
    seq = 0
    for txn in range(args.txns):
        for i in range(args.records_per_txn):
            seq += 1
            data = _payload(args.client_id, txn, i)
            say(f"ATTEMPT {seq} {data.hex()}")
            lsn = await log.write(data)
            say(f"LSN {seq} {lsn}")
        high = await log.force()
        say(f"ACK {high}")
        if args.truncate_every and (txn + 1) % args.truncate_every == 0:
            low = log.end_of_log() - config.delta
            if low > 1:
                # Intent first: a kill mid-truncation may leave the
                # servers already reclaimed with no TRUNC ack journaled.
                say(f"TRUNCREQ {low}")
                await log.truncate(low)
                say(f"TRUNC {low}")
    # Handoff tail: a second instance of the same stream seizes
    # ownership through the fenced takeover, then commits one more
    # transaction.  A kill inside any client.handoff.* seam leaves a
    # partially-installed fence the recover-mode restart must ride
    # over (its fresh epoch always exceeds any standing fence).
    taker = AsyncReplicatedLog(args.client_id, servers, config,
                               timeout=args.timeout, batch_bytes=256)
    taker.delta_controller.min_delta = taker.delta_controller.max_delta
    await taker.takeover()
    say(f"EPOCH {taker.current_epoch}")
    for i in range(args.records_per_txn):
        seq += 1
        data = _payload(args.client_id, 9000, i)
        say(f"ATTEMPT {seq} {data.hex()}")
        lsn = await taker.write(data)
        say(f"LSN {seq} {lsn}")
    say(f"ACK {await taker.force()}")
    say("DONE")
    await taker.close()
    await log.close()


async def _run_recover(args, say, *, takeover: bool = False) -> None:
    servers = parse_servers(args.servers)
    config = ReplicationConfig(total_servers=args.m, copies=args.n,
                               delta=args.delta)
    asyncio.get_running_loop().set_exception_handler(lambda loop, ctx: None)
    log = AsyncReplicatedLog(args.client_id, servers, config,
                             timeout=args.timeout, batch_bytes=256)
    log.delta_controller.min_delta = log.delta_controller.max_delta
    if takeover:
        await log.takeover()
    else:
        await log.initialize()
    high = log.end_of_log()
    verb = "TAKEOVER" if takeover else "RECOVERED"
    say(f"{verb} {log.current_epoch} {high}")
    for lsn in range(1, high + 1):
        try:
            record = await log.read(lsn)
        except RecordNotPresent:
            say(f"FINAL {lsn} 0")
            continue
        except LogError:
            say(f"FINAL {lsn} -")
            continue
        say(f"FINAL {lsn} 1 {record.data.hex()}")
    # Liveness: the recovered log still accepts a transaction.
    for i in range(2):
        data = _payload(args.client_id, 10_000, i)
        lsn = await log.write(data)
        say(f"POST {lsn} {data.hex()}")
    say(f"POSTACK {await log.force()}")
    say("DONE")
    await log.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.clientworker",
        description="crash-sweep client worker (run or recover mode)",
    )
    parser.add_argument("--servers", required=True,
                        help="s1=host:port,s2=host:port,...")
    parser.add_argument("--journal", required=True,
                        help="line-buffered journal file (appended)")
    parser.add_argument("--mode", choices=("run", "recover", "takeover"),
                        default="run")
    parser.add_argument("--client-id", default="sweep")
    parser.add_argument("--m", type=int, default=3)
    parser.add_argument("--n", type=int, default=2)
    parser.add_argument("--delta", type=int, default=4)
    parser.add_argument("--txns", type=int, default=4)
    parser.add_argument("--records-per-txn", type=int, default=5)
    parser.add_argument("--truncate-every", type=int, default=0)
    parser.add_argument("--timeout", type=float, default=3.0)
    args = parser.parse_args(argv)

    injector = clientfault.install_from_env()
    journal = open(args.journal, "a", buffering=1)

    def say(line: str) -> None:
        journal.write(line + "\n")

    try:
        if args.mode == "run":
            asyncio.run(_run_workload(args, say))
        else:
            asyncio.run(_run_recover(args, say,
                                     takeover=args.mode == "takeover"))
    except LogFenced as exc:
        # Ownership moved on mid-workload: journal the observation so
        # the harness can prove the old writer *stopped*, and exit with
        # a status it can tell apart from ordinary failures.
        say("FENCED")
        print(f"clientworker: {exc}", file=sys.stderr)
        return EXIT_FENCED
    except LogError as exc:
        print(f"clientworker: {exc}", file=sys.stderr)
        return 1
    finally:
        journal.close()
        if injector is not None:
            injector.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Plain-text table rendering for the benchmark harness.

Every bench prints the rows/series the paper reports in a fixed-width
table so ``pytest benchmarks/ --benchmark-only`` output can be compared
with the paper's figures directly.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a fixed-width table with a rule under the header."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> None:
    print()
    print(format_table(headers, rows, title))


def fmt_prob(value: float, digits: int = 6) -> str:
    """Format an availability probability like the paper's 0.999 style."""
    return f"{value:.{digits}f}"


def fmt_pct(value: float, digits: int = 1) -> str:
    return f"{100 * value:.{digits}f}%"

"""The paper's workload and cost constants (Sections 2 and 4.1).

Every number here is taken from the text:

* ET1 in the TABS prototype "writes 700 bytes of log data in seven log
  records"; only the final commit record is forced.
* The target load is "fifty client nodes … ten local ET1 transactions
  per second", 500 TPS aggregate, "six log servers", N = 2.
* "Network and RPC implementation processing can be performed in one
  thousand instructions per packet."
* "Two thousand instructions are used to process the log records in
  each message and to copy them to low latency non volatile memory."
* "Writing a track to disk requires an additional two thousand
  instructions."
* Processing nodes have "processor speeds of at least a few MIPS".
"""

from __future__ import annotations

from dataclasses import dataclass

# -- ET1 / TABS workload shape -------------------------------------------------

#: Log records per ET1 transaction in TABS.
ET1_RECORDS_PER_TXN = 7
#: Total log bytes per ET1 transaction.
ET1_BYTES_PER_TXN = 700
#: Bytes per individual ET1 log record.
ET1_BYTES_PER_RECORD = ET1_BYTES_PER_TXN // ET1_RECORDS_PER_TXN
#: Forced (commit) records per ET1 transaction.
ET1_FORCES_PER_TXN = 1

# -- target system configuration ----------------------------------------------

#: Client nodes in the target load.
TARGET_CLIENTS = 50
#: Local transactions per second per client.
TARGET_TPS_PER_CLIENT = 10
#: Aggregate transactions per second.
TARGET_TPS = TARGET_CLIENTS * TARGET_TPS_PER_CLIENT
#: Log servers serving the target load.
TARGET_SERVERS = 6
#: Copies per log record (N).
TARGET_COPIES = 2

# -- processing costs -----------------------------------------------------------

#: Instructions to process one packet (send or receive).
INSTRUCTIONS_PER_PACKET = 1000
#: Instructions to process a message's records and copy them to NVRAM.
INSTRUCTIONS_PER_MESSAGE = 2000
#: Instructions to write one track from NVRAM to disk.
INSTRUCTIONS_PER_TRACK_WRITE = 2000
#: "A few MIPS" — the modelled CPU rating (millions of instr/second).
#: Four MIPS makes the paper's "<10 % of CPU for communication" claim
#: come out right with two packets (request + reply) per RPC.
DEFAULT_MIPS = 4.0


@dataclass(frozen=True, slots=True)
class CpuModel:
    """Converts instruction counts to simulated seconds.

    The per-operation instruction budgets default to the paper's
    Section 4.1 assumptions but are overridable: the Section 5.6
    prototype experiment, for example, models Accent's expensive IPC
    by raising ``instructions_per_packet`` far above the specialized
    low-level protocols the paper calls for.
    """

    mips: float = DEFAULT_MIPS
    instructions_per_packet: int = INSTRUCTIONS_PER_PACKET
    instructions_per_message: int = INSTRUCTIONS_PER_MESSAGE
    instructions_per_track_write: int = INSTRUCTIONS_PER_TRACK_WRITE

    def __post_init__(self) -> None:
        if self.mips <= 0:
            raise ValueError("mips must be positive")

    def seconds(self, instructions: float) -> float:
        return instructions / (self.mips * 1e6)

    def packet_time(self, packets: int = 1) -> float:
        return self.seconds(self.instructions_per_packet * packets)

    def message_time(self, messages: int = 1) -> float:
        return self.seconds(self.instructions_per_message * messages)

    def track_write_time(self, tracks: int = 1) -> float:
        return self.seconds(self.instructions_per_track_write * tracks)

"""The Section 4.1 capacity analysis, as an executable model.

Every quantity the paper derives in prose is a field of
:class:`CapacityReport`:

* messages per server per second with per-record RPCs (**~2400**);
* RPCs per server per second with grouping (**~170**);
* total network load (**~7 Mbit/s**, roughly halved by multicast);
* CPU fraction for communication (**<10 %**) and for logging
  (**10–20 %**);
* disk utilization (**~50 %** for slow disks with small tracks);
* log bytes per server per day (**~10 GB**).

The model is parameterized so the ablation benches can sweep grouping
factors, disk speeds, and replication degrees; defaults reproduce the
paper's target configuration exactly (50 clients × 10 TPS ET1, six
servers, N = 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..net.packet import PACKET_HEADER_BYTES
from ..storage.disk import SLOW_1987_DISK, DiskParams
from .constants import (
    DEFAULT_MIPS,
    ET1_BYTES_PER_TXN,
    ET1_FORCES_PER_TXN,
    ET1_RECORDS_PER_TXN,
    INSTRUCTIONS_PER_MESSAGE,
    INSTRUCTIONS_PER_PACKET,
    INSTRUCTIONS_PER_TRACK_WRITE,
    TARGET_CLIENTS,
    TARGET_COPIES,
    TARGET_SERVERS,
    TARGET_TPS_PER_CLIENT,
)

#: Message-level overhead per write message (headers + per-record tags).
_MESSAGE_OVERHEAD_BYTES = 32
_RECORD_TAG_BYTES = 16
#: Acknowledgment (NewHighLSN) packet size.
_ACK_BYTES = PACKET_HEADER_BYTES + 32


@dataclass(frozen=True, slots=True)
class CapacityConfig:
    """Inputs of the Section 4.1 analysis (defaults = the paper's)."""

    clients: int = TARGET_CLIENTS
    tps_per_client: float = TARGET_TPS_PER_CLIENT
    records_per_txn: int = ET1_RECORDS_PER_TXN
    bytes_per_txn: int = ET1_BYTES_PER_TXN
    forces_per_txn: int = ET1_FORCES_PER_TXN
    servers: int = TARGET_SERVERS
    copies: int = TARGET_COPIES
    mips: float = DEFAULT_MIPS
    disk: DiskParams = SLOW_1987_DISK
    #: records per message; the grouped interface sends one message per
    #: force, i.e. records_per_txn records per message for ET1.
    grouping_factor: int | None = None
    multicast: bool = False

    @property
    def total_tps(self) -> float:
        return self.clients * self.tps_per_client

    @property
    def effective_grouping(self) -> int:
        if self.grouping_factor is not None:
            return max(1, self.grouping_factor)
        return max(1, self.records_per_txn // self.forces_per_txn)


@dataclass(frozen=True, slots=True)
class CapacityReport:
    """Outputs, one field per quantity the paper reports."""

    config: CapacityConfig
    # message economics
    unbatched_msgs_per_server_s: float
    rpcs_per_server_s: float
    packets_per_server_s: float
    # network
    network_bits_per_s: float
    network_bits_per_s_multicast: float
    # CPU
    comm_cpu_fraction: float
    logging_cpu_fraction: float
    # disk
    track_writes_per_server_s: float
    disk_utilization: float
    force_latency_no_nvram_s: float
    # volume
    bytes_per_server_s: float
    bytes_per_server_day: float

    def rows(self) -> list[tuple[str, str, str]]:
        """(quantity, model value, paper's claim) rows for the bench."""
        return [
            ("msgs/server/s, per-record RPCs",
             f"{self.unbatched_msgs_per_server_s:,.0f}", "~2400"),
            ("RPCs/server/s, grouped",
             f"{self.rpcs_per_server_s:,.0f}", "~170"),
            ("network load (Mbit/s)",
             f"{self.network_bits_per_s / 1e6:.1f}", "~7"),
            ("network load w/ multicast (Mbit/s)",
             f"{self.network_bits_per_s_multicast / 1e6:.1f}", "~3.5 (halved)"),
            ("communication CPU (%)",
             f"{self.comm_cpu_fraction * 100:.1f}", "<10"),
            ("logging CPU (%)",
             f"{self.logging_cpu_fraction * 100:.1f}", "10-20"),
            ("disk utilization (%)",
             f"{self.disk_utilization * 100:.1f}", "~50 (slow disks)"),
            ("log volume (GB/server/day)",
             f"{self.bytes_per_server_day / 1e9:.1f}", "~10"),
        ]


def analyze(config: CapacityConfig = CapacityConfig()) -> CapacityReport:
    """Run the Section 4.1 derivation for ``config``."""
    tps = config.total_tps
    records_s = tps * config.records_per_txn          # records generated /s
    copies_records_s = records_s * config.copies       # server-write ops /s

    # --- message economics ----------------------------------------------
    # Per-record RPCs: each record write is a request + a reply.
    unbatched_msgs = copies_records_s * 2 / config.servers

    # Grouped: one message per force per copy, records ride along.
    grouping = config.effective_grouping
    write_msgs_s = copies_records_s / grouping         # requests /s, all servers
    rpcs_per_server = write_msgs_s / config.servers    # request/reply pairs
    packets_per_server = rpcs_per_server * 2           # request + ack packets

    # --- network load ------------------------------------------------------
    bytes_per_record = config.bytes_per_txn / config.records_per_txn
    message_bytes = (
        PACKET_HEADER_BYTES + _MESSAGE_OVERHEAD_BYTES
        + grouping * (bytes_per_record + _RECORD_TAG_BYTES)
    )
    data_bits = write_msgs_s * message_bytes * 8
    ack_bits = write_msgs_s * _ACK_BYTES * 8
    network_bits = data_bits + ack_bits
    # Multicast sends each record group once instead of N times.
    multicast_bits = data_bits / config.copies + ack_bits

    # --- CPU ------------------------------------------------------------------
    cpu_capacity = config.mips * 1e6
    comm_instr = packets_per_server * INSTRUCTIONS_PER_PACKET
    comm_fraction = comm_instr / cpu_capacity

    bytes_per_server_s = (
        tps * config.bytes_per_txn * config.copies / config.servers
    )
    track_bytes = config.disk.track_bytes
    track_writes_s = bytes_per_server_s / track_bytes
    logging_instr = (
        rpcs_per_server * INSTRUCTIONS_PER_MESSAGE
        + track_writes_s * INSTRUCTIONS_PER_TRACK_WRITE
    )
    logging_fraction = logging_instr / cpu_capacity

    # --- disk --------------------------------------------------------------------
    disk_utilization = track_writes_s * config.disk.sequential_track_write_s()
    force_latency = config.disk.forced_record_write_s(
        int(bytes_per_record * grouping)
    )

    return CapacityReport(
        config=config,
        unbatched_msgs_per_server_s=unbatched_msgs,
        rpcs_per_server_s=rpcs_per_server,
        packets_per_server_s=packets_per_server,
        network_bits_per_s=network_bits,
        network_bits_per_s_multicast=multicast_bits,
        comm_cpu_fraction=comm_fraction,
        logging_cpu_fraction=logging_fraction,
        track_writes_per_server_s=track_writes_s,
        disk_utilization=disk_utilization,
        force_latency_no_nvram_s=force_latency,
        bytes_per_server_s=bytes_per_server_s,
        bytes_per_server_day=bytes_per_server_s * 86400,
    )


def grouping_sweep(
    factors: tuple[int, ...] = (1, 2, 3, 5, 7, 14),
    base: CapacityConfig = CapacityConfig(),
) -> list[CapacityReport]:
    """The grouping ablation: capacity vs records-per-message."""
    reports = []
    for factor in factors:
        cfg = CapacityConfig(
            clients=base.clients, tps_per_client=base.tps_per_client,
            records_per_txn=base.records_per_txn,
            bytes_per_txn=base.bytes_per_txn,
            forces_per_txn=base.forces_per_txn,
            servers=base.servers, copies=base.copies, mips=base.mips,
            disk=base.disk, grouping_factor=factor,
            multicast=base.multicast,
        )
        reports.append(analyze(cfg))
    return reports

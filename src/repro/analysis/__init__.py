"""Analytic models: the Section 4.1 capacity analysis and its constants."""

from .capacity import CapacityConfig, CapacityReport, analyze, grouping_sweep
from .commit import (
    CommitCost,
    common_commit_cost,
    crossover_table,
    two_phase_commit_cost,
)
from .constants import (
    DEFAULT_MIPS,
    ET1_BYTES_PER_RECORD,
    ET1_BYTES_PER_TXN,
    ET1_FORCES_PER_TXN,
    ET1_RECORDS_PER_TXN,
    INSTRUCTIONS_PER_MESSAGE,
    INSTRUCTIONS_PER_PACKET,
    INSTRUCTIONS_PER_TRACK_WRITE,
    TARGET_CLIENTS,
    TARGET_COPIES,
    TARGET_SERVERS,
    TARGET_TPS,
    TARGET_TPS_PER_CLIENT,
    CpuModel,
)

__all__ = [
    "CapacityConfig",
    "CapacityReport",
    "CommitCost",
    "CpuModel",
    "DEFAULT_MIPS",
    "ET1_BYTES_PER_RECORD",
    "ET1_BYTES_PER_TXN",
    "ET1_FORCES_PER_TXN",
    "ET1_RECORDS_PER_TXN",
    "INSTRUCTIONS_PER_MESSAGE",
    "INSTRUCTIONS_PER_PACKET",
    "INSTRUCTIONS_PER_TRACK_WRITE",
    "TARGET_CLIENTS",
    "TARGET_COPIES",
    "TARGET_SERVERS",
    "TARGET_TPS",
    "TARGET_TPS_PER_CLIENT",
    "analyze",
    "common_commit_cost",
    "crossover_table",
    "grouping_sweep",
    "two_phase_commit_cost",
]

"""Commit coordination costs: replicated logging vs a common server.

Section 5.5: "If remote logging were performed using a server having
mirrored disks, rather than using the replicated logging algorithm …
that server could be a coordinator for an optimized commit protocol.
The number of messages and the number of forces of data to non
volatile storage required for commit could be reduced, compared with
frequently used distributed commit protocols [Lindsay et al 79]. …
Still, if multi node transactions are frequent then common commit
coordination is an argument against replicated logging."

This module makes that qualitative trade-off quantitative.  For a
distributed transaction touching ``participants`` client nodes:

**Two-phase commit over replicated logs** (presumed-nothing 2PC, one
of the participants acting as coordinator):

* protocol messages: PREPARE, VOTE, COMMIT, ACK per subordinate
  — ``4·(k−1)`` for ``k`` participants;
* log forces: each subordinate forces a prepare record and a commit
  record, the coordinator forces the commit decision — ``2k − 1``;
* every force over a replicated log writes ``N`` copies, so each is
  ``N`` ForceLog packets + ``N`` acknowledgments on the wire.

**Common commit coordination** (all participants log to one mirrored
server, which is also the coordinator):

* participants stream their prepare records with their normal log
  traffic and the coordinator's commit record commits everyone: the
  decision is a single force at the shared server;
* protocol messages collapse into the logging traffic: one
  prepared-state force message + ack per subordinate, plus the
  coordinator's own force + the outcome notifications.

The latency chains use the same CPU/network/NVRAM constants as the
rest of the analysis.  The other side of the ledger — availability —
is exactly what Figure 3-4 quantifies: the common server is a single
point of failure (0.95 at p = 0.05) while replicated logs push write
availability to five nines.
"""

from __future__ import annotations

from dataclasses import dataclass

from .constants import DEFAULT_MIPS, CpuModel

#: one-way LAN latency + transmission of a small packet, seconds.
_NETWORK_HOP_S = 0.0003


@dataclass(frozen=True, slots=True)
class CommitCost:
    """Cost of committing one distributed transaction."""

    scheme: str
    participants: int
    #: commit-protocol messages between transaction-processing nodes
    #: (or between them and the coordinating server).
    protocol_messages: int
    #: log forces on some node's critical path (each a durable wait).
    log_forces: int
    #: packets the forces add on the network (ForceLog + ack, × copies).
    logging_packets: int
    #: sequential critical-path latency estimate, seconds.
    latency_s: float


def two_phase_commit_cost(
    participants: int,
    copies: int = 2,
    mips: float = DEFAULT_MIPS,
) -> CommitCost:
    """Presumed-nothing 2PC where every node has a replicated log."""
    if participants < 1:
        raise ValueError("a transaction has at least one participant")
    k = participants
    subs = k - 1
    cpu = CpuModel(mips)
    protocol_messages = 4 * subs
    log_forces = 2 * k - 1
    logging_packets = log_forces * copies * 2  # ForceLog + NewHighLSN ack

    # critical path: PREPARE out, subordinate force, VOTE back,
    # coordinator force, COMMIT out, subordinate force, ACK back.
    force_latency = 2 * (_NETWORK_HOP_S + cpu.packet_time()) \
        + cpu.message_time()  # parallel across the N copies
    hop = _NETWORK_HOP_S + cpu.packet_time()
    if subs:
        latency = (hop + force_latency + hop      # prepare round
                   + force_latency                 # coordinator decision
                   + hop + force_latency + hop)    # commit round
    else:
        latency = force_latency  # local transaction: one commit force
    return CommitCost(
        scheme="2PC over replicated logs",
        participants=k,
        protocol_messages=protocol_messages,
        log_forces=log_forces,
        logging_packets=logging_packets,
        latency_s=latency,
    )


def common_commit_cost(
    participants: int,
    mips: float = DEFAULT_MIPS,
) -> CommitCost:
    """All participants log to one mirrored server, which coordinates.

    Prepared records ride the participants' ordinary log streams; the
    server's NVRAM makes each prepared-state force one message + ack,
    and the commit decision is a single forced record at the server,
    after which outcome notifications go out.
    """
    if participants < 1:
        raise ValueError("a transaction has at least one participant")
    k = participants
    cpu = CpuModel(mips)
    # each participant forces its prepared state to the one server
    # (1 message + 1 ack each), the coordinator record is server-local
    protocol_messages = 2 * k + k  # force+ack per participant, outcome each
    log_forces = k + 1             # k prepared-state forces + the decision
    logging_packets = 2 * k        # the forces above ARE the logging traffic
    hop = _NETWORK_HOP_S + cpu.packet_time()
    force_latency = 2 * hop + cpu.message_time()
    # prepares happen in parallel; then the decision force is local to
    # the server; then outcomes fan out.
    latency = force_latency + cpu.message_time() + hop
    return CommitCost(
        scheme="common commit (mirrored server)",
        participants=k,
        protocol_messages=protocol_messages,
        log_forces=log_forces,
        logging_packets=logging_packets,
        latency_s=latency,
    )


def crossover_table(
    max_participants: int = 6, copies: int = 2
) -> list[tuple[int, CommitCost, CommitCost]]:
    """Side-by-side costs for 1..max participants."""
    rows = []
    for k in range(1, max_participants + 1):
        rows.append((k, two_phase_commit_cost(k, copies),
                     common_commit_cost(k)))
    return rows

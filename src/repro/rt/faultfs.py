"""Injectable storage I/O backends for the real runtime.

:class:`FileLogStore` routes every mutating filesystem call — open,
write, fsync, rename, directory fsync, unlink — through a backend
object with this interface.  The default :class:`PassthroughIO` is a
thin veneer over the ``os`` module; :class:`FaultInjector` is the
deterministic fault layer behind ``repro crashsweep``.

Every call names its **site** (``log.write.record``, ``log.fsync``,
``log.group-fsync`` — the fsync a server group commit shares across
parked ForceLogs — ``compact.rename``, ...).  The injector counts
invocations per site, so
``(site, index)`` identifies one exact I/O operation of a deterministic
workload — a *crash point*.  A :class:`FaultPlan` arms one point with
one action:

``enospc`` / ``eio``
    raise :class:`OSError` with that errno (the store's wedge path);
``bit-flip``
    flip one bit in the payload before writing it (the CRC path);
``short-write``
    write only a prefix of the payload, then crash (torn write);
``torn``
    write only a prefix of the payload and *keep running* — the lying
    disk.  On its own this is silent corruption (like ``bit-flip``);
    its purpose is **combined-fault plans**, where a later armed crash
    (e.g. power loss at the following ``compact.rename``) freezes the
    disk while the torn bytes are still uncommitted;
``power-loss``
    crash *before* the operation takes effect.

A plan string may arm *several* points at once — comma-separated
``SITE:IDX:ACTION`` specs, parsed by :func:`parse_fault_plans` — so a
sweep case can model compound failures such as a torn ``compact.write``
followed by power loss at the next ``compact.rename``.  Malformed
specs raise :class:`FaultSpecError` naming the offending token.

A crash freezes the disk in the state an ALICE-style crash-consistency
model allows:

* every file is truncated back to its last fsync barrier (for
  ``short-write`` the flushed prefix of the torn write survives — both
  the all-lost and the torn shape are exercised by the sweep);
* directory operations (create, rename, unlink) that were not yet
  covered by a directory fsync are rolled back — a file's ``fsync``
  does **not** commit its own directory entry.

In-process (``mode="raise"``) the crash raises :class:`PowerLoss`
(a ``BaseException`` so ``except OSError`` recovery paths cannot
swallow it); in a daemon (``mode="exit"``) it prints
``REPRO-FAULT-CRASH <site>:<index>`` to stderr and ``os._exit``\\ s with
:data:`FAULT_EXIT_CODE` so the harness can tell an injected crash from
a genuine one.

Injected files are opened unbuffered so written == flushed and the
power-cut surgery is exact.
"""

from __future__ import annotations

import errno
import os
import sys
from dataclasses import dataclass
from pathlib import Path

#: Exit status of a daemon killed by an injected power loss.
FAULT_EXIT_CODE = 86

#: The banner a daemon prints to stderr before an injected exit.
CRASH_BANNER = "REPRO-FAULT-CRASH"

ACTIONS = ("enospc", "eio", "short-write", "torn", "bit-flip",
           "power-loss")

#: Actions of the *client-side* protocol injector
#: (:mod:`repro.rt.clientfault`): kill the client process with
#: :data:`FAULT_EXIT_CODE`, kill it with SIGKILL, or raise
#: :class:`ClientCrash` in-process (unit tests).
CLIENT_ACTIONS = ("exit", "sigkill", "raise")

#: Actions that end the run (vs. returning an error to the caller).
_CRASH_ACTIONS = ("short-write", "power-loss")

_ERRNO_ACTIONS = {"enospc": errno.ENOSPC, "eio": errno.EIO}


class FaultSpecError(ValueError):
    """A malformed fault-plan spec, naming the token that is wrong.

    ``token`` is the exact substring that failed to parse (the whole
    spec when its shape is wrong), so a CLI error or a harness log
    pinpoints the mistake in a long multi-fault plan string.
    """

    def __init__(self, spec: str, token: str, reason: str):
        super().__init__(
            f"bad fault spec {spec!r}: token {token!r} {reason}"
        )
        self.spec = spec
        self.token = token
        self.reason = reason


class PowerLoss(BaseException):
    """The machine died at ``point`` (in-process simulation).

    Deliberately a ``BaseException``: the store's ``except OSError``
    wedge paths must not observe it, because after power loss there is
    no process left to wedge.
    """

    def __init__(self, point: str):
        super().__init__(point)
        self.point = point


@dataclass(frozen=True)
class FaultPlan:
    """Arm ``action`` at the ``index``-th invocation of ``site``."""

    site: str
    index: int
    action: str

    def __post_init__(self) -> None:
        if self.action not in ACTIONS + CLIENT_ACTIONS:
            raise FaultSpecError(
                f"{self.site}:{self.index}:{self.action}", self.action,
                f"is not a fault action (one of {', '.join(ACTIONS)})",
            )
        if self.index < 0:
            raise FaultSpecError(
                f"{self.site}:{self.index}:{self.action}", str(self.index),
                "is a negative invocation index",
            )

    @property
    def point(self) -> str:
        return f"{self.site}:{self.index}"

    @property
    def spec(self) -> str:
        return f"{self.site}:{self.index}:{self.action}"

    @classmethod
    def parse(cls, spec: str, *, actions: tuple[str, ...] = ACTIONS,
              default_action: str | None = None) -> "FaultPlan":
        """Parse ``site:index:action`` (e.g. ``log.fsync:2:power-loss``).

        Every malformed input raises :class:`FaultSpecError` naming the
        bad token: a spec with the wrong shape, an empty site, a
        non-integer or negative index, or an action outside ``actions``
        (callers with their own action vocabulary — the client-side
        injector — pass theirs).  ``default_action`` fills in a
        two-token ``site:index`` spec when given.
        """
        site, index_s, action = _split_spec(spec, default_action)
        if not site:
            raise FaultSpecError(spec, site, "is an empty site name")
        try:
            index = int(index_s)
        except ValueError:
            raise FaultSpecError(
                spec, index_s, "is not an integer invocation index"
            ) from None
        if index < 0:
            raise FaultSpecError(spec, index_s,
                                 "is a negative invocation index")
        if action not in actions:
            raise FaultSpecError(
                spec, action,
                f"is not a fault action (one of {', '.join(actions)})",
            )
        return cls(site=site, index=index, action=action)


def _split_spec(spec: str, default_action: str | None
                ) -> tuple[str, str, str]:
    """Split one ``site:index[:action]`` token, shape-checked."""
    parts = spec.rsplit(":", 2)
    if len(parts) == 2 and default_action is not None:
        return parts[0], parts[1], default_action
    if len(parts) != 3:
        raise FaultSpecError(
            spec, spec,
            "does not have the shape SITE:IDX:ACTION",
        )
    return parts[0], parts[1], parts[2]


def parse_fault_plans(spec: str, *, actions: tuple[str, ...] = ACTIONS
                      ) -> tuple[FaultPlan, ...]:
    """Parse a comma-separated multi-fault plan string.

    ``"compact.write:1:torn,compact.rename:0:power-loss"`` arms two
    points in one run.  Whitespace around tokens is tolerated; an empty
    string, an empty token between commas, a duplicate crash point, or
    any malformed ``SITE:IDX:ACTION`` raises :class:`FaultSpecError`
    naming the bad token.
    """
    tokens = [token.strip() for token in spec.split(",")]
    if tokens == [""]:
        raise FaultSpecError(spec, spec, "is an empty fault plan")
    plans: list[FaultPlan] = []
    for token in tokens:
        if not token:
            raise FaultSpecError(spec, token,
                                 "is an empty token between commas")
        plans.append(FaultPlan.parse(token, actions=actions))
    points = [plan.point for plan in plans]
    for point in points:
        if points.count(point) > 1:
            raise FaultSpecError(
                spec, point, "is armed twice in one plan"
            )
    return tuple(plans)


class PassthroughIO:
    """The default backend: real I/O, no bookkeeping, no faults."""

    #: mirrored by :class:`FaultInjector`; always 0 here.
    faults_injected = 0

    def open(self, path: str | Path, mode: str, site: str):
        return open(path, mode)

    def write(self, fh, data: bytes, site: str) -> None:
        fh.write(data)

    def fsync(self, fh, site: str) -> None:
        fh.flush()
        os.fsync(fh.fileno())

    def replace(self, src: str | Path, dst: str | Path, site: str) -> None:
        os.replace(src, dst)

    def unlink(self, path: str | Path, site: str) -> None:
        os.unlink(path)

    def fsync_dir(self, path: str | Path, site: str) -> None:
        dir_fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)


class TrackedFile:
    """An unbuffered file handle whose flushed/synced extents are known.

    ``written`` is the byte size the file would have if the process
    lived on; ``synced`` is the size guaranteed to survive power loss.
    Exposes the small slice of the file interface the stores use.
    """

    __slots__ = ("path", "_fh", "written", "synced")

    def __init__(self, path: str, fh, written: int, synced: int):
        self.path = path
        self._fh = fh
        self.written = written
        self.synced = synced

    def write(self, data: bytes) -> int:
        n = self._fh.write(data)
        self.written += n
        return n

    def flush(self) -> None:  # unbuffered; kept for interface parity
        pass

    def fileno(self) -> int:
        return self._fh.fileno()

    @property
    def closed(self) -> bool:
        return self._fh.closed

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()


class FaultInjector(PassthroughIO):
    """Deterministic fault-injecting backend.

    With ``plan=None`` it is a *recording* passthrough: every site
    invocation is appended to :attr:`trace` (and ``trace_path`` if
    given), which is how the sweep enumerates crash points.  With a
    plan, the armed point misbehaves as described in the module
    docstring.
    """

    def __init__(self, plan=None, *,
                 mode: str = "raise",
                 trace_path: str | Path | None = None):
        if mode not in ("raise", "exit"):
            raise ValueError(f"mode must be 'raise' or 'exit', not {mode!r}")
        if plan is None:
            plans: tuple[FaultPlan, ...] = ()
        elif isinstance(plan, FaultPlan):
            plans = (plan,)
        else:
            plans = tuple(plan)
        #: every armed point (combined-fault plans arm several).
        self.plans = plans
        #: the single armed plan, for the common one-fault case.
        self.plan = plans[0] if len(plans) == 1 else None
        self.mode = mode
        self.counts: dict[str, int] = {}
        self.trace: list[str] = []
        self.faults_injected = 0
        #: set to the crash point once a simulated power loss happened;
        #: any further I/O raises :class:`PowerLoss` again so stray
        #: finalizers cannot write to the "dead" disk.
        self.tripped: str | None = None
        self._files: list[TrackedFile] = []
        #: last fsync-covered size per path (source of truth for the
        #: power-cut truncation).
        self._synced: dict[str, int] = {}
        #: directory operations not yet covered by a directory fsync,
        #: in execution order, as (dirpath, op-tuple).
        self._pending_ops: list[tuple[str, tuple]] = []
        self._trace_file = None
        if trace_path is not None:
            self._trace_file = open(trace_path, "a", buffering=1)

    # -- bookkeeping ---------------------------------------------------

    def _hit(self, site: str) -> str | None:
        """Count one invocation; return the armed action, if any."""
        if self.tripped is not None:
            raise PowerLoss(self.tripped)
        index = self.counts.get(site, 0)
        self.counts[site] = index + 1
        point = f"{site}:{index}"
        self.trace.append(point)
        if self._trace_file is not None:
            self._trace_file.write(point + "\n")
        for plan in self.plans:
            if plan.site == site and plan.index == index:
                return plan.action
        return None

    def _point(self) -> str:
        return self.trace[-1]

    def _fail(self, action: str) -> None:
        """Raise the armed errno action as a plain OSError."""
        self.faults_injected += 1
        raise OSError(_ERRNO_ACTIONS[action],
                      f"injected {action} at {self._point()}")

    def _act(self, action: str | None) -> None:
        """Apply a non-write-site action (crash actions crash *before*
        the operation; bit-flip/short-write/torn degrade to power-loss
        away from a payload)."""
        if action is None:
            return
        if action in _ERRNO_ACTIONS:
            self._fail(action)
        self._crash(keep_flushed=False)

    # -- the backend interface -----------------------------------------

    def open(self, path: str | Path, mode: str, site: str):
        path = os.fspath(path)
        action = self._hit(site)
        self._act(action)
        existed = os.path.exists(path)
        fh = open(path, mode, buffering=0)
        size = os.fstat(fh.fileno()).st_size
        if existed:
            # Bytes that predate this injector are durable unless we
            # already know better (e.g. the path was a rename target).
            synced = min(self._synced.get(path, size), size)
        else:
            synced = 0
            self._pending_ops.append(
                (os.path.dirname(path), ("create", path))
            )
        self._synced[path] = synced
        tracked = TrackedFile(path, fh, written=size, synced=synced)
        self._files.append(tracked)
        return tracked

    def write(self, fh: TrackedFile, data: bytes, site: str) -> None:
        action = self._hit(site)
        if action is None:
            fh.write(data)
            return
        if action in _ERRNO_ACTIONS:
            self._fail(action)
        if action == "bit-flip":
            self.faults_injected += 1
            mid = len(data) // 2
            flipped = data[:mid] + bytes([data[mid] ^ 0x10]) + data[mid + 1:]
            fh.write(flipped)
            return
        if action == "torn":
            self.faults_injected += 1
            fh.write(data[:max(1, len(data) // 2)])
            return
        if action == "short-write":
            self.faults_injected += 1
            fh.write(data[:max(1, len(data) // 2)])
            self._crash(keep_flushed=True)
        self._crash(keep_flushed=False)  # power-loss

    def fsync(self, fh: TrackedFile, site: str) -> None:
        action = self._hit(site)
        self._act(action)
        os.fsync(fh.fileno())
        fh.synced = fh.written
        self._synced[fh.path] = fh.synced

    def replace(self, src: str | Path, dst: str | Path, site: str) -> None:
        src, dst = os.fspath(src), os.fspath(dst)
        action = self._hit(site)
        self._act(action)
        pre = Path(dst).read_bytes() if os.path.exists(dst) else None
        pre_synced = self._synced.get(
            dst, len(pre) if pre is not None else 0
        )
        src_bytes = Path(src).read_bytes()
        src_synced = min(self._synced.get(src, len(src_bytes)),
                         len(src_bytes))
        os.replace(src, dst)
        self._synced[dst] = src_synced
        self._synced.pop(src, None)
        self._pending_ops.append((
            os.path.dirname(dst),
            ("replace", src, dst, pre, pre_synced, src_bytes, src_synced),
        ))

    def unlink(self, path: str | Path, site: str) -> None:
        path = os.fspath(path)
        action = self._hit(site)
        self._act(action)
        data = Path(path).read_bytes()
        synced = min(self._synced.get(path, len(data)), len(data))
        os.unlink(path)
        self._synced.pop(path, None)
        self._pending_ops.append(
            (os.path.dirname(path), ("unlink", path, data, synced))
        )

    def fsync_dir(self, path: str | Path, site: str) -> None:
        path = os.fspath(path)
        action = self._hit(site)
        self._act(action)
        super().fsync_dir(path, site)
        # The barrier commits every pending operation in this directory.
        self._pending_ops = [
            (d, op) for d, op in self._pending_ops if d != path
        ]

    # -- the crash -----------------------------------------------------

    def _crash(self, *, keep_flushed: bool) -> None:
        """Freeze the disk in a crash-legal state and die.

        ``keep_flushed=False`` is the power-loss shape: every file
        reverts to its last fsync barrier.  ``keep_flushed=True`` is
        the torn-write shape: flushed bytes (including the partial
        in-flight write) survive.  Pending directory operations are
        rolled back in both shapes — fsync of a file never commits its
        directory entry.
        """
        self.faults_injected += 1
        point = self._point()
        self.tripped = point
        if not keep_flushed:
            for path, synced in list(self._synced.items()):
                if os.path.exists(path):
                    os.truncate(path, min(synced, os.path.getsize(path)))
        for _, op in reversed(self._pending_ops):
            self._rollback(op, keep_flushed=keep_flushed)
        self._pending_ops = []
        self.close_all()
        if self.mode == "exit":
            print(f"{CRASH_BANNER} {point}", file=sys.stderr, flush=True)
            os._exit(FAULT_EXIT_CODE)
        raise PowerLoss(point)

    @staticmethod
    def _rollback(op: tuple, *, keep_flushed: bool) -> None:
        kind = op[0]
        if kind == "create":
            _, path = op
            if os.path.exists(path):
                os.unlink(path)
        elif kind == "unlink":
            _, path, data, synced = op
            Path(path).write_bytes(data if keep_flushed else data[:synced])
        else:  # replace
            _, src, dst, pre, pre_synced, src_bytes, src_synced = op
            if pre is None:
                if os.path.exists(dst):
                    os.unlink(dst)
            else:
                Path(dst).write_bytes(
                    pre if keep_flushed else pre[:pre_synced]
                )
            Path(src).write_bytes(
                src_bytes if keep_flushed else src_bytes[:src_synced]
            )

    # -- lifecycle -----------------------------------------------------

    def close_all(self) -> None:
        """Close every tracked handle (harness cleanup after a crash)."""
        for tracked in self._files:
            try:
                tracked.close()
            except OSError:
                pass
        if self._trace_file is not None and not self._trace_file.closed:
            self._trace_file.close()

"""Event-loop backend selection for ``repro serve`` / ``repro loadgen``.

The runtime is backend-agnostic asyncio; ``--loop uvloop`` swaps the
default event-loop policy for `uvloop <https://uvloop.readthedocs.io>`_
when it is installed, which removes a slice of pure-Python scheduling
overhead from the hot path.  The default (``--loop asyncio``) is
untouched, and uvloop is strictly optional: requesting it without the
package installed is a clear startup error, never a silent fallback.
"""

from __future__ import annotations

LOOP_BACKENDS = ("asyncio", "uvloop")


def install_loop_backend(name: str | None) -> None:
    """Install the requested event-loop policy before ``asyncio.run``.

    ``None``/``"asyncio"`` is a no-op.  ``"uvloop"`` installs uvloop's
    policy, raising ``SystemExit`` with a clear message when the
    package is absent (it is an optional dependency).
    """
    if name in (None, "", "asyncio"):
        return
    if name == "uvloop":
        try:
            import uvloop
        except ImportError:
            raise SystemExit(
                "--loop uvloop requested but the uvloop package is not "
                "installed; omit --loop (or pass --loop asyncio) to use "
                "the default event loop"
            ) from None
        uvloop.install()
        return
    raise SystemExit(f"unknown event-loop backend {name!r}; "
                     f"choose from {', '.join(LOOP_BACKENDS)}")

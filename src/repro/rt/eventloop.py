"""Event-loop backend selection for ``repro serve`` / ``repro loadgen``.

The runtime is backend-agnostic asyncio; ``--loop uvloop`` swaps the
default event-loop policy for `uvloop <https://uvloop.readthedocs.io>`_
when it is installed, which removes a slice of pure-Python scheduling
overhead from the hot path.  uvloop is strictly optional: requesting it
without the package installed degrades to the default asyncio loop with
a one-line warning on stderr — a daemon launched from a script on a box
without uvloop should come up (slower), not die at startup.  The
backend actually chosen is returned so callers can report it.
"""

from __future__ import annotations

import sys

LOOP_BACKENDS = ("asyncio", "uvloop")


def install_loop_backend(name: str | None) -> str:
    """Install the requested event-loop policy before ``asyncio.run``.

    ``None``/``"asyncio"`` is a no-op.  ``"uvloop"`` installs uvloop's
    policy when the package is importable; when it is absent the
    default loop stays installed and a single warning line goes to
    stderr.  Returns the backend in effect (``"asyncio"`` or
    ``"uvloop"``).  An unknown name is still a hard ``SystemExit`` —
    that is a typo, not a missing optional dependency.
    """
    if name in (None, "", "asyncio"):
        return "asyncio"
    if name == "uvloop":
        try:
            import uvloop
        except ImportError:
            print("repro: uvloop requested but not installed; "
                  "falling back to the default asyncio event loop",
                  file=sys.stderr)
            return "asyncio"
        uvloop.install()
        return "uvloop"
    raise SystemExit(f"unknown event-loop backend {name!r}; "
                     f"choose from {', '.join(LOOP_BACKENDS)}")
